//! Full-system conference simulation harness.
//!
//! Assembles the whole GSO-Simulcast stack — clients with simulcast
//! encoders and BWE, accessing nodes (SFUs), the conference node with the
//! GSO controller — on top of the deterministic packet simulator, and
//! provides the experiment drivers that regenerate every table and figure
//! of the paper's evaluation (see `experiments`).
//!
//! * [`client`] — the user-plane endpoint.
//! * [`access`] — the media-plane accessing node.
//! * [`conference`] — the control-plane conference node + controller.
//! * [`ctrl`] — the AN↔CN control-channel wire format.
//! * [`scenario`] — declarative scenario construction and execution.
//! * [`workloads`] — the slow-link impairment matrix (Table 2) and ladders.
//! * [`experiments`] — one driver per table/figure.
//! * [`deployment`] — the population model behind Fig. 10/11.

pub mod access;
pub mod client;
pub mod conference;
pub mod ctrl;
pub mod deployment;
pub mod experiments;
pub mod scenario;
pub mod workloads;

pub use client::{ClientConfig, ClientNode, PolicyMode, SessionMetrics};
pub use scenario::{ClientScenario, Scenario, ScenarioResult, WiredConference};
