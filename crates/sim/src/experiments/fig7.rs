//! Fig. 7 — transient bitrate adaptation under abrupt bandwidth changes.
//!
//! One publisher streams to one subscriber through an accessing node. At
//! t = 20 s the subscriber's downlink is capped to 750/625/500/375 Kbps; at
//! t = 57 s the cap is lifted. GSO (fine 15-level ladder, global control)
//! fits the video just under the cap; Non-GSO (coarse 3-level template)
//! has to fall to the next coarse level, wasting bandwidth (§5).

use crate::client::PolicyMode;
use crate::scenario::{ClientScenario, Scenario};
use crate::workloads::ladder_for_mode;
use gso_algo::Resolution;
use gso_net::{LinkConfig, Schedule};
use gso_telemetry::keys;
use gso_util::stats::TimeSeries;
use gso_util::{Bitrate, ClientId, SimDuration, SimTime};

/// The caps applied in the experiment.
pub const CAPS_KBPS: [u64; 4] = [750, 625, 500, 375];

/// When the cap is applied and lifted.
pub const CAP_AT: SimTime = SimTime::from_secs(20);
/// When the cap is lifted.
pub const RECOVER_AT: SimTime = SimTime::from_secs(57);
/// Total run length.
pub const RUN_FOR: SimDuration = SimDuration::from_secs(80);

/// The received-video-rate trace for one (mode, cap) run.
#[derive(Debug)]
pub struct TransientTrace {
    /// The applied cap.
    pub cap: Bitrate,
    /// Receive rate at the subscriber over time.
    pub series: TimeSeries,
    /// Controller-side observability for the run (zeroed in baseline modes,
    /// which run no controller).
    pub controller: ControllerMetrics,
}

/// Controller metrics harvested from the telemetry registry after a run.
///
/// "Solve latency" is deterministic work, not wall-clock: iterations of the
/// layer-selection search and incremental-engine rows recomputed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerMetrics {
    /// Controller rounds executed.
    pub solves: u64,
    /// Rounds forced into the §7 fallback template.
    pub fallback_rounds: u64,
    /// Total solver iterations across rounds.
    pub solve_iterations: u64,
    /// Total incremental-engine rows recomputed across rounds.
    pub solve_rows: u64,
    /// Per-subscription layer changes pushed (churn).
    pub churn_layers: u64,
    /// GTMB configuration messages first-sent.
    pub gtmb_sent: u64,
    /// GTMB retransmissions.
    pub gtmb_retransmits: u64,
    /// GTMB deliveries that exhausted their budget.
    pub gtmb_failed: u64,
}

impl ControllerMetrics {
    /// Harvest from a finished scenario's registry.
    pub fn from_telemetry(t: &gso_telemetry::Telemetry) -> Self {
        let (_, solve_iterations) = t.histogram_total(keys::CTRL_SOLVE_ITERATIONS);
        let (_, solve_rows) = t.histogram_total(keys::CTRL_SOLVE_ROWS);
        ControllerMetrics {
            solves: t.counter_total(keys::CTRL_SOLVES),
            fallback_rounds: t.counter_total(keys::CTRL_FALLBACK_ROUNDS),
            solve_iterations,
            solve_rows,
            churn_layers: t.counter_total(keys::CTRL_CHURN_LAYERS),
            gtmb_sent: t.counter_total(keys::GTMB_SENT),
            gtmb_retransmits: t.counter_total(keys::GTMB_RETRANSMITS),
            gtmb_failed: t.counter_total(keys::GTMB_FAILED),
        }
    }
}

/// Run the transient experiment for one mode across all four caps.
pub fn fig7(mode: PolicyMode, seed: u64) -> Vec<TransientTrace> {
    CAPS_KBPS
        .iter()
        .map(|&kbps| {
            let cap = Bitrate::from_kbps(kbps);
            run_one_traced(mode, cap, seed)
        })
        .collect()
}

/// Run a single (mode, cap) scenario and return the subscriber's receive
/// rate series.
pub fn run_one(mode: PolicyMode, cap: Bitrate, seed: u64) -> TimeSeries {
    run_one_traced(mode, cap, seed).series
}

/// [`run_one`] plus the controller metrics harvested from telemetry.
pub fn run_one_traced(mode: PolicyMode, cap: Bitrate, seed: u64) -> TransientTrace {
    let ladder = ladder_for_mode(mode);
    let base = Bitrate::from_mbps(4);
    let publisher = ClientId(1);
    let subscriber = ClientId(2);

    let mut sub = ClientScenario::clean(subscriber, base, base, ladder.clone());
    sub.downlink = LinkConfig::clean(base, SimDuration::from_millis(20)).with_rate_schedule(
        Schedule::steps(vec![(SimTime::ZERO, base), (CAP_AT, cap), (RECOVER_AT, base)]),
    );

    let mut s = Scenario {
        seed,
        mode,
        duration: RUN_FOR,
        clients: vec![ClientScenario::clean(publisher, base, base, ladder), sub],
        speaker_schedule: Vec::new(),
        standby: false,
    };
    // Only the subscriber watches; the publisher receives nothing (the
    // paper's one-way setup).
    s.clients[1].subscriptions = vec![gso_control::SubscribeIntent {
        source: gso_algo::SourceId::video(publisher),
        max_resolution: Resolution::R720,
        tag: 0,
    }];
    let result = s.run();
    TransientTrace {
        cap,
        series: result.recv_series[&subscriber].clone(),
        controller: ControllerMetrics::from_telemetry(&result.telemetry),
    }
}

/// Mean received rate inside the capped window (for shape checks).
pub fn capped_window_mean(series: &TimeSeries) -> Option<f64> {
    series.window_mean(SimTime::from_secs(35), SimTime::from_secs(55))
}

/// Mean received rate after recovery.
pub fn recovered_mean(series: &TimeSeries) -> Option<f64> {
    series.window_mean(SimTime::from_secs(70), SimTime::from_secs(80))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gso_fits_just_under_625k_cap_while_non_gso_drops_to_300k() {
        // The paper's headline example: at a 625 Kbps limit GSO sends
        // ~600 Kbps while coarse Non-GSO falls to 300 Kbps.
        let cap = Bitrate::from_kbps(625);
        let gso = run_one(PolicyMode::Gso, cap, 11);
        let non = run_one(PolicyMode::NonGso, cap, 11);
        let g = capped_window_mean(&gso).expect("gso trace");
        let n = capped_window_mean(&non).expect("non-gso trace");
        // Our conservative GCC implementation plus the controller's
        // allocation headroom fill ~65-80% of the cap (the paper's
        // production estimator tracks tighter); the coarse baseline is
        // pinned at its 300 Kbps rung. The figure's shape — a fine rung
        // just under the budget vs a coarse cliff — is what must hold.
        assert!(g > 380_000.0, "GSO should fill most of the cap, got {g}");
        assert!(g < 640_000.0, "GSO must stay under the cap, got {g}");
        assert!(n < 420_000.0, "Non-GSO coarse ladder should drop low, got {n}");
        assert!(g > n * 1.25, "GSO {g} vs non-GSO {n}: utilization gap expected");
    }

    #[test]
    fn gso_run_reports_controller_metrics() {
        let t = run_one_traced(PolicyMode::Gso, Bitrate::from_kbps(625), 11);
        let m = t.controller;
        assert!(m.solves > 0, "controller ran: {m:?}");
        assert!(m.solve_iterations > 0, "solver iterated: {m:?}");
        assert!(m.gtmb_sent > 0, "configs delivered: {m:?}");
        assert_eq!(m.gtmb_failed, 0, "clean links deliver everything: {m:?}");
        assert!(m.churn_layers > 0, "cap change forces layer churn: {m:?}");
        // Baselines run no controller at all.
        let base = run_one_traced(PolicyMode::NonGso, Bitrate::from_kbps(625), 11);
        assert_eq!(base.controller, ControllerMetrics::default());
    }

    #[test]
    fn rates_recover_after_cap_lifts() {
        let cap = Bitrate::from_kbps(500);
        let gso = run_one(PolicyMode::Gso, cap, 12);
        let during = capped_window_mean(&gso).unwrap();
        let after = recovered_mean(&gso).unwrap();
        assert!(after > during * 1.5, "recovery expected: {during} -> {after}");
    }
}
