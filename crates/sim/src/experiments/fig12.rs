//! Fig. 12 — CDF of the controller's call interval.
//!
//! A multi-client GSO conference runs with continuous network churn
//! (link rates stepping up and down), so both the time trigger (3 s max)
//! and the event trigger (bandwidth changes, ≥ 1 s min) exercise. The
//! deployment observes a 1.8 s mean interval between 1 s and 3 s bounds.

use crate::client::PolicyMode;
use crate::scenario::{ClientScenario, Scenario};
use crate::workloads::ladder_for_mode;
use gso_algo::Resolution;
use gso_net::{LinkConfig, Schedule};
use gso_util::stats::Samples;
use gso_util::{Bitrate, ClientId, SimDuration, SimTime};

/// Run the churny conference and return the call-interval samples (seconds).
pub fn fig12(seed: u64, duration_secs: u64) -> Samples {
    let ladder = ladder_for_mode(PolicyMode::Gso);
    let base = Bitrate::from_mbps(4);
    let clients: Vec<ClientScenario> = (1..=4u32)
        .map(|i| {
            let mut c = ClientScenario::clean(ClientId(i), base, base, ladder.clone());
            // Each client's downlink steps between distinct rates on its own
            // cadence, driving bandwidth-change events at the controller.
            let period = 6 + u64::from(i) * 3;
            let mut steps = vec![(SimTime::ZERO, base)];
            let mut t = period;
            let mut low = true;
            while t < duration_secs {
                let rate = if low { Bitrate::from_kbps(400 + 250 * u64::from(i)) } else { base };
                steps.push((SimTime::from_secs(t), rate));
                low = !low;
                t += period;
            }
            c.downlink = LinkConfig::clean(base, SimDuration::from_millis(20))
                .with_rate_schedule(Schedule::steps(steps));
            c
        })
        .collect();
    let mut s = Scenario {
        seed,
        mode: PolicyMode::Gso,
        duration: SimDuration::from_secs(duration_secs),
        clients,
        speaker_schedule: Vec::new(),
        standby: false,
    };
    s.subscribe_all_to_all(Resolution::R720);
    let r = s.run();
    let mut samples = Samples::new();
    for d in &r.controller_intervals {
        samples.push(d.as_secs_f64());
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_within_production_bounds_with_sub_3s_mean() {
        let samples = fig12(21, 120);
        assert!(samples.len() >= 30, "got only {} intervals", samples.len());
        assert!(samples.min() >= 1.0 - 1e-9, "min {}", samples.min());
        // The 100 ms controller tick quantizes the max slightly above 3 s.
        assert!(samples.max() <= 3.2, "max {}", samples.max());
        let mean = samples.mean();
        assert!(
            mean > 1.0 && mean < 3.0,
            "mean interval {mean} should sit between the bounds (paper: 1.8 s)"
        );
    }
}
