//! Fig. 6 — control algorithm performance vs. brute force.
//!
//! * Fig. 6a: vary the number of participants (2–8) at a fixed ladder;
//!   measure GSO and brute-force compute time (normalized) plus GSO's QoE
//!   optimality (GSO QoE / exact optimum QoE).
//! * Fig. 6b: vary the number of bitrate levels (2–8) at 3 participants.
//! * Fig. 6c: large meetings (up to 400 subscribers, 18 levels); GSO only —
//!   brute force is intractable there, exactly as in the paper.
//!
//! Instances are built with *tight uplinks and downlinks* so the exact
//! search cannot shortcut through an unconstrained optimum; the brute-force
//! solver is branch-and-bound (admissible bound + GSO warm start), so its
//! node count still explodes combinatorially with size, while GSO's DP time
//! stays flat.

use gso_algo::{
    brute, ladders, solver, ClientSpec, Problem, Resolution, SolverConfig, SourceId, Subscription,
};

use gso_util::{Bitrate, ClientId};
// detguard: allow(wall-clock, reason = "Fig. 6 measures host solve latency; wall-clock timing is the experiment's output, not simulation state")
use std::time::Instant;

/// One row of the Fig. 6a/6b output.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// The swept value (participants or bitrate levels).
    pub x: usize,
    /// GSO solve time, seconds.
    pub gso_secs: f64,
    /// Naive exhaustive-search time, seconds. Extrapolated from the leaf
    /// count when running it would be impractical (`extrapolated`).
    pub brute_secs: f64,
    /// Search nodes the measured run visited.
    pub brute_nodes: u64,
    /// Naive leaf count (the exponential driver).
    pub leaves: f64,
    /// True if `brute_secs` was projected from leaf counts rather than run.
    pub extrapolated: bool,
    /// Whether the (B&B) exact search completed.
    pub exact: bool,
    /// QoE optimality: GSO / exact optimum (from the B&B search).
    pub optimality: f64,
}

/// One row of the Fig. 6c output.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// (publishers, subscribers, bitrate levels).
    pub shape: (usize, usize, usize),
    /// GSO solve time, seconds.
    pub gso_secs: f64,
    /// Solution QoE (sanity).
    pub qoe: f64,
}

/// A symmetric meeting with constrained links: every client publishes and
/// subscribes to everyone else. Also the building block of the bench
/// harness's multi-conference throughput scenario.
pub fn symmetric_meeting(n: usize, ladder: gso_algo::Ladder) -> Problem {
    // Constrained budgets: the downlink cannot hold everyone at max, and
    // serving every resolution at once presses the uplink — enough to make
    // the exact search do real work without making the decomposition lossy.
    let uplink = Bitrate::from_kbps(1_600);
    let downlink = Bitrate::from_kbps(500 * n as u64);
    let clients: Vec<ClientSpec> = (1..=n as u32)
        .map(|i| ClientSpec::new(ClientId(i), uplink, downlink, ladder.clone()))
        .collect();
    let mut subs = Vec::new();
    for i in 1..=n as u32 {
        for j in 1..=n as u32 {
            if i != j {
                subs.push(Subscription::new(
                    ClientId(i),
                    SourceId::video(ClientId(j)),
                    Resolution::R720,
                ));
            }
        }
    }
    Problem::new(clients, subs).expect("valid meeting")
}

fn time_of<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // detguard: allow(wall-clock, reason = "host-time stopwatch for the Fig. 6 solve-latency benchmark; never feeds back into simulated behaviour")
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Fig. 6a: participants 2–8.
pub fn fig6a(node_budget: Option<u64>) -> Vec<ComparisonRow> {
    let ladder = ladders::uniform(&[Resolution::R180, Resolution::R360, Resolution::R720], 2);
    (2..=8)
        .map(|n| {
            let problem = symmetric_meeting(n, ladder.clone());
            compare(n, &problem, node_budget)
        })
        .collect()
}

/// Fig. 6b: bitrate levels 2–8 at 3 participants.
pub fn fig6b(node_budget: Option<u64>) -> Vec<ComparisonRow> {
    (2..=8)
        .map(|levels| {
            let ladder = ladders::fine(levels);
            let problem = symmetric_meeting(3, ladder);
            compare(levels, &problem, node_budget)
        })
        .collect()
}

/// Above this naive leaf count the naive run is extrapolated instead of
/// executed (the paper likewise notes brute force "becomes intractable").
const NAIVE_LEAF_LIMIT: f64 = 3.0e5;

fn compare(x: usize, problem: &Problem, node_budget: Option<u64>) -> ComparisonRow {
    let cfg = SolverConfig::default();
    let (gso, gso_secs) = time_of(|| solver::solve(problem, &cfg));
    gso.validate(problem).expect("GSO solution valid");

    // Exact optimum from the branch-and-bound search (cheap): the
    // optimality denominator.
    let (bb, _) = time_of(|| brute::solve_brute(problem, &cfg, node_budget));
    bb.solution.validate(problem).expect("exact solution valid");
    let optimality =
        if bb.solution.total_qoe > 0.0 { gso.total_qoe / bb.solution.total_qoe } else { 1.0 };

    // The naive exhaustive search's cost: measured where practical,
    // projected from its leaf count otherwise.
    let leaves = brute::naive_leaf_count(problem);
    let (brute_secs, brute_nodes, extrapolated) = if leaves <= NAIVE_LEAF_LIMIT {
        let (naive, secs) = time_of(|| brute::solve_brute_naive(problem, &cfg, None));
        (secs, naive.nodes, false)
    } else {
        // Per-leaf cost from a trimmed run on the same instance.
        let budget = 50_000u64;
        let (naive, secs) = time_of(|| brute::solve_brute_naive(problem, &cfg, Some(budget)));
        let per_node = secs / naive.nodes.max(1) as f64;
        (per_node * leaves, naive.nodes, true)
    };

    ComparisonRow {
        x,
        gso_secs,
        brute_secs,
        brute_nodes,
        leaves,
        extrapolated,
        exact: bb.exact,
        optimality,
    }
}

/// Fig. 6c: the paper's six large shapes.
pub fn fig6c() -> Vec<ScaleRow> {
    let shapes = [
        (10usize, 50usize, 9usize),
        (10, 50, 18),
        (10, 100, 18),
        (20, 100, 18),
        (10, 200, 18),
        (10, 400, 18),
    ];
    shapes
        .iter()
        .map(|&(pubs, subs, levels)| {
            let problem = asymmetric_meeting(pubs, subs, levels);
            let cfg = SolverConfig::default();
            let (sol, gso_secs) = time_of(|| solver::solve(&problem, &cfg));
            sol.validate(&problem).expect("valid at scale");
            ScaleRow { shape: (pubs, subs, levels), gso_secs, qoe: sol.total_qoe }
        })
        .collect()
}

/// A large switched conference: `pubs` publishers, `subs` receive-only
/// subscribers each subscribing to all publishers.
pub fn asymmetric_meeting(pubs: usize, subs: usize, levels: usize) -> Problem {
    let ladder = if levels == 9 {
        ladders::paper_table1()
    } else {
        ladders::uniform(
            &[Resolution::R180, Resolution::R360, Resolution::R720],
            levels.div_ceil(3),
        )
    };
    let mut clients: Vec<ClientSpec> = (1..=pubs as u32)
        .map(|i| {
            ClientSpec::new(
                ClientId(i),
                Bitrate::from_kbps(2_500),
                Bitrate::from_mbps(10),
                ladder.clone(),
            )
        })
        .collect();
    for j in 0..subs as u32 {
        clients.push(ClientSpec::subscriber_only(
            ClientId(1_000 + j),
            // Heterogeneous downlinks: 1–8 Mbps.
            Bitrate::from_kbps(1_000 + (u64::from(j) * 739) % 7_000),
        ));
    }
    let mut subscriptions = Vec::new();
    for j in 0..subs as u32 {
        for i in 1..=pubs as u32 {
            subscriptions.push(Subscription::new(
                ClientId(1_000 + j),
                SourceId::video(ClientId(i)),
                Resolution::R720,
            ));
        }
    }
    Problem::new(clients, subscriptions).expect("valid large meeting")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_small_sizes_exact_and_near_optimal() {
        let ladder = ladders::uniform(&[Resolution::R180, Resolution::R360, Resolution::R720], 2);
        for n in 2..=4 {
            let p = symmetric_meeting(n, ladder.clone());
            let row = compare(n, &p, None);
            assert!(row.exact, "n={n} should be exactly solvable");
            assert!(
                row.optimality > 0.85 && row.optimality <= 1.0 + 1e-9,
                "n={n}: optimality {}",
                row.optimality
            );
        }
    }

    #[test]
    fn brute_nodes_grow_with_participants() {
        let ladder = ladders::uniform(&[Resolution::R180, Resolution::R360, Resolution::R720], 2);
        let small = compare(2, &symmetric_meeting(2, ladder.clone()), None);
        let large = compare(4, &symmetric_meeting(4, ladder), None);
        assert!(large.leaves > small.leaves * 10.0, "leaves {} -> {}", small.leaves, large.leaves);
        assert!(
            large.brute_secs > small.brute_secs,
            "naive time must grow: {} -> {}",
            small.brute_secs,
            large.brute_secs
        );
    }

    #[test]
    fn fig6c_solves_at_scale_quickly() {
        let p = asymmetric_meeting(10, 100, 18);
        let cfg = SolverConfig::default();
        let (sol, secs) = time_of(|| solver::solve(&p, &cfg));
        sol.validate(&p).unwrap();
        assert!(secs < 5.0, "took {secs}s");
        assert!(sol.total_qoe > 0.0);
    }

    #[test]
    fn subscribers_with_small_downlink_get_small_streams() {
        let p = asymmetric_meeting(4, 8, 9);
        let sol = solver::solve(&p, &SolverConfig::default());
        sol.validate(&p).unwrap();
        // The 1 Mbps subscriber receives something, but not 4×720P.
        let poorest = ClientId(1_000);
        let rate = sol.receive_rate(poorest);
        assert!(rate > Bitrate::ZERO);
        assert!(rate <= Bitrate::from_kbps(1_000));
    }
}
