//! Experiment drivers — one module per table/figure of the paper's
//! evaluation (§5–6). Each returns structured data; the bench targets in
//! `crates/bench` print the regenerated rows/series, and the unit tests here
//! assert the *shape* of each result (who wins, by roughly what factor).

pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
