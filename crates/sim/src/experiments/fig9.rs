//! Fig. 9 — client CPU utilization under the work-unit cost model.
//!
//! Three application scenarios (video conferencing, audio-only conferencing,
//! screen sharing), each run with GSO and Non-GSO, reporting sender-side and
//! receiver-side CPU utilization. The paper's claim is relative: GSO adds
//! < 1 % on the sender and < 2 % on the receiver, and audio is unaffected
//! (it is not orchestrated).

use crate::client::PolicyMode;
use crate::scenario::{ClientScenario, Scenario};
use crate::workloads::ladder_for_mode;
use gso_algo::{Ladder, Resolution, SourceId};
use gso_control::SubscribeIntent;
use gso_util::{Bitrate, ClientId, SimDuration, StreamKind};

/// The application scenario of one bar group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppScenario {
    /// Camera video conference.
    Video,
    /// Audio-only conference.
    Audio,
    /// Screen sharing (camera thumbnails + one shared screen).
    Screen,
}

/// One measured bar pair.
#[derive(Debug, Clone)]
pub struct CpuResult {
    /// The app scenario.
    pub scenario: AppScenario,
    /// System under test.
    pub mode: PolicyMode,
    /// Mean sender-side CPU utilization over clients.
    pub sender: f64,
    /// Mean receiver-side CPU utilization over clients.
    pub receiver: f64,
}

/// Run all three scenarios under both systems.
pub fn fig9(seed: u64, quick: bool) -> Vec<CpuResult> {
    let mut out = Vec::new();
    for scenario in [AppScenario::Video, AppScenario::Audio, AppScenario::Screen] {
        for mode in [PolicyMode::Gso, PolicyMode::NonGso] {
            out.push(run_cpu(scenario, mode, seed, quick));
        }
    }
    out
}

/// Run one (scenario, mode) cell.
pub fn run_cpu(app: AppScenario, mode: PolicyMode, seed: u64, quick: bool) -> CpuResult {
    let rate = Bitrate::from_mbps(4);
    let duration = if quick { SimDuration::from_secs(20) } else { SimDuration::from_secs(60) };
    let ladder = ladder_for_mode(mode);
    let clients: Vec<ClientScenario> = (1..=3u32)
        .map(|i| {
            let mut c = ClientScenario::clean(
                ClientId(i),
                rate,
                rate,
                match app {
                    AppScenario::Audio => Ladder::empty(),
                    _ => ladder.clone(),
                },
            );
            if app == AppScenario::Screen && i == 1 {
                c.screen_ladder = Some(ladder.clone());
            }
            c
        })
        .collect();
    let mut s =
        Scenario { seed, mode, duration, clients, speaker_schedule: Vec::new(), standby: false };
    if app != AppScenario::Audio {
        s.subscribe_all_to_all(Resolution::R720);
    }
    if app == AppScenario::Screen {
        for c in &mut s.clients {
            if c.id != ClientId(1) {
                c.subscriptions.push(SubscribeIntent {
                    source: SourceId { client: ClientId(1), kind: StreamKind::Screen },
                    max_resolution: Resolution::R720,
                    tag: 0,
                });
            }
        }
    }
    let r = s.run();
    let n = r.per_client.len() as f64;
    CpuResult {
        scenario: app,
        mode,
        sender: r.per_client.values().map(|m| m.sender_cpu).sum::<f64>() / n,
        receiver: r.per_client.values().map(|m| m.receiver_cpu).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_cpu_overhead_of_gso_is_small() {
        let gso = run_cpu(AppScenario::Video, PolicyMode::Gso, 3, true);
        let non = run_cpu(AppScenario::Video, PolicyMode::NonGso, 3, true);
        // Fig. 9's claim: GSO's CPU impact is small. In this reproduction
        // GSO can even *save* sender CPU, because the template baseline
        // keeps encoding streams nobody subscribes to (the waste Fig. 3a
        // illustrates); the paper itself credits GSO with "saving bandwidth
        // and CPU costs" (§1). Assert: no more than +1% sender / +2%
        // receiver overhead, savings allowed.
        assert!(gso.sender <= non.sender + 0.01, "sender {} vs {}", gso.sender, non.sender);
        // Receiver-side, GSO may cost more in absolute terms because it
        // delivers *more video* (the baseline under-utilizes, Fig. 3b); the
        // claim that survives is that the overhead stays within a few
        // percent of the device budget.
        assert!(
            gso.receiver <= non.receiver + 0.05,
            "receiver {} vs {}",
            gso.receiver,
            non.receiver
        );
        // Both systems do real work.
        assert!(gso.sender > 0.01 && non.sender > 0.01);
    }

    #[test]
    fn audio_scenario_is_cheap_and_unaffected() {
        let gso = run_cpu(AppScenario::Audio, PolicyMode::Gso, 4, true);
        let non = run_cpu(AppScenario::Audio, PolicyMode::NonGso, 4, true);
        assert!(gso.sender < 0.03, "audio sender {}", gso.sender);
        assert!(
            (gso.sender - non.sender).abs() < 0.005,
            "audio must be unaffected: {} vs {}",
            gso.sender,
            non.sender
        );
    }

    #[test]
    fn screen_share_costs_more_than_audio() {
        let screen = run_cpu(AppScenario::Screen, PolicyMode::Gso, 5, true);
        let audio = run_cpu(AppScenario::Audio, PolicyMode::Gso, 5, true);
        assert!(screen.sender > audio.sender);
        assert!(screen.receiver > audio.receiver);
    }
}
