//! Table 1 — the worked examples of the control algorithm.
//!
//! Rebuilds the paper's three cases (limited downlink, limited uplink,
//! both limited) and returns the final per-client publish configuration in
//! the table's layout, so the bench/example can print the table and tests
//! can assert exact equality with the paper.

use gso_algo::{
    ladders, solver, ClientSpec, Problem, Resolution, SolverConfig, SourceId, Subscription,
};
use gso_util::{Bitrate, ClientId};

/// One client's row: publish bitrate per resolution column (720P/360P/180P).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Client label (A/B/C).
    pub client: char,
    /// Published bitrate at 720P, if any.
    pub r720: Option<Bitrate>,
    /// Published bitrate at 360P, if any.
    pub r360: Option<Bitrate>,
    /// Published bitrate at 180P, if any.
    pub r180: Option<Bitrate>,
}

/// The three cases' bandwidths: (uplink, downlink) Kbps per client A/B/C.
pub const CASES: [[(u64, u64); 3]; 3] = [
    [(5_000, 1_400), (5_000, 3_000), (5_000, 500)],
    [(5_000, 5_000), (600, 5_000), (5_000, 5_000)],
    [(5_000, 5_000), (600, 700), (5_000, 5_000)],
];

/// Build one case's problem with the paper's subscription caps.
pub fn case_problem(case: usize) -> Problem {
    let bw = CASES[case];
    let ladder = ladders::paper_table1();
    let [a, b, c] = [ClientId(1), ClientId(2), ClientId(3)];
    let clients = vec![
        ClientSpec::new(
            a,
            Bitrate::from_kbps(bw[0].0),
            Bitrate::from_kbps(bw[0].1),
            ladder.clone(),
        ),
        ClientSpec::new(
            b,
            Bitrate::from_kbps(bw[1].0),
            Bitrate::from_kbps(bw[1].1),
            ladder.clone(),
        ),
        ClientSpec::new(c, Bitrate::from_kbps(bw[2].0), Bitrate::from_kbps(bw[2].1), ladder),
    ];
    let subs = vec![
        Subscription::new(a, SourceId::video(b), Resolution::R360),
        Subscription::new(a, SourceId::video(c), Resolution::R180),
        Subscription::new(b, SourceId::video(a), Resolution::R720),
        Subscription::new(b, SourceId::video(c), Resolution::R360),
        Subscription::new(c, SourceId::video(b), Resolution::R360),
        Subscription::new(c, SourceId::video(a), Resolution::R720),
    ];
    Problem::new(clients, subs).expect("valid Table 1 case")
}

/// Solve one case and lay the result out as table rows.
pub fn solve_case(case: usize) -> Vec<Table1Row> {
    let problem = case_problem(case);
    let solution = solver::solve(&problem, &SolverConfig::default());
    solution.validate(&problem).expect("Table 1 solution valid");
    ['A', 'B', 'C']
        .iter()
        .enumerate()
        .map(|(i, &label)| {
            let policies = solution.policies(SourceId::video(ClientId(i as u32 + 1)));
            let at =
                |res: Resolution| policies.iter().find(|p| p.resolution == res).map(|p| p.bitrate);
            Table1Row {
                client: label,
                r720: at(Resolution::R720),
                r360: at(Resolution::R360),
                r180: at(Resolution::R180),
            }
        })
        .collect()
}

/// The paper's published final solutions, for verification.
pub fn paper_rows(case: usize) -> Vec<Table1Row> {
    let k = |v: u64| Some(Bitrate::from_kbps(v));
    match case {
        0 => vec![
            Table1Row { client: 'A', r720: k(1_500), r360: k(400), r180: None },
            Table1Row { client: 'B', r720: None, r360: k(800), r180: k(100) },
            Table1Row { client: 'C', r720: None, r360: k(800), r180: k(300) },
        ],
        1 => vec![
            Table1Row { client: 'A', r720: k(1_500), r360: None, r180: None },
            Table1Row { client: 'B', r720: None, r360: k(600), r180: None },
            Table1Row { client: 'C', r720: None, r360: k(800), r180: k(300) },
        ],
        2 => vec![
            Table1Row { client: 'A', r720: k(1_500), r360: k(400), r180: None },
            Table1Row { client: 'B', r720: None, r360: k(600), r180: None },
            Table1Row { client: 'C', r720: None, r360: None, r180: k(300) },
        ],
        _ => panic!("Table 1 has three cases"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_cases_match_the_paper_exactly() {
        for case in 0..3 {
            assert_eq!(solve_case(case), paper_rows(case), "case {}", case + 1);
        }
    }
}
