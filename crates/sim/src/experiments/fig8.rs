//! Fig. 8 — slow-link tests across the Table 2 impairment matrix.
//!
//! For each of the 15 cases (normal + 14 impairments) and each of the four
//! systems (GSO, Non-GSO, Competitor 1, Competitor 2), a 3-client meeting
//! runs with the impairment on client 1's link; the figure reports
//! normalized framerate, video quality and video stall averaged over the
//! conference.

use crate::client::PolicyMode;
use crate::workloads::{slow_link_cases, slow_link_scenario, SlowLinkCase};

/// The four systems of the figure, in its legend order.
pub const SYSTEMS: [PolicyMode; 4] =
    [PolicyMode::Gso, PolicyMode::NonGso, PolicyMode::Competitor1, PolicyMode::Competitor2];

/// One (case, system) measurement.
#[derive(Debug, Clone)]
pub struct SlowLinkResult {
    /// The impairment case.
    pub case: SlowLinkCase,
    /// The system under test.
    pub mode: PolicyMode,
    /// Mean rendered framerate.
    pub framerate: f64,
    /// Mean VMAF-proxy quality.
    pub quality: f64,
    /// Mean video stall rate.
    pub video_stall: f64,
    /// Mean voice stall rate.
    pub voice_stall: f64,
}

/// Run the full matrix (15 cases × 4 systems). With `quick`, sessions are
/// shortened (used by tests); the bench uses full-length runs.
pub fn fig8(seed: u64, quick: bool) -> Vec<SlowLinkResult> {
    let mut out = Vec::new();
    for case in slow_link_cases() {
        for mode in SYSTEMS {
            out.push(run_case(mode, case, seed, quick));
        }
    }
    out
}

/// Run one (mode, case) cell.
pub fn run_case(mode: PolicyMode, case: SlowLinkCase, seed: u64, quick: bool) -> SlowLinkResult {
    let mut scenario = slow_link_scenario(mode, case, seed);
    if quick {
        scenario.duration = gso_util::SimDuration::from_secs(30);
    }
    let r = scenario.run();
    SlowLinkResult {
        case,
        mode,
        framerate: r.mean_framerate(),
        quality: mean(r.per_client.values().map(|m| m.quality)),
        video_stall: r.mean_video_stall(),
        voice_stall: r.mean_voice_stall(),
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Direction, Impairment};
    use gso_util::Bitrate;

    fn case(name: &str) -> SlowLinkCase {
        slow_link_cases().into_iter().find(|c| c.name == name).expect("case exists")
    }

    #[test]
    fn normal_case_is_healthy_for_gso() {
        let r = run_case(PolicyMode::Gso, case("normal"), 5, true);
        assert!(r.framerate > 12.0, "framerate {}", r.framerate);
        assert!(r.video_stall < 0.1, "stall {}", r.video_stall);
        assert!(r.quality > 30.0, "quality {}", r.quality);
    }

    #[test]
    fn gso_beats_non_gso_under_downlink_cap() {
        let c = case("down-0.5M");
        let gso = run_case(PolicyMode::Gso, c, 6, true);
        let non = run_case(PolicyMode::NonGso, c, 6, true);
        // GSO's fine ladder fits the capped link; the coarse baseline
        // oscillates/starves.
        assert!(
            gso.video_stall <= non.video_stall + 1e-9,
            "gso stall {} vs non {}",
            gso.video_stall,
            non.video_stall
        );
        assert!(
            gso.quality >= non.quality * 0.95,
            "gso q {} vs non q {}",
            gso.quality,
            non.quality
        );
    }

    #[test]
    fn competitor2_suffers_on_slow_downlink() {
        // The single-stream passthrough ignores the subscriber's downlink —
        // the raw slow-link problem.
        let c = SlowLinkCase {
            name: "down-0.5M",
            direction: Direction::Downlink,
            impairment: Impairment::BandwidthLimit(Bitrate::from_kbps(500)),
        };
        let gso = run_case(PolicyMode::Gso, c, 7, true);
        let comp = run_case(PolicyMode::Competitor2, c, 7, true);
        assert!(
            comp.video_stall > gso.video_stall,
            "competitor2 stall {} should exceed gso {}",
            comp.video_stall,
            gso.video_stall
        );
    }
}
