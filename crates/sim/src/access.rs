//! The accessing node (media-plane SFU).
//!
//! Terminates clients' media, generates transport feedback for their
//! uplinks, estimates each subscriber's downlink with a sender-side BWE
//! (probing when app-limited), selectively forwards simulcast layers with
//! keyframe-aligned switching, relays control traffic to/from the
//! conference node, and — in baseline modes — runs the local selection
//! policy instead of controller rules.

use crate::client::PolicyMode;
use crate::ctrl::{ClientSnapshot, CtrlMessage};
use gso_algo::{Ladder, SourceId};
use gso_bwe::TwccGenerator;
use gso_bwe::{
    BweConfig, ProbeConfig, ProbeController, SembConfig, SembScheduler, SendHistory, SenderBwe,
};
use gso_control::SubscribeIntent;
use gso_media::FragmentHeader;
use gso_net::{Actions, Node, NodeId, Packet};
use gso_rtp::{decode_ssrc, epoch_newer, ssrc_for, RtcpPacket, RtpPacket};
use gso_sfu::{
    LargestFitSelector, LayerSwitcher, OfferedLayer, PassthroughSelector, StreamSelector,
    TwoLevelSelector,
};
use gso_telemetry::{keys, Telemetry};
use gso_util::{Bitrate, ClientId, SimDuration, SimTime, Ssrc, StreamKind};
use std::any::Any;
use std::collections::BTreeMap;

const FAST_TICK: u64 = 1;
const SLOW_TICK: u64 = 2;
const FAST_INTERVAL: SimDuration = SimDuration::from_millis(100);
const SLOW_INTERVAL: SimDuration = SimDuration::from_millis(500);

/// Per-subscriber downlink path state.
struct DownPath {
    endpoint: NodeId,
    history: SendHistory,
    bwe: SenderBwe,
    probes: ProbeController,
    reporter: SembScheduler,
    probe_seq: u16,
    bytes_window: u64,
}

impl DownPath {
    fn new(endpoint: NodeId) -> Self {
        DownPath {
            endpoint,
            history: SendHistory::new(),
            bwe: SenderBwe::new(BweConfig::default()),
            probes: ProbeController::new(ProbeConfig::default()),
            reporter: SembScheduler::new(SembConfig::default()),
            probe_seq: 0,
            bytes_window: 0,
        }
    }
}

/// Layer liveness/rate tracking for the local (baseline) policies.
#[derive(Debug, Default, Clone, Copy)]
struct LayerRate {
    bytes_window: u64,
    rate: Bitrate,
}

/// The accessing node.
pub struct AccessNode {
    mode: PolicyMode,
    conference: Option<NodeId>,
    /// Epoch of the controller this node follows. Epoch-stamped CN → AN
    /// traffic (rules, config pushes, resyncs) is accepted only from the
    /// followed controller at this epoch — or from *any* node at a newer
    /// epoch, which re-homes the node to it (standby promotion). Stale
    /// traffic is fenced and answered with [`CtrlMessage::Fence`], so a
    /// zombie controller on the wrong side of a partition can never
    /// rewrite forwarding state (split-brain safety, §7).
    ctrl_epoch: u32,
    /// Attached clients and their network endpoints.
    clients: BTreeMap<ClientId, NodeId>,
    endpoint_to_client: BTreeMap<NodeId, ClientId>,
    /// Clients served by peer accessing nodes, and the peer that serves
    /// each (the media-plane mesh of §3).
    remote_clients: BTreeMap<ClientId, NodeId>,
    /// Relay routes for locally-published streams toward peer nodes, with
    /// per-link deduplication.
    relay: gso_sfu::RelayTable,
    twcc_up: BTreeMap<ClientId, TwccGenerator>,
    down: BTreeMap<ClientId, DownPath>,
    /// (subscriber, source, tag) → layer switcher.
    switchers: BTreeMap<(ClientId, SourceId, u8), LayerSwitcher>,
    /// Subscriptions as signaled (used by baseline selection and audio
    /// fan-out).
    subs: BTreeMap<ClientId, Vec<SubscribeIntent>>,
    /// Negotiated ladders, cached from SDP offers / joins passing through,
    /// so a restarted controller can resync without re-negotiating.
    client_ladders: BTreeMap<ClientId, Vec<(StreamKind, Ladder)>>,
    /// Last SEMB uplink estimate relayed per client (also for resync).
    last_uplink: BTreeMap<ClientId, Bitrate>,
    /// When set, periodic downlink reports toward the conference node are
    /// suppressed (chaos: BWE feedback blackout).
    report_blackout: bool,
    /// Observed publisher layers.
    layer_rates: BTreeMap<Ssrc, LayerRate>,
    last_slow: SimTime,
    started: bool,
    /// Metrics sink (disabled by default; see `gso-telemetry`).
    telemetry: Telemetry,
}

impl AccessNode {
    /// Build an accessing node. `conference` is required in GSO mode.
    pub fn new(mode: PolicyMode, conference: Option<NodeId>) -> Self {
        AccessNode {
            mode,
            conference,
            ctrl_epoch: 0,
            clients: BTreeMap::new(),
            endpoint_to_client: BTreeMap::new(),
            remote_clients: BTreeMap::new(),
            relay: gso_sfu::RelayTable::new(),
            twcc_up: BTreeMap::new(),
            down: BTreeMap::new(),
            switchers: BTreeMap::new(),
            subs: BTreeMap::new(),
            client_ladders: BTreeMap::new(),
            last_uplink: BTreeMap::new(),
            report_blackout: false,
            layer_rates: BTreeMap::new(),
            last_slow: SimTime::ZERO,
            started: false,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a metrics registry; also wires the per-subscriber downlink
    /// estimators (existing and future) with `down:<client>` labels.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        for (client, path) in &mut self.down {
            path.bwe.set_telemetry(self.telemetry.clone(), format!("down:{client}"));
        }
    }

    /// Register an attached client endpoint (done by the scenario builder).
    pub fn attach(&mut self, client: ClientId, endpoint: NodeId) {
        self.clients.insert(client, endpoint);
        self.endpoint_to_client.insert(endpoint, client);
        self.twcc_up.insert(client, TwccGenerator::new());
        let mut path = DownPath::new(endpoint);
        path.bwe.set_telemetry(self.telemetry.clone(), format!("down:{client}"));
        self.down.insert(client, path);
    }

    /// Register a client served by a peer accessing node; media for it is
    /// relayed through that peer.
    pub fn attach_remote(&mut self, client: ClientId, peer: NodeId) {
        self.remote_clients.insert(client, peer);
    }

    fn is_peer(&self, node: NodeId) -> bool {
        self.remote_clients.values().any(|&p| p == node)
    }

    /// Downlink estimate for a client (for tests/metrics).
    pub fn downlink_estimate(&self, client: ClientId) -> Option<Bitrate> {
        self.down.get(&client).map(|d| d.bwe.estimate())
    }

    /// Suppress (or restore) downlink reports toward the conference node —
    /// the server-side half of a BWE feedback blackout fault.
    pub fn set_report_blackout(&mut self, on: bool) {
        self.report_blackout = on;
    }

    /// Snapshot of every locally-attached client's cached state, for
    /// controller resync after a restart.
    fn snapshot(&self) -> Vec<ClientSnapshot> {
        self.clients
            .keys()
            .map(|&client| ClientSnapshot {
                client,
                ladders: self.client_ladders.get(&client).cloned().unwrap_or_default(),
                intents: self.subs.get(&client).cloned().unwrap_or_default(),
                uplink: self.last_uplink.get(&client).copied().unwrap_or(Bitrate::ZERO),
                downlink: self.down.get(&client).map_or(Bitrate::ZERO, |d| d.bwe.estimate()),
            })
            .collect()
    }

    /// Kick off periodic timers.
    pub fn schedule_boot(node: NodeId, sim: &mut gso_net::Simulator) {
        sim.schedule_timer(node, SimTime::ZERO, FAST_TICK);
        sim.schedule_timer(node, SimTime::ZERO, SLOW_TICK);
    }

    fn forward_to(
        &mut self,
        now: SimTime,
        subscriber: ClientId,
        pkt: &RtpPacket,
        out: &mut Actions,
    ) {
        let Some(path) = self.down.get_mut(&subscriber) else { return };
        path.history.record(pkt.ssrc, pkt.sequence, now, pkt.wire_len() + 28, false);
        path.bytes_window += pkt.wire_len() as u64;
        self.telemetry.add(keys::SFU_FORWARDED_BYTES, subscriber, pkt.wire_len() as u64);
        out.send(path.endpoint, Packet::new(pkt.serialize()));
    }

    fn handle_rtp(
        &mut self,
        now: SimTime,
        from: ClientId,
        from_local: bool,
        pkt: RtpPacket,
        out: &mut Actions,
    ) {
        if from_local {
            if let Some(twcc) = self.twcc_up.get_mut(&from) {
                twcc.on_packet(now, pkt.ssrc, pkt.sequence);
            }
        }
        if pkt.payload_type == 127 {
            return; // probe padding terminates here
        }
        let Some((publisher, kind, _lines)) = decode_ssrc(pkt.ssrc) else { return };
        if publisher != from {
            return; // spoofed SSRC
        }
        match kind {
            StreamKind::Audio => {
                // Audio fans out to every *local* subscriber of this
                // publisher; for remote subscribers, relay once per peer.
                let targets: Vec<ClientId> = self
                    .subs
                    .iter()
                    .filter(|(&sub, intents)| {
                        sub != publisher
                            && self.clients.contains_key(&sub)
                            && intents.iter().any(|i| i.source.client == publisher)
                    })
                    .map(|(&sub, _)| sub)
                    .collect();
                for sub in targets {
                    self.forward_to(now, sub, &pkt, out);
                }
                if from_local {
                    let peers: std::collections::BTreeSet<NodeId> = self
                        .subs
                        .iter()
                        .filter(|(&sub, intents)| {
                            sub != publisher && intents.iter().any(|i| i.source.client == publisher)
                        })
                        .filter_map(|(&sub, _)| self.remote_clients.get(&sub).copied())
                        .collect();
                    for peer in peers {
                        out.send(peer, Packet::new(pkt.serialize()));
                    }
                }
            }
            StreamKind::Video | StreamKind::Screen => {
                self.layer_rates.entry(pkt.ssrc).or_default().bytes_window += pkt.wire_len() as u64;
                let keyframe_start = FragmentHeader::parse(&pkt.payload)
                    .is_some_and(|h| h.keyframe && h.frag_index == 0);
                let source = SourceId { client: publisher, kind };
                let mut targets: Vec<ClientId> = Vec::new();
                for ((sub, _, _), sw) in
                    self.switchers.iter_mut().filter(|((_, src, _), _)| *src == source)
                {
                    let forward = sw.should_forward_at(pkt.ssrc, keyframe_start, now);
                    // A pending switch that just landed on this keyframe
                    // reports its request->landing latency.
                    if let Some(latency) = sw.take_switch_latency() {
                        self.telemetry.observe(
                            keys::SFU_SWITCH_LATENCY_US,
                            sub,
                            latency.as_micros(),
                            keys::LATENCY_US_BOUNDS,
                        );
                        self.telemetry.event(
                            now,
                            keys::EV_SWITCH_LANDED,
                            format!("{sub} -> {} after {latency}", pkt.ssrc),
                        );
                    }
                    if forward {
                        targets.push(*sub);
                    } else {
                        // Bytes of this source withheld from the subscriber
                        // (other layers, or a switch waiting for a keyframe).
                        self.telemetry.add(keys::SFU_DROPPED_BYTES, sub, pkt.wire_len() as u64);
                    }
                }
                for sub in targets {
                    self.forward_to(now, sub, &pkt, out);
                }
                // Relay locally-published streams to peer nodes whose
                // subscribers need them — once per peer link, however many
                // remote subscribers sit behind it.
                if from_local {
                    for target in self.relay.targets(pkt.ssrc) {
                        if let gso_sfu::RelayTarget::Peer(peer) = target {
                            out.send(NodeId(peer), Packet::new(pkt.serialize()));
                        }
                    }
                }
            }
        }
    }

    fn handle_rtcp(&mut self, now: SimTime, from: ClientId, data: bytes::Bytes, out: &mut Actions) {
        let Ok(packets) = RtcpPacket::parse_compound(data) else { return };
        // Feedback for all streams of this downlink is merged and fed to the
        // estimator once, in send order — per-stream slices would confuse
        // the delay-trend filter (time would jump backwards between streams)
        // and measure per-stream instead of per-path throughput.
        let mut feedback_results = Vec::new();
        for p in packets {
            match p {
                RtcpPacket::TransportFeedback(fb) => {
                    if let Some(path) = self.down.get_mut(&from) {
                        feedback_results.extend(path.history.resolve(fb.sender_ssrc, &fb));
                    }
                }
                RtcpPacket::Nack(nack) => {
                    // Relay the retransmission request toward the publisher:
                    // directly if local, via the hosting peer otherwise.
                    if let Some((publisher, _, _)) = decode_ssrc(nack.media_ssrc) {
                        let dest = self
                            .clients
                            .get(&publisher)
                            .or_else(|| self.remote_clients.get(&publisher))
                            .copied();
                        if let Some(dest) = dest {
                            out.send(
                                dest,
                                Packet::new(RtcpPacket::serialize_compound(&[RtcpPacket::Nack(
                                    nack,
                                )])),
                            );
                        }
                    }
                }
                RtcpPacket::Semb(semb) => {
                    self.last_uplink.insert(from, semb.bitrate);
                    if let (PolicyMode::Gso, Some(cn)) = (self.mode, self.conference) {
                        out.send(
                            cn,
                            Packet::new(
                                CtrlMessage::UplinkReport { client: from, bitrate: semb.bitrate }
                                    .serialize(),
                            ),
                        );
                    }
                }
                RtcpPacket::GsoTmmbn(ack) => {
                    if let Some(cn) = self.conference {
                        out.send(
                            cn,
                            Packet::new(
                                CtrlMessage::AckRelay {
                                    client: from,
                                    rtcp: RtcpPacket::serialize_compound(&[RtcpPacket::GsoTmmbn(
                                        ack,
                                    )]),
                                }
                                .serialize(),
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
        if !feedback_results.is_empty() {
            feedback_results.sort_by_key(|r| r.sent_at);
            if let Some(path) = self.down.get_mut(&from) {
                path.bwe.on_feedback(now, &feedback_results);
            }
        }
    }

    /// Epoch gate for CN → AN control traffic. Returns `true` when the
    /// message must be dropped: the sender's epoch is older than the one we
    /// follow (or equal but from a node we do not follow), i.e. a fenced
    /// zombie. A strictly newer epoch re-homes this node to the sender —
    /// that is how a promoted standby captures the access layer. Fenced
    /// senders are told the live epoch so they can step down.
    fn fenced(&mut self, from: NodeId, epoch: u32, out: &mut Actions) -> bool {
        if epoch == self.ctrl_epoch && self.conference.is_none_or(|cn| cn == from) {
            // Current epoch from the controller we follow (or the first
            // controller we hear from at all).
            self.conference = Some(from);
            return false;
        }
        if epoch_newer(epoch, self.ctrl_epoch) {
            self.ctrl_epoch = epoch;
            self.conference = Some(from);
            return false;
        }
        self.telemetry.incr(keys::CLUSTER_FENCED, "s0");
        out.send(from, Packet::new(CtrlMessage::Fence { epoch: self.ctrl_epoch }.serialize()));
        true
    }

    fn handle_ctrl(&mut self, now: SimTime, from: NodeId, msg: CtrlMessage, out: &mut Actions) {
        let from_client = self.endpoint_to_client.get(&from).copied();
        match msg {
            // Client → CN signaling, recorded locally for baseline policy,
            // audio fan-out and controller resync, then relayed.
            CtrlMessage::Join { client, ref ladders } => {
                self.client_ladders.insert(client, ladders.clone());
                if let Some(cn) = self.conference {
                    out.send(cn, Packet::new(msg.serialize()));
                }
            }
            CtrlMessage::SdpOffer { client, ref sdp } => {
                if let Ok(offer) = gso_control::SdpOffer::parse(sdp) {
                    self.client_ladders.insert(client, offer.ladders);
                }
                if let Some(cn) = self.conference {
                    out.send(cn, Packet::new(msg.serialize()));
                }
            }
            CtrlMessage::Leave { client } => {
                self.client_ladders.remove(&client);
                self.last_uplink.remove(&client);
                if let Some(cn) = self.conference {
                    out.send(cn, Packet::new(msg.serialize()));
                }
            }
            CtrlMessage::SdpAnswer { client, .. } => {
                if let Some(&endpoint) = self.clients.get(&client) {
                    out.send(endpoint, Packet::new(msg.serialize()));
                }
            }
            CtrlMessage::Subscribe { client, ref intents } => {
                self.subs.insert(client, intents.clone());
                if let Some(cn) = self.conference {
                    out.send(cn, Packet::new(msg.serialize()));
                }
            }
            CtrlMessage::KeyframeRequest { source } => {
                // From a subscriber (or a peer relaying one); deliver to the
                // publisher's endpoint or to the peer that hosts it.
                let dest = self
                    .clients
                    .get(&source.client)
                    .or_else(|| self.remote_clients.get(&source.client))
                    .copied();
                if let Some(dest) = dest {
                    if dest != from {
                        out.send(
                            dest,
                            Packet::new(CtrlMessage::KeyframeRequest { source }.serialize()),
                        );
                    }
                }
            }
            // CN → AN — all epoch-stamped and fenced against stale writers.
            CtrlMessage::ResyncRequest { epoch } => {
                if self.fenced(from, epoch, out) {
                    return;
                }
                // A restarted (or freshly promoted) controller rebuilds its
                // picture from our cached view of the attached clients (§7).
                out.send(
                    from,
                    Packet::new(CtrlMessage::ResyncState { clients: self.snapshot() }.serialize()),
                );
            }
            CtrlMessage::ConfigPush { epoch, client, rtcp } => {
                if self.fenced(from, epoch, out) {
                    return;
                }
                if let Some(&endpoint) = self.clients.get(&client) {
                    out.send(endpoint, Packet::new(rtcp));
                }
            }
            CtrlMessage::Rules { epoch, rules } => {
                if self.fenced(from, epoch, out) {
                    return;
                }
                // Full replacement: local switchers serve locally-attached
                // subscribers; relay routes carry locally-published streams
                // to the peers whose subscribers need them.
                let mut covered: Vec<(ClientId, SourceId, u8)> = Vec::new();
                let mut keyframe_needed: std::collections::BTreeSet<SourceId> =
                    std::collections::BTreeSet::new();
                self.relay = gso_sfu::RelayTable::new();
                for r in &rules {
                    if self.clients.contains_key(&r.subscriber) {
                        let key = (r.subscriber, r.source, r.tag);
                        covered.push(key);
                        let sw = self.switchers.entry(key).or_default();
                        sw.request_at(Some(r.ssrc), now);
                        // A pending switch would otherwise wait a whole GoP
                        // for the target layer's next keyframe; ask the
                        // publisher to produce one now.
                        if sw.pending().is_some() {
                            keyframe_needed.insert(r.source);
                        }
                    } else if self.clients.contains_key(&r.source.client) {
                        if let Some(&peer) = self.remote_clients.get(&r.subscriber) {
                            self.relay.subscribe(r.ssrc, gso_sfu::RelayTarget::Peer(peer.0));
                        }
                    }
                }
                for (key, sw) in self.switchers.iter_mut() {
                    if !covered.contains(key) {
                        sw.request_at(None, now);
                    }
                }
                for source in keyframe_needed {
                    let dest = self
                        .clients
                        .get(&source.client)
                        .or_else(|| self.remote_clients.get(&source.client))
                        .copied();
                    if let Some(dest) = dest {
                        out.send(
                            dest,
                            Packet::new(CtrlMessage::KeyframeRequest { source }.serialize()),
                        );
                    }
                }
            }
            _ => {
                let _ = from_client;
            }
        }
    }

    /// Baseline-mode local selection (the fragmented view of §2.3).
    ///
    /// Like any competent SFU, a pending layer switch asks the publisher for
    /// a keyframe so the splice completes quickly — the baseline's handicap
    /// is its fragmented view and coarse ladder, not broken switching.
    fn apply_local_policy(&mut self, now: SimTime, out: &mut Actions) {
        if self.mode == PolicyMode::Gso {
            return;
        }
        let mut keyframe_needed: std::collections::BTreeSet<SourceId> =
            std::collections::BTreeSet::new();
        let selector: Box<dyn StreamSelector> = match self.mode {
            PolicyMode::NonGso => Box::new(LargestFitSelector::default()),
            PolicyMode::Competitor1 => Box::new(TwoLevelSelector),
            PolicyMode::Competitor2 => Box::new(PassthroughSelector),
            PolicyMode::Gso => unreachable!(),
        };
        let subs: Vec<(ClientId, Vec<SubscribeIntent>)> =
            self.subs.iter().map(|(&c, i)| (c, i.clone())).collect();
        for (subscriber, intents) in subs {
            let video_intents: Vec<&SubscribeIntent> = intents
                .iter()
                .filter(|i| i.source.kind != StreamKind::Audio && i.tag == 0)
                .collect();
            if video_intents.is_empty() {
                continue;
            }
            let budget_total = self
                .down
                .get(&subscriber)
                .map_or(Bitrate::ZERO, |d| d.bwe.estimate())
                .saturating_sub(gso_media::AUDIO_PROTECTION);
            // The local policy splits the budget evenly — it has no global
            // view to do better (stream competition, Fig. 3c).
            let per_pub = Bitrate::from_bps(budget_total.as_bps() / video_intents.len() as u64);
            for intent in video_intents {
                let source = intent.source;
                let layers: Vec<OfferedLayer> = self
                    .layer_rates
                    .iter()
                    .filter_map(|(&ssrc, lr)| {
                        let (publisher, kind, lines) = decode_ssrc(ssrc)?;
                        (publisher == source.client
                            && kind == source.kind
                            && lines <= intent.max_resolution.0
                            && !lr.rate.is_zero())
                        .then_some(OfferedLayer { ssrc, resolution_lines: lines, bitrate: lr.rate })
                    })
                    .collect();
                let mut sorted = layers;
                sorted.sort_by_key(|l| l.bitrate);
                let sw = self.switchers.entry((subscriber, source, intent.tag)).or_default();
                // Switching dead-band (every real SFU has one): keep the
                // current layer while it still fits; upgrade only to a layer
                // that fits *comfortably* (25 % slack). Without this, a
                // budget sitting near a layer boundary flaps the selection
                // every evaluation, and each flap costs a keyframe splice.
                let current_layer =
                    sw.current().and_then(|cur| sorted.iter().find(|l| l.ssrc == cur).copied());
                let current_fits = current_layer.is_some_and(|l| l.bitrate <= per_pub);
                let choice = if current_fits {
                    let comfortable = selector.select(&sorted, per_pub.mul_f64(0.75));
                    match (comfortable, current_layer) {
                        (Some(up), Some(cur)) => {
                            let up_rate = sorted
                                .iter()
                                .find(|l| l.ssrc == up)
                                .map_or(Bitrate::ZERO, |l| l.bitrate);
                            if up_rate > cur.bitrate {
                                Some(up)
                            } else {
                                Some(cur.ssrc)
                            }
                        }
                        _ => current_layer.map(|l| l.ssrc),
                    }
                } else {
                    selector.select(&sorted, per_pub)
                };
                sw.request_at(choice, now);
                if sw.pending().is_some() {
                    keyframe_needed.insert(source);
                }
            }
        }
        for source in keyframe_needed {
            if let Some(&endpoint) = self.clients.get(&source.client) {
                out.send(
                    endpoint,
                    Packet::new(CtrlMessage::KeyframeRequest { source }.serialize()),
                );
            }
        }
    }

    fn emit_downlink_probe(
        path: &mut DownPath,
        now: SimTime,
        cluster: gso_bwe::ProbeCluster,
        out: &mut Actions,
    ) {
        let bytes = cluster.target_rate.bytes_in(cluster.duration);
        // Short burst (§7: probing redundancy must be carefully bounded):
        // enough packets to measure line rate, few enough not to push the
        // bottleneck queue into dropping media.
        let count = (bytes / 1200).clamp(5, 15);
        // Probe padding uses a reserved pseudo-client id.
        let ssrc = ssrc_for(ClientId(0xFFFF), StreamKind::Video, 16);
        for _ in 0..count {
            let seq = path.probe_seq;
            path.probe_seq = path.probe_seq.wrapping_add(1);
            let pkt = RtpPacket {
                marker: false,
                payload_type: 127,
                sequence: seq,
                timestamp: 0,
                ssrc,
                payload: bytes::Bytes::from(vec![0u8; 1172]),
            };
            path.history.record(pkt.ssrc, pkt.sequence, now, pkt.wire_len() + 28, true);
            out.send(path.endpoint, Packet::new(pkt.serialize()));
        }
    }
}

impl Node for AccessNode {
    fn on_packet(&mut self, now: SimTime, from: NodeId, packet: Packet, out: &mut Actions) {
        let data = packet.data;
        if data.is_empty() {
            return;
        }
        if CtrlMessage::is_ctrl(&data) {
            if let Some(msg) = CtrlMessage::parse(data) {
                self.handle_ctrl(now, from, msg, out);
            }
            return;
        }
        match self.endpoint_to_client.get(&from).copied() {
            Some(client) => {
                if data.len() >= 2 && (200..=206).contains(&data[1]) {
                    self.handle_rtcp(now, client, data, out);
                } else if let Ok(pkt) = RtpPacket::parse(data) {
                    self.handle_rtp(now, client, true, pkt, out);
                }
            }
            None if self.is_peer(from) => {
                // Media relayed from a peer node: forward to local
                // subscribers (never re-relayed — single-hop mesh).
                if data.len() >= 2 && (200..=206).contains(&data[1]) {
                    // RTCP from a peer: NACKs relayed toward a local
                    // publisher.
                    if let Ok(packets) = RtcpPacket::parse_compound(data) {
                        for p in packets {
                            if let RtcpPacket::Nack(nack) = p {
                                if let Some((publisher, _, _)) = decode_ssrc(nack.media_ssrc) {
                                    if let Some(&endpoint) = self.clients.get(&publisher) {
                                        out.send(
                                            endpoint,
                                            Packet::new(RtcpPacket::serialize_compound(&[
                                                RtcpPacket::Nack(nack),
                                            ])),
                                        );
                                    }
                                }
                            }
                        }
                    }
                } else if let Ok(pkt) = RtpPacket::parse(data) {
                    if let Some((publisher, _, _)) = decode_ssrc(pkt.ssrc) {
                        self.handle_rtp(now, publisher, false, pkt, out);
                    }
                }
            }
            None => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Actions) {
        match token {
            FAST_TICK => {
                if !self.started {
                    self.started = true;
                    self.last_slow = now;
                }
                // Uplink transport feedback toward each client.
                let clients: Vec<ClientId> = self.clients.keys().copied().collect();
                for client in clients {
                    let fbs = self
                        .twcc_up
                        .get_mut(&client)
                        .map(gso_bwe::TwccGenerator::poll)
                        .unwrap_or_default();
                    if fbs.is_empty() {
                        continue;
                    }
                    let rtcp: Vec<RtcpPacket> =
                        fbs.into_iter().map(|(_, fb)| RtcpPacket::TransportFeedback(fb)).collect();
                    let endpoint = self.clients[&client];
                    out.send(endpoint, Packet::new(RtcpPacket::serialize_compound(&rtcp)));
                }
                out.timer_in(now, FAST_INTERVAL, FAST_TICK);
            }
            SLOW_TICK => {
                let dt = now.saturating_since(self.last_slow).as_secs_f64().max(1e-9);
                self.last_slow = now;
                // Update observed layer rates (with decay to zero).
                for lr in self.layer_rates.values_mut() {
                    lr.rate = Bitrate::from_bps((lr.bytes_window as f64 * 8.0 / dt) as u64);
                    lr.bytes_window = 0;
                }

                // Downlink reports to the conference node + probing.
                let clients: Vec<ClientId> = self.down.keys().copied().collect();
                for client in clients {
                    let path = self.down.get_mut(&client).expect("present");
                    let estimate = path.bwe.estimate();
                    let sent_rate = path.bytes_window as f64 * 8.0 / dt;
                    path.bytes_window = 0;
                    let app_limited = sent_rate < 0.7 * estimate.as_bps() as f64;
                    let want_probe = app_limited || path.bwe.needs_validation();
                    if let Some(cluster) = path.probes.poll(now, estimate, want_probe) {
                        Self::emit_downlink_probe(path, now, cluster, out);
                    }
                    path.history.prune(now);
                    if self.mode == PolicyMode::Gso {
                        if let Some(report) = path.reporter.poll(now, estimate) {
                            // During a blackout the scheduler still advances
                            // (reports resume on cadence), but nothing is
                            // sent.
                            if let (false, Some(cn)) = (self.report_blackout, self.conference) {
                                out.send(
                                    cn,
                                    Packet::new(
                                        CtrlMessage::DownlinkReport { client, bitrate: report }
                                            .serialize(),
                                    ),
                                );
                            }
                        }
                    }
                }

                self.apply_local_policy(now, out);
                out.timer_in(now, SLOW_INTERVAL, SLOW_TICK);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::CtrlMessage;
    use gso_control::ForwardingRule;
    use gso_media::{frame, EncodedFrame};
    use gso_net::Node;
    use gso_rtp::{GsoTmmbn, Semb};
    use gso_util::SimTime;

    fn an_with_two_clients() -> (AccessNode, NodeId, NodeId, NodeId) {
        let cn = NodeId(0);
        let mut an = AccessNode::new(PolicyMode::Gso, Some(cn));
        let (e1, e2) = (NodeId(10), NodeId(11));
        an.attach(ClientId(1), e1);
        an.attach(ClientId(2), e2);
        (an, cn, e1, e2)
    }

    fn video_packet(client: u32, keyframe: bool) -> gso_rtp::RtpPacket {
        let f = EncodedFrame {
            ssrc: ssrc_for(ClientId(client), StreamKind::Video, 360),
            frame_id: 1,
            keyframe,
            size: 500,
            resolution_lines: 360,
            captured_at: SimTime::from_millis(10),
        };
        let mut seq = 5;
        frame::packetize(&f, &mut seq, 96).remove(0)
    }

    fn rules_for(sub: u32, publisher: u32) -> CtrlMessage {
        CtrlMessage::Rules {
            epoch: 0,
            rules: vec![ForwardingRule {
                subscriber: ClientId(sub),
                source: SourceId::video(ClientId(publisher)),
                tag: 0,
                ssrc: ssrc_for(ClientId(publisher), StreamKind::Video, 360),
                bitrate: Bitrate::from_kbps(600),
            }],
        }
    }

    #[test]
    fn rules_install_switcher_and_forward_on_keyframe() {
        let (mut an, cn, e1, e2) = an_with_two_clients();
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, cn, Packet::new(rules_for(2, 1).serialize()), &mut out);
        // Delta packet before a keyframe: not forwarded.
        let mut out = Actions::default();
        an.on_packet(
            SimTime::from_millis(1),
            e1,
            Packet::new(video_packet(1, false).serialize()),
            &mut out,
        );
        assert!(out.is_empty(), "no splice mid-GoP");
        // Keyframe: forwarded to client 2's endpoint.
        let mut out = Actions::default();
        an.on_packet(
            SimTime::from_millis(2),
            e1,
            Packet::new(video_packet(1, true).serialize()),
            &mut out,
        );
        let dests: Vec<NodeId> = out.sends().iter().map(|(d, _)| *d).collect();
        assert_eq!(dests, vec![e2]);
    }

    #[test]
    fn spoofed_ssrc_dropped() {
        let (mut an, cn, e1, _e2) = an_with_two_clients();
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, cn, Packet::new(rules_for(2, 2).serialize()), &mut out);
        // Client 1's endpoint sends a packet claiming client 2's SSRC.
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, e1, Packet::new(video_packet(2, true).serialize()), &mut out);
        assert!(out.is_empty(), "spoofed media must not be forwarded");
    }

    #[test]
    fn probe_padding_absorbed() {
        let (mut an, _cn, e1, _e2) = an_with_two_clients();
        let pkt = gso_rtp::RtpPacket {
            marker: false,
            payload_type: 127,
            sequence: 1,
            timestamp: 0,
            ssrc: ssrc_for(ClientId(1), StreamKind::Video, 16),
            payload: bytes::Bytes::from(vec![0u8; 100]),
        };
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, e1, Packet::new(pkt.serialize()), &mut out);
        assert!(out.is_empty(), "probe padding terminates at the node");
    }

    #[test]
    fn semb_relayed_to_conference_as_uplink_report() {
        let (mut an, cn, e1, _e2) = an_with_two_clients();
        let semb = RtcpPacket::Semb(Semb {
            sender_ssrc: ssrc_for(ClientId(1), StreamKind::Video, 0),
            bitrate: Bitrate::from_kbps(2_048),
            ssrcs: vec![],
        });
        let mut out = Actions::default();
        an.on_packet(
            SimTime::ZERO,
            e1,
            Packet::new(RtcpPacket::serialize_compound(&[semb])),
            &mut out,
        );
        assert_eq!(out.sends().len(), 1);
        let (dest, pkt) = &out.sends()[0];
        assert_eq!(*dest, cn);
        let msg = CtrlMessage::parse(pkt.data.clone()).unwrap();
        assert_eq!(
            msg,
            CtrlMessage::UplinkReport { client: ClientId(1), bitrate: Bitrate::from_kbps(2_048) }
        );
    }

    #[test]
    fn gtbn_relayed_to_conference() {
        let (mut an, cn, e1, _e2) = an_with_two_clients();
        let ack = RtcpPacket::GsoTmmbn(GsoTmmbn {
            sender_ssrc: ssrc_for(ClientId(1), StreamKind::Video, 0),
            epoch: 0,
            request_seq: 7,
            entries: vec![],
        });
        let mut out = Actions::default();
        an.on_packet(
            SimTime::ZERO,
            e1,
            Packet::new(RtcpPacket::serialize_compound(&[ack])),
            &mut out,
        );
        assert_eq!(out.sends().len(), 1);
        assert_eq!(out.sends()[0].0, cn);
        assert!(matches!(
            CtrlMessage::parse(out.sends()[0].1.data.clone()),
            Some(CtrlMessage::AckRelay { client, .. }) if client == ClientId(1)
        ));
    }

    #[test]
    fn resync_request_returns_cached_snapshot() {
        let (mut an, cn, e1, _e2) = an_with_two_clients();
        // An SDP offer passing through caches the negotiated ladders.
        let offer = gso_control::SdpOffer {
            client: ClientId(1),
            codec: "H264".into(),
            ladders: vec![(StreamKind::Video, gso_algo::ladders::paper_table1())],
        };
        let mut out = Actions::default();
        an.on_packet(
            SimTime::ZERO,
            e1,
            Packet::new(
                CtrlMessage::SdpOffer { client: ClientId(1), sdp: offer.to_sdp() }.serialize(),
            ),
            &mut out,
        );
        // A subscribe and a SEMB cache intents and the uplink estimate.
        let sub = CtrlMessage::Subscribe {
            client: ClientId(1),
            intents: vec![SubscribeIntent {
                source: SourceId::video(ClientId(2)),
                max_resolution: gso_algo::Resolution::R720,
                tag: 0,
            }],
        };
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, e1, Packet::new(sub.serialize()), &mut out);
        let semb = RtcpPacket::Semb(Semb {
            sender_ssrc: ssrc_for(ClientId(1), StreamKind::Video, 0),
            bitrate: Bitrate::from_kbps(1_500),
            ssrcs: vec![],
        });
        let mut out = Actions::default();
        an.on_packet(
            SimTime::ZERO,
            e1,
            Packet::new(RtcpPacket::serialize_compound(&[semb])),
            &mut out,
        );
        // The resync reply carries all of it back to the conference node.
        let mut out = Actions::default();
        an.on_packet(
            SimTime::ZERO,
            cn,
            Packet::new(CtrlMessage::ResyncRequest { epoch: 0 }.serialize()),
            &mut out,
        );
        assert_eq!(out.sends().len(), 1);
        assert_eq!(out.sends()[0].0, cn);
        let Some(CtrlMessage::ResyncState { clients }) =
            CtrlMessage::parse(out.sends()[0].1.data.clone())
        else {
            panic!("expected a ResyncState reply");
        };
        assert_eq!(clients.len(), 2, "both attached clients snapshotted");
        let c1 = clients.iter().find(|c| c.client == ClientId(1)).unwrap();
        assert_eq!(c1.ladders.len(), 1, "ladder recovered from the cached offer");
        assert_eq!(c1.intents.len(), 1, "intents recovered");
        assert_eq!(c1.uplink, Bitrate::from_kbps(1_500), "uplink recovered");
    }

    #[test]
    fn config_push_forwarded_to_client_endpoint() {
        let (mut an, cn, e1, _e2) = an_with_two_clients();
        let msg = CtrlMessage::ConfigPush {
            epoch: 0,
            client: ClientId(1),
            rtcp: bytes::Bytes::from_static(b"\x80\xcc\x00\x00"),
        };
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, cn, Packet::new(msg.serialize()), &mut out);
        assert_eq!(out.sends().len(), 1);
        assert_eq!(out.sends()[0].0, e1);
    }

    #[test]
    fn pending_switch_triggers_keyframe_request() {
        let (mut an, cn, e1, _e2) = an_with_two_clients();
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, cn, Packet::new(rules_for(2, 1).serialize()), &mut out);
        // A fresh switch is pending: a keyframe request must go to client 1.
        let kf: Vec<_> =
            out.sends().iter().filter(|(d, p)| *d == e1 && CtrlMessage::is_ctrl(&p.data)).collect();
        assert_eq!(kf.len(), 1);
        assert!(matches!(
            CtrlMessage::parse(kf[0].1.data.clone()),
            Some(CtrlMessage::KeyframeRequest { source }) if source == SourceId::video(ClientId(1))
        ));
    }

    #[test]
    fn remote_client_rules_build_relay_routes() {
        let cn = NodeId(0);
        let peer = NodeId(99);
        let mut an = AccessNode::new(PolicyMode::Gso, Some(cn));
        an.attach(ClientId(1), NodeId(10));
        an.attach_remote(ClientId(2), peer);
        // Client 2 (remote) subscribes to local client 1.
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, cn, Packet::new(rules_for(2, 1).serialize()), &mut out);
        // A keyframed packet from client 1 is relayed to the peer.
        let mut out = Actions::default();
        an.on_packet(
            SimTime::from_millis(1),
            NodeId(10),
            Packet::new(video_packet(1, true).serialize()),
            &mut out,
        );
        let dests: Vec<NodeId> = out.sends().iter().map(|(d, _)| *d).collect();
        assert_eq!(dests, vec![peer]);
    }

    #[test]
    fn stale_epoch_writer_is_fenced_and_newer_epoch_rehomes() {
        let (mut an, cn, _e1, e2) = an_with_two_clients();
        let standby = NodeId(1);
        // The promoted standby writes rules at epoch 1: accepted, and the
        // node re-homes to it.
        let newer = CtrlMessage::Rules {
            epoch: 1,
            rules: match rules_for(2, 1) {
                CtrlMessage::Rules { rules, .. } => rules,
                _ => unreachable!(),
            },
        };
        let mut out = Actions::default();
        an.on_packet(SimTime::ZERO, standby, Packet::new(newer.serialize()), &mut out);
        assert_eq!(an.ctrl_epoch, 1);
        assert_eq!(an.conference, Some(standby));
        assert!(!an.switchers.is_empty(), "newer-epoch rules applied");

        // The zombie controller's epoch-0 rules are dropped and answered
        // with a Fence carrying the live epoch.
        an.switchers.clear();
        let mut out = Actions::default();
        an.on_packet(
            SimTime::from_millis(1),
            cn,
            Packet::new(rules_for(2, 1).serialize()),
            &mut out,
        );
        assert!(an.switchers.is_empty(), "stale-epoch rules must not be applied");
        assert_eq!(an.conference, Some(standby), "zombie must not capture the node");
        assert_eq!(out.sends().len(), 1);
        assert_eq!(out.sends()[0].0, cn);
        assert_eq!(
            CtrlMessage::parse(out.sends()[0].1.data.clone()),
            Some(CtrlMessage::Fence { epoch: 1 })
        );

        // Same-epoch traffic from the followed controller still flows.
        let push = CtrlMessage::ConfigPush {
            epoch: 1,
            client: ClientId(2),
            rtcp: bytes::Bytes::from_static(b"\x80\xcc\x00\x00"),
        };
        let mut out = Actions::default();
        an.on_packet(SimTime::from_millis(2), standby, Packet::new(push.serialize()), &mut out);
        assert_eq!(out.sends().len(), 1);
        assert_eq!(out.sends()[0].0, e2);
    }
}
