//! The conference node (control plane, §3).
//!
//! Hosts the [`GsoController`], fed by control messages relayed from
//! accessing nodes: signaling (join/leave/subscribe/speaker), SEMB-derived
//! uplink reports, accessing-node downlink reports, and GTBN
//! acknowledgements. On each controller run it pushes per-client GTMB
//! configurations (via the client's accessing node, in-band) and the
//! forwarding rules to every accessing node.

use crate::ctrl::CtrlMessage;
use gso_control::{CodecCapability, ControllerConfig, GsoController};
use gso_net::{Actions, Node, NodeId, Packet};
use gso_rtp::RtcpPacket;
use gso_util::{ClientId, SimDuration, SimTime, Ssrc};
use std::any::Any;
use std::collections::BTreeMap;

const TICK: u64 = 1;
const TICK_INTERVAL: SimDuration = SimDuration::from_millis(100);
/// Timer tokens at or above this bit encode a scheduled speaker change:
/// `SPEAKER_EVENT | 0` clears the speaker, `SPEAKER_EVENT | (id + 1)` sets
/// it. Used by scenarios to script "speaker first" dynamics (§4.4).
pub const SPEAKER_EVENT: u64 = 1 << 32;

/// The conference node.
pub struct ConferenceNode {
    /// The controller (public for post-run inspection: solutions, call
    /// intervals).
    pub controller: GsoController,
    /// Accessing nodes to broadcast rules to.
    access_nodes: Vec<NodeId>,
    /// Which accessing node serves each client.
    client_an: BTreeMap<ClientId, NodeId>,
    /// Accessing node that relayed each client's join (learned dynamically).
    default_an: Option<NodeId>,
}

impl ConferenceNode {
    /// Build a conference node that will broadcast rules to `access_nodes`.
    pub fn new(cfg: ControllerConfig, access_nodes: Vec<NodeId>) -> Self {
        ConferenceNode {
            controller: GsoController::new(cfg, Ssrc(0xC0DE)),
            access_nodes,
            client_an: BTreeMap::new(),
            default_an: None,
        }
    }

    /// Attach a metrics registry to the embedded controller (and its
    /// feedback executor).
    pub fn set_telemetry(&mut self, telemetry: gso_telemetry::Telemetry) {
        self.controller.set_telemetry(telemetry);
    }

    /// Kick off the controller tick.
    pub fn schedule_boot(node: NodeId, sim: &mut gso_net::Simulator) {
        sim.schedule_timer(node, SimTime::ZERO, TICK);
    }

    /// Register an accessing node for rule/subscription broadcast (used by
    /// the scenario builder after the media plane is wired).
    pub fn register_access_node(&mut self, an: NodeId) {
        if !self.access_nodes.contains(&an) {
            self.access_nodes.push(an);
        }
    }
}

impl Node for ConferenceNode {
    fn on_packet(&mut self, now: SimTime, from: NodeId, packet: Packet, _out: &mut Actions) {
        let Some(msg) = CtrlMessage::parse(packet.data) else { return };
        self.default_an.get_or_insert(from);
        match msg {
            CtrlMessage::Join { client, ladders } => {
                self.client_an.insert(client, from);
                self.controller.on_join(client, CodecCapability { ladders });
            }
            CtrlMessage::SdpOffer { client, sdp } => {
                // §4.2: negotiate the offer, store the capabilities, and
                // answer with the per-layer SSRC assignments.
                let Ok(offer) = gso_control::SdpOffer::parse(&sdp) else { return };
                if offer.client != client {
                    return;
                }
                let (answer, caps) = offer.negotiate();
                self.client_an.insert(client, from);
                self.controller.on_join(client, caps);
                _out.send(
                    from,
                    Packet::new(
                        CtrlMessage::SdpAnswer { client, sdp: answer.to_sdp() }.serialize(),
                    ),
                );
            }
            CtrlMessage::Leave { client } => {
                self.client_an.remove(&client);
                self.controller.on_leave(client);
            }
            CtrlMessage::Subscribe { client, intents } => {
                self.controller.on_subscriptions(client, intents.clone());
                // Re-broadcast to the other accessing nodes: they need the
                // subscription map for audio fan-out across the mesh.
                let rebroadcast = CtrlMessage::Subscribe { client, intents };
                for &an in &self.access_nodes {
                    if an != from {
                        _out.send(an, Packet::new(rebroadcast.serialize()));
                    }
                }
            }
            CtrlMessage::UplinkReport { client, bitrate } => {
                self.controller.on_uplink_report(now, client, bitrate);
            }
            CtrlMessage::DownlinkReport { client, bitrate } => {
                self.controller.on_downlink_report(now, client, bitrate);
            }
            CtrlMessage::Speaker { client } => {
                self.controller.on_speaker(client);
            }
            CtrlMessage::AckRelay { client, rtcp } => {
                if let Ok(packets) = RtcpPacket::parse_compound(rtcp) {
                    for p in packets {
                        if let RtcpPacket::GsoTmmbn(ack) = p {
                            self.controller.on_ack(client, &ack);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Actions) {
        if token & SPEAKER_EVENT != 0 {
            let raw = (token & 0xffff_ffff) as u32;
            self.controller.on_speaker((raw > 0).then(|| ClientId(raw - 1)));
            return;
        }
        if token != TICK {
            return;
        }
        let (output, retransmissions) = self.controller.tick(now);

        let mut pushes: Vec<(ClientId, Vec<RtcpPacket>)> = Vec::new();
        if let Some(output) = &output {
            for (client, gtmb) in &output.configs {
                pushes.push((*client, vec![RtcpPacket::GsoTmmbr(gtmb.clone())]));
            }
        }
        for (client, gtmb) in retransmissions {
            pushes.push((client, vec![RtcpPacket::GsoTmmbr(gtmb)]));
        }
        for (client, rtcp) in pushes {
            let an = self.client_an.get(&client).copied().or(self.default_an);
            if let Some(an) = an {
                out.send(
                    an,
                    Packet::new(
                        CtrlMessage::ConfigPush {
                            client,
                            rtcp: RtcpPacket::serialize_compound(&rtcp),
                        }
                        .serialize(),
                    ),
                );
            }
        }

        if let Some(output) = output {
            let msg = CtrlMessage::Rules { rules: output.rules.clone() }.serialize();
            let targets: Vec<NodeId> = if self.access_nodes.is_empty() {
                self.default_an.into_iter().collect()
            } else {
                self.access_nodes.clone()
            };
            for an in targets {
                out.send(an, Packet::new(msg.clone()));
            }
        }
        out.timer_in(now, TICK_INTERVAL, TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
