//! The conference node (control plane, §3).
//!
//! Hosts the [`GsoController`], fed by control messages relayed from
//! accessing nodes: signaling (join/leave/subscribe/speaker), SEMB-derived
//! uplink reports, accessing-node downlink reports, and GTBN
//! acknowledgements. On each controller run it pushes per-client GTMB
//! configurations (via the client's accessing node, in-band) and the
//! forwarding rules to every accessing node.
//!
//! A conference node can also boot as a **standby shard**
//! ([`ConferenceNode::new_standby`]): it mirrors the active's state from
//! replication deltas, watches its heartbeats through a lease-based
//! [`FailureDetector`], and on lease expiry promotes itself under a bumped
//! epoch — rebuilding the controller from the replica and re-homing every
//! accessing node with an epoch-stamped resync. Epoch fencing at the
//! accessing nodes (plus the [`CtrlMessage::Fence`] reply that makes a
//! zombie step down) guarantees at most one writer per conference even
//! under a symmetric network partition.

use crate::ctrl::CtrlMessage;
use gso_cluster::{ApplyOutcome, FailureDetector, LeaseConfig, SnapshotPublisher, StandbyReplica};
use gso_control::{CodecCapability, ControllerConfig, GsoController};
use gso_net::{Actions, Node, NodeId, Packet};
use gso_rtp::{epoch_newer, RtcpPacket};
use gso_telemetry::{keys, Telemetry};
use gso_util::{ClientId, SimDuration, SimTime, Ssrc};
use std::any::Any;
use std::collections::BTreeMap;

const TICK: u64 = 1;
const TICK_INTERVAL: SimDuration = SimDuration::from_millis(100);
/// Timer tokens at or above this bit encode a scheduled speaker change:
/// `SPEAKER_EVENT | 0` clears the speaker, `SPEAKER_EVENT | (id + 1)` sets
/// it. Used by scenarios to script "speaker first" dynamics (§4.4).
pub const SPEAKER_EVENT: u64 = 1 << 32;

/// The conference node.
pub struct ConferenceNode {
    /// The controller (public for post-run inspection: solutions, call
    /// intervals).
    pub controller: GsoController,
    /// Kept to rebuild the controller after a simulated process restart.
    cfg: ControllerConfig,
    /// Accessing nodes to broadcast rules to.
    access_nodes: Vec<NodeId>,
    /// Which accessing node serves each client.
    client_an: BTreeMap<ClientId, NodeId>,
    /// Accessing node that relayed each client's join (learned dynamically).
    default_an: Option<NodeId>,
    /// Crashed: everything is dropped until [`ConferenceNode::restart`].
    down: bool,
    /// Controller generation, bumped on every restart and stamped into
    /// GTMBs so clients can reject stale configs (§7).
    epoch: u32,
    /// Set at restart; cleared when the rebuilt controller first produces a
    /// non-fallback solution (that interval is the recovery time).
    restarted_at: Option<SimTime>,
    /// Standby shard to stream heartbeats and replication deltas to (the
    /// active side of the failover pair; set by the scenario builder).
    standby: Option<NodeId>,
    /// Diffs controller state into bounded deltas for the standby.
    publisher: SnapshotPublisher,
    /// Heartbeat sequence within the current epoch.
    hb_seq: u64,
    /// `Some` while this node is a passive standby; dropped at promotion.
    standby_role: Option<StandbyRole>,
    /// Set at promotion; cleared when the promoted controller first
    /// produces a non-fallback solution (that interval is the takeover
    /// time, recorded on `cluster.takeover_ms`).
    promoted_at: Option<SimTime>,
    telemetry: Telemetry,
}

/// The passive half of a failover pair: a lease detector watching the
/// active's heartbeats plus a replica mirroring its controller state.
struct StandbyRole {
    detector: FailureDetector,
    replica: StandbyReplica,
    /// Where the last heartbeat/delta came from (the active shard), for
    /// addressing `SnapshotNack` replies.
    active: Option<NodeId>,
}

/// Telemetry label for the (single) conference shard in the simulation.
const SHARD_LABEL: &str = "s0";

/// Replication change-entry budget per delta (see `gso-cluster`).
const MAX_DELTA_CHANGES: usize = 64;

impl ConferenceNode {
    /// Build a conference node that will broadcast rules to `access_nodes`.
    pub fn new(cfg: ControllerConfig, access_nodes: Vec<NodeId>) -> Self {
        ConferenceNode {
            controller: GsoController::new(cfg.clone(), Ssrc(0xC0DE)),
            cfg,
            access_nodes,
            client_an: BTreeMap::new(),
            default_an: None,
            down: false,
            epoch: 0,
            restarted_at: None,
            telemetry: Telemetry::disabled(),
            standby: None,
            publisher: SnapshotPublisher::new(MAX_DELTA_CHANGES),
            hb_seq: 0,
            standby_role: None,
            promoted_at: None,
        }
    }

    /// Build a **standby** conference node: passive until the active
    /// shard's lease expires, then promoted in its place. `lease` seeds the
    /// failure detector's deterministic jitter stream.
    pub fn new_standby(
        cfg: ControllerConfig,
        access_nodes: Vec<NodeId>,
        lease: LeaseConfig,
    ) -> Self {
        let mut node = ConferenceNode::new(cfg, access_nodes);
        let mut detector = FailureDetector::new(lease, SHARD_LABEL);
        detector.arm(SimTime::ZERO);
        node.standby_role =
            Some(StandbyRole { detector, replica: StandbyReplica::new(SHARD_LABEL), active: None });
        node
    }

    /// Point the active shard at its standby (heartbeat + delta target).
    pub fn set_standby(&mut self, standby: NodeId) {
        self.standby = Some(standby);
    }

    /// Is this node still a passive standby?
    pub fn is_standby(&self) -> bool {
        self.standby_role.is_some()
    }

    /// Attach a metrics registry to the embedded controller (and its
    /// feedback executor).
    pub fn set_telemetry(&mut self, telemetry: gso_telemetry::Telemetry) {
        self.telemetry = telemetry.clone();
        if let Some(role) = &mut self.standby_role {
            role.detector.set_telemetry(telemetry.clone());
            role.replica.set_telemetry(telemetry.clone());
        }
        self.controller.set_telemetry(telemetry);
    }

    /// Kick off the controller tick.
    pub fn schedule_boot(node: NodeId, sim: &mut gso_net::Simulator) {
        sim.schedule_timer(node, SimTime::ZERO, TICK);
    }

    /// Register an accessing node for rule/subscription broadcast (used by
    /// the scenario builder after the media plane is wired).
    pub fn register_access_node(&mut self, an: NodeId) {
        if !self.access_nodes.contains(&an) {
            self.access_nodes.push(an);
        }
    }

    /// Simulate an abrupt controller outage: all input is dropped and no
    /// configuration goes out until [`ConferenceNode::restart`]. The tick
    /// timer chain stays armed so the node can come back.
    pub fn crash(&mut self, now: SimTime) {
        self.down = true;
        self.telemetry.event(now, keys::EV_CTRL_CRASH, "controller down".to_string());
    }

    /// Whether the node is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Current controller generation.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Restart after a crash: the controller is rebuilt from scratch under
    /// a new epoch (in-memory state is gone, as in a real process restart)
    /// and its picture is reconstructed by asking every accessing node to
    /// resync its cached client state (§7: recovery without interruption —
    /// the media plane keeps forwarding on the last rules throughout).
    pub fn restart(&mut self, now: SimTime, out: &mut Actions) {
        self.down = false;
        // Wrapping: epochs are compared with RFC 1982 serial arithmetic on
        // the client side, so the generation counter rolls over cleanly
        // instead of panicking (debug) or freezing (release) at u32::MAX.
        self.epoch = self.epoch.wrapping_add(1);
        let mut controller = GsoController::new(self.cfg.clone(), Ssrc(0xC0DE));
        controller.set_telemetry(self.telemetry.clone());
        controller.set_epoch(self.epoch);
        self.controller = controller;
        self.client_an.clear();
        self.restarted_at = Some(now);
        // The rebuilt controller shares no diff base with the standby's
        // replica: start the replication stream over with a full snapshot.
        self.publisher = SnapshotPublisher::new(MAX_DELTA_CHANGES);
        self.hb_seq = 0;
        self.telemetry.event(
            now,
            keys::EV_CTRL_RESTART,
            format!("controller restarted, epoch {}", self.epoch),
        );
        let msg = CtrlMessage::ResyncRequest { epoch: self.epoch }.serialize();
        for an in self.broadcast_targets() {
            out.send(an, Packet::new(msg.clone()));
        }
    }

    fn broadcast_targets(&self) -> Vec<NodeId> {
        if self.access_nodes.is_empty() {
            self.default_an.into_iter().collect()
        } else {
            self.access_nodes.clone()
        }
    }

    /// Promote this standby to active: bump the epoch serially past
    /// everything the dead shard ever heartbeat, rebuild the controller
    /// from the replica, and re-home every accessing node with an
    /// epoch-stamped resync (they fence the zombie from then on).
    fn promote(&mut self, now: SimTime, out: &mut Actions) {
        let Some(role) = self.standby_role.take() else { return };
        self.epoch = role.detector.last_epoch().wrapping_add(1);
        let mut controller = GsoController::new(self.cfg.clone(), Ssrc(0xC0DE));
        controller.set_telemetry(self.telemetry.clone());
        controller.set_epoch(self.epoch);
        self.controller = controller;
        for snap in role.replica.snapshots() {
            self.controller.on_join(snap.client, CodecCapability { ladders: snap.ladders });
            self.controller.on_subscriptions(snap.client, snap.intents);
            if !snap.uplink.is_zero() {
                self.controller.on_uplink_report(now, snap.client, snap.uplink);
            }
            if !snap.downlink.is_zero() {
                self.controller.on_downlink_report(now, snap.client, snap.downlink);
            }
        }
        self.promoted_at = Some(now);
        self.publisher = SnapshotPublisher::new(MAX_DELTA_CHANGES);
        self.hb_seq = 0;
        self.telemetry.incr(keys::CLUSTER_PROMOTIONS, SHARD_LABEL);
        self.telemetry.event(
            now,
            keys::EV_CLUSTER_PROMOTED,
            format!("standby promoted, epoch {}", self.epoch),
        );
        // Epoch-stamped resync: accessing nodes adopt this node as their
        // conference controller and send back their cached client state
        // (client → accessing-node homing rides in on the replies).
        let msg = CtrlMessage::ResyncRequest { epoch: self.epoch }.serialize();
        for an in self.broadcast_targets() {
            out.send(an, Packet::new(msg.clone()));
        }
    }
}

impl Node for ConferenceNode {
    fn on_packet(&mut self, now: SimTime, from: NodeId, packet: Packet, _out: &mut Actions) {
        if self.down {
            return;
        }
        let wire_len = packet.data.len() as u64;
        let Some(msg) = CtrlMessage::parse(packet.data) else { return };
        // Passive standby: only the replication stream and heartbeats
        // matter; everything else is the active shard's business.
        if let Some(role) = &mut self.standby_role {
            match msg {
                CtrlMessage::ShardHeartbeat { epoch, seq } => {
                    role.active = Some(from);
                    role.detector.heartbeat(now, epoch, seq);
                }
                CtrlMessage::SnapshotDelta { delta } => {
                    role.active = Some(from);
                    self.telemetry.add(keys::CLUSTER_REPLICATION_BYTES, SHARD_LABEL, wire_len);
                    if role.replica.apply(&delta) == ApplyOutcome::NeedFull {
                        let nack = CtrlMessage::SnapshotNack { have_seq: role.replica.seq() };
                        _out.send(from, Packet::new(nack.serialize()));
                    }
                }
                _ => {}
            }
            return;
        }
        if let CtrlMessage::Fence { epoch } = msg {
            // An accessing node follows a newer controller: this node is
            // the zombie half of a healed partition. Step down instead of
            // fighting the fence.
            if epoch_newer(epoch, self.epoch) {
                self.down = true;
                self.telemetry.incr(keys::CLUSTER_STEPDOWNS, SHARD_LABEL);
                self.telemetry.event(
                    now,
                    keys::EV_CLUSTER_STEPDOWN,
                    format!("fenced at epoch {}, successor at {epoch}", self.epoch),
                );
            }
            return;
        }
        if let CtrlMessage::SnapshotNack { .. } = msg {
            // The standby lost the delta chain (loss/reorder on the
            // replication link): start over with a full snapshot.
            self.publisher.request_full();
            return;
        }
        self.default_an.get_or_insert(from);
        match msg {
            CtrlMessage::ResyncState { clients } => {
                // Re-registration of everything an accessing node knows
                // about its clients: capabilities, subscriptions and the
                // last bandwidth estimates.
                for snap in clients {
                    self.client_an.insert(snap.client, from);
                    self.controller.on_join(snap.client, CodecCapability { ladders: snap.ladders });
                    self.controller.on_subscriptions(snap.client, snap.intents);
                    if !snap.uplink.is_zero() {
                        self.controller.on_uplink_report(now, snap.client, snap.uplink);
                    }
                    if !snap.downlink.is_zero() {
                        self.controller.on_downlink_report(now, snap.client, snap.downlink);
                    }
                }
            }
            CtrlMessage::Join { client, ladders } => {
                self.client_an.insert(client, from);
                self.controller.on_join(client, CodecCapability { ladders });
            }
            CtrlMessage::SdpOffer { client, sdp } => {
                // §4.2: negotiate the offer, store the capabilities, and
                // answer with the per-layer SSRC assignments.
                let Ok(offer) = gso_control::SdpOffer::parse(&sdp) else { return };
                if offer.client != client {
                    return;
                }
                let (answer, caps) = offer.negotiate();
                self.client_an.insert(client, from);
                self.controller.on_join(client, caps);
                _out.send(
                    from,
                    Packet::new(
                        CtrlMessage::SdpAnswer { client, sdp: answer.to_sdp() }.serialize(),
                    ),
                );
            }
            CtrlMessage::Leave { client } => {
                self.client_an.remove(&client);
                self.controller.on_leave(client);
            }
            CtrlMessage::Subscribe { client, intents } => {
                self.controller.on_subscriptions(client, intents.clone());
                // Re-broadcast to the other accessing nodes: they need the
                // subscription map for audio fan-out across the mesh.
                let rebroadcast = CtrlMessage::Subscribe { client, intents };
                for &an in &self.access_nodes {
                    if an != from {
                        _out.send(an, Packet::new(rebroadcast.serialize()));
                    }
                }
            }
            CtrlMessage::UplinkReport { client, bitrate } => {
                self.controller.on_uplink_report(now, client, bitrate);
            }
            CtrlMessage::DownlinkReport { client, bitrate } => {
                self.controller.on_downlink_report(now, client, bitrate);
            }
            CtrlMessage::Speaker { client } => {
                self.controller.on_speaker(client);
            }
            CtrlMessage::AckRelay { client, rtcp } => {
                if let Ok(packets) = RtcpPacket::parse_compound(rtcp) {
                    for p in packets {
                        if let RtcpPacket::GsoTmmbn(ack) = p {
                            self.controller.on_ack(client, &ack);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Actions) {
        if token & SPEAKER_EVENT != 0 {
            if !self.down {
                let raw = (token & 0xffff_ffff) as u32;
                self.controller.on_speaker((raw > 0).then(|| ClientId(raw - 1)));
            }
            return;
        }
        if token != TICK {
            return;
        }
        if self.down {
            // Keep the tick chain alive through the outage so the node
            // resumes on cadence once restarted.
            out.timer_in(now, TICK_INTERVAL, TICK);
            return;
        }
        if self.standby_role.is_some() {
            // Passive standby: poll the lease; promote on expiry. Either
            // way the tick chain continues (a promoted node solves on the
            // very next cadence slot).
            let expired =
                self.standby_role.as_mut().is_some_and(|role| role.detector.check_expired(now));
            if expired {
                self.promote(now, out);
            }
            out.timer_in(now, TICK_INTERVAL, TICK);
            return;
        }
        let (output, retransmissions) = self.controller.tick(now);
        if let Some(restarted) = self.restarted_at {
            if output.is_some() && !self.controller.fallback_active() {
                // First full (non-fallback) solve after a restart closes
                // the recovery window.
                self.restarted_at = None;
                self.telemetry.observe(
                    keys::CTRL_RECOVERY_TIME_MS,
                    "restart",
                    now.saturating_since(restarted).as_millis(),
                    keys::RECOVERY_MS_BOUNDS,
                );
            }
        }
        if let Some(promoted) = self.promoted_at {
            if output.is_some() && !self.controller.fallback_active() {
                // First full solve after a standby promotion closes the
                // takeover window (the failover analogue of restart
                // recovery, judged against the same §7 5 s bound).
                self.promoted_at = None;
                self.telemetry.observe(
                    keys::CLUSTER_TAKEOVER_MS,
                    "takeover",
                    now.saturating_since(promoted).as_millis(),
                    keys::RECOVERY_MS_BOUNDS,
                );
            }
        }

        let mut pushes: Vec<(ClientId, Vec<RtcpPacket>)> = Vec::new();
        if let Some(output) = &output {
            for (client, gtmb) in &output.configs {
                pushes.push((*client, vec![RtcpPacket::GsoTmmbr(gtmb.clone())]));
            }
        }
        for (client, gtmb) in retransmissions {
            pushes.push((client, vec![RtcpPacket::GsoTmmbr(gtmb)]));
        }
        for (client, rtcp) in pushes {
            let an = self.client_an.get(&client).copied().or(self.default_an);
            if let Some(an) = an {
                out.send(
                    an,
                    Packet::new(
                        CtrlMessage::ConfigPush {
                            epoch: self.epoch,
                            client,
                            rtcp: RtcpPacket::serialize_compound(&rtcp),
                        }
                        .serialize(),
                    ),
                );
            }
        }

        if let Some(output) = output {
            let msg =
                CtrlMessage::Rules { epoch: self.epoch, rules: output.rules.clone() }.serialize();
            for an in self.broadcast_targets() {
                out.send(an, Packet::new(msg.clone()));
            }
        }

        // Failover pair maintenance: heartbeat the standby every tick and
        // stream the controller-state diff alongside. Both ride the same
        // backbone links as the rest of the control plane, so a partition
        // that cuts them off is exactly what expires the lease.
        if let Some(sb) = self.standby {
            self.hb_seq += 1;
            let hb = CtrlMessage::ShardHeartbeat { epoch: self.epoch, seq: self.hb_seq };
            out.send(sb, Packet::new(hb.serialize()));
            let snapshot = self.controller.picture.snapshot();
            if let Some(delta) = self.publisher.tick(self.epoch, &snapshot) {
                out.send(sb, Packet::new(CtrlMessage::SnapshotDelta { delta }.serialize()));
            }
        }
        out.timer_in(now, TICK_INTERVAL, TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
