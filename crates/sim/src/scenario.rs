//! Scenario construction and execution.
//!
//! A [`Scenario`] declares a conference — clients, their link impairments,
//! the policy mode — and [`Scenario::run`] wires the full system (clients,
//! accessing node, conference node and controller) onto the packet
//! simulator, runs it, and harvests per-client QoE metrics.

use crate::access::AccessNode;
use crate::client::{ClientConfig, ClientNode, PolicyMode, SessionMetrics};
use crate::conference::ConferenceNode;
use gso_algo::{Ladder, Resolution, SourceId};
use gso_control::{ControllerConfig, SubscribeIntent};
use gso_net::{LinkConfig, NodeId, Simulator};
use gso_telemetry::{keys, Telemetry};
use gso_util::stats::TimeSeries;
use gso_util::{Bitrate, ClientId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// One participant's declaration.
#[derive(Debug, Clone)]
pub struct ClientScenario {
    /// Identity (must be unique).
    pub id: ClientId,
    /// Client → accessing node link.
    pub uplink: LinkConfig,
    /// Accessing node → client link.
    pub downlink: LinkConfig,
    /// Negotiated camera ladder.
    pub ladder: Ladder,
    /// Optional screen-share ladder.
    pub screen_ladder: Option<Ladder>,
    /// Subscription intents.
    pub subscriptions: Vec<SubscribeIntent>,
    /// Which accessing node serves this client (region index). Region 0 by
    /// default; multi-region scenarios exercise the inter-node relay mesh.
    pub region: usize,
}

impl ClientScenario {
    /// A client on clean symmetric links at the given rates.
    pub fn clean(id: ClientId, uplink: Bitrate, downlink: Bitrate, ladder: Ladder) -> Self {
        ClientScenario {
            id,
            uplink: LinkConfig::clean(uplink, SimDuration::from_millis(20)),
            downlink: LinkConfig::clean(downlink, SimDuration::from_millis(20)),
            ladder,
            screen_ladder: None,
            subscriptions: Vec::new(),
            region: 0,
        }
    }
}

/// A full conference declaration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Deterministic seed for all randomness.
    pub seed: u64,
    /// Stream policy under test.
    pub mode: PolicyMode,
    /// Session length.
    pub duration: SimDuration,
    /// Participants.
    pub clients: Vec<ClientScenario>,
    /// Scripted active-speaker changes: at each time, the given client (or
    /// nobody) becomes the speaker, boosting its camera subscriptions (§4.4).
    pub speaker_schedule: Vec<(SimTime, Option<ClientId>)>,
    /// Pair the conference node with a standby shard: the active streams
    /// heartbeats and replication deltas to it, and on lease expiry the
    /// standby promotes itself under a bumped epoch and re-homes the
    /// accessing nodes (§7 failover). GSO mode only; inert for baselines.
    pub standby: bool,
}

impl Scenario {
    /// Subscribe every client to every other client's camera at `max_res`.
    pub fn subscribe_all_to_all(&mut self, max_res: Resolution) {
        let ids: Vec<ClientId> = self.clients.iter().map(|c| c.id).collect();
        for c in &mut self.clients {
            c.subscriptions = ids
                .iter()
                .filter(|&&other| other != c.id)
                .map(|&other| SubscribeIntent {
                    source: SourceId::video(other),
                    max_resolution: max_res,
                    tag: 0,
                })
                .collect();
        }
    }

    /// Wire and run the scenario; returns collected metrics.
    pub fn run(&self) -> ScenarioResult {
        let mut wired = self.build();
        let end = SimTime::ZERO + self.duration;
        wired.sim.run_until(end);
        self.harvest(wired, end)
    }

    /// Wire and run the scenario while recording a per-tick
    /// [`gso_detguard::DigestTrace`] over the network simulator, the GSO
    /// controller, and the telemetry registry.
    ///
    /// The simulator is stepped in controller-tick-sized intervals; this
    /// processes the exact same event sequence as one [`Scenario::run`] call
    /// (events at a deadline boundary are handled identically), so the
    /// harvested [`ScenarioResult`] is bit-identical to a plain run.
    ///
    /// `fault_at`: when set, a junk packet is injected toward an unlinked
    /// node at the first tick boundary at or after the given time. The
    /// packet is unroutable, so it perturbs nothing the media plane sees —
    /// only the simulator's `undeliverable` counter — which makes it a
    /// minimal seeded divergence for exercising the double-run comparator.
    #[cfg(feature = "digest")]
    pub fn run_digest(
        &self,
        fault_at: Option<SimTime>,
    ) -> (ScenarioResult, gso_detguard::DigestTrace) {
        use gso_detguard::{DigestEntry, DigestTrace};

        let mut wired = self.build();
        let end = SimTime::ZERO + self.duration;
        let tick_interval = SimDuration::from_millis(100);
        let mut trace = DigestTrace::new();
        let mut fault_pending = fault_at;
        let mut t = SimTime::ZERO;
        while t < end {
            let next = (t + tick_interval).min(end);
            if let Some(at) = fault_pending {
                if t >= at {
                    // No link exists toward this node id, so the injection
                    // bumps `undeliverable` and nothing else.
                    wired.sim.inject(
                        wired.cn,
                        NodeId(u32::MAX),
                        gso_net::Packet::new(bytes::Bytes::from_static(b"detguard-fault")),
                    );
                    fault_pending = None;
                }
            }
            wired.sim.run_until(next);
            t = next;
            let net = wired.sim.state_digest();
            let ctrl = wired
                .sim
                .node::<ConferenceNode>(wired.cn)
                .map_or(0, |c| c.controller.state_digest());
            let telemetry = wired.telemetry.export_digest();
            trace.record(DigestEntry::new(
                t.as_micros(),
                vec![
                    ("net.sim".to_string(), net),
                    ("ctrl".to_string(), ctrl),
                    ("telemetry".to_string(), telemetry),
                ],
                format!(
                    "t={}us net={net:#018x} ctrl={ctrl:#018x} telemetry={telemetry:#018x}",
                    t.as_micros()
                ),
            ));
        }
        (self.harvest(wired, end), trace)
    }

    /// Build the full system onto a fresh simulator without running it.
    ///
    /// Public so external harnesses (the chaos runner) can step the
    /// simulator themselves, injecting faults between steps, and then
    /// [`Scenario::harvest`] the same metrics a plain run would produce.
    pub fn build(&self) -> WiredConference {
        let mut sim = Simulator::new(self.seed);
        let telemetry = Telemetry::new(format!("{}-seed{}", self.mode.short_name(), self.seed));

        // Control plane (always built; inert for baseline modes).
        let cn = sim.add_node(Box::new(ConferenceNode::new(
            ControllerConfig::paper_defaults(),
            Vec::new(),
        )));

        // One accessing node per region, fully meshed over the backbone.
        let n_regions = self.clients.iter().map(|c| c.region).max().unwrap_or(0) + 1;
        let ans: Vec<NodeId> = (0..n_regions)
            .map(|_| {
                sim.add_node(Box::new(AccessNode::new(
                    self.mode,
                    (self.mode == PolicyMode::Gso).then_some(cn),
                )))
            })
            .collect();
        for &an in &ans {
            sim.add_duplex_link(
                an,
                cn,
                LinkConfig::clean(Bitrate::from_mbps(1_000), SimDuration::from_millis(2)),
            );
            if let Some(conference) = sim.node_mut::<ConferenceNode>(cn) {
                conference.register_access_node(an);
            }
        }
        if let Some(conference) = sim.node_mut::<ConferenceNode>(cn) {
            conference.set_telemetry(telemetry.clone());
        }
        for &an in &ans {
            if let Some(access) = sim.node_mut::<AccessNode>(an) {
                access.set_telemetry(telemetry.clone());
            }
        }

        // Optional standby shard: heartbeat/replication target for the
        // active, linked to every accessing node so a promotion can re-home
        // the access layer without new wiring.
        let standby = (self.standby && self.mode == PolicyMode::Gso).then(|| {
            let sb = sim.add_node(Box::new(ConferenceNode::new_standby(
                ControllerConfig::paper_defaults(),
                ans.clone(),
                gso_cluster::LeaseConfig { seed: self.seed, ..Default::default() },
            )));
            sim.add_duplex_link(
                cn,
                sb,
                LinkConfig::clean(Bitrate::from_mbps(1_000), SimDuration::from_millis(2)),
            );
            for &an in &ans {
                sim.add_duplex_link(
                    an,
                    sb,
                    LinkConfig::clean(Bitrate::from_mbps(1_000), SimDuration::from_millis(2)),
                );
            }
            if let Some(conference) = sim.node_mut::<ConferenceNode>(cn) {
                conference.set_standby(sb);
            }
            if let Some(node) = sim.node_mut::<ConferenceNode>(sb) {
                node.set_telemetry(telemetry.clone());
            }
            ConferenceNode::schedule_boot(sb, &mut sim);
            sb
        });
        for i in 0..ans.len() {
            for j in (i + 1)..ans.len() {
                // Inter-region backbone: fat but not instantaneous.
                sim.add_duplex_link(
                    ans[i],
                    ans[j],
                    LinkConfig::clean(Bitrate::from_mbps(1_000), SimDuration::from_millis(40)),
                );
            }
        }

        let mut endpoints: BTreeMap<ClientId, NodeId> = BTreeMap::new();
        for (i, c) in self.clients.iter().enumerate() {
            let an = ans[c.region.min(ans.len() - 1)];
            let cfg = ClientConfig {
                id: c.id,
                mode: self.mode,
                ladder: c.ladder.clone(),
                screen_ladder: c.screen_ladder.clone(),
                subscriptions: c.subscriptions.clone(),
                audio: true,
                bwe: Default::default(),
            };
            let node = sim.add_node(Box::new(ClientNode::new(cfg, an, self.seed)));
            endpoints.insert(c.id, node);
            if let Some(client) = sim.node_mut::<ClientNode>(node) {
                client.set_telemetry(telemetry.clone());
            }
            sim.add_link(node, an, c.uplink.clone());
            sim.add_link(an, node, c.downlink.clone());
            if let Some(access) = sim.node_mut::<AccessNode>(an) {
                access.attach(c.id, node);
            }
            // Every other region's node learns this client as remote.
            for (r, &other) in ans.iter().enumerate() {
                if r != c.region.min(ans.len() - 1) {
                    if let Some(access) = sim.node_mut::<AccessNode>(other) {
                        access.attach_remote(c.id, an);
                    }
                }
            }
            // Stagger boots so keyframe cadences (and thus their bursts)
            // never align across clients, as they would not in reality.
            sim.schedule_timer(node, SimTime::from_millis(137 * i as u64), 0);
        }
        ConferenceNode::schedule_boot(cn, &mut sim);
        for &an in &ans {
            AccessNode::schedule_boot(an, &mut sim);
        }
        for &(at, speaker) in &self.speaker_schedule {
            let token =
                crate::conference::SPEAKER_EVENT | speaker.map_or(0, |c| u64::from(c.0) + 1);
            sim.schedule_timer(cn, at, token);
        }

        WiredConference { sim, telemetry, cn, standby, endpoints, ans }
    }

    /// Harvest metrics from a wired conference that has been run to `end`.
    pub fn harvest(&self, wired: WiredConference, end: SimTime) -> ScenarioResult {
        let WiredConference { sim, telemetry, cn, endpoints, .. } = wired;
        let mut per_client = BTreeMap::new();
        let mut recv_series = BTreeMap::new();
        let mut send_series = BTreeMap::new();
        let mut uplink_estimates = BTreeMap::new();
        for (&id, &node) in &endpoints {
            let client: &ClientNode = sim.node(node).expect("client node");
            per_client.insert(id, client.session_metrics(end));
            recv_series.insert(id, client.metrics.recv_rate.clone());
            send_series.insert(id, client.metrics.send_rate.clone());
            uplink_estimates.insert(id, client.uplink_estimate());
            for (source, stats) in client.render_stats_per_source() {
                let label = format!("{id}<-{source}");
                telemetry.add(keys::MEDIA_FRAMES_RENDERED, &label, stats.frames);
                telemetry.add(keys::MEDIA_BYTES_RENDERED, &label, stats.bytes);
                telemetry.add(keys::MEDIA_KEYFRAMES_RENDERED, &label, stats.keyframes);
            }
        }
        // Snapshot network-layer link statistics into the registry so the
        // export captures queue pressure alongside application metrics.
        for ((from, to), stats) in sim.all_link_stats() {
            let label = format!("n{}->n{}", from.0, to.0);
            telemetry.add(keys::NET_ENQUEUED, &label, stats.enqueued);
            telemetry.add(keys::NET_DROPPED_QUEUE, &label, stats.dropped_queue);
            telemetry.add(keys::NET_DROPPED_LOSS, &label, stats.dropped_loss);
            telemetry.add(keys::NET_DELIVERED_BYTES, &label, stats.delivered_bytes);
            telemetry.gauge(keys::NET_PEAK_QUEUE_BYTES, &label, stats.peak_queued_bytes as f64);
        }
        let controller_intervals = sim
            .node::<ConferenceNode>(cn)
            .map(|c| c.controller.call_intervals().to_vec())
            .unwrap_or_default();

        let metrics_json = telemetry.export_json();
        ScenarioResult {
            per_client,
            recv_series,
            send_series,
            uplink_estimates,
            controller_intervals,
            end,
            telemetry,
            metrics_json,
        }
    }
}

/// A fully wired but not-yet-run conference: the simulator with every node
/// and link attached, plus the handles harvesting (and fault injection)
/// needs afterwards.
pub struct WiredConference {
    /// The packet simulator owning every node.
    pub sim: Simulator,
    /// The shared metrics registry.
    pub telemetry: Telemetry,
    /// The conference node's id.
    pub cn: NodeId,
    /// The standby shard's id, when [`Scenario::standby`] asked for one.
    pub standby: Option<NodeId>,
    /// Client id → its endpoint node id.
    pub endpoints: BTreeMap<ClientId, NodeId>,
    /// Accessing-node ids, indexed by region.
    pub ans: Vec<NodeId>,
}

/// Everything harvested from one scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Session QoE metrics per client.
    pub per_client: BTreeMap<ClientId, SessionMetrics>,
    /// Received-rate time series per client (Fig. 7).
    pub recv_series: BTreeMap<ClientId, TimeSeries>,
    /// Sent-rate time series per client.
    pub send_series: BTreeMap<ClientId, TimeSeries>,
    /// Final uplink estimates.
    pub uplink_estimates: BTreeMap<ClientId, Bitrate>,
    /// Controller call intervals (GSO mode only; Fig. 12).
    pub controller_intervals: Vec<SimDuration>,
    /// Session end time.
    pub end: SimTime,
    /// Live registry handle (for targeted queries after the run).
    pub telemetry: Telemetry,
    /// Deterministic JSON export of every metric and event recorded during
    /// the run. Byte-identical across repeated runs of the same scenario.
    pub metrics_json: String,
}

impl ScenarioResult {
    /// Mean video stall over all clients.
    pub fn mean_video_stall(&self) -> f64 {
        mean(self.per_client.values().map(|m| m.video_stall))
    }

    /// Mean voice stall over all clients.
    pub fn mean_voice_stall(&self) -> f64 {
        mean(self.per_client.values().map(|m| m.voice_stall))
    }

    /// Mean framerate over all clients.
    pub fn mean_framerate(&self) -> f64 {
        mean(self.per_client.values().map(|m| m.framerate))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::ladder_for_mode;

    fn two_party(mode: PolicyMode, seed: u64) -> Scenario {
        let ladder = ladder_for_mode(mode);
        let mut s = Scenario {
            seed,
            mode,
            duration: SimDuration::from_secs(20),
            clients: vec![
                ClientScenario::clean(
                    ClientId(1),
                    Bitrate::from_mbps(4),
                    Bitrate::from_mbps(4),
                    ladder.clone(),
                ),
                ClientScenario::clean(
                    ClientId(2),
                    Bitrate::from_mbps(4),
                    Bitrate::from_mbps(4),
                    ladder,
                ),
            ],
            speaker_schedule: Vec::new(),
            standby: false,
        };
        s.subscribe_all_to_all(Resolution::R720);
        s
    }

    #[test]
    fn gso_two_party_media_flows() {
        let r = two_party(PolicyMode::Gso, 42).run();
        for (&id, m) in &r.per_client {
            assert!(m.framerate > 10.0, "{id}: framerate {}", m.framerate);
            assert!(m.video_stall < 0.35, "{id}: stall {}", m.video_stall);
            assert!(m.voice_stall < 0.2, "{id}: voice stall {}", m.voice_stall);
        }
        // The controller actually ran at the production cadence.
        assert!(!r.controller_intervals.is_empty());
        // Received video converges to a healthy rate on a 4 Mbps clean link.
        let late = r.recv_series[&ClientId(2)]
            .window_mean(SimTime::from_secs(12), SimTime::from_secs(20))
            .unwrap();
        assert!(late > 500_000.0, "late receive rate {late}");
    }

    #[test]
    fn non_gso_two_party_media_flows() {
        let r = two_party(PolicyMode::NonGso, 42).run();
        for m in r.per_client.values() {
            assert!(m.framerate > 8.0, "framerate {}", m.framerate);
        }
        assert!(r.controller_intervals.is_empty(), "no controller in baseline mode");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = two_party(PolicyMode::Gso, 7).run();
        let b = two_party(PolicyMode::Gso, 7).run();
        assert_eq!(a.recv_series[&ClientId(1)].points(), b.recv_series[&ClientId(1)].points());
        // Tentpole guarantee: the full metric export is byte-identical.
        assert_eq!(a.metrics_json, b.metrics_json);
        assert_ne!(a.metrics_json, "{}", "telemetry must actually record");
    }

    #[test]
    fn scenario_export_covers_every_subsystem() {
        use gso_telemetry::keys;
        let r = two_party(PolicyMode::Gso, 9).run();
        let t = &r.telemetry;
        assert!(t.counter_total(keys::CTRL_SOLVES) > 0, "controller solves");
        assert!(t.counter_total(keys::GTMB_SENT) > 0, "GTMB deliveries");
        assert!(t.counter_total(keys::SFU_FORWARDED_BYTES) > 0, "SFU forwarding");
        assert!(t.counter_total(keys::MEDIA_FRAMES_RENDERED) > 0, "rendered frames");
        assert!(t.counter_total(keys::NET_DELIVERED_BYTES) > 0, "link delivery");
        assert!(
            t.gauge_value(keys::BWE_ESTIMATE_BPS, "up:client1").is_some(),
            "uplink estimate gauge"
        );
        let (switches, _) = t.histogram_total(keys::SFU_SWITCH_LATENCY_US);
        assert!(switches > 0, "layer switches landed");
    }
}

#[cfg(test)]
mod region_tests {
    use super::*;
    use crate::workloads::ladder_for_mode;

    /// Two regions, one client each: media must cross the inter-node relay.
    #[test]
    fn cross_region_conference_flows_through_relay() {
        let ladder = ladder_for_mode(PolicyMode::Gso);
        let mut clients = vec![
            ClientScenario::clean(
                ClientId(1),
                Bitrate::from_mbps(4),
                Bitrate::from_mbps(4),
                ladder.clone(),
            ),
            ClientScenario::clean(
                ClientId(2),
                Bitrate::from_mbps(4),
                Bitrate::from_mbps(4),
                ladder,
            ),
        ];
        clients[1].region = 1;
        let mut s = Scenario {
            seed: 55,
            mode: PolicyMode::Gso,
            duration: SimDuration::from_secs(20),
            clients,
            speaker_schedule: Vec::new(),
            standby: false,
        };
        s.subscribe_all_to_all(Resolution::R720);
        let r = s.run();
        for (id, m) in &r.per_client {
            assert!(m.framerate > 10.0, "{id}: framerate {}", m.framerate);
            assert!(m.video_stall < 0.3, "{id}: stall {}", m.video_stall);
            assert!(m.voice_stall < 0.2, "{id}: voice stall {}", m.voice_stall);
        }
        // Healthy receive rates in steady state despite the extra hop.
        for id in [ClientId(1), ClientId(2)] {
            let late = r.recv_series[&id]
                .window_mean(SimTime::from_secs(12), SimTime::from_secs(20))
                .unwrap_or(0.0);
            assert!(late > 400_000.0, "{id}: late recv {late}");
        }
    }

    /// Mixed: two clients share region 0, a third sits in region 1; every
    /// stream still reaches every subscriber exactly once.
    #[test]
    fn three_clients_two_regions() {
        let ladder = ladder_for_mode(PolicyMode::Gso);
        let mut clients: Vec<ClientScenario> = (1..=3u32)
            .map(|i| {
                ClientScenario::clean(
                    ClientId(i),
                    Bitrate::from_mbps(4),
                    Bitrate::from_mbps(4),
                    ladder.clone(),
                )
            })
            .collect();
        clients[2].region = 1;
        let mut s = Scenario {
            seed: 56,
            mode: PolicyMode::Gso,
            duration: SimDuration::from_secs(20),
            clients,
            speaker_schedule: Vec::new(),
            standby: false,
        };
        s.subscribe_all_to_all(Resolution::R720);
        let r = s.run();
        // All three hear and see both others.
        for m in r.per_client.values() {
            assert!(m.framerate > 10.0, "framerate {}", m.framerate);
        }
    }
}
