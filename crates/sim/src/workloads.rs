//! Standard workloads: the slow-link impairment matrix of Table 2 and
//! scenario builders shared by the experiments.

use crate::client::PolicyMode;
use crate::scenario::{ClientScenario, Scenario};
use gso_algo::{ladders, Ladder, Resolution};
use gso_net::LinkConfig;
use gso_util::{Bitrate, ClientId, SimDuration};

/// Which direction an impairment applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → accessing node.
    Uplink,
    /// Accessing node → client.
    Downlink,
}

/// The kind of impairment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Impairment {
    /// No impairment (the "normal" case).
    None,
    /// Exponential jitter with the given mean.
    Jitter(SimDuration),
    /// i.i.d. packet loss probability.
    Loss(f64),
    /// Bandwidth cap.
    BandwidthLimit(Bitrate),
}

/// One slow-link test case: a name, a direction and an impairment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowLinkCase {
    /// Case label as in Table 2 (e.g. "up-30%", "down-1M").
    pub name: &'static str,
    /// Affected direction.
    pub direction: Direction,
    /// The impairment.
    pub impairment: Impairment,
}

/// The 15 cases of Table 2 (the "normal" baseline plus 14 impairments).
pub fn slow_link_cases() -> Vec<SlowLinkCase> {
    use Direction::*;
    use Impairment::*;
    vec![
        SlowLinkCase { name: "normal", direction: Downlink, impairment: None },
        SlowLinkCase { name: "up-30%", direction: Uplink, impairment: Loss(0.30) },
        SlowLinkCase { name: "up-50%", direction: Uplink, impairment: Loss(0.50) },
        SlowLinkCase {
            name: "up-50ms",
            direction: Uplink,
            impairment: Jitter(SimDuration::from_millis(50)),
        },
        SlowLinkCase {
            name: "up-100ms",
            direction: Uplink,
            impairment: Jitter(SimDuration::from_millis(100)),
        },
        SlowLinkCase {
            name: "up-0.5M",
            direction: Uplink,
            impairment: BandwidthLimit(Bitrate::from_kbps(500)),
        },
        SlowLinkCase {
            name: "up-1M",
            direction: Uplink,
            impairment: BandwidthLimit(Bitrate::from_mbps(1)),
        },
        SlowLinkCase {
            name: "up-1.5M",
            direction: Uplink,
            impairment: BandwidthLimit(Bitrate::from_kbps(1_500)),
        },
        SlowLinkCase { name: "down-30%", direction: Downlink, impairment: Loss(0.30) },
        SlowLinkCase { name: "down-50%", direction: Downlink, impairment: Loss(0.50) },
        SlowLinkCase {
            name: "down-50ms",
            direction: Downlink,
            impairment: Jitter(SimDuration::from_millis(50)),
        },
        SlowLinkCase {
            name: "down-100ms",
            direction: Downlink,
            impairment: Jitter(SimDuration::from_millis(100)),
        },
        SlowLinkCase {
            name: "down-0.5M",
            direction: Downlink,
            impairment: BandwidthLimit(Bitrate::from_kbps(500)),
        },
        SlowLinkCase {
            name: "down-1M",
            direction: Downlink,
            impairment: BandwidthLimit(Bitrate::from_mbps(1)),
        },
        SlowLinkCase {
            name: "down-1.5M",
            direction: Downlink,
            impairment: BandwidthLimit(Bitrate::from_kbps(1_500)),
        },
    ]
}

/// Apply an impairment to a clean link config.
pub fn impaired_link(base_rate: Bitrate, case: Impairment) -> LinkConfig {
    let delay = SimDuration::from_millis(20);
    match case {
        Impairment::None => LinkConfig::clean(base_rate, delay),
        Impairment::Jitter(mean) => LinkConfig::clean(base_rate, delay).with_jitter(mean),
        Impairment::Loss(p) => LinkConfig::clean(base_rate, delay).with_loss(p),
        Impairment::BandwidthLimit(cap) => LinkConfig::clean(cap.min(base_rate), delay),
    }
}

/// The ladder a client negotiates under each policy: GSO uses the
/// fine-grained 15-level ladder; the baselines use the coarse template
/// ladder (their templates cannot manage more levels, §1).
pub fn ladder_for_mode(mode: PolicyMode) -> Ladder {
    match mode {
        PolicyMode::Gso => ladders::fine15(),
        PolicyMode::NonGso => ladders::coarse3(),
        PolicyMode::Competitor1 => ladders::coarse3(),
        PolicyMode::Competitor2 => ladders::coarse3(),
    }
}

/// The small-meeting setup of the slow-link tests (§5): three clients on a
/// controlled network, with the impairment applied to client 1's chosen
/// link.
pub fn slow_link_scenario(mode: PolicyMode, case: SlowLinkCase, seed: u64) -> Scenario {
    let ladder = ladder_for_mode(mode);
    // Modest last-mile links, as in the paper's controlled lab setup: wide
    // enough for one good stream per publisher, tight enough that the
    // template baseline's habit of pushing *every* layer (2.4 Mbps of
    // mostly-unwatched video, Fig. 3a) eats into the margin.
    let clean_rate = Bitrate::from_kbps(3_000);
    let mut clients = Vec::new();
    for i in 1..=3u32 {
        let mut c = ClientScenario::clean(ClientId(i), clean_rate, clean_rate, ladder.clone());
        if i == 1 {
            match case.direction {
                Direction::Uplink => c.uplink = impaired_link(clean_rate, case.impairment),
                Direction::Downlink => c.downlink = impaired_link(clean_rate, case.impairment),
            }
        }
        clients.push(c);
    }
    let mut s = Scenario {
        seed,
        mode,
        duration: SimDuration::from_secs(60),
        clients,
        speaker_schedule: Vec::new(),
        standby: false,
    };
    s.subscribe_all_to_all(Resolution::R720);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_15_cases() {
        let cases = slow_link_cases();
        assert_eq!(cases.len(), 15);
        assert_eq!(cases.iter().filter(|c| c.direction == Direction::Uplink).count(), 7);
        assert_eq!(cases.iter().filter(|c| matches!(c.impairment, Impairment::Loss(_))).count(), 4);
        assert_eq!(
            cases.iter().filter(|c| matches!(c.impairment, Impairment::BandwidthLimit(_))).count(),
            6
        );
    }

    #[test]
    fn scenario_builder_applies_impairment_to_client1_only() {
        let case = slow_link_cases()[5]; // up-0.5M
        let s = slow_link_scenario(PolicyMode::Gso, case, 1);
        assert_eq!(s.clients.len(), 3);
        assert_eq!(s.clients[0].subscriptions.len(), 2);
        let capped = s.clients[0].uplink.rate.at(gso_util::SimTime::ZERO);
        assert_eq!(capped, Bitrate::from_kbps(500));
        let other = s.clients[1].uplink.rate.at(gso_util::SimTime::ZERO);
        assert_eq!(other, Bitrate::from_kbps(3_000));
    }

    #[test]
    fn mode_ladders() {
        assert_eq!(ladder_for_mode(PolicyMode::Gso).len(), 15);
        assert_eq!(ladder_for_mode(PolicyMode::NonGso).len(), 3);
    }
}
