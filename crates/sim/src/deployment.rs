//! Deployment population model — Fig. 10 (core metrics by date) and
//! Fig. 11 (user satisfaction).
//!
//! The paper reports production metrics over 1 M sampled conferences per
//! day, from 2021-10-01 to 2022-01-14, with GSO coverage ramping from the
//! initial deployment (2021-11-20) to full scale (2021-12-20). We cannot run
//! production; the substitution is a population model:
//!
//! * the per-conference improvement of GSO over Non-GSO is **measured in the
//!   simulator** ([`measure_improvements`]) over a mixed slow-link workload;
//! * each day blends baseline and GSO conferences according to the rollout
//!   coverage, plus small day-to-day sampling noise (1 M samples/day leaves
//!   only residual variance);
//! * user satisfaction follows a monotone (logistic-shaped) function of the
//!   three QoE metrics, calibrated so full rollout yields ≈ +7 % — the
//!   correlational claim of Fig. 11.

use crate::client::PolicyMode;
use crate::experiments::fig8::run_case;
use crate::workloads::slow_link_cases;
use gso_util::DetRng;

/// Relative improvement factors of GSO over the baseline.
#[derive(Debug, Clone, Copy)]
pub struct ImprovementFactors {
    /// Fractional reduction of average video stall (paper: ≥ 0.35).
    pub video_stall_reduction: f64,
    /// Fractional reduction of average voice stall (paper: ≥ 0.50).
    pub voice_stall_reduction: f64,
    /// Fractional gain of average framerate (paper: ≈ 0.06).
    pub framerate_gain: f64,
}

impl ImprovementFactors {
    /// The paper's production numbers (§6).
    pub fn paper() -> Self {
        ImprovementFactors {
            video_stall_reduction: 0.35,
            voice_stall_reduction: 0.50,
            framerate_gain: 0.06,
        }
    }
}

/// Measure improvement factors from the simulator: run a
/// population-weighted sample of Table-2 slow-link cases under GSO and
/// Non-GSO and compare means.
///
/// Table 2 is a stress matrix, not a traffic distribution: a production
/// population is dominated by ordinary and bandwidth-constrained links,
/// while 30–50 % loss links are rare pathologies. The weights below encode
/// that: normal ×4, each bandwidth-limit case ×2, jitter ×1, loss ×1.
/// `case_stride` subsamples the matrix (e.g. 3 → 5 cases) to bound cost.
pub fn measure_improvements(seed: u64, case_stride: usize) -> ImprovementFactors {
    use crate::workloads::Impairment;
    let cases: Vec<_> = slow_link_cases().into_iter().step_by(case_stride.max(1)).collect();
    let mut gso = (0.0, 0.0, 0.0);
    let mut non = (0.0, 0.0, 0.0);
    for case in &cases {
        let weight = match case.impairment {
            Impairment::None => 4.0,
            Impairment::BandwidthLimit(_) => 2.0,
            Impairment::Jitter(_) | Impairment::Loss(_) => 1.0,
        };
        let g = run_case(PolicyMode::Gso, *case, seed, true);
        let n = run_case(PolicyMode::NonGso, *case, seed, true);
        gso.0 += weight * g.video_stall;
        gso.1 += weight * g.voice_stall;
        gso.2 += weight * g.framerate;
        non.0 += weight * n.video_stall;
        non.1 += weight * n.voice_stall;
        non.2 += weight * n.framerate;
    }
    let rel_red = |g: f64, n: f64| if n > 1e-9 { ((n - g) / n).clamp(-1.0, 1.0) } else { 0.0 };
    ImprovementFactors {
        video_stall_reduction: rel_red(gso.0, non.0),
        voice_stall_reduction: rel_red(gso.1, non.1),
        framerate_gain: if non.2 > 1e-9 { (gso.2 - non.2) / non.2 } else { 0.0 },
    }
}

/// Rollout timeline of the paper, in days since 2021-10-01.
#[derive(Debug, Clone, Copy)]
pub struct Rollout {
    /// Total days plotted (Fig. 10 ends 2022-01-14).
    pub days: usize,
    /// Initial deployment day (2021-11-20).
    pub start: usize,
    /// Full-scale day (2021-12-20).
    pub full: usize,
}

impl Rollout {
    /// The paper's timeline: 2021-10-01 → 2022-01-14, ramp Nov 20 → Dec 20.
    pub fn paper() -> Self {
        Rollout { days: 106, start: 50, full: 80 }
    }

    /// GSO coverage fraction on a given day.
    pub fn coverage(&self, day: usize) -> f64 {
        if day < self.start {
            0.0
        } else if day >= self.full {
            1.0
        } else {
            (day - self.start) as f64 / (self.full - self.start) as f64
        }
    }

    /// Calendar date string for a day index (day 0 = 2021-10-01).
    pub fn date(&self, day: usize) -> String {
        // Month lengths from Oct 2021 onward.
        let months = [(2021, 10, 31), (2021, 11, 30), (2021, 12, 31), (2022, 1, 31), (2022, 2, 28)];
        let mut remaining = day;
        for &(year, month, len) in &months {
            if remaining < len {
                return format!("{year}-{month:02}-{:02}", remaining + 1);
            }
            remaining -= len;
        }
        format!("2022-xx+{day}")
    }
}

/// One day of the population simulation.
#[derive(Debug, Clone)]
pub struct DayMetrics {
    /// Calendar date.
    pub date: String,
    /// GSO coverage that day.
    pub coverage: f64,
    /// Population-average video stall (arbitrary units; normalize to plot).
    pub video_stall: f64,
    /// Population-average voice stall.
    pub voice_stall: f64,
    /// Population-average framerate.
    pub framerate: f64,
    /// Population-average satisfaction score.
    pub satisfaction: f64,
}

/// Run the population model.
pub fn simulate_deployment(
    rollout: Rollout,
    factors: ImprovementFactors,
    seed: u64,
) -> Vec<DayMetrics> {
    let mut rng = DetRng::derive(seed, "deployment");
    // Baseline population averages (arbitrary but realistic scales: stall
    // rates as fractions, framerate in fps).
    let base_video_stall = 0.060;
    let base_voice_stall = 0.030;
    let base_framerate = 13.5;

    (0..rollout.days)
        .map(|day| {
            let cov = rollout.coverage(day);
            // Residual sampling noise over ~1M conferences/day, plus mild
            // weekly seasonality (weekend conferences skew smaller/better).
            let weekly = 1.0 + 0.02 * ((day % 7) as f64 / 6.0 - 0.5);
            let noise = |rng: &mut DetRng, sigma: f64| 1.0 + sigma * rng.gaussian();

            let video_stall = base_video_stall
                * (1.0 - cov * factors.video_stall_reduction)
                * weekly
                * noise(&mut rng, 0.03);
            let voice_stall = base_voice_stall
                * (1.0 - cov * factors.voice_stall_reduction)
                * weekly
                * noise(&mut rng, 0.04);
            let framerate = base_framerate
                * (1.0 + cov * factors.framerate_gain)
                * (2.0 - weekly)
                * noise(&mut rng, 0.005);

            // Satisfaction: logistic in a QoE score built from the three
            // metrics; calibrated so baseline satisfaction sits around 0.80
            // and the paper's improvements lift it by ≈ +7.2 % (Fig. 11).
            let qoe_score = 1.341 - 10.0 * video_stall - 10.0 * voice_stall + 0.07 * framerate;
            let satisfaction = (1.0 / (1.0 + (-qoe_score).exp())) * noise(&mut rng, 0.01);

            DayMetrics {
                date: rollout.date(day),
                coverage: cov,
                video_stall: video_stall.max(0.0),
                voice_stall: voice_stall.max(0.0),
                framerate: framerate.max(0.0),
                satisfaction: satisfaction.clamp(0.0, 1.0),
            }
        })
        .collect()
}

/// Average of a metric over a day range (for before/after comparisons).
pub fn window_mean(
    days: &[DayMetrics],
    range: std::ops::Range<usize>,
    f: impl Fn(&DayMetrics) -> f64,
) -> f64 {
    let slice = &days[range.start.min(days.len())..range.end.min(days.len())];
    if slice.is_empty() {
        return 0.0;
    }
    slice.iter().map(f).sum::<f64>() / slice.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollout_timeline_matches_paper_dates() {
        let r = Rollout::paper();
        assert_eq!(r.date(0), "2021-10-01");
        assert_eq!(r.date(50), "2021-11-20");
        assert_eq!(r.date(80), "2021-12-20");
        assert_eq!(r.date(105), "2022-01-14");
        assert_eq!(r.coverage(0), 0.0);
        assert_eq!(r.coverage(49), 0.0);
        assert!((r.coverage(65) - 0.5).abs() < 0.01);
        assert_eq!(r.coverage(80), 1.0);
        assert_eq!(r.coverage(105), 1.0);
    }

    #[test]
    fn headline_reductions_reproduce_with_paper_factors() {
        let days = simulate_deployment(Rollout::paper(), ImprovementFactors::paper(), 9);
        assert_eq!(days.len(), 106);
        let before = 0..50;
        let after = 80..106;
        let vs_before = window_mean(&days, before.clone(), |d| d.video_stall);
        let vs_after = window_mean(&days, after.clone(), |d| d.video_stall);
        let red = (vs_before - vs_after) / vs_before;
        assert!((red - 0.35).abs() < 0.05, "video stall reduction {red}");

        let voice_red = {
            let b = window_mean(&days, before.clone(), |d| d.voice_stall);
            let a = window_mean(&days, after.clone(), |d| d.voice_stall);
            (b - a) / b
        };
        assert!((voice_red - 0.50).abs() < 0.05, "voice stall reduction {voice_red}");

        let fr_gain = {
            let b = window_mean(&days, before.clone(), |d| d.framerate);
            let a = window_mean(&days, after.clone(), |d| d.framerate);
            (a - b) / b
        };
        assert!((fr_gain - 0.06).abs() < 0.02, "framerate gain {fr_gain}");

        let sat_gain = {
            let b = window_mean(&days, before, |d| d.satisfaction);
            let a = window_mean(&days, after, |d| d.satisfaction);
            (a - b) / b
        };
        assert!(sat_gain > 0.04 && sat_gain < 0.12, "satisfaction gain {sat_gain} (paper: 7.2%)");
    }

    #[test]
    fn improvement_correlates_with_coverage() {
        let days = simulate_deployment(Rollout::paper(), ImprovementFactors::paper(), 5);
        // During the ramp, stalls trend downward: compare ramp thirds.
        let early = window_mean(&days, 50..60, |d| d.video_stall);
        let late = window_mean(&days, 70..80, |d| d.video_stall);
        assert!(late < early, "stall should fall as coverage grows: {early} -> {late}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_deployment(Rollout::paper(), ImprovementFactors::paper(), 1);
        let b = simulate_deployment(Rollout::paper(), ImprovementFactors::paper(), 1);
        assert_eq!(a[33].video_stall.to_bits(), b[33].video_stall.to_bits());
    }
}
