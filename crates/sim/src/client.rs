//! The conference client (user-plane endpoint).
//!
//! A [`ClientNode`] publishes simulcast video (plus audio and optionally a
//! screen share) toward its accessing node, estimates its uplink with the
//! sender-side BWE, reports it via SEMB, receives the streams it subscribes
//! to, generates transport feedback for the accessing node's downlink
//! estimation, NACKs losses, applies GTMB configuration from the controller
//! (acknowledging with GTBN), and — in the baseline modes — runs the local
//! template policy instead.

use crate::ctrl::CtrlMessage;
use gso_algo::{Ladder, SourceId};
use gso_bwe::{
    BweConfig, ProbeConfig, ProbeController, SembConfig, SembScheduler, SendHistory, SenderBwe,
    TwccGenerator,
};
use gso_control::{BandwidthHysteresis, DowngradeMonitor, HysteresisConfig, SubscribeIntent};
use gso_media::{
    frame, AudioSource, EncoderConfig, LayerConfig, SimulcastEncoder, StreamReceiver,
    VideoPlayback, VoicePlayback,
};
use gso_net::{Actions, Node, NodeId, Packet};
use gso_rtp::{decode_ssrc, epoch_newer, ssrc_for, GsoTmmbn, Nack, RtcpPacket, RtpPacket, Semb};
use gso_sfu::{layers_for, TemplateKind};
use gso_telemetry::{keys, Telemetry};
use gso_util::stats::TimeSeries;
use gso_util::{Bitrate, ClientId, SimDuration, SimTime, Ssrc, StreamKind};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Which stream policy the client (and its conference) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// Global stream orchestration (the paper's system).
    Gso,
    /// Traditional template-based Simulcast (the Non-GSO baseline).
    NonGso,
    /// Competitor 1: two-level template.
    Competitor1,
    /// Competitor 2: single adaptive stream.
    Competitor2,
}

impl PolicyMode {
    /// Short stable identifier (used in telemetry conference names).
    pub fn short_name(self) -> &'static str {
        match self {
            PolicyMode::Gso => "gso",
            PolicyMode::NonGso => "nongso",
            PolicyMode::Competitor1 => "comp1",
            PolicyMode::Competitor2 => "comp2",
        }
    }

    /// The publisher-side template for baseline modes.
    pub fn template(self) -> Option<TemplateKind> {
        match self {
            PolicyMode::Gso => None,
            PolicyMode::NonGso => Some(TemplateKind::NonGso),
            PolicyMode::Competitor1 => Some(TemplateKind::Competitor1),
            PolicyMode::Competitor2 => Some(TemplateKind::Competitor2),
        }
    }
}

/// Timer tokens. The low byte is the kind; higher bits carry the boot
/// generation so timer chains armed before a crash die out instead of
/// doubling the cadence after a rejoin.
const BOOT: u64 = 0;
const VIDEO_TICK: u64 = 1;
const AUDIO_TICK: u64 = 2;
const FAST_TICK: u64 = 3;
const SLOW_TICK: u64 = 4;

const FAST_INTERVAL: SimDuration = SimDuration::from_millis(100);
const SLOW_INTERVAL: SimDuration = SimDuration::from_millis(500);

/// Static client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Identity.
    pub id: ClientId,
    /// Policy mode.
    pub mode: PolicyMode,
    /// Negotiated camera ladder (the simulcastInfo content).
    pub ladder: Ladder,
    /// Optional screen-share ladder.
    pub screen_ladder: Option<Ladder>,
    /// Subscription intents to signal at join.
    pub subscriptions: Vec<SubscribeIntent>,
    /// Whether this client publishes audio.
    pub audio: bool,
    /// BWE tuning.
    pub bwe: BweConfig,
}

impl ClientConfig {
    /// A camera+audio client with the given ladder and subscriptions.
    pub fn new(
        id: ClientId,
        mode: PolicyMode,
        ladder: Ladder,
        subscriptions: Vec<SubscribeIntent>,
    ) -> Self {
        ClientConfig {
            id,
            mode,
            ladder,
            screen_ladder: None,
            subscriptions,
            audio: true,
            bwe: BweConfig::default(),
        }
    }
}

/// Per-client collected metrics.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// Total video bitrate received, sampled each slow tick.
    pub recv_rate: TimeSeries,
    /// Total video bitrate sent (media only), sampled each slow tick.
    pub send_rate: TimeSeries,
    /// Sender-side work units (capture, encode, packetize, RTCP).
    pub sender_work: f64,
    /// Receiver-side work units (depacketize, decode, render, RTCP).
    pub receiver_work: f64,
}

/// The client node.
pub struct ClientNode {
    cfg: ClientConfig,
    an: NodeId,
    started: Option<SimTime>,

    video_enc: SimulcastEncoder,
    screen_enc: Option<SimulcastEncoder>,
    audio_src: Option<AudioSource>,
    seqs: BTreeMap<Ssrc, u16>,
    rtx: BTreeMap<Ssrc, VecDeque<RtpPacket>>,
    /// Retransmission budget in bytes, replenished at 25 % of the media
    /// target per second. Without a budget, a burst of queue drops turns
    /// into a self-sustaining NACK/retransmission storm: the retransmissions
    /// saturate the uplink, causing the next round of drops.
    rtx_budget: f64,
    /// Recently retransmitted (ssrc, seq) pairs, deduplicated for a short
    /// window so overlapping NACKs from several subscribers do not multiply
    /// the repair traffic.
    recent_rtx: BTreeMap<(Ssrc, u16), SimTime>,
    probe_seq: u16,

    history: SendHistory,
    bwe: SenderBwe,
    probes: ProbeController,
    semb: SembScheduler,
    /// Smooths the estimate the local template policy sees; without it the
    /// template flaps layers whenever the raw estimate wobbles across a
    /// cumulative-bitrate boundary (baselines deploy the same trick).
    template_gate: BandwidthHysteresis<u8>,

    receivers: BTreeMap<Ssrc, StreamReceiver>,
    /// Playback metric trackers per subscribed publisher source.
    pub video_play: BTreeMap<SourceId, VideoPlayback>,
    /// Voice playback trackers per publisher.
    pub voice_play: BTreeMap<ClientId, VoicePlayback>,
    twcc_rx: TwccGenerator,
    downgrade: DowngradeMonitor,
    last_keyframe_req: BTreeMap<SourceId, SimTime>,

    /// Highest controller generation seen; GTMBs from older epochs are
    /// rejected (§7: a config issued before a controller restart must not
    /// clobber post-restart state).
    ctrl_epoch: u32,
    /// Configs already applied in the current epoch, so duplicated GTMBs
    /// are re-acked without re-application.
    applied_cfgs: BTreeSet<(u32, u32)>,
    /// Crashed: the node is silent and deaf until [`ClientNode::rejoin`].
    down: bool,
    /// Boot generation, stamped into timer tokens (see token constants).
    boot_gen: u64,
    /// When set, SEMB uplink reports are suppressed (chaos: BWE feedback
    /// blackout).
    semb_blackout: bool,
    telemetry: Telemetry,

    bytes_recv_window: u64,
    bytes_sent_window: u64,
    last_sample: SimTime,
    /// Collected metrics.
    pub metrics: ClientMetrics,
}

impl ClientNode {
    /// Build a client attached to accessing node `an`.
    pub fn new(cfg: ClientConfig, an: NodeId, seed: u64) -> Self {
        let enc_rng = gso_util::DetRng::derive(seed, &format!("client-{}-enc", cfg.id.0));
        let layers: Vec<LayerConfig> = cfg
            .ladder
            .resolutions()
            .iter()
            .map(|r| LayerConfig {
                ssrc: ssrc_for(cfg.id, StreamKind::Video, r.0),
                resolution_lines: r.0,
                // All layers start disabled; GSO enables them via GTMB, the
                // baselines via their template on the first slow tick.
                target: Bitrate::ZERO,
            })
            .collect();
        let video_enc = SimulcastEncoder::new(EncoderConfig::default(), layers, enc_rng);
        let screen_enc = cfg.screen_ladder.as_ref().map(|l| {
            let rng = gso_util::DetRng::derive(seed, &format!("client-{}-screen", cfg.id.0));
            let layers: Vec<LayerConfig> = l
                .resolutions()
                .iter()
                .map(|r| LayerConfig {
                    ssrc: ssrc_for(cfg.id, StreamKind::Screen, r.0),
                    resolution_lines: r.0,
                    target: Bitrate::ZERO,
                })
                .collect();
            SimulcastEncoder::new(
                EncoderConfig { fps: 5.0, ..EncoderConfig::default() },
                layers,
                rng,
            )
        });
        let audio_src =
            cfg.audio.then(|| AudioSource::new(ssrc_for(cfg.id, StreamKind::Audio, 0), 111));
        let bwe = SenderBwe::new(cfg.bwe.clone());
        ClientNode {
            an,
            video_enc,
            screen_enc,
            audio_src,
            seqs: BTreeMap::new(),
            rtx: BTreeMap::new(),
            rtx_budget: 30_000.0,
            recent_rtx: BTreeMap::new(),
            probe_seq: 0,
            history: SendHistory::new(),
            bwe,
            probes: ProbeController::new(ProbeConfig::default()),
            semb: SembScheduler::new(SembConfig::default()),
            template_gate: BandwidthHysteresis::new(HysteresisConfig::default()),
            receivers: BTreeMap::new(),
            video_play: BTreeMap::new(),
            voice_play: BTreeMap::new(),
            twcc_rx: TwccGenerator::new(),
            downgrade: DowngradeMonitor::new(SimDuration::from_secs(2)),
            last_keyframe_req: BTreeMap::new(),
            ctrl_epoch: 0,
            applied_cfgs: BTreeSet::new(),
            down: false,
            boot_gen: 0,
            semb_blackout: false,
            telemetry: Telemetry::disabled(),
            bytes_recv_window: 0,
            bytes_sent_window: 0,
            last_sample: SimTime::ZERO,
            metrics: ClientMetrics::default(),
            started: None,
            cfg,
        }
    }

    /// Client id.
    pub fn id(&self) -> ClientId {
        self.cfg.id
    }

    /// Attach a metrics registry; the uplink estimator reports with an
    /// `up:<client>` label.
    pub fn set_telemetry(&mut self, telemetry: gso_telemetry::Telemetry) {
        self.telemetry = telemetry.clone();
        self.bwe.set_telemetry(telemetry, format!("up:{}", self.cfg.id));
    }

    /// Suppress (or restore) SEMB uplink reporting — a BWE feedback
    /// blackout fault.
    pub fn set_semb_blackout(&mut self, on: bool) {
        self.semb_blackout = on;
    }

    /// Abrupt crash: the node goes silent and ignores all input until
    /// [`ClientNode::rejoin`]. Pending timer chains die out (stale boot
    /// generation), so the cadence does not double on rejoin.
    pub fn crash(&mut self) {
        self.down = true;
    }

    /// Whether the node is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Rejoin after a crash as a fresh endpoint: transport and receiver
    /// state is reset, then the normal boot sequence (SDP offer, subscribe,
    /// timers) replays under a new boot generation.
    pub fn rejoin(&mut self, now: SimTime, out: &mut Actions) {
        self.down = false;
        self.boot_gen += 1;
        self.receivers.clear();
        self.rtx.clear();
        self.recent_rtx.clear();
        self.seqs.clear();
        self.twcc_rx = TwccGenerator::new();
        self.history = SendHistory::new();
        self.applied_cfgs.clear();
        self.on_timer(now, (self.boot_gen << 8) | BOOT, out);
    }

    /// Current uplink estimate.
    pub fn uplink_estimate(&self) -> Bitrate {
        self.bwe.estimate()
    }

    /// Kick off the node: call once, schedules the boot timer.
    pub fn schedule_boot(node: NodeId, sim: &mut gso_net::Simulator) {
        sim.schedule_timer(node, SimTime::ZERO, BOOT);
    }

    fn probe_ssrc(&self) -> Ssrc {
        // Resolution slot 4 is unused by real layers (lines = 16).
        ssrc_for(self.cfg.id, StreamKind::Video, 16)
    }

    fn send_rtp(&mut self, now: SimTime, pkt: RtpPacket, probe: bool, out: &mut Actions) {
        self.history.record(pkt.ssrc, pkt.sequence, now, pkt.wire_len() + 28, probe);
        if !probe {
            self.bytes_sent_window += pkt.wire_len() as u64;
            let buf = self.rtx.entry(pkt.ssrc).or_default();
            buf.push_back(pkt.clone());
            if buf.len() > 512 {
                buf.pop_front();
            }
        }
        self.metrics.sender_work += gso_media::cost::PACKET_COST;
        out.send(self.an, Packet::new(pkt.serialize()));
    }

    fn send_rtcp(&mut self, packets: &[RtcpPacket], out: &mut Actions) {
        if packets.is_empty() {
            return;
        }
        self.metrics.sender_work += gso_media::cost::RTCP_COST * packets.len() as f64;
        out.send(self.an, Packet::new(RtcpPacket::serialize_compound(packets)));
    }

    /// Apply the publisher-side template (baseline modes).
    fn apply_template(&mut self, now: SimTime) {
        let Some(kind) = self.cfg.mode.template() else { return };
        let effective = self.template_gate.filter(0, now, self.bwe.estimate());
        let desired = layers_for(kind, effective);
        for ssrc in self.video_enc.layer_ssrcs() {
            let (_, _, lines) = decode_ssrc(ssrc).expect("own ssrc");
            let target =
                desired.iter().find(|&&(l, _)| l == lines).map_or(Bitrate::ZERO, |&(_, rate)| rate);
            self.video_enc.set_layer_rate(ssrc, target);
        }
    }

    fn handle_rtp(&mut self, now: SimTime, pkt: RtpPacket, out: &mut Actions) {
        self.twcc_rx.on_packet(now, pkt.ssrc, pkt.sequence);
        self.downgrade.on_packet(now, pkt.ssrc);
        self.bytes_recv_window += pkt.wire_len() as u64;
        self.metrics.receiver_work += gso_media::cost::PACKET_COST;
        let Some((publisher, kind, lines)) = decode_ssrc(pkt.ssrc) else { return };
        match kind {
            StreamKind::Audio => {
                self.voice_play
                    .entry(publisher)
                    .or_insert_with(|| VoicePlayback::new(now))
                    .on_packet(now, pkt.sequence);
            }
            StreamKind::Video | StreamKind::Screen => {
                let _ = lines;
                let receiver =
                    self.receivers.entry(pkt.ssrc).or_insert_with(|| StreamReceiver::new(pkt.ssrc));
                let result = receiver.on_packet(now, &pkt);
                let source = SourceId { client: publisher, kind };
                // Stall/framerate are playback metrics: the clock starts at
                // the first media packet, not at join (join latency is a
                // separate concern).
                let play = self.video_play.entry(source).or_insert_with(|| VideoPlayback::new(now));
                for f in &result.rendered {
                    play.on_frame(f.rendered_at);
                }
                if !result.nacks.is_empty() {
                    let nack = RtcpPacket::Nack(Nack {
                        sender_ssrc: ssrc_for(self.cfg.id, StreamKind::Video, 0),
                        media_ssrc: pkt.ssrc,
                        lost: result.nacks,
                    });
                    self.send_rtcp(&[nack], out);
                }
                if result.needs_keyframe {
                    self.request_keyframe(now, source, out);
                }
            }
        }
    }

    fn request_keyframe(&mut self, now: SimTime, source: SourceId, out: &mut Actions) {
        let due = self
            .last_keyframe_req
            .get(&source)
            .is_none_or(|&t| now.saturating_since(t) >= SimDuration::from_millis(500));
        if due {
            self.last_keyframe_req.insert(source, now);
            out.send(self.an, Packet::new(CtrlMessage::KeyframeRequest { source }.serialize()));
        }
    }

    fn handle_rtcp(&mut self, now: SimTime, data: bytes::Bytes, out: &mut Actions) {
        let Ok(packets) = RtcpPacket::parse_compound(data) else { return };
        let mut feedback_results = Vec::new();
        let mut replies = Vec::new();
        for p in packets {
            self.metrics.receiver_work += gso_media::cost::RTCP_COST;
            match p {
                RtcpPacket::TransportFeedback(fb) => {
                    // Feedback for our own uplink streams.
                    let ssrc = fb.sender_ssrc;
                    feedback_results.extend(self.history.resolve(ssrc, &fb));
                }
                RtcpPacket::GsoTmmbr(req) => {
                    // RFC 1982 serial comparison, not `<`/`>`: restart storms
                    // eventually wrap the u32 epoch, and an ordinary compare
                    // would then classify every post-wrap configuration as
                    // stale — deadlocking the client against a live
                    // controller forever.
                    if epoch_newer(self.ctrl_epoch, req.epoch) {
                        // A config from a pre-restart controller generation:
                        // applying it would clobber newer state. Drop without
                        // acking, so the stale sender gives up on its own.
                        self.telemetry.incr(keys::EPOCH_STALE_REJECTED, self.cfg.id);
                        continue;
                    }
                    if epoch_newer(req.epoch, self.ctrl_epoch) {
                        self.ctrl_epoch = req.epoch;
                        self.applied_cfgs.clear();
                    }
                    if self.applied_cfgs.insert((req.epoch, req.request_seq)) {
                        for e in &req.entries {
                            if !self.video_enc.set_layer_rate(e.ssrc, e.bitrate) {
                                if let Some(screen) = self.screen_enc.as_mut() {
                                    screen.set_layer_rate(e.ssrc, e.bitrate);
                                }
                            }
                        }
                        if self.applied_cfgs.len() > 1024 {
                            self.applied_cfgs.pop_first();
                        }
                    } else {
                        // Duplicated delivery (network dup or controller
                        // retransmission racing the ack): don't re-apply,
                        // but do re-ack so delivery state converges.
                        self.telemetry.incr(keys::EPOCH_DUP_REACKED, self.cfg.id);
                    }
                    replies.push(RtcpPacket::GsoTmmbn(GsoTmmbn {
                        sender_ssrc: ssrc_for(self.cfg.id, StreamKind::Video, 0),
                        epoch: req.epoch,
                        request_seq: req.request_seq,
                        entries: req.entries.clone(),
                    }));
                }
                RtcpPacket::Nack(nack) => {
                    // A subscriber (via the SFU) asks for retransmissions of
                    // one of our streams — budgeted and deduplicated.
                    let mut resend = Vec::new();
                    if let Some(buf) = self.rtx.get(&nack.media_ssrc) {
                        for seq in &nack.lost {
                            let key = (nack.media_ssrc, *seq);
                            let recently = self.recent_rtx.get(&key).is_some_and(|&t| {
                                now.saturating_since(t) < SimDuration::from_millis(150)
                            });
                            if recently {
                                continue;
                            }
                            if let Some(pkt) = buf.iter().find(|p| p.sequence == *seq) {
                                if self.rtx_budget < pkt.wire_len() as f64 {
                                    break; // budget exhausted; NACK retries cover it
                                }
                                self.rtx_budget -= pkt.wire_len() as f64;
                                self.recent_rtx.insert(key, now);
                                resend.push(pkt.clone());
                            }
                        }
                    }
                    for pkt in resend {
                        // Retransmissions are new transport events.
                        self.history.record(
                            pkt.ssrc,
                            pkt.sequence,
                            now,
                            pkt.wire_len() + 28,
                            false,
                        );
                        self.metrics.sender_work += gso_media::cost::PACKET_COST;
                        out.send(self.an, Packet::new(pkt.serialize()));
                    }
                }
                _ => {}
            }
        }
        if !feedback_results.is_empty() {
            feedback_results.sort_by_key(|r| r.sent_at);
            self.bwe.on_feedback(now, &feedback_results);
        }
        self.send_rtcp(&replies, out);
    }

    fn emit_probe(&mut self, now: SimTime, cluster: gso_bwe::ProbeCluster, out: &mut Actions) {
        let bytes = cluster.target_rate.bytes_in(cluster.duration);
        // Short burst (§7: probing redundancy must be carefully bounded):
        // enough packets to measure line rate, few enough not to push the
        // bottleneck queue into dropping media.
        let count = (bytes / 1200).clamp(5, 15);
        let ssrc = self.probe_ssrc();
        for _ in 0..count {
            let seq = self.probe_seq;
            self.probe_seq = self.probe_seq.wrapping_add(1);
            let pkt = RtpPacket {
                marker: false,
                payload_type: 127,
                sequence: seq,
                timestamp: 0,
                ssrc,
                payload: bytes::Bytes::from(vec![0u8; 1172]),
            };
            self.send_rtp(now, pkt, true, out);
        }
    }
}

impl Node for ClientNode {
    fn on_packet(&mut self, now: SimTime, _from: NodeId, packet: Packet, out: &mut Actions) {
        if self.down {
            return;
        }
        let data = packet.data;
        if data.is_empty() {
            return;
        }
        if CtrlMessage::is_ctrl(&data) {
            // The only control message addressed to clients: keyframe
            // requests relayed from subscribers by the accessing node.
            if let Some(CtrlMessage::KeyframeRequest { source }) = CtrlMessage::parse(data) {
                if source.client == self.cfg.id {
                    match source.kind {
                        StreamKind::Screen => {
                            if let Some(e) = self.screen_enc.as_mut() {
                                e.request_keyframe();
                            }
                        }
                        _ => self.video_enc.request_keyframe(),
                    }
                }
            }
            return;
        }
        // Demux per RFC 5761: RTCP packet types occupy 200..=206 in the
        // second byte; RTP payload types (with or without the marker bit)
        // land outside that range for the PTs this stack uses (96/111/127).
        if data.len() >= 2 && (200..=206).contains(&data[1]) {
            self.handle_rtcp(now, data, out);
        } else if let Ok(pkt) = RtpPacket::parse(data) {
            if pkt.payload_type != 127 {
                self.handle_rtp(now, pkt, out);
            } else {
                // Probe padding: counts for transport feedback only.
                self.twcc_rx.on_packet(now, pkt.ssrc, pkt.sequence);
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Actions) {
        // Timers from a previous boot generation (armed before a crash)
        // fall through harmlessly instead of duplicating the new chains.
        if self.down || (token >> 8) != self.boot_gen {
            return;
        }
        let gen_bits = self.boot_gen << 8;
        match token & 0xff {
            BOOT => {
                self.started = Some(now);
                self.last_sample = now;
                // Join via SDP negotiation (§4.2): the offer carries the
                // simulcastInfo ladders; the conference node derives codec
                // capabilities and per-layer SSRCs from it.
                let mut ladders = vec![(StreamKind::Video, self.cfg.ladder.clone())];
                if let Some(l) = &self.cfg.screen_ladder {
                    ladders.push((StreamKind::Screen, l.clone()));
                }
                let offer =
                    gso_control::SdpOffer { client: self.cfg.id, codec: "H264".into(), ladders };
                out.send(
                    self.an,
                    Packet::new(
                        CtrlMessage::SdpOffer { client: self.cfg.id, sdp: offer.to_sdp() }
                            .serialize(),
                    ),
                );
                out.send(
                    self.an,
                    Packet::new(
                        CtrlMessage::Subscribe {
                            client: self.cfg.id,
                            intents: self.cfg.subscriptions.clone(),
                        }
                        .serialize(),
                    ),
                );
                self.apply_template(now);
                out.timer_at(now, gen_bits | VIDEO_TICK);
                if self.audio_src.is_some() {
                    out.timer_at(now, gen_bits | AUDIO_TICK);
                }
                out.timer_in(now, FAST_INTERVAL, gen_bits | FAST_TICK);
                out.timer_in(now, SLOW_INTERVAL, gen_bits | SLOW_TICK);
            }
            VIDEO_TICK => {
                let mut frames = self.video_enc.tick(now);
                if let Some(screen) = self.screen_enc.as_mut() {
                    frames.extend(screen.tick(now));
                }
                for f in frames {
                    let seq = self.seqs.entry(f.ssrc).or_insert(0);
                    let mut s = *seq;
                    let pkts = frame::packetize(&f, &mut s, 96);
                    *seq = s;
                    for p in pkts {
                        self.send_rtp(now, p, false, out);
                    }
                }
                out.timer_in(now, self.video_enc.frame_interval(), gen_bits | VIDEO_TICK);
            }
            AUDIO_TICK => {
                if let Some(audio) = self.audio_src.as_mut() {
                    let pkt = audio.tick(now);
                    self.metrics.sender_work += gso_media::cost::AUDIO_FRAME_COST;
                    // Audio is not part of the BWE media history (tiny) but
                    // does traverse the link.
                    out.send(self.an, Packet::new(pkt.serialize()));
                    out.timer_in(
                        now,
                        gso_media::audio::AUDIO_FRAME_INTERVAL,
                        gen_bits | AUDIO_TICK,
                    );
                }
            }
            FAST_TICK => {
                // Downlink transport feedback toward the accessing node.
                let fbs = self.twcc_rx.poll();
                let rtcp: Vec<RtcpPacket> =
                    fbs.into_iter().map(|(_, fb)| RtcpPacket::TransportFeedback(fb)).collect();
                self.send_rtcp(&rtcp, out);

                // Receiver upkeep (NACK retries, keyframe requests).
                let ssrcs: Vec<Ssrc> = self.receivers.keys().copied().collect();
                for ssrc in ssrcs {
                    let result = self.receivers.get_mut(&ssrc).expect("present").poll(now);
                    if let Some((publisher, kind, _)) = decode_ssrc(ssrc) {
                        let source = SourceId { client: publisher, kind };
                        if let Some(play) = self.video_play.get_mut(&source) {
                            for f in &result.rendered {
                                play.on_frame(f.rendered_at);
                            }
                        }
                        if !result.nacks.is_empty() {
                            let nack = RtcpPacket::Nack(Nack {
                                sender_ssrc: ssrc_for(self.cfg.id, StreamKind::Video, 0),
                                media_ssrc: ssrc,
                                lost: result.nacks,
                            });
                            self.send_rtcp(&[nack], out);
                        }
                        if result.needs_keyframe {
                            self.request_keyframe(now, source, out);
                        }
                    }
                }

                // Uplink SEMB report (suppressed during a chaos blackout).
                if self.semb_blackout {
                    // Keep the scheduler's clock moving so reports resume
                    // on cadence when the blackout lifts.
                    let _ = self.semb.poll(now, self.bwe.estimate());
                } else if let Some(report) = self.semb.poll(now, self.bwe.estimate()) {
                    let semb = RtcpPacket::Semb(Semb {
                        sender_ssrc: ssrc_for(self.cfg.id, StreamKind::Video, 0),
                        bitrate: report,
                        ssrcs: vec![],
                    });
                    self.send_rtcp(&[semb], out);
                }

                // Probing when app-limited.
                let total_target = self.video_enc.total_target()
                    + self
                        .screen_enc
                        .as_ref()
                        .map_or(Bitrate::ZERO, gso_media::SimulcastEncoder::total_target);
                let app_limited =
                    (total_target.as_bps() as f64) < 0.7 * self.bwe.estimate().as_bps() as f64;
                let want_probe = app_limited || self.bwe.needs_validation();
                if let Some(cluster) = self.probes.poll(now, self.bwe.estimate(), want_probe) {
                    self.emit_probe(now, cluster, out);
                }

                self.history.prune(now);
                // Replenish the retransmission budget: 25 % of the media
                // target per second, capped at one second's worth.
                let media_rate = (self.video_enc.total_target()
                    + self
                        .screen_enc
                        .as_ref()
                        .map_or(Bitrate::ZERO, gso_media::SimulcastEncoder::total_target))
                .as_bps() as f64;
                let per_sec = 0.25 * media_rate / 8.0;
                self.rtx_budget = (self.rtx_budget + per_sec * FAST_INTERVAL.as_secs_f64())
                    .min(per_sec.max(30_000.0));
                self.recent_rtx
                    .retain(|_, &mut t| now.saturating_since(t) < SimDuration::from_secs(1));
                out.timer_in(now, FAST_INTERVAL, gen_bits | FAST_TICK);
            }
            SLOW_TICK => {
                self.apply_template(now);
                let dt = now.saturating_since(self.last_sample).as_secs_f64();
                if dt > 0.0 {
                    self.metrics.recv_rate.push(now, self.bytes_recv_window as f64 * 8.0 / dt);
                    self.metrics.send_rate.push(now, self.bytes_sent_window as f64 * 8.0 / dt);
                }
                self.bytes_recv_window = 0;
                self.bytes_sent_window = 0;
                self.last_sample = now;
                out.timer_in(now, SLOW_INTERVAL, gen_bits | SLOW_TICK);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl ClientNode {
    /// Finalize per-session metrics at `end`; returns (video stall rate,
    /// voice stall rate, framerate) averaged over subscribed sources.
    pub fn session_metrics(&self, end: SimTime) -> SessionMetrics {
        let mut video_stall = 0.0;
        let mut framerate = 0.0;
        let nv = self.video_play.len().max(1);
        for play in self.video_play.values() {
            video_stall += play.stall_rate(end);
            framerate += play.framerate(end);
        }
        let mut voice_stall = 0.0;
        let na = self.voice_play.len().max(1);
        for play in self.voice_play.values() {
            voice_stall += play.stall_rate(end);
        }
        let session_secs =
            end.saturating_since(self.started.unwrap_or(SimTime::ZERO)).as_secs_f64().max(1e-9);
        let sender_work = self.metrics.sender_work
            + self.video_enc.work_units()
            + self.screen_enc.as_ref().map_or(0.0, gso_media::SimulcastEncoder::work_units)
            + self.audio_src.as_ref().map_or(0.0, gso_media::AudioSource::work_units);
        let receiver_work = self.metrics.receiver_work
            + self.receivers.values().map(gso_media::StreamReceiver::work_units).sum::<f64>();
        SessionMetrics {
            video_stall: video_stall / nv as f64,
            voice_stall: voice_stall / na as f64,
            framerate: framerate / nv as f64,
            quality: self.mean_quality(end),
            sender_cpu: gso_media::cost::utilization(sender_work, session_secs),
            receiver_cpu: gso_media::cost::utilization(receiver_work, session_secs),
            avg_recv_rate: Bitrate::from_bps(
                self.metrics.recv_rate.points().iter().map(|&(_, v)| v).sum::<f64>().max(0.0)
                    as u64
                    / self.metrics.recv_rate.len().max(1) as u64,
            ),
        }
    }

    /// VMAF-proxy quality averaged over subscribed sources: each source is
    /// scored from the resolution/bitrate/framerate it actually delivered.
    fn mean_quality(&self, end: SimTime) -> f64 {
        let per_source = self.render_stats_per_source();
        if per_source.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for stats in per_source.values() {
            if stats.frames == 0 {
                continue;
            }
            let start = stats.first_render.unwrap_or(SimTime::ZERO);
            let secs = end.saturating_since(start).as_secs_f64().max(1e-3);
            let rate = Bitrate::from_bps((stats.bytes as f64 * 8.0 / secs) as u64);
            let fps = stats.frames as f64 / secs;
            let lines = (stats.resolution_line_sum / stats.frames) as u16;
            total += gso_media::vmaf_proxy(lines, rate, fps);
        }
        total / per_source.len() as f64
    }

    /// Render aggregates per subscribed source, merged across the source's
    /// layer SSRCs (the receiver keeps constant-size aggregates rather than
    /// an unbounded frame log).
    pub fn render_stats_per_source(&self) -> BTreeMap<SourceId, gso_media::RenderStats> {
        let mut per_source: BTreeMap<SourceId, gso_media::RenderStats> = BTreeMap::new();
        for (ssrc, receiver) in &self.receivers {
            let Some((publisher, kind, _)) = decode_ssrc(*ssrc) else { continue };
            let source = SourceId { client: publisher, kind };
            per_source.entry(source).or_default().merge(&receiver.render_stats());
        }
        per_source
    }
}

/// Summary metrics of one client's session.
#[derive(Debug, Clone, Copy)]
pub struct SessionMetrics {
    /// Mean video stall rate over subscribed sources.
    pub video_stall: f64,
    /// Mean voice stall rate over publishers heard.
    pub voice_stall: f64,
    /// Mean rendered framerate over subscribed sources.
    pub framerate: f64,
    /// Mean VMAF-proxy video quality over subscribed sources.
    pub quality: f64,
    /// Sender-side CPU utilization (work-unit model).
    pub sender_cpu: f64,
    /// Receiver-side CPU utilization.
    pub receiver_cpu: f64,
    /// Mean received media rate.
    pub avg_recv_rate: Bitrate,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_net::Node;
    use gso_rtp::{GsoTmmbr, RtcpPacket, TmmbrEntry};

    fn client(mode: PolicyMode) -> ClientNode {
        let mut cfg = ClientConfig::new(
            ClientId(1),
            mode,
            crate::workloads::ladder_for_mode(mode),
            vec![SubscribeIntent {
                source: SourceId::video(ClientId(2)),
                max_resolution: gso_algo::Resolution::R720,
                tag: 0,
            }],
        );
        // Start with a healthy estimate so the baseline template enables
        // layers immediately (in a live run probing does this discovery).
        cfg.bwe.initial_rate = Bitrate::from_mbps(2);
        ClientNode::new(cfg, NodeId(0), 42)
    }

    #[test]
    fn boot_signals_sdp_offer_and_subscribe_and_arms_timers() {
        let mut c = client(PolicyMode::Gso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);
        let msgs: Vec<CtrlMessage> =
            out.sends().iter().filter_map(|(_, p)| CtrlMessage::parse(p.data.clone())).collect();
        // Join happens via an SDP offer whose simulcastInfo carries the
        // negotiated ladder (§4.2).
        let CtrlMessage::SdpOffer { client, sdp } = &msgs[0] else {
            panic!("first message must be the SDP offer, got {:?}", msgs[0]);
        };
        assert_eq!(*client, ClientId(1));
        let offer = gso_control::SdpOffer::parse(sdp).expect("well-formed offer");
        assert_eq!(offer.ladders.len(), 1);
        assert_eq!(offer.ladders[0].1.len(), 15, "fine ladder advertised");
        assert!(matches!(&msgs[1], CtrlMessage::Subscribe { client, intents }
            if *client == ClientId(1) && intents.len() == 1));
        // Video, audio, fast and slow timers all armed.
        assert!(out.timers().len() >= 4);
    }

    #[test]
    fn gtmb_reconfigures_encoder_and_acks() {
        let mut c = client(PolicyMode::Gso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);

        let ssrc = ssrc_for(ClientId(1), StreamKind::Video, 360);
        let gtmb = RtcpPacket::GsoTmmbr(GsoTmmbr {
            sender_ssrc: Ssrc(0xC0DE),
            epoch: 0,
            request_seq: 9,
            entries: vec![TmmbrEntry { ssrc, bitrate: Bitrate::from_kbps(512), overhead: 40 }],
        });
        let mut out = Actions::default();
        c.on_packet(
            SimTime::from_millis(10),
            NodeId(0),
            Packet::new(RtcpPacket::serialize_compound(&[gtmb])),
            &mut out,
        );
        assert_eq!(c.video_enc.layer_rate(ssrc), Some(Bitrate::from_kbps(512)));
        // A GTBN acknowledgement goes back out.
        let acked = out.sends().iter().any(|(_, p)| {
            RtcpPacket::parse_compound(p.data.clone()).is_ok_and(|ps| {
                ps.iter().any(|x| matches!(x, RtcpPacket::GsoTmmbn(n) if n.request_seq == 9))
            })
        });
        assert!(acked, "GTMB must be acknowledged with GTBN");
    }

    fn gtmb_packet(epoch: u32, seq: u32, kbps: u64) -> Packet {
        let ssrc = ssrc_for(ClientId(1), StreamKind::Video, 360);
        Packet::new(RtcpPacket::serialize_compound(&[RtcpPacket::GsoTmmbr(GsoTmmbr {
            sender_ssrc: Ssrc(0xC0DE),
            epoch,
            request_seq: seq,
            entries: vec![TmmbrEntry { ssrc, bitrate: Bitrate::from_kbps(kbps), overhead: 40 }],
        })]))
    }

    fn acks_in(out: &Actions) -> usize {
        out.sends()
            .iter()
            .filter(|(_, p)| {
                RtcpPacket::parse_compound(p.data.clone())
                    .is_ok_and(|ps| ps.iter().any(|x| matches!(x, RtcpPacket::GsoTmmbn(_))))
            })
            .count()
    }

    #[test]
    fn stale_epoch_gtmb_rejected_without_ack() {
        let mut c = client(PolicyMode::Gso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);
        let ssrc = ssrc_for(ClientId(1), StreamKind::Video, 360);
        // Epoch 2 config applies.
        let mut out = Actions::default();
        c.on_packet(SimTime::from_millis(10), NodeId(0), gtmb_packet(2, 1, 512), &mut out);
        assert_eq!(c.video_enc.layer_rate(ssrc), Some(Bitrate::from_kbps(512)));
        assert_eq!(acks_in(&out), 1);
        // A straggler from the pre-restart controller (epoch 1) must not
        // clobber it — and must not be acked.
        let mut out = Actions::default();
        c.on_packet(SimTime::from_millis(20), NodeId(0), gtmb_packet(1, 9, 64), &mut out);
        assert_eq!(c.video_enc.layer_rate(ssrc), Some(Bitrate::from_kbps(512)));
        assert_eq!(acks_in(&out), 0, "stale-epoch GTMB must not be acknowledged");
    }

    #[test]
    fn duplicated_gtmb_reacked_not_reapplied() {
        let mut c = client(PolicyMode::Gso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);
        let ssrc = ssrc_for(ClientId(1), StreamKind::Video, 360);
        let mut out = Actions::default();
        c.on_packet(SimTime::from_millis(10), NodeId(0), gtmb_packet(0, 5, 512), &mut out);
        assert_eq!(acks_in(&out), 1);
        // A later config moves the rate; then the network re-delivers the
        // old (epoch 0, seq 5) packet. It must be re-acked — the ack may
        // have been lost — but not re-applied.
        let mut out = Actions::default();
        c.on_packet(SimTime::from_millis(20), NodeId(0), gtmb_packet(0, 6, 800), &mut out);
        let mut out = Actions::default();
        c.on_packet(SimTime::from_millis(30), NodeId(0), gtmb_packet(0, 5, 512), &mut out);
        assert_eq!(acks_in(&out), 1, "duplicate must be re-acked");
        assert_eq!(
            c.video_enc.layer_rate(ssrc),
            Some(Bitrate::from_kbps(800)),
            "duplicate must not roll the encoder back"
        );
    }

    /// Regression: the controller epoch wraps `u32` under a long restart
    /// storm. The first configuration after the wrap (epoch 2 following
    /// `u32::MAX`) is *newer* in RFC 1982 serial terms — the old plain
    /// `<`/`>` comparison classified it as stale and the client deadlocked,
    /// rejecting every valid GTMBR from the live controller forever.
    #[test]
    fn epoch_wraparound_config_applies_instead_of_deadlocking() {
        let mut c = client(PolicyMode::Gso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);
        let ssrc = ssrc_for(ClientId(1), StreamKind::Video, 360);

        // The client walks up to a pre-wrap generation the way a real
        // deployment does: each restart advances the epoch by far less than
        // 2^31, so serial comparison accepts every hop.
        for (i, epoch) in [0x7000_0000, 0xE000_0000, u32::MAX].into_iter().enumerate() {
            let mut out = Actions::default();
            let t = SimTime::from_millis(10 + i as u64);
            c.on_packet(t, NodeId(0), gtmb_packet(epoch, 1, 512), &mut out);
            assert_eq!(acks_in(&out), 1, "epoch {epoch:#x} must be adopted");
        }
        assert_eq!(c.video_enc.layer_rate(ssrc), Some(Bitrate::from_kbps(512)));

        // The controller restarts twice more; its epoch wraps to 2. The new
        // generation's configuration must apply and be acked (pre-fix: the
        // `req.epoch < ctrl_epoch` check rejected it as stale).
        let mut out = Actions::default();
        c.on_packet(SimTime::from_millis(20), NodeId(0), gtmb_packet(2, 1, 800), &mut out);
        assert_eq!(
            c.video_enc.layer_rate(ssrc),
            Some(Bitrate::from_kbps(800)),
            "post-wrap epoch must be treated as newer, not stale"
        );
        assert_eq!(acks_in(&out), 1, "post-wrap GTMB must be acknowledged");

        // A genuine straggler from the pre-wrap generation is still stale.
        let mut out = Actions::default();
        c.on_packet(SimTime::from_millis(30), NodeId(0), gtmb_packet(u32::MAX, 9, 64), &mut out);
        assert_eq!(c.video_enc.layer_rate(ssrc), Some(Bitrate::from_kbps(800)));
        assert_eq!(acks_in(&out), 0, "pre-wrap straggler must stay rejected");
    }

    #[test]
    fn crash_silences_and_rejoin_reboots_fresh() {
        let mut c = client(PolicyMode::Gso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);
        c.on_packet(SimTime::from_millis(10), NodeId(0), gtmb_packet(0, 1, 512), &mut out);
        c.crash();
        assert!(c.is_down());
        // While down: timers and packets are ignored.
        let mut out = Actions::default();
        c.on_timer(SimTime::from_millis(100), 3, &mut out);
        c.on_packet(SimTime::from_millis(110), NodeId(0), gtmb_packet(0, 2, 256), &mut out);
        assert!(out.is_empty(), "a crashed client is silent");
        // Rejoin: fresh boot generation, SDP offer + subscribe go out again,
        // and the applied-config memory is gone (seq 2 now applies).
        let mut out = Actions::default();
        c.rejoin(SimTime::from_secs(2), &mut out);
        let offers = out
            .sends()
            .iter()
            .filter_map(|(_, p)| CtrlMessage::parse(p.data.clone()))
            .filter(|m| matches!(m, CtrlMessage::SdpOffer { .. }))
            .count();
        assert_eq!(offers, 1, "rejoin must re-offer");
        // Stale-generation timer (armed pre-crash) is a no-op…
        let mut out = Actions::default();
        c.on_timer(SimTime::from_secs(2), 3, &mut out);
        assert!(out.is_empty(), "pre-crash timer chains must die");
        // …while the new generation's fast tick runs.
        let mut out = Actions::default();
        c.on_timer(SimTime::from_secs(2) + SimDuration::from_millis(100), (1 << 8) | 3, &mut out);
        assert!(out.timers().iter().any(|&(_, t)| t == (1 << 8) | 3));
    }

    #[test]
    fn baseline_mode_self_configures_from_template() {
        let mut c = client(PolicyMode::NonGso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);
        // The template enables layers from the local (initial) estimate
        // without any controller involvement.
        assert!(
            !c.video_enc.total_target().is_zero(),
            "template must enable at least the small layer"
        );
    }

    #[test]
    fn gso_mode_starts_with_all_layers_disabled() {
        let mut c = client(PolicyMode::Gso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);
        assert!(c.video_enc.total_target().is_zero(), "GSO waits for the controller");
    }

    #[test]
    fn keyframe_request_ctrl_forces_keyframe() {
        let mut c = client(PolicyMode::NonGso);
        let mut out = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut out);
        // Drain the initial keyframe.
        let mut out = Actions::default();
        c.on_timer(SimTime::from_millis(66), 1, &mut out);
        let req = CtrlMessage::KeyframeRequest { source: SourceId::video(ClientId(1)) };
        let mut out = Actions::default();
        c.on_packet(SimTime::from_millis(100), NodeId(0), Packet::new(req.serialize()), &mut out);
        // Next frame tick produces keyframes on enabled layers.
        let mut out = Actions::default();
        c.on_timer(SimTime::from_millis(132), 1, &mut out);
        let has_keyframe = out.sends().iter().any(|(_, p)| {
            gso_rtp::RtpPacket::parse(p.data.clone())
                .ok()
                .and_then(|pkt| gso_media::FragmentHeader::parse(&pkt.payload))
                .is_some_and(|h| h.keyframe)
        });
        assert!(has_keyframe, "keyframe request must take effect");
    }

    #[test]
    fn nack_triggers_retransmission_from_buffer() {
        let mut c = client(PolicyMode::NonGso);
        let mut boot = Actions::default();
        c.on_timer(SimTime::ZERO, 0, &mut boot);
        // Produce one frame's packets.
        let mut out = Actions::default();
        c.on_timer(SimTime::from_millis(66), 1, &mut out);
        let first_media = out
            .sends()
            .iter()
            .filter_map(|(_, p)| gso_rtp::RtpPacket::parse(p.data.clone()).ok())
            .next()
            .expect("media sent");
        // NACK that sequence.
        let nack = RtcpPacket::Nack(gso_rtp::Nack {
            sender_ssrc: Ssrc(1),
            media_ssrc: first_media.ssrc,
            lost: vec![first_media.sequence],
        });
        let mut out = Actions::default();
        c.on_packet(
            SimTime::from_millis(200),
            NodeId(0),
            Packet::new(RtcpPacket::serialize_compound(&[nack])),
            &mut out,
        );
        let retransmitted = out.sends().iter().any(|(_, p)| {
            gso_rtp::RtpPacket::parse(p.data.clone()).is_ok_and(|pkt| {
                pkt.sequence == first_media.sequence && pkt.ssrc == first_media.ssrc
            })
        });
        assert!(retransmitted);
    }
}
