//! Control-channel wire format (accessing node ↔ conference node).
//!
//! Client-facing control rides in-band as RTCP APP messages (`gso-rtp`).
//! Between infrastructure nodes the paper uses internal RPC; here that
//! channel is a simple length-checked binary format carried over the same
//! packet simulator, so control traffic experiences the (clean, fast)
//! backbone links rather than being teleported.
//!
//! Control packets start with the magic byte `0xCC`, which cannot collide
//! with RTP/RTCP (whose first byte always has version bits `10`, i.e.
//! `0x80..=0xBF`).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gso_algo::{Ladder, Resolution, SourceId, StreamSpec};
use gso_control::{ForwardingRule, SubscribeIntent};
use gso_util::{Bitrate, ClientId, Ssrc, StreamKind};

/// Magic first byte of every control packet.
pub const CTRL_MAGIC: u8 = 0xCC;

/// A control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMessage {
    /// Client joined, with its negotiated ladders (the simulcastInfo).
    Join {
        /// The joining client.
        client: ClientId,
        /// Negotiated per-kind bitrate ladders.
        ladders: Vec<(StreamKind, Ladder)>,
    },
    /// Client left.
    Leave {
        /// The departing client.
        client: ClientId,
    },
    /// Client's subscription intents (full replacement).
    Subscribe {
        /// The subscribing client.
        client: ClientId,
        /// The full new set of intents.
        intents: Vec<SubscribeIntent>,
    },
    /// Uplink bandwidth report relayed from a client's SEMB.
    UplinkReport {
        /// The reporting client.
        client: ClientId,
        /// Measured uplink bandwidth.
        bitrate: Bitrate,
    },
    /// Downlink bandwidth measured at the accessing node for a client.
    DownlinkReport {
        /// The client whose downlink was measured.
        client: ClientId,
        /// Measured downlink bandwidth.
        bitrate: Bitrate,
    },
    /// Speaker change (None clears).
    Speaker {
        /// The new active speaker.
        client: Option<ClientId>,
    },
    /// CN → AN: forward this serialized RTCP compound to a client in-band.
    ConfigPush {
        /// Controller epoch of the sender (for split-brain fencing).
        epoch: u32,
        /// The destination client.
        client: ClientId,
        /// The serialized RTCP compound.
        rtcp: Bytes,
    },
    /// AN → CN: a client's GTBN acknowledgement (serialized RTCP).
    AckRelay {
        /// The acknowledging client.
        client: ClientId,
        /// The serialized RTCP compound.
        rtcp: Bytes,
    },
    /// CN → AN: the current forwarding rules (full replacement).
    Rules {
        /// Controller epoch of the sender (for split-brain fencing).
        epoch: u32,
        /// The full new rule set.
        rules: Vec<ForwardingRule>,
    },
    /// Subscriber needs a keyframe from a publisher source.
    KeyframeRequest {
        /// The source that must produce the keyframe.
        source: SourceId,
    },
    /// Client → CN: an SDP offer with simulcastInfo (§4.2), as text.
    SdpOffer {
        /// The offering client.
        client: ClientId,
        /// The offer text.
        sdp: String,
    },
    /// CN → client: the SDP answer with per-layer SSRC assignments.
    SdpAnswer {
        /// The answered client.
        client: ClientId,
        /// The answer text.
        sdp: String,
    },
    /// CN → AN: a restarted controller asks for the node's view of its
    /// attached clients (§7: recovery without interruption). Carries the
    /// sender's epoch so accessing nodes re-home to a promoted standby
    /// (and fence a stale one).
    ResyncRequest {
        /// Controller epoch of the sender.
        epoch: u32,
    },
    /// AN → CN: the node's cached client state, from which a restarted
    /// controller reconstructs its global picture.
    ResyncState {
        /// One snapshot per locally-attached client.
        clients: Vec<ClientSnapshot>,
    },
    /// Active shard → standby: "I am alive at (epoch, seq)". Renews the
    /// standby's lease on the shard.
    ShardHeartbeat {
        /// Controller epoch of the sender.
        epoch: u32,
        /// Monotone heartbeat sequence within the epoch.
        seq: u64,
    },
    /// Active shard → standby: one replication delta of controller state.
    SnapshotDelta {
        /// The delta (bounded, digest-covered; see `gso-cluster`).
        delta: gso_cluster::SnapshotDelta,
    },
    /// Standby → active shard: a delta arrived against the wrong base
    /// (gap / reorder / digest mismatch) — re-send a full snapshot.
    SnapshotNack {
        /// The sequence the standby actually holds.
        have_seq: u64,
    },
    /// AN → CN: "your epoch is stale; a controller at `epoch` owns this
    /// conference now". The receiving zombie shard steps down instead of
    /// fighting the fence.
    Fence {
        /// The live epoch the accessing node is following.
        epoch: u32,
    },
}

pub use gso_control::ClientSnapshot;

fn put_kind(b: &mut BytesMut, k: StreamKind) {
    b.put_u8(match k {
        StreamKind::Audio => 0,
        StreamKind::Video => 1,
        StreamKind::Screen => 2,
    });
}

fn get_kind(b: &mut impl Buf) -> Option<StreamKind> {
    match b.get_u8() {
        0 => Some(StreamKind::Audio),
        1 => Some(StreamKind::Video),
        2 => Some(StreamKind::Screen),
        _ => None,
    }
}

/// Encode one [`ClientSnapshot`] (shared by `ResyncState` and
/// `SnapshotDelta`).
fn put_snapshot(b: &mut BytesMut, c: &ClientSnapshot) {
    b.put_u32(c.client.0);
    b.put_u8(c.ladders.len() as u8);
    for (kind, ladder) in &c.ladders {
        put_kind(b, *kind);
        b.put_u16(ladder.len() as u16);
        for s in ladder.specs() {
            b.put_u16(s.resolution.0);
            b.put_u64(s.bitrate.as_bps());
            b.put_f64(s.qoe);
        }
    }
    b.put_u16(c.intents.len() as u16);
    for i in &c.intents {
        b.put_u32(i.source.client.0);
        put_kind(b, i.source.kind);
        b.put_u16(i.max_resolution.0);
        b.put_u8(i.tag);
    }
    b.put_u64(c.uplink.as_bps());
    b.put_u64(c.downlink.as_bps());
}

/// Decode one [`ClientSnapshot`]; `None` on truncation or invalid data.
fn get_snapshot(b: &mut Bytes) -> Option<ClientSnapshot> {
    fn need(b: &impl Buf, n: usize) -> Option<()> {
        (b.remaining() >= n).then_some(())
    }
    need(b, 5)?;
    let client = ClientId(b.get_u32());
    let nl = b.get_u8() as usize;
    let mut ladders = Vec::with_capacity(nl);
    for _ in 0..nl {
        need(b, 3)?;
        let kind = get_kind(b)?;
        let m = b.get_u16() as usize;
        need(b, m.checked_mul(18)?)?;
        let mut specs = Vec::with_capacity(m);
        for _ in 0..m {
            let res = Resolution(b.get_u16());
            let rate = Bitrate::from_bps(b.get_u64());
            let qoe = b.get_f64();
            specs.push(StreamSpec::new(res, rate, qoe));
        }
        ladders.push((kind, Ladder::new(specs).ok()?));
    }
    need(b, 2)?;
    let ni = b.get_u16() as usize;
    need(b, ni.checked_mul(8)?)?;
    let mut intents = Vec::with_capacity(ni);
    for _ in 0..ni {
        let pub_client = ClientId(b.get_u32());
        let kind = get_kind(b)?;
        let max_resolution = Resolution(b.get_u16());
        let tag = b.get_u8();
        intents.push(SubscribeIntent {
            source: SourceId { client: pub_client, kind },
            max_resolution,
            tag,
        });
    }
    need(b, 16)?;
    let uplink = Bitrate::from_bps(b.get_u64());
    let downlink = Bitrate::from_bps(b.get_u64());
    Some(ClientSnapshot { client, ladders, intents, uplink, downlink })
}

impl CtrlMessage {
    /// Serialize with the leading magic byte.
    pub fn serialize(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u8(CTRL_MAGIC);
        match self {
            CtrlMessage::Join { client, ladders } => {
                b.put_u8(1);
                b.put_u32(client.0);
                b.put_u8(ladders.len() as u8);
                for (kind, ladder) in ladders {
                    put_kind(&mut b, *kind);
                    b.put_u16(ladder.len() as u16);
                    for s in ladder.specs() {
                        b.put_u16(s.resolution.0);
                        b.put_u64(s.bitrate.as_bps());
                        b.put_f64(s.qoe);
                    }
                }
            }
            CtrlMessage::Leave { client } => {
                b.put_u8(2);
                b.put_u32(client.0);
            }
            CtrlMessage::Subscribe { client, intents } => {
                b.put_u8(3);
                b.put_u32(client.0);
                b.put_u16(intents.len() as u16);
                for i in intents {
                    b.put_u32(i.source.client.0);
                    put_kind(&mut b, i.source.kind);
                    b.put_u16(i.max_resolution.0);
                    b.put_u8(i.tag);
                }
            }
            CtrlMessage::UplinkReport { client, bitrate } => {
                b.put_u8(4);
                b.put_u32(client.0);
                b.put_u64(bitrate.as_bps());
            }
            CtrlMessage::DownlinkReport { client, bitrate } => {
                b.put_u8(5);
                b.put_u32(client.0);
                b.put_u64(bitrate.as_bps());
            }
            CtrlMessage::Speaker { client } => {
                b.put_u8(6);
                b.put_u32(client.map_or(0, |c| c.0 + 1));
            }
            CtrlMessage::ConfigPush { epoch, client, rtcp } => {
                b.put_u8(7);
                b.put_u32(*epoch);
                b.put_u32(client.0);
                b.put_u32(rtcp.len() as u32);
                b.extend_from_slice(rtcp);
            }
            CtrlMessage::AckRelay { client, rtcp } => {
                b.put_u8(8);
                b.put_u32(client.0);
                b.put_u32(rtcp.len() as u32);
                b.extend_from_slice(rtcp);
            }
            CtrlMessage::Rules { epoch, rules } => {
                b.put_u8(9);
                b.put_u32(*epoch);
                b.put_u32(rules.len() as u32);
                for r in rules {
                    b.put_u32(r.subscriber.0);
                    b.put_u32(r.source.client.0);
                    put_kind(&mut b, r.source.kind);
                    b.put_u8(r.tag);
                    b.put_u32(r.ssrc.0);
                    b.put_u64(r.bitrate.as_bps());
                }
            }
            CtrlMessage::KeyframeRequest { source } => {
                b.put_u8(10);
                b.put_u32(source.client.0);
                put_kind(&mut b, source.kind);
            }
            CtrlMessage::SdpOffer { client, sdp } => {
                b.put_u8(11);
                b.put_u32(client.0);
                b.put_u32(sdp.len() as u32);
                b.extend_from_slice(sdp.as_bytes());
            }
            CtrlMessage::SdpAnswer { client, sdp } => {
                b.put_u8(12);
                b.put_u32(client.0);
                b.put_u32(sdp.len() as u32);
                b.extend_from_slice(sdp.as_bytes());
            }
            CtrlMessage::ResyncRequest { epoch } => {
                b.put_u8(13);
                b.put_u32(*epoch);
            }
            CtrlMessage::ResyncState { clients } => {
                b.put_u8(14);
                b.put_u16(clients.len() as u16);
                for c in clients {
                    put_snapshot(&mut b, c);
                }
            }
            CtrlMessage::ShardHeartbeat { epoch, seq } => {
                b.put_u8(15);
                b.put_u32(*epoch);
                b.put_u64(*seq);
            }
            CtrlMessage::SnapshotDelta { delta } => {
                b.put_u8(16);
                b.put_u32(delta.epoch);
                b.put_u64(delta.base_seq);
                b.put_u64(delta.seq);
                b.put_u64(delta.digest);
                b.put_u16(delta.changed.len() as u16);
                for c in &delta.changed {
                    put_snapshot(&mut b, c);
                }
                b.put_u16(delta.removed.len() as u16);
                for id in &delta.removed {
                    b.put_u32(id.0);
                }
            }
            CtrlMessage::SnapshotNack { have_seq } => {
                b.put_u8(17);
                b.put_u64(*have_seq);
            }
            CtrlMessage::Fence { epoch } => {
                b.put_u8(18);
                b.put_u32(*epoch);
            }
        }
        b.freeze()
    }

    /// Parse; `None` for anything malformed, truncated or non-control.
    pub fn parse(mut data: Bytes) -> Option<CtrlMessage> {
        if data.len() < 2 || data.get_u8() != CTRL_MAGIC {
            return None;
        }
        let tag = data.get_u8();
        let b = &mut data;
        // Truncation guard: every fixed-size read is preceded by a check so
        // arbitrary bytes can never panic the parser.
        fn need(b: &impl Buf, n: usize) -> Option<()> {
            (b.remaining() >= n).then_some(())
        }
        Some(match tag {
            1 => {
                need(b, 5)?;
                let client = ClientId(b.get_u32());
                let n = b.get_u8() as usize;
                let mut ladders = Vec::with_capacity(n);
                for _ in 0..n {
                    need(b, 3)?;
                    let kind = get_kind(b)?;
                    let m = b.get_u16() as usize;
                    need(b, m.checked_mul(18)?)?;
                    let mut specs = Vec::with_capacity(m);
                    for _ in 0..m {
                        let res = Resolution(b.get_u16());
                        let rate = Bitrate::from_bps(b.get_u64());
                        let qoe = b.get_f64();
                        specs.push(StreamSpec::new(res, rate, qoe));
                    }
                    ladders.push((kind, Ladder::new(specs).ok()?));
                }
                CtrlMessage::Join { client, ladders }
            }
            2 => {
                need(b, 4)?;
                CtrlMessage::Leave { client: ClientId(b.get_u32()) }
            }
            3 => {
                need(b, 6)?;
                let client = ClientId(b.get_u32());
                let n = b.get_u16() as usize;
                need(b, n.checked_mul(8)?)?;
                let mut intents = Vec::with_capacity(n);
                for _ in 0..n {
                    let pub_client = ClientId(b.get_u32());
                    let kind = get_kind(b)?;
                    let max_resolution = Resolution(b.get_u16());
                    let tag = b.get_u8();
                    intents.push(SubscribeIntent {
                        source: SourceId { client: pub_client, kind },
                        max_resolution,
                        tag,
                    });
                }
                CtrlMessage::Subscribe { client, intents }
            }
            4 | 5 => {
                need(b, 12)?;
                let client = ClientId(b.get_u32());
                let bitrate = Bitrate::from_bps(b.get_u64());
                if tag == 4 {
                    CtrlMessage::UplinkReport { client, bitrate }
                } else {
                    CtrlMessage::DownlinkReport { client, bitrate }
                }
            }
            6 => {
                need(b, 4)?;
                let raw = b.get_u32();
                CtrlMessage::Speaker { client: (raw > 0).then(|| ClientId(raw - 1)) }
            }
            7 => {
                need(b, 12)?;
                let epoch = b.get_u32();
                let client = ClientId(b.get_u32());
                let len = b.get_u32() as usize;
                need(b, len)?;
                let rtcp = b.copy_to_bytes(len);
                CtrlMessage::ConfigPush { epoch, client, rtcp }
            }
            8 => {
                need(b, 8)?;
                let client = ClientId(b.get_u32());
                let len = b.get_u32() as usize;
                need(b, len)?;
                let rtcp = b.copy_to_bytes(len);
                CtrlMessage::AckRelay { client, rtcp }
            }
            9 => {
                need(b, 8)?;
                let epoch = b.get_u32();
                let n = b.get_u32() as usize;
                need(b, n.checked_mul(22)?)?;
                let mut rules = Vec::with_capacity(n);
                for _ in 0..n {
                    let subscriber = ClientId(b.get_u32());
                    let pub_client = ClientId(b.get_u32());
                    let kind = get_kind(b)?;
                    let tag = b.get_u8();
                    let ssrc = Ssrc(b.get_u32());
                    let bitrate = Bitrate::from_bps(b.get_u64());
                    rules.push(ForwardingRule {
                        subscriber,
                        source: SourceId { client: pub_client, kind },
                        tag,
                        ssrc,
                        bitrate,
                    });
                }
                CtrlMessage::Rules { epoch, rules }
            }
            10 => {
                need(b, 5)?;
                let client = ClientId(b.get_u32());
                let kind = get_kind(b)?;
                CtrlMessage::KeyframeRequest { source: SourceId { client, kind } }
            }
            11 | 12 => {
                need(b, 8)?;
                let client = ClientId(b.get_u32());
                let len = b.get_u32() as usize;
                need(b, len)?;
                let sdp = String::from_utf8(b.copy_to_bytes(len).to_vec()).ok()?;
                if tag == 11 {
                    CtrlMessage::SdpOffer { client, sdp }
                } else {
                    CtrlMessage::SdpAnswer { client, sdp }
                }
            }
            13 => {
                need(b, 4)?;
                CtrlMessage::ResyncRequest { epoch: b.get_u32() }
            }
            14 => {
                need(b, 2)?;
                let n = b.get_u16() as usize;
                let mut clients = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    clients.push(get_snapshot(b)?);
                }
                CtrlMessage::ResyncState { clients }
            }
            15 => {
                need(b, 12)?;
                let epoch = b.get_u32();
                let seq = b.get_u64();
                CtrlMessage::ShardHeartbeat { epoch, seq }
            }
            16 => {
                need(b, 30)?;
                let epoch = b.get_u32();
                let base_seq = b.get_u64();
                let seq = b.get_u64();
                let digest = b.get_u64();
                let n = b.get_u16() as usize;
                let mut changed = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    changed.push(get_snapshot(b)?);
                }
                need(b, 2)?;
                let nr = b.get_u16() as usize;
                need(b, nr.checked_mul(4)?)?;
                let mut removed = Vec::with_capacity(nr);
                for _ in 0..nr {
                    removed.push(ClientId(b.get_u32()));
                }
                CtrlMessage::SnapshotDelta {
                    delta: gso_cluster::SnapshotDelta {
                        epoch,
                        base_seq,
                        seq,
                        changed,
                        removed,
                        digest,
                    },
                }
            }
            17 => {
                need(b, 8)?;
                CtrlMessage::SnapshotNack { have_seq: b.get_u64() }
            }
            18 => {
                need(b, 4)?;
                CtrlMessage::Fence { epoch: b.get_u32() }
            }
            _ => return None,
        })
    }

    /// Is a raw packet a control packet (vs RTP/RTCP)?
    pub fn is_ctrl(data: &[u8]) -> bool {
        data.first() == Some(&CTRL_MAGIC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::ladders;

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            CtrlMessage::Join {
                client: ClientId(7),
                ladders: vec![
                    (StreamKind::Video, ladders::paper_table1()),
                    (StreamKind::Screen, ladders::coarse3()),
                ],
            },
            CtrlMessage::Leave { client: ClientId(3) },
            CtrlMessage::Subscribe {
                client: ClientId(2),
                intents: vec![SubscribeIntent {
                    source: SourceId::video(ClientId(1)),
                    max_resolution: Resolution::R360,
                    tag: 1,
                }],
            },
            CtrlMessage::UplinkReport { client: ClientId(1), bitrate: Bitrate::from_kbps(1_234) },
            CtrlMessage::DownlinkReport { client: ClientId(1), bitrate: Bitrate::from_kbps(999) },
            CtrlMessage::Speaker { client: Some(ClientId(0)) },
            CtrlMessage::Speaker { client: None },
            CtrlMessage::ConfigPush {
                epoch: 3,
                client: ClientId(4),
                rtcp: Bytes::from_static(b"abc"),
            },
            CtrlMessage::AckRelay { client: ClientId(4), rtcp: Bytes::from_static(b"xyz0") },
            CtrlMessage::Rules {
                epoch: u32::MAX,
                rules: vec![ForwardingRule {
                    subscriber: ClientId(2),
                    source: SourceId::video(ClientId(1)),
                    tag: 0,
                    ssrc: Ssrc(0x10001),
                    bitrate: Bitrate::from_kbps(800),
                }],
            },
            CtrlMessage::KeyframeRequest { source: SourceId::screen(ClientId(5)) },
            CtrlMessage::SdpOffer { client: ClientId(6), sdp: "v=0\r\n".into() },
            CtrlMessage::SdpAnswer { client: ClientId(6), sdp: "v=0\r\na=ssrc:1\r\n".into() },
            CtrlMessage::ResyncRequest { epoch: 2 },
            CtrlMessage::ResyncState {
                clients: vec![
                    ClientSnapshot {
                        client: ClientId(1),
                        ladders: vec![(StreamKind::Video, ladders::paper_table1())],
                        intents: vec![SubscribeIntent {
                            source: SourceId::video(ClientId(2)),
                            max_resolution: Resolution::R720,
                            tag: 0,
                        }],
                        uplink: Bitrate::from_kbps(3_000),
                        downlink: Bitrate::from_kbps(2_500),
                    },
                    ClientSnapshot {
                        client: ClientId(2),
                        ladders: vec![],
                        intents: vec![],
                        uplink: Bitrate::ZERO,
                        downlink: Bitrate::ZERO,
                    },
                ],
            },
            CtrlMessage::ShardHeartbeat { epoch: 9, seq: u64::MAX - 1 },
            CtrlMessage::SnapshotDelta {
                delta: gso_cluster::SnapshotDelta {
                    epoch: 1,
                    base_seq: 41,
                    seq: 42,
                    changed: vec![ClientSnapshot {
                        client: ClientId(3),
                        ladders: vec![(StreamKind::Video, ladders::coarse3())],
                        intents: vec![],
                        uplink: Bitrate::from_kbps(700),
                        downlink: Bitrate::ZERO,
                    }],
                    removed: vec![ClientId(1), ClientId(9)],
                    digest: 0xdead_beef_cafe_f00d,
                },
            },
            CtrlMessage::SnapshotDelta {
                delta: gso_cluster::SnapshotDelta {
                    epoch: 0,
                    base_seq: 0,
                    seq: 1,
                    changed: vec![],
                    removed: vec![],
                    digest: 7,
                },
            },
            CtrlMessage::SnapshotNack { have_seq: 40 },
            CtrlMessage::Fence { epoch: 5 },
        ];
        for m in msgs {
            let wire = m.serialize();
            assert!(CtrlMessage::is_ctrl(&wire));
            let back = CtrlMessage::parse(wire).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn rejects_rtp_and_garbage() {
        assert!(CtrlMessage::parse(Bytes::from_static(&[0x80, 0x60, 0, 0])).is_none());
        assert!(CtrlMessage::parse(Bytes::new()).is_none());
        assert!(CtrlMessage::parse(Bytes::from_static(&[0xCC, 99, 0, 0, 0, 0])).is_none());
        assert!(!CtrlMessage::is_ctrl(&[0x80]));
    }

    #[test]
    fn truncated_embedded_rtcp_rejected() {
        let m = CtrlMessage::ConfigPush {
            epoch: 0,
            client: ClientId(1),
            rtcp: Bytes::from_static(b"hello"),
        };
        let wire = m.serialize();
        let cut = wire.slice(0..wire.len() - 2);
        assert!(CtrlMessage::parse(cut).is_none());
    }

    #[test]
    fn truncated_snapshot_delta_rejected() {
        let m = CtrlMessage::SnapshotDelta {
            delta: gso_cluster::SnapshotDelta {
                epoch: 1,
                base_seq: 1,
                seq: 2,
                changed: vec![ClientSnapshot {
                    client: ClientId(3),
                    ladders: vec![(StreamKind::Video, ladders::coarse3())],
                    intents: vec![],
                    uplink: Bitrate::from_kbps(700),
                    downlink: Bitrate::ZERO,
                }],
                removed: vec![ClientId(1)],
                digest: 99,
            },
        };
        let wire = m.serialize();
        for cut in [wire.len() - 1, wire.len() / 2, 3] {
            assert!(CtrlMessage::parse(wire.slice(0..cut)).is_none(), "cut at {cut}");
        }
    }
}
