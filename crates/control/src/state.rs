//! The conference node's global picture (§4.2).
//!
//! The conference node captures everything the controller needs: codec
//! capabilities (from SDP + `simulcastInfo` negotiation at join time),
//! subscription relations (from signaling), and network bandwidths (SEMB
//! uplink reports from clients, downlink reports from accessing nodes).
//! [`GlobalPicture::to_problem`] assembles the current picture into a
//! validated [`Problem`] for the solver, applying the audio-protection
//! subtraction (§7) and speaker/screen priority boosts (§4.4).

use gso_algo::{
    ClientSpec, Ladder, Problem, ProblemError, PublisherSource, Resolution, SourceId, Subscription,
};
use gso_detguard::{StableHasher, StateDigest};
use gso_util::{Bitrate, ClientId, SimTime, StreamKind};
use std::collections::BTreeMap;

/// A subscription intent as signaled by a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubscribeIntent {
    /// Publisher source the client wants.
    pub source: SourceId,
    /// Maximum acceptable resolution.
    pub max_resolution: Resolution,
    /// Virtual-publisher tag (0 default; used by speaker-first thumbnails).
    pub tag: u8,
}

/// What a client negotiated at join time (the `simulcastInfo` of §4.2).
#[derive(Debug, Clone)]
pub struct CodecCapability {
    /// Feasible stream set per source kind this client can encode.
    pub ladders: Vec<(StreamKind, Ladder)>,
}

/// One client's controller-relevant state: everything a restarted or
/// promoted controller needs to re-register the client without a round
/// trip to the endpoint itself. Accessing nodes cache these for §7 resync
/// (`ResyncState`), and an active shard streams them as deltas to its
/// standby for failover (gso-cluster).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSnapshot {
    /// The client.
    pub client: ClientId,
    /// Negotiated per-kind ladders (cached from the SDP offer / join).
    pub ladders: Vec<(StreamKind, Ladder)>,
    /// Last signaled subscription intents.
    pub intents: Vec<SubscribeIntent>,
    /// Last known SEMB uplink estimate (zero if none seen).
    pub uplink: Bitrate,
    /// Last known downlink estimate (zero if none seen).
    pub downlink: Bitrate,
}

impl StateDigest for ClientSnapshot {
    fn digest(&self, h: &mut StableHasher) {
        self.client.digest(h);
        self.ladders.digest(h);
        self.intents.digest(h);
        self.uplink.digest(h);
        self.downlink.digest(h);
    }
}

#[derive(Debug, Clone)]
struct ClientState {
    caps: CodecCapability,
    uplink: Option<Bitrate>,
    downlink: Option<Bitrate>,
    last_uplink_report: Option<SimTime>,
    last_downlink_report: Option<SimTime>,
    intents: Vec<SubscribeIntent>,
}

/// The assembled, continuously-updated view of one conference.
#[derive(Debug, Default)]
pub struct GlobalPicture {
    clients: BTreeMap<ClientId, ClientState>,
    speaker: Option<ClientId>,
    /// Default bandwidth assumed before the first report arrives.
    pub default_bandwidth: Bitrate,
    /// QoE boost applied to the active speaker's camera subscriptions.
    pub speaker_boost: f64,
    /// QoE boost applied to screen-share subscriptions.
    pub screen_boost: f64,
    /// Headroom subtracted from every link for audio + control (§7).
    pub audio_protection: Bitrate,
    /// Fraction of the reported bandwidth the controller may allocate.
    /// Estimates wobble around the true capacity; committing 100 % of them
    /// keeps the link saturated and the estimator oscillating, while a
    /// modest margin yields a stable fit just under the limit.
    pub allocation_headroom: f64,
}

impl StateDigest for SubscribeIntent {
    fn digest(&self, h: &mut StableHasher) {
        self.source.digest(h);
        self.max_resolution.digest(h);
        h.write_u8(self.tag);
    }
}

impl StateDigest for CodecCapability {
    fn digest(&self, h: &mut StableHasher) {
        self.ladders.digest(h);
    }
}

impl StateDigest for ClientState {
    fn digest(&self, h: &mut StableHasher) {
        self.caps.digest(h);
        self.uplink.digest(h);
        self.downlink.digest(h);
        self.last_uplink_report.digest(h);
        self.last_downlink_report.digest(h);
        self.intents.digest(h);
    }
}

impl StateDigest for GlobalPicture {
    fn digest(&self, h: &mut StableHasher) {
        self.clients.digest(h);
        self.speaker.digest(h);
        self.default_bandwidth.digest(h);
        h.write_f64(self.speaker_boost);
        h.write_f64(self.screen_boost);
        self.audio_protection.digest(h);
        h.write_f64(self.allocation_headroom);
    }
}

impl GlobalPicture {
    /// A picture with the paper-calibrated defaults.
    pub fn new() -> Self {
        GlobalPicture {
            clients: BTreeMap::new(),
            speaker: None,
            default_bandwidth: Bitrate::from_kbps(300),
            speaker_boost: gso_algo::qoe::SPEAKER_BOOST,
            screen_boost: gso_algo::qoe::SCREEN_BOOST,
            audio_protection: Bitrate::from_kbps(50),
            allocation_headroom: 0.85,
        }
    }

    /// A client joined with negotiated capabilities.
    pub fn join(&mut self, id: ClientId, caps: CodecCapability) {
        self.clients.insert(
            id,
            ClientState {
                caps,
                uplink: None,
                downlink: None,
                last_uplink_report: None,
                last_downlink_report: None,
                intents: Vec::new(),
            },
        );
    }

    /// A client left; its subscriptions (in both directions) disappear.
    pub fn leave(&mut self, id: ClientId) {
        self.clients.remove(&id);
        for c in self.clients.values_mut() {
            c.intents.retain(|i| i.source.client != id);
        }
        if self.speaker == Some(id) {
            self.speaker = None;
        }
    }

    /// Is this client currently in the conference?
    pub fn contains(&self, id: ClientId) -> bool {
        self.clients.contains_key(&id)
    }

    /// Number of joined clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True when the conference is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Replace a client's subscription intents.
    pub fn set_subscriptions(&mut self, id: ClientId, intents: Vec<SubscribeIntent>) {
        if let Some(c) = self.clients.get_mut(&id) {
            c.intents = intents;
        }
    }

    /// Record an uplink bandwidth report (from a SEMB message).
    pub fn report_uplink(&mut self, id: ClientId, now: SimTime, bandwidth: Bitrate) {
        if let Some(c) = self.clients.get_mut(&id) {
            c.uplink = Some(bandwidth);
            c.last_uplink_report = Some(now);
        }
    }

    /// Record a downlink bandwidth report (from an accessing node).
    pub fn report_downlink(&mut self, id: ClientId, now: SimTime, bandwidth: Bitrate) {
        if let Some(c) = self.clients.get_mut(&id) {
            c.downlink = Some(bandwidth);
            c.last_downlink_report = Some(now);
        }
    }

    /// Mark the active speaker (boosts its camera subscriptions).
    pub fn set_speaker(&mut self, id: Option<ClientId>) {
        self.speaker = id;
    }

    /// Current speaker.
    pub fn speaker(&self) -> Option<ClientId> {
        self.speaker
    }

    /// Latest uplink estimate for a client.
    pub fn uplink_of(&self, id: ClientId) -> Option<Bitrate> {
        self.clients.get(&id).and_then(|c| c.uplink)
    }

    /// Latest downlink estimate for a client.
    pub fn downlink_of(&self, id: ClientId) -> Option<Bitrate> {
        self.clients.get(&id).and_then(|c| c.downlink)
    }

    /// The picture as one [`ClientSnapshot`] per client, in client order —
    /// the unit of shard → standby delta replication. Unreported
    /// bandwidths snapshot as zero (the standby falls back to
    /// [`Self::default_bandwidth`] on rebuild, exactly like a restarted
    /// controller absorbing `ResyncState`).
    pub fn snapshot(&self) -> Vec<ClientSnapshot> {
        self.clients
            .iter()
            .map(|(&id, c)| ClientSnapshot {
                client: id,
                ladders: c.caps.ladders.clone(),
                intents: c.intents.clone(),
                uplink: c.uplink.unwrap_or(Bitrate::ZERO),
                downlink: c.downlink.unwrap_or(Bitrate::ZERO),
            })
            .collect()
    }

    /// Build the solver input from the current picture.
    ///
    /// Bandwidths default to [`Self::default_bandwidth`] until first
    /// reported; the audio protection headroom is subtracted from both
    /// directions; speaker and screen subscriptions get their boosts.
    /// Intents pointing at departed clients or missing sources are dropped
    /// rather than failing the build.
    pub fn to_problem(&self) -> Result<Problem, ProblemError> {
        let clients: Vec<ClientSpec> = self
            .clients
            .iter()
            .map(|(&id, c)| {
                let uplink = c.uplink.unwrap_or(self.default_bandwidth);
                let downlink = c.downlink.unwrap_or(self.default_bandwidth);
                ClientSpec {
                    id,
                    uplink: uplink
                        .mul_f64(self.allocation_headroom)
                        .saturating_sub(self.audio_protection),
                    downlink: downlink
                        .mul_f64(self.allocation_headroom)
                        .saturating_sub(self.audio_protection),
                    sources: c
                        .caps
                        .ladders
                        .iter()
                        .map(|(kind, ladder)| PublisherSource {
                            id: SourceId { client: id, kind: *kind },
                            // sentinel: allow(hot-alloc, reason = "problem-assembly snapshot handed to the solver once per round; reuse is tracked by the zero-alloc roadmap item")
                            ladder: ladder.clone(),
                        })
                        // sentinel: allow(hot-alloc, reason = "problem-assembly snapshot handed to the solver once per round; reuse is tracked by the zero-alloc roadmap item")
                        .collect(),
                }
            })
            // sentinel: allow(hot-alloc, reason = "problem-assembly snapshot handed to the solver once per round; reuse is tracked by the zero-alloc roadmap item")
            .collect();

        // sentinel: allow(hot-alloc, reason = "problem-assembly snapshot handed to the solver once per round; reuse is tracked by the zero-alloc roadmap item")
        let mut subscriptions = Vec::new();
        for (&id, c) in &self.clients {
            for intent in &c.intents {
                // Drop dangling intents (publisher left, or source kind not
                // negotiated) — design-for-failure, not hard errors.
                let Some(publisher) = self.clients.get(&intent.source.client) else { continue };
                if intent.source.client == id {
                    continue;
                }
                if !publisher.caps.ladders.iter().any(|(k, _)| *k == intent.source.kind) {
                    continue;
                }
                let boost = if intent.source.kind == StreamKind::Screen {
                    self.screen_boost
                } else if self.speaker == Some(intent.source.client) {
                    self.speaker_boost
                } else {
                    1.0
                };
                // sentinel: allow(hot-alloc, reason = "problem-assembly snapshot handed to the solver once per round; reuse is tracked by the zero-alloc roadmap item")
                subscriptions.push(
                    Subscription::new(id, intent.source, intent.max_resolution)
                        .with_boost(boost)
                        .with_tag(intent.tag),
                );
            }
        }
        Problem::new(clients, subscriptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::ladders;

    fn caps() -> CodecCapability {
        CodecCapability { ladders: vec![(StreamKind::Video, ladders::paper_table1())] }
    }

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    #[test]
    fn join_report_subscribe_to_problem() {
        let mut g = GlobalPicture::new();
        g.join(ClientId(1), caps());
        g.join(ClientId(2), caps());
        g.report_uplink(ClientId(1), SimTime::from_secs(1), k(2_000));
        g.report_downlink(ClientId(2), SimTime::from_secs(1), k(1_000));
        g.set_subscriptions(
            ClientId(2),
            vec![SubscribeIntent {
                source: SourceId::video(ClientId(1)),
                max_resolution: Resolution::R720,
                tag: 0,
            }],
        );
        let p = g.to_problem().unwrap();
        assert_eq!(p.clients().len(), 2);
        assert_eq!(p.subscriptions().len(), 1);
        // Headroom factor and audio protection applied.
        assert_eq!(p.client(ClientId(1)).unwrap().uplink, k(1_650));
        assert_eq!(p.client(ClientId(2)).unwrap().downlink, k(800));
    }

    #[test]
    fn defaults_apply_before_first_report() {
        let mut g = GlobalPicture::new();
        g.join(ClientId(1), caps());
        let p = g.to_problem().unwrap();
        assert_eq!(p.client(ClientId(1)).unwrap().uplink, k(205)); // 300×0.85 − 50
    }

    #[test]
    fn leave_drops_dangling_intents() {
        let mut g = GlobalPicture::new();
        g.join(ClientId(1), caps());
        g.join(ClientId(2), caps());
        g.set_subscriptions(
            ClientId(2),
            vec![SubscribeIntent {
                source: SourceId::video(ClientId(1)),
                max_resolution: Resolution::R720,
                tag: 0,
            }],
        );
        g.leave(ClientId(1));
        let p = g.to_problem().unwrap();
        assert_eq!(p.clients().len(), 1);
        assert!(p.subscriptions().is_empty());
    }

    #[test]
    fn speaker_and_screen_boosts_applied() {
        let mut g = GlobalPicture::new();
        let mut speaker_caps = caps();
        speaker_caps.ladders.push((StreamKind::Screen, ladders::coarse3()));
        g.join(ClientId(1), speaker_caps);
        g.join(ClientId(2), caps());
        g.set_speaker(Some(ClientId(1)));
        g.set_subscriptions(
            ClientId(2),
            vec![
                SubscribeIntent {
                    source: SourceId::video(ClientId(1)),
                    max_resolution: Resolution::R720,
                    tag: 0,
                },
                SubscribeIntent {
                    source: SourceId::screen(ClientId(1)),
                    max_resolution: Resolution::R720,
                    tag: 0,
                },
            ],
        );
        let p = g.to_problem().unwrap();
        let subs = p.subscriptions_of(ClientId(2));
        let video = subs.iter().find(|s| s.source.kind == StreamKind::Video).unwrap();
        let screen = subs.iter().find(|s| s.source.kind == StreamKind::Screen).unwrap();
        assert_eq!(video.qoe_boost, gso_algo::qoe::SPEAKER_BOOST);
        assert_eq!(screen.qoe_boost, gso_algo::qoe::SCREEN_BOOST);
    }

    #[test]
    fn self_and_unknown_source_intents_dropped() {
        let mut g = GlobalPicture::new();
        g.join(ClientId(1), caps());
        g.set_subscriptions(
            ClientId(1),
            vec![
                SubscribeIntent {
                    source: SourceId::video(ClientId(1)), // self
                    max_resolution: Resolution::R720,
                    tag: 0,
                },
                SubscribeIntent {
                    source: SourceId::screen(ClientId(1)), // not negotiated
                    max_resolution: Resolution::R720,
                    tag: 0,
                },
            ],
        );
        let p = g.to_problem().unwrap();
        assert!(p.subscriptions().is_empty());
    }

    #[test]
    fn speaker_clears_when_speaker_leaves() {
        let mut g = GlobalPicture::new();
        g.join(ClientId(1), caps());
        g.set_speaker(Some(ClientId(1)));
        g.leave(ClientId(1));
        assert_eq!(g.speaker(), None);
        assert!(g.is_empty());
    }
}
