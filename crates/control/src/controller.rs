//! The GSO controller — the "brain" of a conference (§3).
//!
//! Composes the global picture, the bandwidth hysteresis gate, the control
//! scheduler, the solver and the feedback executor into one component with a
//! small event-driven surface: feed it reports and membership changes, call
//! [`GsoController::tick`] periodically, transmit whatever it returns.

use crate::failure::fallback_solution;
use crate::feedback::{FeedbackConfig, FeedbackExecutor, ForwardingRule};
use crate::hysteresis::{BandwidthHysteresis, HysteresisConfig};
use crate::scheduler::{ControlScheduler, SchedulerConfig};
use crate::state::{CodecCapability, GlobalPicture, SubscribeIntent};
use gso_algo::{
    diff, Problem, Solution, SolutionDiff, SolveEngine, SolveTrace, SolverConfig, SourceId, Tenancy,
};
use gso_rtp::{GsoTmmbn, GsoTmmbr};
use gso_telemetry::{keys, Telemetry};
use gso_util::{Bitrate, ClientId, SimTime, Ssrc};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Link direction, used as part of the hysteresis key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Client → accessing node.
    Uplink,
    /// Accessing node → client.
    Downlink,
}

/// Aggregate configuration.
#[derive(Debug, Clone, Default)]
pub struct ControllerConfig {
    /// Solver knobs.
    pub solver: SolverConfig,
    /// Scheduling cadence (1–3 s in production).
    pub scheduler: SchedulerConfig,
    /// Oscillation-avoidance gate.
    pub hysteresis: HysteresisConfig,
    /// GTMB reliability.
    pub feedback: FeedbackConfig,
    /// Relative bandwidth change that is an event trigger.
    pub event_threshold: f64,
    /// Keep the previous solution when it still satisfies the current
    /// constraints and the fresh one improves total QoE by less than this
    /// fraction — reconfiguration itself costs quality (layer switches wait
    /// for keyframes), so marginal wins are not worth taking (§7).
    pub stickiness: f64,
    /// Solve-deadline watchdog budget, in DP class-rows recomputed per
    /// round (the sim's deterministic work/latency proxy — see
    /// `CTRL_SOLVE_ROWS`). A round whose fresh solve exceeds the budget is
    /// served by `fallback_solution` instead, and the next round re-solves
    /// on the warm engine and re-promotes if it fits. `0` disables the
    /// watchdog.
    pub solve_deadline_rows: u64,
}

impl ControllerConfig {
    /// Paper-calibrated defaults.
    pub fn paper_defaults() -> Self {
        ControllerConfig {
            solver: SolverConfig::default(),
            scheduler: SchedulerConfig::default(),
            hysteresis: HysteresisConfig::default(),
            feedback: FeedbackConfig::default(),
            event_threshold: 0.15,
            stickiness: 0.10,
            solve_deadline_rows: 500_000,
        }
    }
}

/// An orchestration round prepared by [`GsoController::tick_prepare`],
/// waiting for its solve before [`GsoController::tick_commit`].
#[derive(Debug)]
pub struct RoundContext {
    problem: Arc<Problem>,
    must_fall_back: bool,
}

impl RoundContext {
    /// The problem snapshot this round must solve (shared with the batch
    /// scheduler's job).
    #[must_use]
    pub fn problem(&self) -> &Arc<Problem> {
        &self.problem
    }

    /// True when the round is forced into the §7 single-stream fallback —
    /// no solve needed; commit with `None`.
    #[must_use]
    pub fn must_fall_back(&self) -> bool {
        self.must_fall_back
    }
}

/// What [`GsoController::tick_prepare`] decided about this tick.
#[derive(Debug)]
pub enum TickPrep {
    /// No orchestration round is due.
    Idle,
    /// A round is due: solve the context's problem (unless it must fall
    /// back) and pass both to [`GsoController::tick_commit`].
    Round(RoundContext),
}

/// The solve a round's [`RoundContext`] asked for, produced inline by
/// [`GsoController::tick`] or by a `BatchScheduler` worker via
/// [`ControllerFleet`](crate::ControllerFleet).
#[derive(Debug)]
pub struct SolveOutcome {
    /// The fresh solution.
    pub solution: Solution,
    /// Per-iteration trace; required in debug builds (the commit audits
    /// against it), ignored in release.
    pub trace: Option<SolveTrace>,
    /// DP class-rows recomputed by this solve — the deterministic latency
    /// proxy the solve-deadline watchdog meters.
    pub rows_delta: u64,
}

/// One orchestration round's output.
#[derive(Debug)]
pub struct ControlOutput {
    /// Per-client layer configurations to transmit (GTMB).
    pub configs: Vec<(ClientId, GsoTmmbr)>,
    /// Media-plane forwarding rules.
    pub rules: Vec<ForwardingRule>,
    /// The full solution (for metrics/inspection).
    pub solution: Solution,
    /// Minimal reconfiguration relative to the previous round's solution
    /// (empty on the first round): what actually changes on the wire.
    pub churn: SolutionDiff,
    /// True when this round used the single-stream fallback (§7).
    pub fallback: bool,
}

/// The controller.
pub struct GsoController {
    /// The conference node's state store (public: signaling writes into it).
    pub picture: GlobalPicture,
    cfg: ControllerConfig,
    scheduler: ControlScheduler,
    hysteresis: BandwidthHysteresis<(ClientId, Direction)>,
    executor: FeedbackExecutor,
    /// Reusable solve engine: carries MCKP memos across ticks, so a tick
    /// where few clients changed re-solves only those clients' knapsacks.
    engine: SolveEngine,
    /// Effective fallback state of the most recent orchestration round;
    /// transitions are what increment `fallback.entered`/`fallback.exited`.
    fallback_mode: bool,
    /// Fallback cause: operator/exception override via [`Self::set_fallback`].
    manual_fallback: bool,
    /// Fallback cause: clients whose configuration exhausted the GTMB
    /// retransmission budget. Cleared when delivery works again (a later
    /// config is acked), or on leave/rejoin. Fallback exits when empty.
    failed_clients: BTreeSet<ClientId>,
    /// The watchdog downgraded the previous solving round (informational;
    /// the next round always retries on the warm engine).
    degraded: bool,
    /// Chaos/test hook: treat this many upcoming solves as deadline
    /// overruns regardless of their measured work.
    forced_overruns: u32,
    last_solution: Option<Solution>,
    /// Who owns this conference and at which tier; stamped into every
    /// problem snapshot so the fleet's admission/shedding layer can rank it.
    tenancy: Tenancy,
    /// Metrics sink (disabled by default; see `gso-telemetry`).
    telemetry: Telemetry,
}

impl GsoController {
    /// Build a controller; `controller_ssrc` identifies it in feedback.
    pub fn new(cfg: ControllerConfig, controller_ssrc: Ssrc) -> Self {
        GsoController {
            picture: GlobalPicture::new(),
            scheduler: ControlScheduler::new(cfg.scheduler.clone()),
            hysteresis: BandwidthHysteresis::new(cfg.hysteresis.clone()),
            executor: FeedbackExecutor::new(cfg.feedback.clone(), controller_ssrc),
            engine: SolveEngine::new(cfg.solver.clone()),
            cfg,
            fallback_mode: false,
            manual_fallback: false,
            failed_clients: BTreeSet::new(),
            degraded: false,
            forced_overruns: 0,
            last_solution: None,
            tenancy: Tenancy::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Label this conference with its owning tenant and service tier
    /// (default: tenant 0, normal). Read by the fleet's overload shedding
    /// to decide who degrades first; never read by the solver.
    pub fn set_tenancy(&mut self, tenancy: Tenancy) {
        self.tenancy = tenancy;
    }

    /// The conference's tenancy label.
    pub fn tenancy(&self) -> Tenancy {
        self.tenancy
    }

    /// Attach a metrics registry; shared with the feedback executor so
    /// solve work, churn and GTMB delivery all land in one export.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.executor.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// A client joined (signaling + SDP/simulcastInfo negotiation done).
    ///
    /// A join for an already-known `ClientId` is a *rejoin*: the endpoint
    /// crashed and came back with none of its previous state, so its
    /// delivery bookkeeping (pending config, retry budget, applied entry)
    /// is reset rather than continuing the old retransmission sequence,
    /// and it no longer counts as an undeliverable fallback cause.
    pub fn on_join(&mut self, id: ClientId, caps: CodecCapability) {
        if self.picture.contains(id) {
            self.executor.reset_client(id);
            self.failed_clients.remove(&id);
        }
        self.picture.join(id, caps);
        self.scheduler.trigger_event();
    }

    /// A client left.
    pub fn on_leave(&mut self, id: ClientId) {
        self.picture.leave(id);
        // Drop delivery state: without this the executor leaks per-client
        // entries forever and a reused ClientId would inherit a stale
        // `applied` configuration.
        self.executor.on_client_leave(id);
        self.failed_clients.remove(&id);
        self.scheduler.trigger_event();
    }

    /// A client updated its subscriptions.
    pub fn on_subscriptions(&mut self, id: ClientId, intents: Vec<SubscribeIntent>) {
        self.picture.set_subscriptions(id, intents);
        self.scheduler.trigger_event();
    }

    /// The active speaker changed.
    pub fn on_speaker(&mut self, id: Option<ClientId>) {
        self.picture.set_speaker(id);
        self.scheduler.trigger_event();
    }

    /// An uplink SEMB report arrived.
    pub fn on_uplink_report(&mut self, now: SimTime, client: ClientId, measured: Bitrate) {
        let prev = self.picture.uplink_of(client);
        let effective = self.hysteresis.filter((client, Direction::Uplink), now, measured);
        self.picture.report_uplink(client, now, effective);
        self.maybe_trigger(prev, effective);
    }

    /// A downlink report from an accessing node arrived.
    pub fn on_downlink_report(&mut self, now: SimTime, client: ClientId, measured: Bitrate) {
        let prev = self.picture.downlink_of(client);
        let effective = self.hysteresis.filter((client, Direction::Downlink), now, measured);
        self.picture.report_downlink(client, now, effective);
        self.maybe_trigger(prev, effective);
    }

    fn maybe_trigger(&mut self, prev: Option<Bitrate>, new: Bitrate) {
        let Some(prev) = prev else {
            self.scheduler.trigger_event();
            return;
        };
        let p = prev.as_bps() as f64;
        if p <= 0.0 {
            self.scheduler.trigger_event();
            return;
        }
        let change = (new.as_bps() as f64 - p).abs() / p;
        if change >= self.cfg.event_threshold {
            self.scheduler.trigger_event();
        }
    }

    /// A GTBN acknowledgement from a client.
    pub fn on_ack(&mut self, client: ClientId, ack: &GsoTmmbn) {
        let was_pending = self.executor.pending(client);
        self.executor.on_ack(client, ack);
        if was_pending && !self.executor.pending(client) && self.failed_clients.remove(&client) {
            // Delivery to a previously unreachable client works again; if
            // that was the last cause, the next round exits fallback.
            self.scheduler.trigger_event();
        }
    }

    /// Force (or release) the single-stream fallback mode (§7 "Design for
    /// failure"); a change triggers an immediate reconfiguration. Other
    /// fallback causes (undeliverable clients, deadline overruns) are
    /// tracked independently, so releasing the override does not exit
    /// fallback while those persist.
    pub fn set_fallback(&mut self, on: bool) {
        if self.manual_fallback != on {
            self.manual_fallback = on;
            self.scheduler.trigger_event();
        }
    }

    /// Is the controller currently serving fallback configurations?
    pub fn fallback_active(&self) -> bool {
        self.fallback_mode
    }

    /// Did the watchdog downgrade the most recent solving round?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Treat the next `rounds` fresh solves as solve-deadline overruns
    /// (chaos injection; the watchdog then degrades those rounds to the
    /// fallback configuration exactly as a real overrun would).
    pub fn inject_deadline_overrun(&mut self, rounds: u32) {
        self.forced_overruns = self.forced_overruns.saturating_add(rounds);
    }

    /// Set the controller generation stamped on outgoing GTMB messages
    /// (bumped by the conference node across restarts).
    pub fn set_epoch(&mut self, epoch: u32) {
        self.executor.set_epoch(epoch);
    }

    /// Current controller generation.
    pub fn epoch(&self) -> u32 {
        self.executor.epoch()
    }

    /// Run one controller step: orchestrate if the scheduler says so, and
    /// collect any due retransmissions.
    ///
    /// Equivalent to [`tick_prepare`](Self::tick_prepare), an inline solve
    /// on this controller's own engine, then
    /// [`tick_commit`](Self::tick_commit). Multi-conference hosts drive the
    /// same three phases through a shared `BatchScheduler` via
    /// [`ControllerFleet`](crate::ControllerFleet) instead.
    ///
    /// Returns `(orchestration_output, retransmissions)`.
    // sentinel: hot_path(controller-tick)
    pub fn tick(&mut self, now: SimTime) -> (Option<ControlOutput>, Vec<(ClientId, GsoTmmbr)>) {
        let (prep, retransmissions) = self.tick_prepare(now);
        let out = match prep {
            TickPrep::Idle => None,
            TickPrep::Round(ctx) => {
                let solved = if ctx.must_fall_back() {
                    None
                } else {
                    let rows_before = self.engine.stats().rows_recomputed;
                    #[cfg(debug_assertions)]
                    let (solution, trace) = {
                        let (s, t) = self.engine.solve_traced(ctx.problem());
                        (s, Some(t))
                    };
                    #[cfg(not(debug_assertions))]
                    let (solution, trace) = (self.engine.solve(ctx.problem()), None);
                    let rows_delta = self.engine.stats().rows_recomputed - rows_before;
                    Some(SolveOutcome { solution, trace, rows_delta })
                };
                self.tick_commit(now, ctx, solved)
            }
        };
        (out, retransmissions)
    }

    /// Phase 1 of a tick: poll the executor, evaluate fallback causes and
    /// the schedule, and snapshot the problem for a due round.
    ///
    /// Always returns the due retransmissions; [`TickPrep::Round`] means the
    /// caller must solve the context's problem (unless it must fall back)
    /// and finish with [`tick_commit`](Self::tick_commit).
    pub fn tick_prepare(&mut self, now: SimTime) -> (TickPrep, Vec<(ClientId, GsoTmmbr)>) {
        let retransmissions = self.executor.poll(now);
        // Undeliverable configuration is a fallback cause (§7).
        let failed = self.executor.take_failed();
        if !failed.is_empty() {
            self.telemetry.event(
                now,
                keys::EV_FALLBACK,
                // sentinel: allow(hot-alloc, reason = "fallback event label; formats only when deliveries failed, off the steady path")
                format!("{} undeliverable client(s)", failed.len()),
            );
            // sentinel: allow(hot-alloc, reason = "fallback bookkeeping runs only when deliveries failed, off the steady path")
            self.failed_clients.extend(failed);
            self.scheduler.trigger_event();
        }

        // An empty conference never orchestrates (and records no call
        // intervals — the Fig. 12 data starts with the first participant).
        if self.picture.is_empty() || !self.scheduler.poll(now) {
            return (TickPrep::Idle, retransmissions);
        }

        let Ok(problem) = self.picture.to_problem() else {
            // An inconsistent picture is an exception: skip this round and
            // retry on the next tick (the picture is rebuilt from fresh
            // signaling, so the condition is transient — latching fallback
            // here would never release it).
            self.telemetry.event(now, keys::EV_FALLBACK, "inconsistent picture, round skipped");
            return (TickPrep::Idle, retransmissions);
        };
        let must_fall_back = self.manual_fallback || !self.failed_clients.is_empty();
        (
            TickPrep::Round(RoundContext {
                problem: Arc::new(problem.with_tenancy(self.tenancy)),
                must_fall_back,
            }),
            retransmissions,
        )
    }

    /// Detach the engine so a batch worker can run this round's solve;
    /// [`restore_engine`](Self::restore_engine) must put it back before the
    /// commit reads its stats.
    pub(crate) fn take_engine(&mut self) -> SolveEngine {
        std::mem::replace(&mut self.engine, SolveEngine::new(self.cfg.solver.clone()))
    }

    /// Reattach the engine a batch worker warmed up.
    pub(crate) fn restore_engine(&mut self, engine: SolveEngine) {
        self.engine = engine;
    }

    /// Phase 3 of a tick: apply the watchdog/stickiness policy to the
    /// round's solve, execute the configuration, and record metrics.
    ///
    /// `solved` must be `Some` exactly when the context does not force a
    /// fallback; behavior is byte-identical to the inline
    /// [`tick`](Self::tick) path.
    pub fn tick_commit(
        &mut self,
        now: SimTime,
        ctx: RoundContext,
        solved: Option<SolveOutcome>,
    ) -> Option<ControlOutput> {
        let RoundContext { problem, must_fall_back } = ctx;
        let mut solve_rows = 0;
        let (solution, fallback) = if must_fall_back {
            (fallback_solution(&problem), true)
        } else {
            let SolveOutcome { solution: fresh, trace, rows_delta } =
                solved.expect("invariant: non-fallback rounds carry their solve outcome");
            solve_rows = rows_delta;
            // Trust boundary: in debug builds every round is traced and
            // every fresh solution crossing into the controller passes the
            // full trace-backed audit (constraint families + QoE accounting
            // + convergence bound + merge/reduction invariants).
            #[cfg(debug_assertions)]
            {
                let trace =
                    trace.as_ref().expect("invariant: debug-build rounds are always traced");
                let findings =
                    gso_audit::SolutionAuditor::new().audit_traced(&problem, &fresh, trace);
                debug_assert!(
                    findings.is_empty(),
                    "solver handed the controller an invalid solution:\n{}",
                    gso_audit::report(&findings)
                );
            }
            #[cfg(not(debug_assertions))]
            drop(trace);
            // Solve-deadline watchdog: a round whose solve overran its work
            // budget (the deterministic latency proxy) is served by the
            // safe fallback configuration instead; the engine is now warm,
            // so the next round's incremental re-solve usually fits the
            // budget and re-promotes automatically.
            let forced = self.forced_overruns > 0;
            if forced {
                self.forced_overruns -= 1;
            }
            let overrun = forced
                || (self.cfg.solve_deadline_rows > 0 && rows_delta > self.cfg.solve_deadline_rows);
            if overrun {
                self.telemetry.incr(keys::CTRL_DEADLINE_OVERRUNS, "");
                self.degraded = true;
                // Re-run promptly instead of waiting out the full cadence.
                self.scheduler.trigger_event();
                (fallback_solution(&problem), true)
            } else {
                self.degraded = false;
                // Solution stickiness: a still-valid previous configuration
                // is kept unless the fresh one is a clear improvement.
                let keep_previous = self
                    .last_solution
                    .as_ref()
                    .filter(|prev| prev.validate(&problem).is_ok())
                    .filter(|prev| fresh.total_qoe < prev.total_qoe * (1.0 + self.cfg.stickiness))
                    // sentinel: allow(hot-alloc, reason = "stickiness keeps the previous solution by value; copy-on-keep reuse is tracked by the zero-alloc roadmap item")
                    .cloned();
                (keep_previous.unwrap_or(fresh), false)
            }
        };
        if fallback != self.fallback_mode {
            self.fallback_mode = fallback;
            if fallback {
                self.telemetry.incr(keys::CTRL_FALLBACK_ENTERED, "");
                self.telemetry.event(now, keys::EV_FALLBACK, "entered");
            } else {
                self.telemetry.incr(keys::CTRL_FALLBACK_EXITED, "");
                self.telemetry.event(now, keys::EV_FALLBACK, "exited");
            }
        }

        let ladder_layers: BTreeMap<SourceId, Vec<u16>> = problem
            .sources()
            .iter()
            // sentinel: allow(hot-alloc, reason = "per-round ladder-layer map handed to the executor; reuse is tracked by the zero-alloc roadmap item")
            .map(|s| (s.id, s.ladder.resolutions().iter().map(|r| r.0).collect::<Vec<u16>>()))
            // sentinel: allow(hot-alloc, reason = "per-round ladder-layer map handed to the executor; reuse is tracked by the zero-alloc roadmap item")
            .collect();
        let (configs, rules) = self.executor.execute(now, &solution, &ladder_layers);
        // Trust boundary: the tick's outward-bound decision. A sticky
        // previous solution may carry QoE bookkeeping that is stale under
        // the new problem, and the §7 fallback deliberately ignores uplink
        // budgets, so the non-fallback path re-checks the constraint
        // families and every path cross-checks rules against the solution.
        #[cfg(debug_assertions)]
        {
            if !fallback {
                let findings =
                    gso_audit::SolutionAuditor::new().audit_constraints(&problem, &solution);
                debug_assert!(
                    findings.is_empty(),
                    "controller tick emitted an infeasible configuration:\n{}",
                    gso_audit::report(&findings)
                );
            }
            let tuples: Vec<_> =
                rules.iter().map(|r| (r.subscriber, r.source, r.tag, r.bitrate)).collect();
            let findings = gso_audit::check_forwarding(&solution, &tuples);
            debug_assert!(
                findings.is_empty(),
                "forwarding rules disagree with the solution that produced them:\n{}",
                gso_audit::report(&findings)
            );
        }
        let churn = match self.last_solution.as_ref() {
            Some(prev) => diff(prev, &solution),
            None => diff(&Solution::default(), &solution),
        };
        // sentinel: allow(hot-alloc, reason = "retained last-solution snapshot feeding the next round's churn diff")
        self.last_solution = Some(solution.clone());
        // Round metrics. "Solve latency" is deterministic by design: the
        // sim has no wall clock, so it is measured in the solver's
        // dominant work unit (DP class-rows recomputed this round) plus
        // the iteration count of the returned solution.
        self.telemetry.incr(keys::CTRL_SOLVES, "");
        if fallback {
            self.telemetry.incr(keys::CTRL_FALLBACK_ROUNDS, "");
        } else {
            self.telemetry.observe(
                keys::CTRL_SOLVE_ITERATIONS,
                "",
                solution.iterations as u64,
                keys::ITERATION_BOUNDS,
            );
            self.telemetry.observe(keys::CTRL_SOLVE_ROWS, "", solve_rows, keys::WORK_BOUNDS);
        }
        self.telemetry.add(keys::CTRL_CHURN_LAYERS, "", churn.layer_changes.len() as u64);
        self.telemetry.add(keys::CTRL_CHURN_SWITCHES, "", churn.switch_changes.len() as u64);
        self.telemetry.gauge(keys::CTRL_QOE, "", solution.total_qoe);
        Some(ControlOutput { configs, rules, solution, churn, fallback })
    }

    /// Cumulative solve-engine work counters (cache hits, rows recomputed…).
    pub fn engine_stats(&self) -> gso_algo::EngineStats {
        self.engine.stats()
    }

    /// Stable digest of the controller's decision-relevant state: the
    /// global picture, fallback mode, the last committed solution, and the
    /// engine's cumulative work counters. Two controller replicas fed the
    /// same event sequence must digest identically at every tick; the
    /// divergence recorder in `gso-sim` samples this per orchestration tick.
    pub fn state_digest(&self) -> u64 {
        use gso_detguard::{StableHasher, StateDigest};
        let mut h = StableHasher::new();
        self.picture.digest(&mut h);
        self.fallback_mode.digest(&mut h);
        self.manual_fallback.digest(&mut h);
        self.degraded.digest(&mut h);
        self.failed_clients.len().digest(&mut h);
        for c in &self.failed_clients {
            c.digest(&mut h);
        }
        self.executor.epoch().digest(&mut h);
        self.tenancy.digest(&mut h);
        self.last_solution.digest(&mut h);
        self.engine.stats().digest(&mut h);
        h.finish()
    }

    /// The most recent solution, if any.
    pub fn last_solution(&self) -> Option<&Solution> {
        self.last_solution.as_ref()
    }

    /// Recorded controller call intervals (Fig. 12).
    pub fn call_intervals(&self) -> &[gso_util::SimDuration] {
        self.scheduler.intervals()
    }

    /// Earliest/latest next run, for timer programming.
    pub fn next_deadline(&self, now: SimTime) -> SimTime {
        self.scheduler.next_deadline(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::{ladders, Resolution};
    use gso_util::StreamKind;

    fn caps() -> CodecCapability {
        CodecCapability { ladders: vec![(StreamKind::Video, ladders::paper_table1())] }
    }

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    fn two_party() -> GsoController {
        let mut c = GsoController::new(ControllerConfig::paper_defaults(), Ssrc(0xc0de));
        c.on_join(ClientId(1), caps());
        c.on_join(ClientId(2), caps());
        c.on_subscriptions(
            ClientId(2),
            vec![SubscribeIntent {
                source: SourceId::video(ClientId(1)),
                max_resolution: Resolution::R720,
                tag: 0,
            }],
        );
        c.on_uplink_report(SimTime::ZERO, ClientId(1), k(5_000));
        c.on_downlink_report(SimTime::ZERO, ClientId(2), k(2_000));
        c
    }

    #[test]
    fn first_tick_orchestrates() {
        let mut c = two_party();
        let (out, _) = c.tick(SimTime::from_millis(10));
        let out = out.expect("first tick runs");
        assert!(!out.fallback);
        assert!(!out.configs.is_empty());
        assert_eq!(out.rules.len(), 1);
        // 2 Mbps minus 50 Kbps protection → the 1.5 Mbps 720P stream fits.
        assert_eq!(out.rules[0].bitrate, k(1_500));
    }

    #[test]
    fn bandwidth_drop_triggers_fast_reconfiguration() {
        let mut c = two_party();
        let (out, _) = c.tick(SimTime::from_millis(10));
        assert!(out.is_some());
        // Big downlink drop at t=1.5s.
        c.on_downlink_report(SimTime::from_millis(1_500), ClientId(2), k(700));
        let (out, _) = c.tick(SimTime::from_millis(1_600));
        let out = out.expect("event trigger must fire after min interval");
        // 700 × 0.9 headroom − 50 protection = 580 Kbps → 500 Kbps 360P.
        assert_eq!(out.rules[0].bitrate, k(500));
    }

    #[test]
    fn min_interval_suppresses_immediate_rerun() {
        let mut c = two_party();
        let _ = c.tick(SimTime::from_millis(10));
        c.on_downlink_report(SimTime::from_millis(100), ClientId(2), k(700));
        let (out, _) = c.tick(SimTime::from_millis(200));
        assert!(out.is_none(), "within the 1 s minimum interval");
    }

    #[test]
    fn fallback_mode_issues_single_stream() {
        let mut c = two_party();
        let _ = c.tick(SimTime::from_millis(10));
        c.set_fallback(true);
        let (out, _) = c.tick(SimTime::from_millis(1_200));
        let out = out.unwrap();
        assert!(out.fallback);
        assert_eq!(out.rules.len(), 1);
        assert_eq!(out.rules[0].bitrate, k(100), "smallest stream only");
    }

    #[test]
    fn undelivered_config_forces_fallback() {
        let mut c = two_party();
        let (out, _) = c.tick(SimTime::from_millis(10));
        assert!(out.is_some());
        // Never ack; poll past the retransmission budget (backoff schedule
        // 200/400/800/800 ms, five transmissions in total).
        for ms in (200..2_500).step_by(200) {
            let _ = c.tick(SimTime::from_millis(ms));
        }
        // Next orchestration is fallback.
        let (out, _) = c.tick(SimTime::from_secs(6));
        assert!(out.expect("scheduled run").fallback);
    }

    /// §7 recovery: fallback caused by undeliverable clients must *exit*
    /// once delivery works again — an ack for the (re-issued) fallback
    /// configuration clears the cause and the next round re-promotes.
    #[test]
    fn fallback_exits_when_failed_clients_ack_again() {
        let telemetry = Telemetry::new("test");
        let mut c = two_party();
        c.set_telemetry(telemetry.clone());
        let (out, _) = c.tick(SimTime::from_millis(10));
        // Ack client 1 so only client 2 goes undeliverable.
        for (client, msg) in out.expect("first tick runs").configs {
            if client == ClientId(1) {
                ack(&mut c, client, &msg);
            }
        }
        for ms in (200..2_500).step_by(200) {
            let _ = c.tick(SimTime::from_millis(ms));
        }
        let (out, _) = c.tick(SimTime::from_secs(6));
        let out = out.expect("scheduled run");
        assert!(out.fallback, "client 2 exhausted its budget");
        assert_eq!(telemetry.counter(keys::CTRL_FALLBACK_ENTERED, ""), 1);

        // Client 2 comes back: it acks the fallback configuration.
        for (client, msg) in out.configs {
            ack(&mut c, client, &msg);
        }
        let (out, _) = c.tick(SimTime::from_secs(8));
        let out = out.expect("recovery run");
        assert!(!out.fallback, "delivery works again, full solving resumes");
        assert_eq!(telemetry.counter(keys::CTRL_FALLBACK_EXITED, ""), 1);
    }

    /// The solve-deadline watchdog degrades an over-budget round to the
    /// fallback configuration and re-promotes when the engine fits again.
    #[test]
    fn deadline_overrun_degrades_then_repromotes() {
        let telemetry = Telemetry::new("test");
        let mut c = two_party();
        c.set_telemetry(telemetry.clone());
        c.inject_deadline_overrun(1);
        let (out, _) = c.tick(SimTime::from_millis(10));
        let out = out.expect("first tick runs");
        assert!(out.fallback, "overrun round serves the fallback configuration");
        assert!(c.is_degraded());
        assert_eq!(telemetry.counter(keys::CTRL_DEADLINE_OVERRUNS, ""), 1);
        assert_eq!(telemetry.counter(keys::CTRL_FALLBACK_ENTERED, ""), 1);
        for (client, msg) in out.configs {
            ack(&mut c, client, &msg);
        }

        let (out, _) = c.tick(SimTime::from_millis(1_100));
        let out = out.expect("watchdog triggered a prompt re-run");
        assert!(!out.fallback, "the warm engine fits the budget again");
        assert!(!c.is_degraded());
        assert_eq!(telemetry.counter(keys::CTRL_FALLBACK_EXITED, ""), 1);
    }

    /// A rejoin mid-retransmission resets the endpoint instead of letting
    /// the stale retry sequence push the conference into fallback.
    #[test]
    fn rejoin_mid_retransmission_avoids_fallback() {
        let mut c = two_party();
        let (out, _) = c.tick(SimTime::from_millis(10));
        // Ack client 1; client 2 crashes and burns most of its budget.
        for (client, msg) in out.expect("first tick runs").configs {
            if client == ClientId(1) {
                ack(&mut c, client, &msg);
            }
        }
        for ms in (200..1_700).step_by(200) {
            let _ = c.tick(SimTime::from_millis(ms));
        }
        assert!(c.executor.pending(ClientId(2)));
        // Client 2 rejoins with fresh caps before the budget exhausts.
        c.on_join(ClientId(2), caps());
        c.on_subscriptions(
            ClientId(2),
            vec![SubscribeIntent {
                source: SourceId::video(ClientId(1)),
                max_resolution: Resolution::R720,
                tag: 0,
            }],
        );
        assert!(!c.executor.pending(ClientId(2)), "rejoin clears the old message");
        // The next rounds re-issue a fresh config; ack it promptly.
        for s in 2..=8u64 {
            let (out, retx) = c.tick(SimTime::from_secs(s));
            if let Some(out) = out {
                assert!(!out.fallback, "rejoined client must not trip fallback");
                for (client, msg) in out.configs {
                    ack(&mut c, client, &msg);
                }
            }
            for (client, msg) in retx {
                ack(&mut c, client, &msg);
            }
        }
    }

    fn ack(c: &mut GsoController, client: ClientId, msg: &GsoTmmbr) {
        c.on_ack(
            client,
            &GsoTmmbn {
                sender_ssrc: Ssrc(9),
                epoch: msg.epoch,
                request_seq: msg.request_seq,
                entries: vec![],
            },
        );
    }

    #[test]
    fn empty_conference_never_orchestrates() {
        let mut c = GsoController::new(ControllerConfig::paper_defaults(), Ssrc(1));
        let (out, retx) = c.tick(SimTime::from_secs(1));
        assert!(out.is_none());
        assert!(retx.is_empty());
    }

    #[test]
    fn engine_reused_across_ticks_and_churn_reported() {
        let mut c = two_party();
        let (out, _) = c.tick(SimTime::from_millis(10));
        let out = out.expect("first tick runs");
        // First round: everything is new relative to the empty solution.
        assert!(!out.churn.is_empty());
        assert!(out.churn.switch_changes.iter().all(|s| s.from.is_none()));
        assert_eq!(c.engine_stats().solves, 1);

        // Downlink drop re-solves on the same engine and shows up as churn.
        c.on_downlink_report(SimTime::from_millis(1_500), ClientId(2), k(700));
        let (out, _) = c.tick(SimTime::from_millis(1_600));
        let out = out.expect("event trigger fires");
        assert_eq!(c.engine_stats().solves, 2);
        assert_eq!(out.churn.switched_subscribers(), 1);
        assert!(
            c.engine_stats().backtracks >= 1,
            "a pure capacity change must hit the incremental backtrack path"
        );
    }

    #[test]
    fn tick_records_round_metrics() {
        let telemetry = Telemetry::new("test");
        let mut c = two_party();
        c.set_telemetry(telemetry.clone());
        let (out, _) = c.tick(SimTime::from_millis(10));
        assert!(out.is_some());
        assert_eq!(telemetry.counter(keys::CTRL_SOLVES, ""), 1);
        assert_eq!(telemetry.counter_total(keys::GTMB_SENT), 2);
        let (count, _) = telemetry.histogram_total(keys::CTRL_SOLVE_ITERATIONS);
        assert_eq!(count, 1);
        assert!(telemetry.counter(keys::CTRL_CHURN_SWITCHES, "") >= 1);
        assert!(telemetry.gauge_value(keys::CTRL_QOE, "").unwrap() > 0.0);

        // Never ack: the §7 failure path shows up in the same registry.
        for ms in (200..2_500).step_by(200) {
            let _ = c.tick(SimTime::from_millis(ms));
        }
        let (out, _) = c.tick(SimTime::from_secs(6));
        assert!(out.expect("scheduled run").fallback);
        assert!(telemetry.counter(keys::CTRL_FALLBACK_ROUNDS, "") >= 1);
        // Both clients fail delivery (possibly again for the fallback
        // config, which is also never acked here).
        assert!(telemetry.counter_total(keys::GTMB_FAILED) >= 2);
        assert!(telemetry.events().iter().any(|e| e.kind == keys::EV_FALLBACK));
    }

    #[test]
    fn leave_clears_executor_state() {
        let mut c = two_party();
        let (out, _) = c.tick(SimTime::from_millis(10));
        assert!(out.is_some());
        c.on_leave(ClientId(2));
        // The departed client's pending config is gone: polling past the
        // retransmission budget must not trip fallback for it.
        // Client 1 acks first so only client 2's state could fail.
        assert!(!c.executor.pending(ClientId(2)));
    }

    #[test]
    fn call_intervals_recorded_within_bounds() {
        let mut c = two_party();
        let mut acked = Vec::new();
        for ms in (0..20_000).step_by(100) {
            let (out, retx) = c.tick(SimTime::from_millis(ms));
            if let Some(out) = out {
                acked.extend(out.configs);
            }
            acked.extend(retx);
            // Ack everything promptly so no fallback trips.
            for (client, msg) in acked.drain(..) {
                ack(&mut c, client, &msg);
            }
        }
        let intervals = c.call_intervals();
        assert!(!intervals.is_empty());
        for &d in intervals {
            assert!(d >= gso_util::SimDuration::from_secs(1));
            assert!(d <= gso_util::SimDuration::from_millis(3_100));
        }
    }
}
