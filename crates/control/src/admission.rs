//! Solver-deadline-aware admission control for a multi-tenant fleet.
//!
//! A fleet host has a fixed per-tick solve budget: the deadline watchdog
//! demotes any round whose DP work overruns
//! [`crate::ControllerConfig::solve_deadline_rows`], and the same row
//! currency bounds how many conferences one host can solve per tick
//! without the watchdog firing fleet-wide. The [`AdmissionController`]
//! spends that budget at the front door: a join whose estimated row cost
//! still fits is admitted; when the budget is exhausted, high- and
//! normal-priority joins park in a bounded FIFO queue until capacity
//! frees (conference teardown), and best-effort joins are rejected
//! outright. Per-tenant quotas stop one tenant from monopolizing the
//! host regardless of budget.
//!
//! Everything here is integer state updated by explicit calls — no
//! clocks, no randomness — so the same request sequence always produces
//! the same decisions and [`AdmissionController::state_digest`] is
//! replayable across runs and hosts.

use gso_algo::{PriorityClass, Tenancy, TenantId};
use gso_detguard::{StableHasher, StateDigest};
use std::collections::{BTreeMap, VecDeque};

/// Admission policy knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Total estimated DP rows per tick this host will commit to (0 =
    /// unlimited). Sized against the fleet's measured solve throughput in
    /// the same row currency as the deadline watchdog.
    pub row_budget: u64,
    /// Fraction of the budget reserved for [`PriorityClass::High`] joins;
    /// normal/low joins only spend up to `(1 - high_reserve) × budget`.
    pub high_reserve: f64,
    /// Maximum parked joins; further non-rejected joins bounce with
    /// [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum concurrently admitted conferences per tenant (0 =
    /// unlimited), counted across every priority class.
    pub tenant_quota: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { row_budget: 0, high_reserve: 0.2, queue_capacity: 16, tenant_quota: 0 }
    }
}

/// Why a join was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The row budget (after the high-priority reserve) is spent and this
    /// class does not queue.
    BudgetExhausted,
    /// The wait queue is at capacity.
    QueueFull,
    /// The tenant is at its conference quota.
    TenantQuota,
}

/// Outcome of [`AdmissionController::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admitted immediately; the caller may start the conference.
    Admitted,
    /// Parked; [`AdmissionController::drain_ready`] will release it (FIFO)
    /// once capacity frees. `position` is the 0-based queue slot.
    Queued {
        /// 0-based position in the wait queue at enqueue time.
        position: usize,
    },
    /// Turned away.
    Rejected(RejectReason),
}

/// A join parked in the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJoin {
    /// Who asked.
    pub tenancy: Tenancy,
    /// Estimated per-tick row cost it will commit once admitted.
    pub estimated_rows: u64,
}

/// Deterministic admission state: committed rows, per-tenant counts, and
/// the wait queue.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    /// Σ of committed row costs of every admitted conference. Estimates at
    /// admit time, corrected to measured peaks by [`Self::correct_cost`].
    committed_rows: u64,
    /// Admitted conference count per tenant.
    tenants: BTreeMap<TenantId, u32>,
    queue: VecDeque<QueuedJoin>,
    admitted_total: u64,
    rejected_total: u64,
}

impl AdmissionController {
    /// A controller with the given policy and an empty ledger.
    #[must_use]
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            committed_rows: 0,
            tenants: BTreeMap::new(),
            queue: VecDeque::new(),
            admitted_total: 0,
            rejected_total: 0,
        }
    }

    /// Budget available to the given class, after the high-priority
    /// reserve. Unlimited (`u64::MAX`) when no budget is configured.
    fn class_budget(&self, priority: PriorityClass) -> u64 {
        if self.cfg.row_budget == 0 {
            return u64::MAX;
        }
        match priority {
            PriorityClass::High => self.cfg.row_budget,
            PriorityClass::Normal | PriorityClass::Low => {
                let reserve = (self.cfg.row_budget as f64 * self.cfg.high_reserve) as u64;
                self.cfg.row_budget.saturating_sub(reserve)
            }
        }
    }

    fn fits(&self, tenancy: Tenancy, estimated_rows: u64) -> bool {
        self.committed_rows.saturating_add(estimated_rows) <= self.class_budget(tenancy.priority)
    }

    fn over_quota(&self, tenant: TenantId) -> bool {
        self.cfg.tenant_quota > 0
            && self.tenants.get(&tenant).is_some_and(|&n| n as usize >= self.cfg.tenant_quota)
    }

    fn commit(&mut self, tenancy: Tenancy, estimated_rows: u64) {
        self.committed_rows = self.committed_rows.saturating_add(estimated_rows);
        *self.tenants.entry(tenancy.tenant).or_insert(0) += 1;
        self.admitted_total += 1;
    }

    /// Decide a join request for a conference expected to cost
    /// `estimated_rows` DP rows per solving tick.
    ///
    /// Order of checks: tenant quota (always a hard reject), then budget.
    /// High/normal joins queue behind an exhausted budget; low-priority
    /// joins are rejected so the queue never fills with best-effort work
    /// that would outrank nobody.
    pub fn request(&mut self, tenancy: Tenancy, estimated_rows: u64) -> AdmissionDecision {
        if self.over_quota(tenancy.tenant) {
            self.rejected_total += 1;
            return AdmissionDecision::Rejected(RejectReason::TenantQuota);
        }
        // Joins already waiting keep their place: a budget that fits this
        // request but not the queue head must not let it jump the line.
        // Only a *better* class may pass a queued head — it spends reserve
        // budget the head cannot touch, so nobody is overtaken unfairly.
        let blocked_by_queue = self
            .queue
            .iter()
            .any(|q| q.tenancy.priority.shed_rank() <= tenancy.priority.shed_rank());
        if !blocked_by_queue && self.fits(tenancy, estimated_rows) {
            self.commit(tenancy, estimated_rows);
            return AdmissionDecision::Admitted;
        }
        if tenancy.priority == PriorityClass::Low {
            self.rejected_total += 1;
            return AdmissionDecision::Rejected(RejectReason::BudgetExhausted);
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            self.rejected_total += 1;
            return AdmissionDecision::Rejected(RejectReason::QueueFull);
        }
        self.queue.push_back(QueuedJoin { tenancy, estimated_rows });
        AdmissionDecision::Queued { position: self.queue.len() - 1 }
    }

    /// An admitted conference tore down: return its committed rows and
    /// decrement its tenant's count. `committed_rows` must be whatever the
    /// ledger currently carries for it (the original estimate, or the
    /// corrected figure after [`Self::correct_cost`]).
    pub fn release(&mut self, tenancy: Tenancy, committed_rows: u64) {
        self.committed_rows = self.committed_rows.saturating_sub(committed_rows);
        if let Some(n) = self.tenants.get_mut(&tenancy.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.tenants.remove(&tenancy.tenant);
            }
        }
    }

    /// Replace one admitted conference's committed cost with its measured
    /// cost (the fleet reports the peak observed rows per solve, keeping
    /// the ledger honest when estimates were off in either direction).
    pub fn correct_cost(&mut self, old_rows: u64, measured_rows: u64) {
        self.committed_rows =
            self.committed_rows.saturating_sub(old_rows).saturating_add(measured_rows);
    }

    /// Release every queued join that now fits, in FIFO order, committing
    /// each. Stops at the first that still does not fit — later queue
    /// entries never overtake it, so queue order is also admission order.
    pub fn drain_ready(&mut self) -> Vec<QueuedJoin> {
        let mut ready = Vec::new();
        while let Some(&head) = self.queue.front() {
            if self.over_quota(head.tenancy.tenant) || !self.fits(head.tenancy, head.estimated_rows)
            {
                break;
            }
            self.commit(head.tenancy, head.estimated_rows);
            ready.push(head);
            self.queue.pop_front();
        }
        ready
    }

    /// Rows currently committed against the budget.
    #[must_use]
    pub fn committed_rows(&self) -> u64 {
        self.committed_rows
    }

    /// Joins currently parked.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Admitted conferences for one tenant.
    #[must_use]
    pub fn tenant_count(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |&n| n as usize)
    }

    /// Total joins admitted (including drained queue entries) and total
    /// rejected, since construction.
    #[must_use]
    pub fn totals(&self) -> (u64, u64) {
        (self.admitted_total, self.rejected_total)
    }

    /// Stable digest of the full admission ledger; identical across runs
    /// fed the same request sequence.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.committed_rows);
        h.write_u64(self.admitted_total);
        h.write_u64(self.rejected_total);
        h.write_u64(self.tenants.len() as u64);
        for (t, n) in &self.tenants {
            t.digest(&mut h);
            h.write_u64(u64::from(*n));
        }
        h.write_u64(self.queue.len() as u64);
        for q in &self.queue {
            q.tenancy.digest(&mut h);
            h.write_u64(q.estimated_rows);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u32, p: PriorityClass) -> Tenancy {
        Tenancy::new(TenantId(id), p)
    }

    fn budgeted(row_budget: u64) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            row_budget,
            high_reserve: 0.2,
            queue_capacity: 2,
            tenant_quota: 0,
        })
    }

    #[test]
    fn unlimited_budget_admits_everything() {
        let mut a = AdmissionController::new(AdmissionConfig::default());
        for i in 0..100 {
            assert_eq!(a.request(t(i, PriorityClass::Low), 1_000_000), AdmissionDecision::Admitted);
        }
    }

    #[test]
    fn budget_exhaustion_queues_normal_rejects_low() {
        let mut a = budgeted(1_000);
        // Normal-class budget is 800 (20% high reserve).
        assert_eq!(a.request(t(1, PriorityClass::Normal), 600), AdmissionDecision::Admitted);
        assert_eq!(
            a.request(t(2, PriorityClass::Low), 300),
            AdmissionDecision::Rejected(RejectReason::BudgetExhausted)
        );
        assert_eq!(
            a.request(t(2, PriorityClass::Normal), 300),
            AdmissionDecision::Queued { position: 0 }
        );
        // The high reserve still admits a premium join over the 800 line.
        assert_eq!(a.request(t(3, PriorityClass::High), 300), AdmissionDecision::Admitted);
        assert_eq!(a.committed_rows(), 900);
    }

    #[test]
    fn queue_is_fifo_and_bounded() {
        let mut a = budgeted(1_000);
        assert_eq!(a.request(t(1, PriorityClass::Normal), 800), AdmissionDecision::Admitted);
        assert_eq!(
            a.request(t(2, PriorityClass::Normal), 500),
            AdmissionDecision::Queued { position: 0 }
        );
        assert_eq!(
            a.request(t(3, PriorityClass::High), 2_000),
            AdmissionDecision::Queued { position: 1 }
        );
        assert_eq!(
            a.request(t(4, PriorityClass::Normal), 100),
            AdmissionDecision::Rejected(RejectReason::QueueFull)
        );
        // Teardown frees the budget; the queue drains in order and stops
        // at the entry that still does not fit.
        a.release(t(1, PriorityClass::Normal), 800);
        let ready = a.drain_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].tenancy, t(2, PriorityClass::Normal));
        assert_eq!(a.queue_len(), 1, "the oversized high join stays parked");
    }

    #[test]
    fn later_joins_do_not_jump_a_nonempty_queue() {
        let mut a = budgeted(1_000);
        assert_eq!(a.request(t(1, PriorityClass::Normal), 700), AdmissionDecision::Admitted);
        assert_eq!(
            a.request(t(2, PriorityClass::Normal), 500),
            AdmissionDecision::Queued { position: 0 }
        );
        // 100 rows would fit, but the queue head asked first.
        assert_eq!(
            a.request(t(3, PriorityClass::Normal), 100),
            AdmissionDecision::Queued { position: 1 }
        );
    }

    #[test]
    fn tenant_quota_is_a_hard_reject() {
        let mut a = AdmissionController::new(AdmissionConfig {
            tenant_quota: 2,
            ..AdmissionConfig::default()
        });
        assert_eq!(a.request(t(7, PriorityClass::High), 10), AdmissionDecision::Admitted);
        assert_eq!(a.request(t(7, PriorityClass::High), 10), AdmissionDecision::Admitted);
        assert_eq!(
            a.request(t(7, PriorityClass::High), 10),
            AdmissionDecision::Rejected(RejectReason::TenantQuota)
        );
        assert_eq!(a.request(t(8, PriorityClass::Normal), 10), AdmissionDecision::Admitted);
        a.release(t(7, PriorityClass::High), 10);
        assert_eq!(a.request(t(7, PriorityClass::High), 10), AdmissionDecision::Admitted);
    }

    #[test]
    fn correct_cost_updates_the_ledger() {
        let mut a = budgeted(1_000);
        assert_eq!(a.request(t(1, PriorityClass::Normal), 100), AdmissionDecision::Admitted);
        // Measured cost came in far above the estimate: the next join of
        // the same shape no longer fits.
        a.correct_cost(100, 750);
        assert_eq!(a.committed_rows(), 750);
        assert_eq!(
            a.request(t(2, PriorityClass::Normal), 100),
            AdmissionDecision::Queued { position: 0 }
        );
    }

    #[test]
    fn digest_replays_and_tracks_state() {
        let run = || {
            let mut a = budgeted(1_000);
            let _ = a.request(t(1, PriorityClass::Normal), 600);
            let _ = a.request(t(2, PriorityClass::Normal), 500);
            let _ = a.request(t(3, PriorityClass::Low), 100);
            a.release(t(1, PriorityClass::Normal), 600);
            let _ = a.drain_ready();
            a.state_digest()
        };
        assert_eq!(run(), run());
        let mut a = budgeted(1_000);
        let d0 = a.state_digest();
        let _ = a.request(t(1, PriorityClass::Normal), 600);
        assert_ne!(d0, a.state_digest());
    }
}
