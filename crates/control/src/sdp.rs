//! SDP negotiation with `simulcastInfo` (§4.2).
//!
//! "The codec capability information is collected through the SDP
//! negotiation process … We also send a customized simulcastInfo message
//! together with the SDP offer … so that the conference node is not only
//! able to collect the video codec type and the number of streams supported,
//! but also the stream resolutions and the maximum bitrates with respect to
//! each resolution. In the negotiation, we assign a different SSRC for each
//! stream resolution."
//!
//! This module implements a textual session description sufficient for that
//! exchange: a minimal RFC 4566 subset (`v=`, `o=`, `s=`, `m=`, `a=rtpmap`,
//! `a=ssrc`) plus the custom `a=simulcast-info` attribute carrying, per
//! stream kind, the `(resolution, max bitrate, qoe)` ladder. The conference
//! node answers by echoing the accepted ladders with their assigned SSRCs.

use crate::state::CodecCapability;
use gso_algo::{Ladder, LadderError, Resolution, StreamSpec};
use gso_rtp::ssrc_for;
use gso_util::{Bitrate, ClientId, StreamKind};
use std::fmt;

/// An SDP offer carrying the client's simulcast capabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct SdpOffer {
    /// The offering client.
    pub client: ClientId,
    /// Video codec name for `a=rtpmap` (e.g. "H264").
    pub codec: String,
    /// Per-kind feasible stream sets.
    pub ladders: Vec<(StreamKind, Ladder)>,
}

/// One accepted source in an [`SdpAnswer`]: its kind, its ladder, and the
/// SSRC assigned to each resolution layer (§4.2).
pub type AcceptedSource = (StreamKind, Ladder, Vec<(Resolution, gso_util::Ssrc)>);

/// The answer: accepted ladders with per-resolution SSRC assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct SdpAnswer {
    /// The client the answer addresses.
    pub client: ClientId,
    /// Accepted sources (one per layer, per §4.2).
    pub accepted: Vec<AcceptedSource>,
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SdpError {
    /// A mandatory line (`v=`, `o=`, `m=`) is missing.
    MissingLine(&'static str),
    /// A line failed to parse.
    Malformed(String),
    /// The simulcast-info ladder violated ladder invariants.
    BadLadder(LadderError),
}

impl fmt::Display for SdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdpError::MissingLine(l) => write!(f, "missing mandatory SDP line {l}"),
            SdpError::Malformed(l) => write!(f, "malformed SDP line: {l}"),
            SdpError::BadLadder(e) => write!(f, "invalid simulcast-info ladder: {e}"),
        }
    }
}

impl std::error::Error for SdpError {}

fn kind_token(kind: StreamKind) -> &'static str {
    match kind {
        StreamKind::Audio => "audio",
        StreamKind::Video => "video",
        StreamKind::Screen => "screen",
    }
}

fn kind_from_token(tok: &str) -> Option<StreamKind> {
    match tok {
        "audio" => Some(StreamKind::Audio),
        "video" => Some(StreamKind::Video),
        "screen" => Some(StreamKind::Screen),
        _ => None,
    }
}

impl SdpOffer {
    /// Serialize to SDP text.
    ///
    /// The `simulcast-info` attribute packs one ladder per line:
    /// `a=simulcast-info:<kind> <res>:<kbps>:<qoe>;...`
    pub fn to_sdp(&self) -> String {
        let mut out = String::new();
        out.push_str("v=0\r\n");
        out.push_str(&format!("o=client{} 0 0 IN IP4 0.0.0.0\r\n", self.client.0));
        out.push_str("s=gso-simulcast\r\n");
        out.push_str("t=0 0\r\n");
        out.push_str("m=video 9 UDP/RTP/AVPF 96\r\n");
        out.push_str(&format!("a=rtpmap:96 {}/90000\r\n", self.codec));
        for (kind, ladder) in &self.ladders {
            let specs: Vec<String> = ladder
                .specs()
                .iter()
                .map(|s| format!("{}:{}:{}", s.resolution.0, s.bitrate.as_kbps(), s.qoe))
                .collect();
            out.push_str(&format!(
                "a=simulcast-info:{} {}\r\n",
                kind_token(*kind),
                specs.join(";")
            ));
        }
        out
    }

    /// Parse from SDP text.
    pub fn parse(text: &str) -> Result<SdpOffer, SdpError> {
        let mut client = None;
        let mut codec = None;
        let mut ladders = Vec::new();
        let mut saw_v = false;
        let mut saw_m = false;
        for line in text.lines().map(str::trim_end) {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("o=") {
                let name = rest.split_whitespace().next().unwrap_or("");
                let id = name
                    .strip_prefix("client")
                    .and_then(|s| s.parse::<u32>().ok())
                    .ok_or_else(|| SdpError::Malformed(line.to_string()))?;
                client = Some(ClientId(id));
            } else if line == "v=0" {
                saw_v = true;
            } else if line.starts_with("m=video") {
                saw_m = true;
            } else if let Some(rest) = line.strip_prefix("a=rtpmap:") {
                // "96 H264/90000"
                let codec_part = rest
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.split('/').next())
                    .ok_or_else(|| SdpError::Malformed(line.to_string()))?;
                codec = Some(codec_part.to_string());
            } else if let Some(rest) = line.strip_prefix("a=simulcast-info:") {
                let mut parts = rest.splitn(2, ' ');
                let kind = parts
                    .next()
                    .and_then(kind_from_token)
                    .ok_or_else(|| SdpError::Malformed(line.to_string()))?;
                let body = parts.next().unwrap_or("");
                let mut specs = Vec::new();
                for item in body.split(';').filter(|s| !s.is_empty()) {
                    let mut f = item.split(':');
                    let (res, kbps, qoe) = (f.next(), f.next(), f.next());
                    let (Some(res), Some(kbps), Some(qoe)) = (res, kbps, qoe) else {
                        return Err(SdpError::Malformed(line.to_string()));
                    };
                    let res: u16 =
                        res.parse().map_err(|_| SdpError::Malformed(line.to_string()))?;
                    // sentinel: allow(unit-hygiene, reason = "SDP wire-format parse; the raw kbps becomes a Bitrate when the spec is built below")
                    let kbps: u64 =
                        kbps.parse().map_err(|_| SdpError::Malformed(line.to_string()))?;
                    let qoe: f64 =
                        qoe.parse().map_err(|_| SdpError::Malformed(line.to_string()))?;
                    specs.push(StreamSpec::new(Resolution(res), Bitrate::from_kbps(kbps), qoe));
                }
                let ladder = Ladder::new(specs).map_err(SdpError::BadLadder)?;
                ladders.push((kind, ladder));
            }
        }
        if !saw_v {
            return Err(SdpError::MissingLine("v="));
        }
        if !saw_m {
            return Err(SdpError::MissingLine("m="));
        }
        let client = client.ok_or(SdpError::MissingLine("o="))?;
        Ok(SdpOffer { client, codec: codec.unwrap_or_else(|| "H264".to_string()), ladders })
    }

    /// The conference node's side of the negotiation: accept the offer,
    /// assign one SSRC per (kind, resolution) layer, and produce both the
    /// answer and the [`CodecCapability`] to store in the global picture.
    pub fn negotiate(&self) -> (SdpAnswer, CodecCapability) {
        let accepted: Vec<AcceptedSource> = self
            .ladders
            .iter()
            .map(|(kind, ladder)| {
                let ssrcs = ladder
                    .resolutions()
                    .into_iter()
                    .map(|r| (r, ssrc_for(self.client, *kind, r.0)))
                    .collect();
                (*kind, ladder.clone(), ssrcs)
            })
            .collect();
        let caps = CodecCapability { ladders: self.ladders.clone() };
        (SdpAnswer { client: self.client, accepted }, caps)
    }
}

impl SdpAnswer {
    /// Serialize the answer, with `a=ssrc:<id> layer:<kind>/<res>` lines.
    pub fn to_sdp(&self) -> String {
        let mut out = String::new();
        out.push_str("v=0\r\n");
        out.push_str("o=conference 0 0 IN IP4 0.0.0.0\r\n");
        out.push_str("s=gso-simulcast\r\n");
        out.push_str("t=0 0\r\n");
        out.push_str("m=video 9 UDP/RTP/AVPF 96\r\n");
        for (kind, _ladder, ssrcs) in &self.accepted {
            for (res, ssrc) in ssrcs {
                out.push_str(&format!(
                    "a=ssrc:{} layer:{}/{}\r\n",
                    ssrc.0,
                    kind_token(*kind),
                    res.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::ladders;

    fn offer() -> SdpOffer {
        SdpOffer {
            client: ClientId(7),
            codec: "H264".into(),
            ladders: vec![
                (StreamKind::Video, ladders::paper_table1()),
                (StreamKind::Screen, ladders::coarse3()),
            ],
        }
    }

    #[test]
    fn offer_roundtrips_through_text() {
        let o = offer();
        let text = o.to_sdp();
        let back = SdpOffer::parse(&text).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn negotiation_assigns_one_ssrc_per_layer() {
        let (answer, caps) = offer().negotiate();
        assert_eq!(caps.ladders.len(), 2);
        let video = answer.accepted.iter().find(|(k, _, _)| *k == StreamKind::Video).unwrap();
        // paper ladder has 3 resolutions → 3 SSRCs, all distinct.
        assert_eq!(video.2.len(), 3);
        let mut ssrcs: Vec<u32> = video.2.iter().map(|(_, s)| s.0).collect();
        ssrcs.sort_unstable();
        ssrcs.dedup();
        assert_eq!(ssrcs.len(), 3);
        // SSRCs decode back to the right layer.
        for (res, ssrc) in &video.2 {
            assert_eq!(gso_rtp::decode_ssrc(*ssrc), Some((ClientId(7), StreamKind::Video, res.0)));
        }
    }

    #[test]
    fn answer_text_lists_layers() {
        let (answer, _) = offer().negotiate();
        let text = answer.to_sdp();
        assert!(text.contains("a=ssrc:"));
        assert!(text.contains("layer:video/720"));
        assert!(text.contains("layer:screen/180"));
    }

    #[test]
    fn rejects_missing_mandatory_lines() {
        assert_eq!(
            SdpOffer::parse("o=client1 0 0 IN IP4 0.0.0.0\r\nm=video 9\r\n"),
            Err(SdpError::MissingLine("v="))
        );
        assert_eq!(
            SdpOffer::parse("v=0\r\no=client1 0 0 IN IP4 0.0.0.0\r\n"),
            Err(SdpError::MissingLine("m="))
        );
        assert_eq!(SdpOffer::parse("v=0\r\nm=video 9\r\n"), Err(SdpError::MissingLine("o=")));
    }

    #[test]
    fn rejects_malformed_simulcast_info() {
        let text = "v=0\r\no=client1 0 0 IN IP4 0.0.0.0\r\nm=video 9\r\na=simulcast-info:video 720:abc:1\r\n";
        assert!(matches!(SdpOffer::parse(text), Err(SdpError::Malformed(_))));
    }

    #[test]
    fn rejects_invalid_ladder_in_offer() {
        // Duplicate bitrates violate ladder invariants.
        let text = "v=0\r\no=client1 0 0 IN IP4 0.0.0.0\r\nm=video 9\r\na=simulcast-info:video 720:600:700;360:600:500\r\n";
        assert!(matches!(SdpOffer::parse(text), Err(SdpError::BadLadder(_))));
    }

    #[test]
    fn codec_defaults_when_absent() {
        let text = "v=0\r\no=client3 0 0 IN IP4 0.0.0.0\r\nm=video 9\r\n";
        let o = SdpOffer::parse(text).unwrap();
        assert_eq!(o.codec, "H264");
        assert_eq!(o.client, ClientId(3));
        assert!(o.ladders.is_empty());
    }
}
