//! Feedback execution (§4.3): turning a solution into reliable GTMB
//! configuration messages and SFU forwarding rules.
//!
//! For every publisher the executor derives the per-layer bitrate vector
//! (zero = stop pushing that layer), addresses each layer by the SSRC that
//! was assigned to its resolution at negotiation time, and wraps it in an
//! APP/GTMB message carrying a request sequence number. RTCP has no delivery
//! guarantee, so the executor retransmits a request until the matching
//! GTBN acknowledgement arrives.

use gso_algo::{Solution, SourceId};
use gso_rtp::{ssrc_for, GsoTmmbn, GsoTmmbr, TmmbrEntry};
use gso_telemetry::{keys, Telemetry};
use gso_util::{Bitrate, ClientId, SimDuration, SimTime, Ssrc};
use std::collections::BTreeMap;

/// A forwarding instruction for the media plane: which exact stream a
/// subscriber receives from a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardingRule {
    /// The receiving client.
    pub subscriber: ClientId,
    /// The publisher source.
    pub source: SourceId,
    /// Virtual-publisher tag of the subscription.
    pub tag: u8,
    /// The SSRC to forward (selects resolution).
    pub ssrc: Ssrc,
    /// The configured bitrate of that stream.
    pub bitrate: Bitrate,
}

/// Executor policy.
#[derive(Debug, Clone)]
pub struct FeedbackConfig {
    /// Retransmit an unacknowledged GTMB after this long.
    pub retransmit_after: SimDuration,
    /// Give up after this many transmissions (the client is then handled by
    /// the failure path).
    pub max_transmissions: u32,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig { retransmit_after: SimDuration::from_millis(200), max_transmissions: 5 }
    }
}

#[derive(Debug, Clone)]
struct Outstanding {
    message: GsoTmmbr,
    sent_at: SimTime,
    transmissions: u32,
}

/// Tracks per-client configuration delivery.
#[derive(Debug)]
pub struct FeedbackExecutor {
    cfg: FeedbackConfig,
    next_seq: u32,
    controller_ssrc: Ssrc,
    outstanding: BTreeMap<ClientId, Outstanding>,
    /// Last acknowledged layer configuration per client (to skip no-ops).
    applied: BTreeMap<ClientId, Vec<TmmbrEntry>>,
    /// Clients that exhausted retransmissions since the last drain.
    failed: Vec<ClientId>,
    /// Metrics sink (disabled by default; see `gso-telemetry`).
    telemetry: Telemetry,
}

impl FeedbackExecutor {
    /// New executor; `controller_ssrc` identifies the accessing node in the
    /// GTMB sender field.
    pub fn new(cfg: FeedbackConfig, controller_ssrc: Ssrc) -> Self {
        FeedbackExecutor {
            cfg,
            next_seq: 1,
            controller_ssrc,
            outstanding: BTreeMap::new(),
            applied: BTreeMap::new(),
            failed: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a metrics registry (GTMB send/retransmit/ack/fail counters).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Translate a solution into per-client GTMB messages (returned for
    /// transmission) and the forwarding rules for the media plane.
    ///
    /// `ladder_layers` maps each source to the full list of (resolution
    /// lines) it negotiated, so disabled layers get explicit zero entries.
    pub fn execute(
        &mut self,
        now: SimTime,
        solution: &Solution,
        ladder_layers: &BTreeMap<SourceId, Vec<u16>>,
    ) -> (Vec<(ClientId, GsoTmmbr)>, Vec<ForwardingRule>) {
        // Forwarding rules straight from the solution's receive map.
        let mut rules = Vec::new();
        for (&subscriber, streams) in &solution.received {
            for r in streams {
                rules.push(ForwardingRule {
                    subscriber,
                    source: r.source,
                    tag: r.tag,
                    ssrc: ssrc_for(r.source.client, r.source.kind, r.resolution.0),
                    bitrate: r.bitrate,
                });
            }
        }

        // Per-client layer configuration vectors.
        let mut per_client: BTreeMap<ClientId, Vec<TmmbrEntry>> = BTreeMap::new();
        for (&source, lines_list) in ladder_layers {
            let policies = solution.policies(source);
            for &lines in lines_list {
                let bitrate = policies
                    .iter()
                    .find(|p| p.resolution.0 == lines)
                    .map_or(Bitrate::ZERO, |p| p.bitrate);
                per_client.entry(source.client).or_default().push(TmmbrEntry {
                    ssrc: ssrc_for(source.client, source.kind, lines),
                    bitrate,
                    overhead: 40,
                });
            }
        }

        let mut messages = Vec::new();
        for (client, entries) in per_client {
            if self.applied.get(&client) == Some(&entries)
                && !self.outstanding.contains_key(&client)
            {
                continue; // configuration unchanged and acknowledged
            }
            if let Some(out) = self.outstanding.get(&client) {
                if out.message.entries == entries {
                    // The identical configuration is already in flight:
                    // keep the outstanding message and its retransmission
                    // budget. Re-issuing with a fresh sequence number would
                    // reset `transmissions` on every controller tick, so a
                    // persistently unreachable client could never exhaust
                    // the budget and reach the §7 failure path whenever the
                    // tick cadence is shorter than
                    // `retransmit_after × max_transmissions`.
                    continue;
                }
            }
            let message =
                GsoTmmbr { sender_ssrc: self.controller_ssrc, request_seq: self.next_seq, entries };
            self.next_seq += 1;
            self.outstanding.insert(
                client,
                Outstanding { message: message.clone(), sent_at: now, transmissions: 1 },
            );
            self.telemetry.incr(keys::GTMB_SENT, client);
            messages.push((client, message));
        }
        (messages, rules)
    }

    /// Process a GTBN acknowledgement from a client.
    pub fn on_ack(&mut self, client: ClientId, ack: &GsoTmmbn) {
        if let Some(out) = self.outstanding.get(&client) {
            if out.message.request_seq == ack.request_seq {
                let out = self
                    .outstanding
                    .remove(&client)
                    .expect("invariant: the entry was just found by get");
                self.applied.insert(client, out.message.entries);
                self.telemetry.incr(keys::GTMB_ACKED, client);
            }
        }
    }

    /// Forget all delivery state for a departed client.
    ///
    /// Without this, `outstanding`, `applied`, and `failed` entries leak
    /// for the conference lifetime — and a stale `applied` entry would
    /// suppress the initial configuration if the `ClientId` is ever
    /// reused.
    pub fn on_client_leave(&mut self, client: ClientId) {
        self.outstanding.remove(&client);
        self.applied.remove(&client);
        self.failed.retain(|&c| c != client);
    }

    /// Retransmission poll; returns messages to resend now.
    pub fn poll(&mut self, now: SimTime) -> Vec<(ClientId, GsoTmmbr)> {
        let mut resend = Vec::new();
        let mut exhausted = Vec::new();
        for (&client, out) in self.outstanding.iter_mut() {
            if now.saturating_since(out.sent_at) >= self.cfg.retransmit_after {
                if out.transmissions >= self.cfg.max_transmissions {
                    exhausted.push(client);
                } else {
                    out.transmissions += 1;
                    out.sent_at = now;
                    resend.push((client, out.message.clone()));
                }
            }
        }
        for (client, _) in &resend {
            self.telemetry.incr(keys::GTMB_RETRANSMITS, client);
        }
        for client in exhausted {
            self.outstanding.remove(&client);
            self.failed.push(client);
            self.telemetry.incr(keys::GTMB_FAILED, client);
            self.telemetry.event(now, keys::EV_GTMB_FAILED, client);
        }
        resend
    }

    /// Clients whose configuration could not be delivered (for the failure
    /// handler); clears the list.
    pub fn take_failed(&mut self) -> Vec<ClientId> {
        std::mem::take(&mut self.failed)
    }

    /// Is a configuration still awaiting acknowledgement?
    pub fn pending(&self, client: ClientId) -> bool {
        self.outstanding.contains_key(&client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::{ladders, ClientSpec, Problem, Resolution, Subscription};
    use gso_util::StreamKind;

    fn solved() -> (Solution, BTreeMap<SourceId, Vec<u16>>) {
        let ladder = ladders::paper_table1();
        let a = ClientId(1);
        let b = ClientId(2);
        let p = Problem::new(
            vec![
                ClientSpec::new(a, Bitrate::from_mbps(5), Bitrate::from_mbps(5), ladder.clone()),
                ClientSpec::new(b, Bitrate::from_mbps(5), Bitrate::from_kbps(900), ladder),
            ],
            vec![Subscription::new(b, SourceId::video(a), Resolution::R720)],
        )
        .unwrap();
        let sol = gso_algo::solver::solve(&p, &Default::default());
        let mut layers = BTreeMap::new();
        layers.insert(SourceId::video(a), vec![180u16, 360, 720]);
        layers.insert(SourceId::video(b), vec![180u16, 360, 720]);
        (sol, layers)
    }

    #[test]
    fn execute_emits_config_and_rules() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(0xffff));
        let (msgs, rules) = ex.execute(SimTime::ZERO, &sol, &layers);
        // Both clients get a config (B's layers are all zero).
        assert_eq!(msgs.len(), 2);
        let a_msg = &msgs.iter().find(|(c, _)| *c == ClientId(1)).unwrap().1;
        assert_eq!(a_msg.entries.len(), 3);
        // B subscribed at 900 Kbps downlink minus nothing → 800 Kbps 360P.
        let active: Vec<&TmmbrEntry> =
            a_msg.entries.iter().filter(|e| !e.bitrate.is_zero()).collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].ssrc, ssrc_for(ClientId(1), StreamKind::Video, 360));
        assert_eq!(active[0].bitrate, Bitrate::from_kbps(800));
        // One forwarding rule for B.
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].subscriber, ClientId(2));
        assert_eq!(rules[0].ssrc, ssrc_for(ClientId(1), StreamKind::Video, 360));
    }

    #[test]
    fn ack_stops_retransmission() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let (client, msg) = &msgs[0];
        assert!(ex.pending(*client));
        ex.on_ack(
            *client,
            &GsoTmmbn { sender_ssrc: Ssrc(2), request_seq: msg.request_seq, entries: vec![] },
        );
        assert!(!ex.pending(*client));
        // Nothing to resend for the acknowledged client.
        let resent = ex.poll(SimTime::from_secs(1));
        assert!(resent.iter().all(|(c, _)| c != client));
    }

    #[test]
    fn unacked_message_retransmits_then_fails() {
        let (sol, layers) = solved();
        let cfg = FeedbackConfig {
            retransmit_after: SimDuration::from_millis(200),
            max_transmissions: 3,
        };
        let mut ex = FeedbackExecutor::new(cfg, Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        assert_eq!(msgs.len(), 2);
        assert_eq!(ex.poll(SimTime::from_millis(100)).len(), 0, "too early");
        assert_eq!(ex.poll(SimTime::from_millis(250)).len(), 2, "first retransmit");
        assert_eq!(ex.poll(SimTime::from_millis(500)).len(), 2, "second retransmit");
        assert_eq!(ex.poll(SimTime::from_millis(750)).len(), 0, "exhausted");
        let failed = ex.take_failed();
        assert_eq!(failed.len(), 2);
        assert!(ex.take_failed().is_empty(), "failure list drains");
    }

    #[test]
    fn stale_ack_ignored() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let (client, msg) = &msgs[0];
        ex.on_ack(
            *client,
            &GsoTmmbn { sender_ssrc: Ssrc(2), request_seq: msg.request_seq + 99, entries: vec![] },
        );
        assert!(ex.pending(*client), "wrong seq must not ack");
    }

    /// Regression (§7 failure path): an unreachable client must fail over
    /// even when the controller re-executes the same solution every tick.
    /// Before the fix, each `execute` replaced the outstanding message with
    /// a fresh sequence number and `transmissions: 1`, so a 1 s tick
    /// cadence (longer than `retransmit_after`, shorter than
    /// `retransmit_after × max_transmissions`) reset the budget forever.
    #[test]
    fn unreachable_client_fails_over_at_one_second_tick_cadence() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let mut failed = Vec::new();
        let mut first_seq: Option<u32> = None;
        for tick in 0..10u64 {
            let now = SimTime::from_secs(tick);
            // Controller tick: poll retransmissions, then re-execute the
            // (unchanged) solution — exactly the order GsoController uses.
            ex.poll(now);
            failed.extend(ex.take_failed());
            if failed.is_empty() {
                let (msgs, _) = ex.execute(now, &sol, &layers);
                match (tick, first_seq) {
                    (0, _) => first_seq = Some(msgs[0].1.request_seq),
                    (_, Some(_)) => {
                        assert!(
                            msgs.is_empty(),
                            "identical in-flight config must not be re-issued (tick {tick})"
                        );
                    }
                    _ => unreachable!(),
                }
            }
        }
        // Budget: 5 transmissions at >= 200 ms spacing -> exhausted well
        // within 10 s. Both clients never acked, so both must fail.
        assert_eq!(failed.len(), 2, "unreachable clients must reach take_failed()");
        assert!(!ex.pending(ClientId(1)) && !ex.pending(ClientId(2)));
    }

    /// A changed configuration still replaces the in-flight message (with a
    /// fresh budget) — only *identical* entries keep the old one.
    #[test]
    fn changed_configuration_replaces_inflight_message() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let seq0 = msgs[0].1.request_seq;
        // Drop source B's ladder: client B's config vector changes.
        let mut layers2 = layers.clone();
        layers2.insert(SourceId::video(ClientId(2)), vec![180u16]);
        let (msgs2, _) = ex.execute(SimTime::from_millis(100), &sol, &layers2);
        assert_eq!(msgs2.len(), 1, "only the changed client is re-issued");
        assert_eq!(msgs2[0].0, ClientId(2));
        assert!(msgs2[0].1.request_seq > seq0);
    }

    #[test]
    fn leave_clears_delivery_state_and_allows_id_reuse() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        // Client 1 acks, client 2 stays pending.
        let (c1, m1) = msgs.iter().find(|(c, _)| *c == ClientId(1)).unwrap();
        ex.on_ack(
            *c1,
            &GsoTmmbn { sender_ssrc: Ssrc(2), request_seq: m1.request_seq, entries: vec![] },
        );
        // Client 2 exhausts its budget and lands in `failed`.
        for tick in 1..=6u64 {
            ex.poll(SimTime::from_secs(tick));
        }
        assert!(!ex.pending(ClientId(2)));

        ex.on_client_leave(ClientId(1));
        ex.on_client_leave(ClientId(2));
        assert!(ex.take_failed().is_empty(), "departed clients are not reported as failed");

        // The ClientId is reused by a new participant: the stale `applied`
        // entry must not suppress its initial configuration.
        let (msgs2, _) = ex.execute(SimTime::from_secs(10), &sol, &layers);
        assert_eq!(msgs2.len(), 2, "rejoining clients get a fresh config");
    }

    #[test]
    fn delivery_counters_are_recorded() {
        use gso_telemetry::keys;
        let (sol, layers) = solved();
        let telemetry = Telemetry::new("test");
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        ex.set_telemetry(telemetry.clone());
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let (c1, m1) = msgs.iter().find(|(c, _)| *c == ClientId(1)).unwrap();
        ex.on_ack(
            *c1,
            &GsoTmmbn { sender_ssrc: Ssrc(2), request_seq: m1.request_seq, entries: vec![] },
        );
        for tick in 1..=6u64 {
            ex.poll(SimTime::from_secs(tick));
        }
        assert_eq!(telemetry.counter_total(keys::GTMB_SENT), 2);
        assert_eq!(telemetry.counter_total(keys::GTMB_ACKED), 1);
        assert_eq!(telemetry.counter(keys::GTMB_RETRANSMITS, ClientId(2)), 4);
        assert_eq!(telemetry.counter(keys::GTMB_FAILED, ClientId(2)), 1);
        assert_eq!(telemetry.events().len(), 1, "failure emits one event");
    }

    #[test]
    fn unchanged_configuration_not_resent() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        for (client, msg) in &msgs {
            ex.on_ack(
                *client,
                &GsoTmmbn { sender_ssrc: Ssrc(2), request_seq: msg.request_seq, entries: vec![] },
            );
        }
        // Same solution again: no new messages.
        let (msgs2, rules2) = ex.execute(SimTime::from_secs(2), &sol, &layers);
        assert!(msgs2.is_empty());
        assert!(!rules2.is_empty(), "rules are still reported");
    }
}
