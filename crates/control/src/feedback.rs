//! Feedback execution (§4.3): turning a solution into reliable GTMB
//! configuration messages and SFU forwarding rules.
//!
//! For every publisher the executor derives the per-layer bitrate vector
//! (zero = stop pushing that layer), addresses each layer by the SSRC that
//! was assigned to its resolution at negotiation time, and wraps it in an
//! APP/GTMB message carrying a request sequence number. RTCP has no delivery
//! guarantee, so the executor retransmits a request until the matching
//! GTBN acknowledgement arrives.

use gso_algo::{Solution, SourceId};
use gso_rtp::{ssrc_for, GsoTmmbn, GsoTmmbr, TmmbrEntry};
use gso_telemetry::{keys, Telemetry};
use gso_util::{Bitrate, ClientId, DetRng, SimDuration, SimTime, Ssrc};
use std::collections::BTreeMap;

/// A forwarding instruction for the media plane: which exact stream a
/// subscriber receives from a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardingRule {
    /// The receiving client.
    pub subscriber: ClientId,
    /// The publisher source.
    pub source: SourceId,
    /// Virtual-publisher tag of the subscription.
    pub tag: u8,
    /// The SSRC to forward (selects resolution).
    pub ssrc: Ssrc,
    /// The configured bitrate of that stream.
    pub bitrate: Bitrate,
}

/// Executor policy: seeded exponential backoff for GTMB retransmissions.
///
/// The n-th retransmission waits `initial_rto · rto_multiplier^(n-1)`
/// (capped at `max_rto`) plus a deterministic jitter of up to
/// `jitter_frac` of that interval, drawn from a [`DetRng`] stream keyed by
/// `(seed, client, request_seq, transmission)`. A fixed retransmission
/// interval synchronizes retries across clients after a shared outage;
/// the backoff both spreads them out and stops hammering a dead path.
#[derive(Debug, Clone)]
pub struct FeedbackConfig {
    /// Wait this long before the first retransmission.
    pub initial_rto: SimDuration,
    /// Multiply the wait by this factor after every retransmission.
    pub rto_multiplier: u32,
    /// Never wait longer than this between retransmissions.
    pub max_rto: SimDuration,
    /// Add up to this fraction of the interval as deterministic jitter.
    pub jitter_frac: f64,
    /// Seed for the jitter streams (derive from the scenario seed).
    pub seed: u64,
    /// Give up after this many transmissions (the client is then handled by
    /// the failure path).
    pub max_transmissions: u32,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            initial_rto: SimDuration::from_millis(200),
            rto_multiplier: 2,
            max_rto: SimDuration::from_millis(800),
            jitter_frac: 0.0,
            seed: 0,
            max_transmissions: 5,
        }
    }
}

#[derive(Debug, Clone)]
struct Outstanding {
    message: GsoTmmbr,
    sent_at: SimTime,
    transmissions: u32,
}

/// Tracks per-client configuration delivery.
#[derive(Debug)]
pub struct FeedbackExecutor {
    cfg: FeedbackConfig,
    next_seq: u32,
    epoch: u32,
    controller_ssrc: Ssrc,
    outstanding: BTreeMap<ClientId, Outstanding>,
    /// Last acknowledged layer configuration per client (to skip no-ops).
    applied: BTreeMap<ClientId, Vec<TmmbrEntry>>,
    /// Clients that exhausted retransmissions since the last drain.
    failed: Vec<ClientId>,
    /// Metrics sink (disabled by default; see `gso-telemetry`).
    telemetry: Telemetry,
}

impl FeedbackExecutor {
    /// New executor; `controller_ssrc` identifies the accessing node in the
    /// GTMB sender field.
    pub fn new(cfg: FeedbackConfig, controller_ssrc: Ssrc) -> Self {
        FeedbackExecutor {
            cfg,
            next_seq: 1,
            epoch: 0,
            controller_ssrc,
            outstanding: BTreeMap::new(),
            applied: BTreeMap::new(),
            failed: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a metrics registry (GTMB send/retransmit/ack/fail counters).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Set the controller generation stamped on every outgoing GTMB.
    ///
    /// A restarted controller bumps its epoch so clients can reject the
    /// predecessor's late retransmissions; acknowledgements from an older
    /// epoch are likewise ignored here (a GTBN for epoch n−1 may carry a
    /// `request_seq` that collides with a fresh post-restart request).
    ///
    /// Bumping the epoch also cancels every in-flight message: the stored
    /// copies are stamped with the old epoch, so clients fence each resend
    /// (`epoch.stale_rejected`) and can never acknowledge it — left in
    /// place, the retransmission budget exhausts and parks the client on
    /// the §7 failure path even though it is healthy. Dropping the
    /// `outstanding` entries cancels those `gtmb-rto-*` schedules; the next
    /// [`Self::execute`] re-issues each affected configuration under the
    /// new epoch with a fresh sequence number and budget (re-keying the
    /// jitter stream, which is labelled by epoch).
    pub fn set_epoch(&mut self, epoch: u32) {
        if epoch != self.epoch {
            self.outstanding.clear();
        }
        self.epoch = epoch;
    }

    /// Current controller generation.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Translate a solution into per-client GTMB messages (returned for
    /// transmission) and the forwarding rules for the media plane.
    ///
    /// `ladder_layers` maps each source to the full list of (resolution
    /// lines) it negotiated, so disabled layers get explicit zero entries.
    pub fn execute(
        &mut self,
        now: SimTime,
        solution: &Solution,
        ladder_layers: &BTreeMap<SourceId, Vec<u16>>,
    ) -> (Vec<(ClientId, GsoTmmbr)>, Vec<ForwardingRule>) {
        // Forwarding rules straight from the solution's receive map.
        // sentinel: allow(hot-alloc, reason = "per-round forwarding-rule fan-out; buffer reuse is tracked by the zero-alloc roadmap item")
        let mut rules = Vec::new();
        for (&subscriber, streams) in &solution.received {
            for r in streams {
                // sentinel: allow(hot-alloc, reason = "per-round forwarding-rule fan-out; buffer reuse is tracked by the zero-alloc roadmap item")
                rules.push(ForwardingRule {
                    subscriber,
                    source: r.source,
                    tag: r.tag,
                    ssrc: ssrc_for(r.source.client, r.source.kind, r.resolution.0),
                    bitrate: r.bitrate,
                });
            }
        }

        // Per-client layer configuration vectors.
        // sentinel: allow(hot-alloc, reason = "per-client TMMBR entry vectors rebuilt per round; reuse is tracked by the zero-alloc roadmap item")
        let mut per_client: BTreeMap<ClientId, Vec<TmmbrEntry>> = BTreeMap::new();
        for (&source, lines_list) in ladder_layers {
            let policies = solution.policies(source);
            for &lines in lines_list {
                let bitrate = policies
                    .iter()
                    .find(|p| p.resolution.0 == lines)
                    .map_or(Bitrate::ZERO, |p| p.bitrate);
                // sentinel: allow(hot-alloc, reason = "per-client TMMBR entry vectors rebuilt per round; reuse is tracked by the zero-alloc roadmap item")
                per_client.entry(source.client).or_default().push(TmmbrEntry {
                    ssrc: ssrc_for(source.client, source.kind, lines),
                    bitrate,
                    overhead: 40,
                });
            }
        }

        // sentinel: allow(hot-alloc, reason = "per-round GTMB message batch; reuse is tracked by the zero-alloc roadmap item")
        let mut messages = Vec::new();
        for (client, entries) in per_client {
            if self.applied.get(&client) == Some(&entries)
                && !self.outstanding.contains_key(&client)
            {
                continue; // configuration unchanged and acknowledged
            }
            if let Some(out) = self.outstanding.get(&client) {
                if out.message.entries == entries {
                    // The identical configuration is already in flight:
                    // keep the outstanding message and its retransmission
                    // budget. Re-issuing with a fresh sequence number would
                    // reset `transmissions` on every controller tick, so a
                    // persistently unreachable client could never exhaust
                    // the budget and reach the §7 failure path whenever the
                    // tick cadence is shorter than the summed backoff
                    // schedule.
                    continue;
                }
            }
            let message = GsoTmmbr {
                sender_ssrc: self.controller_ssrc,
                epoch: self.epoch,
                request_seq: self.next_seq,
                entries,
            };
            self.next_seq += 1;
            // sentinel: allow(hot-alloc, reason = "outstanding-message bookkeeping for GTMB reliability; one entry per unacked client")
            self.outstanding.insert(
                client,
                // sentinel: allow(hot-alloc, reason = "outstanding-message bookkeeping for GTMB reliability; one entry per unacked client")
                Outstanding { message: message.clone(), sent_at: now, transmissions: 1 },
            );
            self.telemetry.incr(keys::GTMB_SENT, client);
            // sentinel: allow(hot-alloc, reason = "per-round GTMB message batch; reuse is tracked by the zero-alloc roadmap item")
            messages.push((client, message));
        }
        (messages, rules)
    }

    /// Process a GTBN acknowledgement from a client. Acks from a different
    /// controller epoch are ignored (see [`Self::set_epoch`]).
    pub fn on_ack(&mut self, client: ClientId, ack: &GsoTmmbn) {
        if ack.epoch != self.epoch {
            return;
        }
        if let Some(out) = self.outstanding.get(&client) {
            if out.message.request_seq == ack.request_seq {
                let out = self
                    .outstanding
                    .remove(&client)
                    .expect("invariant: the entry was just found by get");
                self.applied.insert(client, out.message.entries);
                self.telemetry.incr(keys::GTMB_ACKED, client);
            }
        }
    }

    /// Forget all delivery state for a departed client.
    ///
    /// Without this, `outstanding`, `applied`, and `failed` entries leak
    /// for the conference lifetime — and a stale `applied` entry would
    /// suppress the initial configuration if the `ClientId` is ever
    /// reused.
    pub fn on_client_leave(&mut self, client: ClientId) {
        self.outstanding.remove(&client);
        self.applied.remove(&client);
        self.failed.retain(|&c| c != client);
    }

    /// A known `ClientId` re-registered: treat it as a fresh endpoint.
    ///
    /// A client that crashes and rejoins mid-retransmission has lost its
    /// applied configuration and its epoch/seq bookkeeping; continuing the
    /// old retry sequence would count its silence against the old message's
    /// budget and a stale `applied` entry would suppress its initial
    /// configuration. Delivery state is dropped wholesale instead.
    pub fn reset_client(&mut self, client: ClientId) {
        self.on_client_leave(client);
    }

    /// The backoff interval before retransmission number `tx + 1` of
    /// `message` (exponential in `tx`, capped, plus deterministic jitter).
    fn rto(&self, client: ClientId, message: &GsoTmmbr, tx: u32) -> SimDuration {
        let mult = u64::from(self.cfg.rto_multiplier).saturating_pow(tx.saturating_sub(1));
        let base = self
            .cfg
            .max_rto
            .min(SimDuration::from_micros(self.cfg.initial_rto.as_micros().saturating_mul(mult)));
        if self.cfg.jitter_frac <= 0.0 {
            return base;
        }
        // sentinel: allow(hot-alloc, reason = "RTO jitter label seeding the deterministic RNG; formats only when jitter is enabled")
        let label = format!("gtmb-rto-{}-{}-{}-{}", client, message.epoch, message.request_seq, tx);
        let mut rng = DetRng::derive(self.cfg.seed, &label);
        base + base.mul_f64(self.cfg.jitter_frac * rng.f64())
    }

    /// Retransmission poll; returns messages to resend now.
    pub fn poll(&mut self, now: SimTime) -> Vec<(ClientId, GsoTmmbr)> {
        // sentinel: allow(hot-alloc, reason = "retransmission-poll scratch, bounded by outstanding unacked clients")
        let mut resend = Vec::new();
        // sentinel: allow(hot-alloc, reason = "retransmission-poll scratch, bounded by outstanding unacked clients")
        let mut exhausted = Vec::new();
        // sentinel: allow(hot-alloc, reason = "retransmission-poll scratch, bounded by outstanding unacked clients")
        let mut due: Vec<ClientId> = Vec::new();
        for (&client, out) in &self.outstanding {
            if now.saturating_since(out.sent_at)
                >= self.rto(client, &out.message, out.transmissions)
            {
                // sentinel: allow(hot-alloc, reason = "retransmission-poll scratch, bounded by outstanding unacked clients")
                due.push(client);
            }
        }
        for client in due {
            let out = self
                .outstanding
                .get_mut(&client)
                .expect("invariant: due clients come from the outstanding map");
            if out.transmissions >= self.cfg.max_transmissions {
                // sentinel: allow(hot-alloc, reason = "retransmission-poll scratch, bounded by outstanding unacked clients")
                exhausted.push(client);
            } else {
                out.transmissions += 1;
                out.sent_at = now;
                // sentinel: allow(hot-alloc, reason = "retransmission-poll scratch, bounded by outstanding unacked clients")
                resend.push((client, out.message.clone()));
            }
        }
        for (client, _) in &resend {
            self.telemetry.incr(keys::GTMB_RETRANSMITS, client);
        }
        for client in exhausted {
            self.outstanding.remove(&client);
            // sentinel: allow(hot-alloc, reason = "retransmission-poll scratch, bounded by outstanding unacked clients")
            self.failed.push(client);
            self.telemetry.incr(keys::GTMB_FAILED, client);
            self.telemetry.event(now, keys::EV_GTMB_FAILED, client);
        }
        resend
    }

    /// Clients whose configuration could not be delivered (for the failure
    /// handler); clears the list.
    pub fn take_failed(&mut self) -> Vec<ClientId> {
        std::mem::take(&mut self.failed)
    }

    /// Is a configuration still awaiting acknowledgement?
    pub fn pending(&self, client: ClientId) -> bool {
        self.outstanding.contains_key(&client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::{ladders, ClientSpec, Problem, Resolution, Subscription};
    use gso_util::StreamKind;

    fn solved() -> (Solution, BTreeMap<SourceId, Vec<u16>>) {
        let ladder = ladders::paper_table1();
        let a = ClientId(1);
        let b = ClientId(2);
        let p = Problem::new(
            vec![
                ClientSpec::new(a, Bitrate::from_mbps(5), Bitrate::from_mbps(5), ladder.clone()),
                ClientSpec::new(b, Bitrate::from_mbps(5), Bitrate::from_kbps(900), ladder),
            ],
            vec![Subscription::new(b, SourceId::video(a), Resolution::R720)],
        )
        .unwrap();
        let sol = gso_algo::solver::solve(&p, &Default::default());
        let mut layers = BTreeMap::new();
        layers.insert(SourceId::video(a), vec![180u16, 360, 720]);
        layers.insert(SourceId::video(b), vec![180u16, 360, 720]);
        (sol, layers)
    }

    #[test]
    fn execute_emits_config_and_rules() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(0xffff));
        let (msgs, rules) = ex.execute(SimTime::ZERO, &sol, &layers);
        // Both clients get a config (B's layers are all zero).
        assert_eq!(msgs.len(), 2);
        let a_msg = &msgs.iter().find(|(c, _)| *c == ClientId(1)).unwrap().1;
        assert_eq!(a_msg.entries.len(), 3);
        // B subscribed at 900 Kbps downlink minus nothing → 800 Kbps 360P.
        let active: Vec<&TmmbrEntry> =
            a_msg.entries.iter().filter(|e| !e.bitrate.is_zero()).collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].ssrc, ssrc_for(ClientId(1), StreamKind::Video, 360));
        assert_eq!(active[0].bitrate, Bitrate::from_kbps(800));
        // One forwarding rule for B.
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].subscriber, ClientId(2));
        assert_eq!(rules[0].ssrc, ssrc_for(ClientId(1), StreamKind::Video, 360));
    }

    #[test]
    fn ack_stops_retransmission() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let (client, msg) = &msgs[0];
        assert!(ex.pending(*client));
        ex.on_ack(
            *client,
            &GsoTmmbn {
                sender_ssrc: Ssrc(2),
                epoch: 0,
                request_seq: msg.request_seq,
                entries: vec![],
            },
        );
        assert!(!ex.pending(*client));
        // Nothing to resend for the acknowledged client.
        let resent = ex.poll(SimTime::from_secs(1));
        assert!(resent.iter().all(|(c, _)| c != client));
    }

    #[test]
    fn unacked_message_retransmits_with_backoff_then_fails() {
        let (sol, layers) = solved();
        let cfg = FeedbackConfig { max_transmissions: 3, ..FeedbackConfig::default() };
        let mut ex = FeedbackExecutor::new(cfg, Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        assert_eq!(msgs.len(), 2);
        // Backoff intervals: 200 ms, 400 ms, then 800 ms to exhaustion.
        assert_eq!(ex.poll(SimTime::from_millis(100)).len(), 0, "too early");
        assert_eq!(ex.poll(SimTime::from_millis(250)).len(), 2, "first retransmit");
        assert_eq!(ex.poll(SimTime::from_millis(500)).len(), 0, "backoff doubled, not yet due");
        assert_eq!(ex.poll(SimTime::from_millis(700)).len(), 2, "second retransmit");
        assert_eq!(ex.poll(SimTime::from_millis(1000)).len(), 0, "800 ms RTO not yet over");
        assert_eq!(ex.poll(SimTime::from_millis(1500)).len(), 0, "exhausted");
        let failed = ex.take_failed();
        assert_eq!(failed.len(), 2);
        assert!(ex.take_failed().is_empty(), "failure list drains");
    }

    /// With jitter enabled the retransmission offsets are seed-stable:
    /// the same seed yields the same schedule, and every interval stays
    /// within `[rto, rto · (1 + jitter_frac)]`.
    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let (sol, layers) = solved();
        let cfg = FeedbackConfig { jitter_frac: 0.5, seed: 42, ..FeedbackConfig::default() };
        let schedule = |cfg: &FeedbackConfig| {
            let mut ex = FeedbackExecutor::new(cfg.clone(), Ssrc(1));
            ex.execute(SimTime::ZERO, &sol, &layers);
            let mut times = Vec::new();
            for ms in (0..10_000).step_by(10) {
                for (c, m) in ex.poll(SimTime::from_millis(ms)) {
                    times.push((c, m.request_seq, ms));
                }
            }
            times
        };
        let a = schedule(&cfg);
        let b = schedule(&cfg);
        assert_eq!(a, b, "same seed, same retransmission schedule");
        assert!(!a.is_empty());
        // First retransmission for each client lands in [200, 300] ms
        // (initial RTO 200 ms, jitter up to 50%), on the 10 ms poll grid.
        for (_, _, ms) in a.iter().take(2) {
            assert!((200..=310).contains(ms), "first retransmit at {ms} ms");
        }
        let c = schedule(&FeedbackConfig { seed: 43, ..cfg });
        assert_ne!(a, c, "a different seed perturbs the schedule");
    }

    #[test]
    fn stale_ack_ignored() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let (client, msg) = &msgs[0];
        ex.on_ack(
            *client,
            &GsoTmmbn {
                sender_ssrc: Ssrc(2),
                epoch: 0,
                request_seq: msg.request_seq + 99,
                entries: vec![],
            },
        );
        assert!(ex.pending(*client), "wrong seq must not ack");
    }

    /// Regression (§7 failure path): an unreachable client must fail over
    /// even when the controller re-executes the same solution every tick.
    /// Before the fix, each `execute` replaced the outstanding message with
    /// a fresh sequence number and `transmissions: 1`, so a 1 s tick
    /// cadence (longer than `retransmit_after`, shorter than
    /// `retransmit_after × max_transmissions`) reset the budget forever.
    #[test]
    fn unreachable_client_fails_over_at_one_second_tick_cadence() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let mut failed = Vec::new();
        let mut first_seq: Option<u32> = None;
        for tick in 0..10u64 {
            let now = SimTime::from_secs(tick);
            // Controller tick: poll retransmissions, then re-execute the
            // (unchanged) solution — exactly the order GsoController uses.
            ex.poll(now);
            failed.extend(ex.take_failed());
            if failed.is_empty() {
                let (msgs, _) = ex.execute(now, &sol, &layers);
                match (tick, first_seq) {
                    (0, _) => first_seq = Some(msgs[0].1.request_seq),
                    (_, Some(_)) => {
                        assert!(
                            msgs.is_empty(),
                            "identical in-flight config must not be re-issued (tick {tick})"
                        );
                    }
                    _ => unreachable!(),
                }
            }
        }
        // Budget: 5 transmissions at >= 200 ms spacing -> exhausted well
        // within 10 s. Both clients never acked, so both must fail.
        assert_eq!(failed.len(), 2, "unreachable clients must reach take_failed()");
        assert!(!ex.pending(ClientId(1)) && !ex.pending(ClientId(2)));
    }

    /// A changed configuration still replaces the in-flight message (with a
    /// fresh budget) — only *identical* entries keep the old one.
    #[test]
    fn changed_configuration_replaces_inflight_message() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let seq0 = msgs[0].1.request_seq;
        // Drop source B's ladder: client B's config vector changes.
        let mut layers2 = layers.clone();
        layers2.insert(SourceId::video(ClientId(2)), vec![180u16]);
        let (msgs2, _) = ex.execute(SimTime::from_millis(100), &sol, &layers2);
        assert_eq!(msgs2.len(), 1, "only the changed client is re-issued");
        assert_eq!(msgs2[0].0, ClientId(2));
        assert!(msgs2[0].1.request_seq > seq0);
    }

    #[test]
    fn leave_clears_delivery_state_and_allows_id_reuse() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        // Client 1 acks, client 2 stays pending.
        let (c1, m1) = msgs.iter().find(|(c, _)| *c == ClientId(1)).unwrap();
        ex.on_ack(
            *c1,
            &GsoTmmbn {
                sender_ssrc: Ssrc(2),
                epoch: 0,
                request_seq: m1.request_seq,
                entries: vec![],
            },
        );
        // Client 2 exhausts its budget and lands in `failed`.
        for tick in 1..=6u64 {
            ex.poll(SimTime::from_secs(tick));
        }
        assert!(!ex.pending(ClientId(2)));

        ex.on_client_leave(ClientId(1));
        ex.on_client_leave(ClientId(2));
        assert!(ex.take_failed().is_empty(), "departed clients are not reported as failed");

        // The ClientId is reused by a new participant: the stale `applied`
        // entry must not suppress its initial configuration.
        let (msgs2, _) = ex.execute(SimTime::from_secs(10), &sol, &layers);
        assert_eq!(msgs2.len(), 2, "rejoining clients get a fresh config");
    }

    #[test]
    fn delivery_counters_are_recorded() {
        use gso_telemetry::keys;
        let (sol, layers) = solved();
        let telemetry = Telemetry::new("test");
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        ex.set_telemetry(telemetry.clone());
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let (c1, m1) = msgs.iter().find(|(c, _)| *c == ClientId(1)).unwrap();
        ex.on_ack(
            *c1,
            &GsoTmmbn {
                sender_ssrc: Ssrc(2),
                epoch: 0,
                request_seq: m1.request_seq,
                entries: vec![],
            },
        );
        for tick in 1..=6u64 {
            ex.poll(SimTime::from_secs(tick));
        }
        assert_eq!(telemetry.counter_total(keys::GTMB_SENT), 2);
        assert_eq!(telemetry.counter_total(keys::GTMB_ACKED), 1);
        assert_eq!(telemetry.counter(keys::GTMB_RETRANSMITS, ClientId(2)), 4);
        assert_eq!(telemetry.counter(keys::GTMB_FAILED, ClientId(2)), 1);
        assert_eq!(telemetry.events().len(), 1, "failure emits one event");
    }

    #[test]
    fn unchanged_configuration_not_resent() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        for (client, msg) in &msgs {
            ex.on_ack(
                *client,
                &GsoTmmbn {
                    sender_ssrc: Ssrc(2),
                    epoch: 0,
                    request_seq: msg.request_seq,
                    entries: vec![],
                },
            );
        }
        // Same solution again: no new messages.
        let (msgs2, rules2) = ex.execute(SimTime::from_secs(2), &sol, &layers);
        assert!(msgs2.is_empty());
        assert!(!rules2.is_empty(), "rules are still reported");
    }

    /// An acknowledgement carrying a stale controller epoch (e.g. a GTBN
    /// for a pre-restart request whose seq collides with a fresh one) must
    /// not clear the in-flight message.
    #[test]
    fn ack_from_stale_epoch_ignored() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        ex.set_epoch(2);
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let (client, msg) = &msgs[0];
        assert_eq!(msg.epoch, 2, "messages are stamped with the current epoch");
        ex.on_ack(
            *client,
            &GsoTmmbn {
                sender_ssrc: Ssrc(2),
                epoch: 1,
                request_seq: msg.request_seq,
                entries: vec![],
            },
        );
        assert!(ex.pending(*client), "stale-epoch ack must not clear the message");
        ex.on_ack(
            *client,
            &GsoTmmbn {
                sender_ssrc: Ssrc(2),
                epoch: 2,
                request_seq: msg.request_seq,
                entries: vec![],
            },
        );
        assert!(!ex.pending(*client));
    }

    /// Regression (shard failover): an epoch bump with configurations in
    /// flight must cancel their retransmission schedules. The stored
    /// messages carry the old epoch, so clients fence every resend and can
    /// never ack — before the fix, the budget exhausted and `take_failed`
    /// reported healthy clients into the spurious-fallback path.
    #[test]
    fn epoch_bump_cancels_inflight_retransmissions() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        assert_eq!(msgs.len(), 2, "both configs in flight");
        // Promotion bumps the epoch on the live executor (unlike a restart,
        // which builds a fresh controller).
        ex.set_epoch(1);
        for tick in 1..=8u64 {
            assert!(
                ex.poll(SimTime::from_secs(tick)).is_empty(),
                "stale-epoch message retransmitted after the bump (tick {tick})"
            );
        }
        assert!(ex.take_failed().is_empty(), "cancelled messages must not burn the failure budget");
        // The next execute re-issues every affected configuration under the
        // new epoch with a fresh budget.
        let (msgs2, _) = ex.execute(SimTime::from_secs(9), &sol, &layers);
        assert_eq!(msgs2.len(), 2, "configs re-issued under the new epoch");
        assert!(msgs2.iter().all(|(_, m)| m.epoch == 1));
        // And those are acknowledgeable as usual.
        let (client, msg) = &msgs2[0];
        ex.on_ack(
            *client,
            &GsoTmmbn {
                sender_ssrc: Ssrc(2),
                epoch: 1,
                request_seq: msg.request_seq,
                entries: vec![],
            },
        );
        assert!(!ex.pending(*client));
    }

    /// Satellite regression: a client that crashes and rejoins while its
    /// configuration is mid-retransmission is a fresh endpoint — its old
    /// retry sequence must not keep counting down to the failure path, and
    /// the next execute must re-issue its configuration from scratch.
    #[test]
    fn rejoin_mid_retransmission_restarts_delivery_state() {
        let (sol, layers) = solved();
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let (msgs, _) = ex.execute(SimTime::ZERO, &sol, &layers);
        let seq0 = msgs.iter().find(|(c, _)| *c == ClientId(2)).unwrap().1.request_seq;
        // Burn client 2's full budget (5 of 5 transmissions); the next due
        // poll would move it to the failure path.
        for tick in 1..=4u64 {
            ex.poll(SimTime::from_secs(tick));
        }
        assert!(ex.pending(ClientId(2)));

        // Client 2 crashes and rejoins: the controller resets it.
        ex.reset_client(ClientId(2));
        assert!(!ex.pending(ClientId(2)));

        // Re-executing the same solution re-issues a fresh message with a
        // full budget instead of exhausting the old one.
        let (msgs2, _) = ex.execute(SimTime::from_secs(5), &sol, &layers);
        let m2 = &msgs2.iter().find(|(c, _)| *c == ClientId(2)).unwrap().1;
        assert!(m2.request_seq > seq0, "fresh sequence number after rejoin");
        for tick in 6..=8u64 {
            ex.poll(SimTime::from_secs(tick));
        }
        // (Client 1, which never acked and never rejoined, legitimately
        // exhausts its original budget in the same window.)
        assert!(!ex.take_failed().contains(&ClientId(2)), "old budget must not carry over");
        assert!(ex.pending(ClientId(2)), "fresh message still retransmitting");
    }
}
