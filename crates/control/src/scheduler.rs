//! Controller invocation scheduling (Fig. 12).
//!
//! "A proper control frequency is key" (§6): in the deployment the control
//! algorithm runs every 1.8 s on average, never more often than every 1 s
//! (avoiding useless churn) and never less often than every 3 s (keeping the
//! configuration fresh). The scheduler combines that time trigger with event
//! triggers — significant bandwidth changes or membership changes request an
//! earlier run, clamped by the minimum interval.

use gso_util::{SimDuration, SimTime};

/// Scheduling policy.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Hard minimum between runs.
    pub min_interval: SimDuration,
    /// Hard maximum between runs (the time trigger).
    pub max_interval: SimDuration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            min_interval: SimDuration::from_secs(1),
            max_interval: SimDuration::from_secs(3),
        }
    }
}

/// Decides when the control algorithm runs; records the call intervals the
/// Fig. 12 CDF is built from.
#[derive(Debug)]
pub struct ControlScheduler {
    cfg: SchedulerConfig,
    last_run: Option<SimTime>,
    event_pending: bool,
    intervals: Vec<SimDuration>,
}

impl ControlScheduler {
    /// New scheduler; the first poll runs immediately.
    pub fn new(cfg: SchedulerConfig) -> Self {
        ControlScheduler { cfg, last_run: None, event_pending: false, intervals: Vec::new() }
    }

    /// Note an event that warrants re-orchestration (bandwidth shift,
    /// join/leave, subscription change, speaker change).
    pub fn trigger_event(&mut self) {
        self.event_pending = true;
    }

    /// Should the controller run now? Records the interval when it fires.
    pub fn poll(&mut self, now: SimTime) -> bool {
        let due = match self.last_run {
            None => true,
            Some(last) => {
                let elapsed = now.saturating_since(last);
                if elapsed < self.cfg.min_interval {
                    false
                } else {
                    self.event_pending || elapsed >= self.cfg.max_interval
                }
            }
        };
        if due {
            if let Some(last) = self.last_run {
                // sentinel: allow(hot-alloc, reason = "call-interval series backing the Fig. 12 CDF; grows one entry per orchestration round")
                self.intervals.push(now.saturating_since(last));
            }
            self.last_run = Some(now);
            self.event_pending = false;
        }
        due
    }

    /// When the next run could happen at the earliest / will happen at the
    /// latest, for timer programming.
    pub fn next_deadline(&self, now: SimTime) -> SimTime {
        match self.last_run {
            None => now,
            Some(last) => {
                if self.event_pending {
                    last + self.cfg.min_interval
                } else {
                    last + self.cfg.max_interval
                }
            }
        }
    }

    /// The recorded inter-call intervals (Fig. 12's data).
    pub fn intervals(&self) -> &[SimDuration] {
        &self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn first_poll_runs() {
        let mut s = ControlScheduler::new(SchedulerConfig::default());
        assert!(s.poll(t(0)));
        assert!(!s.poll(t(1)));
    }

    #[test]
    fn max_interval_forces_a_run() {
        let mut s = ControlScheduler::new(SchedulerConfig::default());
        s.poll(t(0));
        assert!(!s.poll(t(2_900)));
        assert!(s.poll(t(3_000)));
        assert_eq!(s.intervals(), &[SimDuration::from_secs(3)]);
    }

    #[test]
    fn event_runs_early_but_respects_min_interval() {
        let mut s = ControlScheduler::new(SchedulerConfig::default());
        s.poll(t(0));
        s.trigger_event();
        // 0.5 s after the last run: too soon even for an event.
        assert!(!s.poll(t(500)));
        // 1.2 s: the event fires.
        assert!(s.poll(t(1_200)));
        assert_eq!(s.intervals(), &[SimDuration::from_millis(1_200)]);
    }

    #[test]
    fn event_flag_clears_after_run() {
        let mut s = ControlScheduler::new(SchedulerConfig::default());
        s.poll(t(0));
        s.trigger_event();
        assert!(s.poll(t(1_000)));
        // No new event: next run only at the max interval.
        assert!(!s.poll(t(2_500)));
        assert!(s.poll(t(4_000)));
    }

    #[test]
    fn intervals_respect_bounds() {
        let mut s = ControlScheduler::new(SchedulerConfig::default());
        // Poll every 100 ms with random-ish events.
        for i in 0..300 {
            if i % 7 == 0 {
                s.trigger_event();
            }
            s.poll(t(i * 100));
        }
        assert!(!s.intervals().is_empty());
        for &d in s.intervals() {
            assert!(d >= SimDuration::from_secs(1), "interval {d} below min");
            assert!(d <= SimDuration::from_secs(3) + SimDuration::from_millis(100));
        }
    }

    #[test]
    fn next_deadline_reflects_pending_event() {
        let mut s = ControlScheduler::new(SchedulerConfig::default());
        s.poll(t(0));
        assert_eq!(s.next_deadline(t(100)), t(3_000));
        s.trigger_event();
        assert_eq!(s.next_deadline(t(100)), t(1_000));
    }
}
