//! The GSO-Simulcast control plane.
//!
//! Implements the conference node and GSO controller of §3–4: assembling
//! the global picture from signaling and in-band reports, scheduling the
//! control algorithm at the production cadence, gating noisy bandwidth
//! measurements, executing solutions as reliable GTMB feedback, and
//! degrading gracefully on failure.
//!
//! * [`state`] — the global picture (codec caps, subscriptions, bandwidths).
//! * [`hysteresis`] — oscillation-avoidance bandwidth gate (§7).
//! * [`scheduler`] — 1–3 s control cadence with event triggers (Fig. 12).
//! * [`feedback`] — solution → GTMB/forwarding rules, with retransmission.
//! * [`failure`] — single-stream fallback and client downgrade monitor (§7).
//! * [`sdp`] — SDP offer/answer with the custom `simulcastInfo` attribute
//!   and per-layer SSRC assignment (§4.2).
//! * [`controller`] — the composed [`controller::GsoController`].
//! * [`fleet`] — many controllers sharing one persistent batch scheduler,
//!   with tenancy-aware overload shedding.
//! * [`admission`] — solver-deadline-aware multi-tenant admission control.

pub mod admission;
pub mod controller;
pub mod failure;
pub mod feedback;
pub mod fleet;
pub mod hysteresis;
pub mod scheduler;
pub mod sdp;
pub mod state;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, QueuedJoin, RejectReason,
};
pub use controller::{
    ControlOutput, ControllerConfig, Direction, GsoController, RoundContext, SolveOutcome, TickPrep,
};
pub use failure::{fallback_solution, DowngradeMonitor};
pub use feedback::{FeedbackConfig, FeedbackExecutor, ForwardingRule};
pub use fleet::{ControllerFleet, FleetTick, ShedPolicy};
pub use hysteresis::{BandwidthHysteresis, HysteresisConfig};
pub use scheduler::{ControlScheduler, SchedulerConfig};
pub use sdp::{SdpAnswer, SdpError, SdpOffer};
pub use state::{ClientSnapshot, CodecCapability, GlobalPicture, SubscribeIntent};
