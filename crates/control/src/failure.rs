//! Design for failure (§7).
//!
//! Two mechanisms from the paper:
//!
//! * **Server-side fallback**: "when an exception is raised, GSO-Simulcast
//!   would ask clients to fall back to a single stream configuration so the
//!   service could continue, at the cost of reduced QoE."
//!   [`fallback_solution`] builds that configuration: every source publishes
//!   exactly its smallest stream, every subscriber takes it.
//! * **Client-side downgrade**: "a server instructs a client to send
//!   multiple streams, however, only a low bitrate stream is received" — the
//!   [`DowngradeMonitor`] watches which configured layers actually produce
//!   packets and switches subscriptions to the highest layer that is alive.

use gso_algo::{Problem, PublishPolicy, ReceivedStream, Solution, SourceId};
use gso_util::{SimDuration, SimTime, Ssrc};
use std::collections::BTreeMap;

/// The minimal safe configuration: one (smallest) stream per source,
/// delivered to every subscriber whose cap admits it.
pub fn fallback_solution(problem: &Problem) -> Solution {
    // sentinel: allow(hot-alloc, reason = "fallback assembly runs only after a solver failure, off the steady-state path")
    let mut publish: BTreeMap<SourceId, Vec<PublishPolicy>> = BTreeMap::new();
    // sentinel: allow(hot-alloc, reason = "fallback assembly runs only after a solver failure, off the steady-state path")
    let mut received: BTreeMap<_, Vec<ReceivedStream>> = BTreeMap::new();
    let mut total_qoe = 0.0;

    for source in problem.sources() {
        let Some(spec) = source.ladder.specs().first().copied() else { continue };
        // sentinel: allow(hot-alloc, reason = "fallback assembly runs only after a solver failure, off the steady-state path")
        let mut audience = Vec::new();
        for sub in problem.subscribers_of(source.id) {
            if spec.resolution > sub.max_resolution {
                continue;
            }
            // Downlink safety: only attach subscribers with room for the
            // minimal stream on top of what they already take.
            let used: u64 = received
                .get(&sub.subscriber)
                .map_or(0, |rs: &Vec<ReceivedStream>| rs.iter().map(|r| r.bitrate.as_bps()).sum());
            let budget = problem.client(sub.subscriber).map_or(0, |c| c.downlink.as_bps());
            if used + spec.bitrate.as_bps() > budget {
                continue;
            }
            // sentinel: allow(hot-alloc, reason = "fallback assembly runs only after a solver failure, off the steady-state path")
            audience.push((sub.subscriber, sub.tag));
            let qoe = spec.qoe * sub.qoe_boost + sub.presence_bonus;
            total_qoe += qoe;
            // sentinel: allow(hot-alloc, reason = "fallback assembly runs only after a solver failure, off the steady-state path")
            received.entry(sub.subscriber).or_default().push(ReceivedStream {
                source: source.id,
                tag: sub.tag,
                resolution: spec.resolution,
                bitrate: spec.bitrate,
                qoe,
            });
        }
        if !audience.is_empty() {
            // sentinel: allow(hot-alloc, reason = "fallback assembly runs only after a solver failure, off the steady-state path")
            publish.insert(
                source.id,
                // sentinel: allow(hot-alloc, reason = "fallback assembly runs only after a solver failure, off the steady-state path")
                vec![PublishPolicy {
                    resolution: spec.resolution,
                    bitrate: spec.bitrate,
                    audience,
                }],
            );
        }
    }
    Solution { publish, received, total_qoe, iterations: 0 }
}

/// Watches per-layer liveness on the receive path, recommends downgrades
/// when configured layers stop flowing, and re-upgrades — with hysteresis
/// — when a previously dead layer produces packets again.
///
/// Downgrades are immediate (a silent layer is useless), but a revived
/// layer must flow *continuously* for `upgrade_hold` before it is
/// preferred again: a layer that blinks in and out (e.g. an uplink on the
/// edge of its budget) would otherwise flap the subscription on every
/// revival, and each flap costs a keyframe wait.
#[derive(Debug)]
pub struct DowngradeMonitor {
    /// A layer is dead if silent for this long while configured active.
    timeout: SimDuration,
    /// A revived layer must flow this long before re-upgrade.
    upgrade_hold: SimDuration,
    last_seen: BTreeMap<Ssrc, SimTime>,
    /// Start of the layer's current uninterrupted liveness streak; reset
    /// whenever a packet arrives after a `timeout`-sized silence.
    alive_since: BTreeMap<Ssrc, SimTime>,
}

impl DowngradeMonitor {
    /// New monitor with the given liveness timeout; the re-upgrade hold
    /// defaults to the same duration (symmetric hysteresis).
    pub fn new(timeout: SimDuration) -> Self {
        Self::with_upgrade_hold(timeout, timeout)
    }

    /// New monitor with an explicit re-upgrade hold.
    pub fn with_upgrade_hold(timeout: SimDuration, upgrade_hold: SimDuration) -> Self {
        DowngradeMonitor {
            timeout,
            upgrade_hold,
            last_seen: BTreeMap::new(),
            alive_since: BTreeMap::new(),
        }
    }

    /// Record traffic on a layer.
    pub fn on_packet(&mut self, now: SimTime, ssrc: Ssrc) {
        let revived =
            self.last_seen.get(&ssrc).is_none_or(|&seen| now.saturating_since(seen) > self.timeout);
        if revived {
            self.alive_since.insert(ssrc, now);
        }
        self.last_seen.insert(ssrc, now);
    }

    /// Given the layers a subscriber is *supposed* to be able to use
    /// (descending preference), pick the best one that is demonstrably
    /// alive *and* past the re-upgrade hold. If no layer qualifies, fall
    /// back to the lowest layer that is at least alive, and failing that
    /// to the last (lowest) layer outright — matching the paper's "switch
    /// the high-bitrate subscription to a low-bitrate subscription".
    pub fn best_alive(&self, now: SimTime, preference: &[Ssrc]) -> Option<Ssrc> {
        for &ssrc in preference {
            if self.is_stable(now, ssrc) {
                return Some(ssrc);
            }
        }
        preference
            .iter()
            .rev()
            .copied()
            .find(|&s| self.is_alive(now, s))
            .or_else(|| preference.last().copied())
    }

    /// Is a specific layer alive?
    pub fn is_alive(&self, now: SimTime, ssrc: Ssrc) -> bool {
        self.last_seen.get(&ssrc).is_some_and(|&seen| now.saturating_since(seen) <= self.timeout)
    }

    /// Is a layer alive and has it been flowing uninterrupted for at least
    /// the re-upgrade hold?
    pub fn is_stable(&self, now: SimTime, ssrc: Ssrc) -> bool {
        self.is_alive(now, ssrc)
            && self
                .alive_since
                .get(&ssrc)
                .is_some_and(|&since| now.saturating_since(since) >= self.upgrade_hold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::{ladders, ClientSpec, Resolution, Subscription};
    use gso_util::{Bitrate, ClientId};

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    fn meeting() -> Problem {
        let ladder = ladders::paper_table1();
        let ids = [ClientId(1), ClientId(2), ClientId(3)];
        let clients =
            ids.iter().map(|&id| ClientSpec::new(id, k(5_000), k(5_000), ladder.clone())).collect();
        let mut subs = Vec::new();
        for &i in &ids {
            for &j in &ids {
                if i != j {
                    subs.push(Subscription::new(i, SourceId::video(j), Resolution::R720));
                }
            }
        }
        Problem::new(clients, subs).unwrap()
    }

    #[test]
    fn fallback_is_single_smallest_stream_and_valid() {
        let p = meeting();
        let sol = fallback_solution(&p);
        sol.validate(&p).unwrap();
        for c in p.clients() {
            let policies = sol.policies(SourceId::video(c.id));
            assert_eq!(policies.len(), 1, "single stream per source");
            assert_eq!(policies[0].bitrate, k(100), "smallest ladder entry");
            assert_eq!(policies[0].audience.len(), 2);
        }
    }

    #[test]
    fn fallback_respects_tiny_downlinks() {
        let ladder = ladders::paper_table1();
        let p = Problem::new(
            vec![
                ClientSpec::new(ClientId(1), k(5_000), k(5_000), ladder.clone()),
                ClientSpec::new(ClientId(2), k(5_000), k(150), ladder),
            ],
            vec![Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R720)],
        )
        .unwrap();
        let sol = fallback_solution(&p);
        sol.validate(&p).unwrap();
        // 150 Kbps downlink fits one 100 Kbps stream.
        assert_eq!(sol.receive_rate(ClientId(2)), k(100));
    }

    #[test]
    fn fallback_respects_resolution_caps() {
        // A ladder whose smallest entry is 720P cannot serve a 180P-capped
        // subscriber.
        let ladder = gso_algo::Ladder::new(vec![gso_algo::StreamSpec::new(
            Resolution::R720,
            k(1_000),
            750.0,
        )])
        .unwrap();
        let p = Problem::new(
            vec![
                ClientSpec::new(ClientId(1), k(5_000), k(5_000), ladder.clone()),
                ClientSpec::new(ClientId(2), k(5_000), k(5_000), ladder),
            ],
            vec![Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R180)],
        )
        .unwrap();
        let sol = fallback_solution(&p);
        sol.validate(&p).unwrap();
        assert!(sol.publish.is_empty());
    }

    /// Feed one packet per second on `ssrc` over `[from, to]` seconds.
    fn flow(m: &mut DowngradeMonitor, ssrc: Ssrc, from: u64, to: u64) {
        for s in from..=to {
            m.on_packet(SimTime::from_secs(s), ssrc);
        }
    }

    #[test]
    fn downgrade_monitor_picks_best_alive() {
        let mut m = DowngradeMonitor::new(SimDuration::from_secs(2));
        let prefs = [Ssrc(3), Ssrc(2), Ssrc(1)]; // high → low
        flow(&mut m, Ssrc(3), 0, 2);
        flow(&mut m, Ssrc(1), 0, 2);
        assert_eq!(m.best_alive(SimTime::from_secs(2), &prefs), Some(Ssrc(3)));
        // High layer goes silent; low keeps flowing.
        flow(&mut m, Ssrc(1), 3, 6);
        assert_eq!(m.best_alive(SimTime::from_secs(6), &prefs), Some(Ssrc(1)));
        assert!(!m.is_alive(SimTime::from_secs(6), Ssrc(3)));
    }

    #[test]
    fn downgrade_monitor_defaults_to_lowest() {
        let m = DowngradeMonitor::new(SimDuration::from_secs(2));
        assert_eq!(
            m.best_alive(SimTime::from_secs(1), &[Ssrc(3), Ssrc(1)]),
            Some(Ssrc(1)),
            "nothing seen yet: subscribe low, not high"
        );
        assert_eq!(m.best_alive(SimTime::ZERO, &[]), None);
    }

    /// Satellite regression: a layer that dies and later revives must be
    /// re-upgraded to — but only after flowing continuously through the
    /// hold window, so a blinking layer cannot flap the subscription.
    #[test]
    fn dead_layer_revival_reupgrades_after_hold() {
        let mut m = DowngradeMonitor::with_upgrade_hold(
            SimDuration::from_secs(2),
            SimDuration::from_secs(3),
        );
        let prefs = [Ssrc(3), Ssrc(1)]; // high → low
                                        // Both layers flow long enough to be stable; high wins.
        flow(&mut m, Ssrc(3), 0, 10);
        flow(&mut m, Ssrc(1), 0, 30);
        assert_eq!(m.best_alive(SimTime::from_secs(10), &prefs), Some(Ssrc(3)));

        // High dies at t=10 (silent past the 2 s timeout): downgrade is
        // immediate at detection time.
        assert_eq!(m.best_alive(SimTime::from_secs(13), &prefs), Some(Ssrc(1)));

        // High revives at t=20. One packet is not enough (pre-fix, it was:
        // the revived layer was instantly preferred again)…
        m.on_packet(SimTime::from_secs(20), Ssrc(3));
        assert!(m.is_alive(SimTime::from_secs(20), Ssrc(3)));
        assert_eq!(
            m.best_alive(SimTime::from_secs(20), &prefs),
            Some(Ssrc(1)),
            "revival must survive the hold before re-upgrade"
        );
        // …and a blink (silence at t=21..24 exceeds the timeout) restarts
        // the hold, keeping the subscription pinned low.
        m.on_packet(SimTime::from_secs(24), Ssrc(3));
        assert_eq!(m.best_alive(SimTime::from_secs(25), &prefs), Some(Ssrc(1)));

        // Continuous flow through the 3 s hold re-upgrades.
        flow(&mut m, Ssrc(3), 24, 28);
        assert_eq!(m.best_alive(SimTime::from_secs(28), &prefs), Some(Ssrc(3)));
    }

    /// When nothing is stable yet, the monitor prefers an *alive* low
    /// layer over a dead lowest entry.
    #[test]
    fn unstable_fallback_prefers_living_low_layer() {
        let mut m = DowngradeMonitor::new(SimDuration::from_secs(2));
        let prefs = [Ssrc(3), Ssrc(2), Ssrc(1)];
        // Only the middle layer has produced anything, and only just.
        m.on_packet(SimTime::from_secs(1), Ssrc(2));
        assert_eq!(
            m.best_alive(SimTime::from_secs(1), &prefs),
            Some(Ssrc(2)),
            "an alive-but-unproven layer beats a dead lowest layer"
        );
    }
}
