//! Design for failure (§7).
//!
//! Two mechanisms from the paper:
//!
//! * **Server-side fallback**: "when an exception is raised, GSO-Simulcast
//!   would ask clients to fall back to a single stream configuration so the
//!   service could continue, at the cost of reduced QoE."
//!   [`fallback_solution`] builds that configuration: every source publishes
//!   exactly its smallest stream, every subscriber takes it.
//! * **Client-side downgrade**: "a server instructs a client to send
//!   multiple streams, however, only a low bitrate stream is received" — the
//!   [`DowngradeMonitor`] watches which configured layers actually produce
//!   packets and switches subscriptions to the highest layer that is alive.

use gso_algo::{Problem, PublishPolicy, ReceivedStream, Solution, SourceId};
use gso_util::{SimDuration, SimTime, Ssrc};
use std::collections::BTreeMap;

/// The minimal safe configuration: one (smallest) stream per source,
/// delivered to every subscriber whose cap admits it.
pub fn fallback_solution(problem: &Problem) -> Solution {
    let mut publish: BTreeMap<SourceId, Vec<PublishPolicy>> = BTreeMap::new();
    let mut received: BTreeMap<_, Vec<ReceivedStream>> = BTreeMap::new();
    let mut total_qoe = 0.0;

    for source in problem.sources() {
        let Some(spec) = source.ladder.specs().first().copied() else { continue };
        let mut audience = Vec::new();
        for sub in problem.subscribers_of(source.id) {
            if spec.resolution > sub.max_resolution {
                continue;
            }
            // Downlink safety: only attach subscribers with room for the
            // minimal stream on top of what they already take.
            let used: u64 = received
                .get(&sub.subscriber)
                .map_or(0, |rs: &Vec<ReceivedStream>| rs.iter().map(|r| r.bitrate.as_bps()).sum());
            let budget = problem.client(sub.subscriber).map_or(0, |c| c.downlink.as_bps());
            if used + spec.bitrate.as_bps() > budget {
                continue;
            }
            audience.push((sub.subscriber, sub.tag));
            let qoe = spec.qoe * sub.qoe_boost + sub.presence_bonus;
            total_qoe += qoe;
            received.entry(sub.subscriber).or_default().push(ReceivedStream {
                source: source.id,
                tag: sub.tag,
                resolution: spec.resolution,
                bitrate: spec.bitrate,
                qoe,
            });
        }
        if !audience.is_empty() {
            publish.insert(
                source.id,
                vec![PublishPolicy {
                    resolution: spec.resolution,
                    bitrate: spec.bitrate,
                    audience,
                }],
            );
        }
    }
    Solution { publish, received, total_qoe, iterations: 0 }
}

/// Watches per-layer liveness on the receive path and recommends
/// downgrades when configured layers stop flowing.
#[derive(Debug)]
pub struct DowngradeMonitor {
    /// A layer is dead if silent for this long while configured active.
    timeout: SimDuration,
    last_seen: BTreeMap<Ssrc, SimTime>,
}

impl DowngradeMonitor {
    /// New monitor with the given liveness timeout.
    pub fn new(timeout: SimDuration) -> Self {
        DowngradeMonitor { timeout, last_seen: BTreeMap::new() }
    }

    /// Record traffic on a layer.
    pub fn on_packet(&mut self, now: SimTime, ssrc: Ssrc) {
        self.last_seen.insert(ssrc, now);
    }

    /// Given the layers a subscriber is *supposed* to be able to use
    /// (descending preference), pick the best one that is demonstrably
    /// alive; falls back to the last layer (lowest) if none have been seen,
    /// matching the paper's "switch the high-bitrate subscription to a
    /// low-bitrate subscription".
    pub fn best_alive(&self, now: SimTime, preference: &[Ssrc]) -> Option<Ssrc> {
        for &ssrc in preference {
            if let Some(&seen) = self.last_seen.get(&ssrc) {
                if now.saturating_since(seen) <= self.timeout {
                    return Some(ssrc);
                }
            }
        }
        preference.last().copied()
    }

    /// Is a specific layer alive?
    pub fn is_alive(&self, now: SimTime, ssrc: Ssrc) -> bool {
        self.last_seen.get(&ssrc).is_some_and(|&seen| now.saturating_since(seen) <= self.timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gso_algo::{ladders, ClientSpec, Resolution, Subscription};
    use gso_util::{Bitrate, ClientId};

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    fn meeting() -> Problem {
        let ladder = ladders::paper_table1();
        let ids = [ClientId(1), ClientId(2), ClientId(3)];
        let clients =
            ids.iter().map(|&id| ClientSpec::new(id, k(5_000), k(5_000), ladder.clone())).collect();
        let mut subs = Vec::new();
        for &i in &ids {
            for &j in &ids {
                if i != j {
                    subs.push(Subscription::new(i, SourceId::video(j), Resolution::R720));
                }
            }
        }
        Problem::new(clients, subs).unwrap()
    }

    #[test]
    fn fallback_is_single_smallest_stream_and_valid() {
        let p = meeting();
        let sol = fallback_solution(&p);
        sol.validate(&p).unwrap();
        for c in p.clients() {
            let policies = sol.policies(SourceId::video(c.id));
            assert_eq!(policies.len(), 1, "single stream per source");
            assert_eq!(policies[0].bitrate, k(100), "smallest ladder entry");
            assert_eq!(policies[0].audience.len(), 2);
        }
    }

    #[test]
    fn fallback_respects_tiny_downlinks() {
        let ladder = ladders::paper_table1();
        let p = Problem::new(
            vec![
                ClientSpec::new(ClientId(1), k(5_000), k(5_000), ladder.clone()),
                ClientSpec::new(ClientId(2), k(5_000), k(150), ladder),
            ],
            vec![Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R720)],
        )
        .unwrap();
        let sol = fallback_solution(&p);
        sol.validate(&p).unwrap();
        // 150 Kbps downlink fits one 100 Kbps stream.
        assert_eq!(sol.receive_rate(ClientId(2)), k(100));
    }

    #[test]
    fn fallback_respects_resolution_caps() {
        // A ladder whose smallest entry is 720P cannot serve a 180P-capped
        // subscriber.
        let ladder = gso_algo::Ladder::new(vec![gso_algo::StreamSpec::new(
            Resolution::R720,
            k(1_000),
            750.0,
        )])
        .unwrap();
        let p = Problem::new(
            vec![
                ClientSpec::new(ClientId(1), k(5_000), k(5_000), ladder.clone()),
                ClientSpec::new(ClientId(2), k(5_000), k(5_000), ladder),
            ],
            vec![Subscription::new(ClientId(2), SourceId::video(ClientId(1)), Resolution::R180)],
        )
        .unwrap();
        let sol = fallback_solution(&p);
        sol.validate(&p).unwrap();
        assert!(sol.publish.is_empty());
    }

    #[test]
    fn downgrade_monitor_picks_best_alive() {
        let mut m = DowngradeMonitor::new(SimDuration::from_secs(2));
        let prefs = [Ssrc(3), Ssrc(2), Ssrc(1)]; // high → low
        m.on_packet(SimTime::from_secs(1), Ssrc(3));
        m.on_packet(SimTime::from_secs(1), Ssrc(1));
        assert_eq!(m.best_alive(SimTime::from_secs(2), &prefs), Some(Ssrc(3)));
        // High layer goes silent; low keeps flowing.
        m.on_packet(SimTime::from_secs(5), Ssrc(1));
        assert_eq!(m.best_alive(SimTime::from_secs(6), &prefs), Some(Ssrc(1)));
        assert!(!m.is_alive(SimTime::from_secs(6), Ssrc(3)));
    }

    #[test]
    fn downgrade_monitor_defaults_to_lowest() {
        let m = DowngradeMonitor::new(SimDuration::from_secs(2));
        assert_eq!(
            m.best_alive(SimTime::from_secs(1), &[Ssrc(3), Ssrc(1)]),
            Some(Ssrc(1)),
            "nothing seen yet: subscribe low, not high"
        );
        assert_eq!(m.best_alive(SimTime::ZERO, &[]), None);
    }
}
