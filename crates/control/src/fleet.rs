//! Multi-conference control host: many [`GsoController`]s sharing one
//! persistent [`BatchScheduler`].
//!
//! A production node runs hundreds of conferences; solving them one after
//! another serializes the control plane on a single core, and spawning
//! threads inside each solve costs more than the warm solves themselves.
//! [`ControllerFleet`] instead splits every controller's tick into its three
//! phases and runs the middle one — the solves — as one batch on the shared
//! scheduler's persistent workers:
//!
//! 1. **Prepare** every controller ([`GsoController::tick_prepare`]):
//!    executor polling, fallback causes, schedule, problem snapshot.
//! 2. **Solve** all due non-fallback rounds as one
//!    [`BatchScheduler::solve_batch`] call. Each job carries its
//!    conference's own engine, so warm memos travel with the job and no
//!    state is shared between workers.
//! 3. **Commit** in ascending conference order
//!    ([`GsoController::tick_commit`]): watchdog, stickiness, execution,
//!    telemetry — byte-identical to each controller ticking alone.
//!
//! Teardown feeds a retiring conference's engine into the scheduler's slab
//! reservoir ([`ControllerFleet::retire`]); new conferences adopt from it.

use crate::controller::{ControlOutput, GsoController, SolveOutcome, TickPrep};
use gso_algo::{BatchConfig, BatchJob, BatchScheduler};
use gso_rtp::GsoTmmbr;
use gso_util::{ClientId, SimTime};
use std::sync::Arc;

/// One fleet tick's per-conference result: the orchestration output (if a
/// round ran) and the due retransmissions.
pub type FleetTick = (Option<ControlOutput>, Vec<(ClientId, GsoTmmbr)>);

/// A set of conference controllers driven through one shared batch
/// scheduler. Conference order is submission order; results and commits
/// always follow it, so a fleet tick is deterministic at any worker count.
pub struct ControllerFleet {
    scheduler: BatchScheduler,
    controllers: Vec<GsoController>,
}

impl ControllerFleet {
    /// A fleet with its own worker pool.
    #[must_use]
    pub fn new(cfg: &BatchConfig) -> Self {
        ControllerFleet { scheduler: BatchScheduler::new(cfg), controllers: Vec::new() }
    }

    /// Add a conference; returns its fleet index.
    pub fn push(&mut self, controller: GsoController) -> usize {
        self.controllers.push(controller);
        self.controllers.len() - 1
    }

    /// Remove a conference, recycling its engine's DP slabs into the
    /// scheduler's reservoir for future conferences. Later conferences
    /// shift down by one index.
    pub fn retire(&mut self, index: usize) -> GsoController {
        let mut controller = self.controllers.remove(index);
        let engine = controller.take_engine();
        self.scheduler.recycle(engine);
        controller
    }

    /// Number of conferences.
    #[must_use]
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// True when the fleet hosts no conferences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.controllers.is_empty()
    }

    /// Worker threads in the shared scheduler.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.scheduler.workers()
    }

    /// The conference at `index`.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut GsoController> {
        self.controllers.get_mut(index)
    }

    /// All conferences, for inspection.
    #[must_use]
    pub fn controllers(&self) -> &[GsoController] {
        &self.controllers
    }

    /// Tick every conference at `now`, interleaving all due solves on the
    /// shared workers. `out[i]` is conference `i`'s result — identical to
    /// calling `controllers[i].tick(now)` in isolation.
    pub fn tick_all(&mut self, now: SimTime) -> Vec<FleetTick> {
        // Phase 1: prepare every controller.
        let preps: Vec<(TickPrep, Vec<(ClientId, GsoTmmbr)>)> =
            self.controllers.iter_mut().map(|c| c.tick_prepare(now)).collect();

        // Phase 2: one batch over all due, non-fallback rounds. Jobs are
        // submitted in ascending conference order and solve_batch returns
        // them in submission order.
        let mut owners: Vec<usize> = Vec::new();
        let mut rows_before: Vec<u64> = Vec::new();
        let mut jobs: Vec<BatchJob> = Vec::new();
        for (ci, (prep, _)) in preps.iter().enumerate() {
            if let TickPrep::Round(ctx) = prep {
                if !ctx.must_fall_back() {
                    let controller = self
                        .controllers
                        .get_mut(ci)
                        .expect("invariant: preps index the controller list");
                    let engine = controller.take_engine();
                    owners.push(ci);
                    rows_before.push(engine.stats().rows_recomputed);
                    jobs.push(BatchJob {
                        engine,
                        problem: Arc::clone(ctx.problem()),
                        // Commit audits against the trace in debug builds.
                        traced: cfg!(debug_assertions),
                    });
                }
            }
        }
        let results = self.scheduler.solve_batch(jobs);

        // Phase 3: hand engines and outcomes back, then commit in ascending
        // conference order.
        let mut solved: Vec<Option<SolveOutcome>> = Vec::with_capacity(self.controllers.len());
        solved.resize_with(self.controllers.len(), || None);
        for ((ci, result), before) in owners.into_iter().zip(results).zip(rows_before) {
            let rows_delta = result.engine.stats().rows_recomputed - before;
            let controller =
                self.controllers.get_mut(ci).expect("invariant: owners index the controller list");
            controller.restore_engine(result.engine);
            let slot = solved.get_mut(ci).expect("invariant: owners index the controller list");
            *slot =
                Some(SolveOutcome { solution: result.solution, trace: result.trace, rows_delta });
        }
        self.controllers
            .iter_mut()
            .zip(preps)
            .zip(solved)
            .map(|((controller, (prep, retransmissions)), solved)| {
                let out = match prep {
                    TickPrep::Idle => None,
                    TickPrep::Round(ctx) => controller.tick_commit(now, ctx, solved),
                };
                (out, retransmissions)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::state::{CodecCapability, SubscribeIntent};
    use gso_algo::{ladders, Resolution, SourceId};
    use gso_util::{Bitrate, Ssrc, StreamKind};

    fn caps() -> CodecCapability {
        CodecCapability { ladders: vec![(StreamKind::Video, ladders::paper_table1())] }
    }

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    /// An n-party full-mesh conference controller with reported bandwidth.
    fn conference(n: u32, downlink_kbps: u64, ssrc: u32) -> GsoController {
        let mut c = GsoController::new(ControllerConfig::paper_defaults(), Ssrc(ssrc));
        for i in 1..=n {
            c.on_join(ClientId(i), caps());
        }
        for i in 1..=n {
            let intents: Vec<SubscribeIntent> = (1..=n)
                .filter(|j| *j != i)
                .map(|j| SubscribeIntent {
                    source: SourceId::video(ClientId(j)),
                    max_resolution: Resolution::R720,
                    tag: 0,
                })
                .collect();
            c.on_subscriptions(ClientId(i), intents);
            c.on_uplink_report(SimTime::ZERO, ClientId(i), k(2_000));
            c.on_downlink_report(SimTime::ZERO, ClientId(i), k(downlink_kbps));
        }
        c
    }

    #[test]
    fn fleet_tick_matches_solo_ticks() {
        let shapes: Vec<(u32, u64)> = vec![(3, 2_000), (4, 1_200), (5, 1_800), (3, 700)];
        let mut solo: Vec<GsoController> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(n, d))| conference(n, d, 100 + i as u32))
            .collect();
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 2 });
        for (i, &(n, d)) in shapes.iter().enumerate() {
            fleet.push(conference(n, d, 100 + i as u32));
        }

        for step in 0..4u64 {
            let now = SimTime::from_millis(10 + step * 1_100);
            let fleet_out = fleet.tick_all(now);
            assert_eq!(fleet_out.len(), solo.len());
            for (ci, (solo_c, (fleet_out, fleet_retx))) in
                solo.iter_mut().zip(fleet_out).enumerate()
            {
                let (solo_out, solo_retx) = solo_c.tick(now);
                assert_eq!(
                    solo_out.map(|o| (o.solution, o.fallback)),
                    fleet_out.map(|o| (o.solution, o.fallback)),
                    "conference {ci} diverged at step {step}"
                );
                assert_eq!(solo_retx.len(), fleet_retx.len());
            }
            // State digests must agree exactly after every tick.
            for (ci, (solo_c, fleet_c)) in solo.iter().zip(fleet.controllers().iter()).enumerate() {
                assert_eq!(
                    solo_c.state_digest(),
                    fleet_c.state_digest(),
                    "conference {ci} digest diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn fleet_respects_manual_fallback() {
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 2 });
        fleet.push(conference(3, 2_000, 1));
        fleet.push(conference(3, 2_000, 2));
        fleet.get_mut(1).expect("present").set_fallback(true);
        let out = fleet.tick_all(SimTime::from_millis(10));
        assert!(!out[0].0.as_ref().expect("round ran").fallback);
        assert!(out[1].0.as_ref().expect("round ran").fallback);
    }

    #[test]
    fn retire_recycles_engine_slabs() {
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 1 });
        fleet.push(conference(4, 1_500, 7));
        let _ = fleet.tick_all(SimTime::from_millis(10));
        let retired = fleet.retire(0);
        drop(retired);
        assert!(fleet.is_empty());
        assert!(
            fleet.scheduler.idle_states() >= 4,
            "the retired conference's DP states must land in the reservoir"
        );
    }
}
