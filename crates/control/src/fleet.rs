//! Multi-conference control host: many [`GsoController`]s sharing one
//! persistent [`BatchScheduler`].
//!
//! A production node runs hundreds of conferences; solving them one after
//! another serializes the control plane on a single core, and spawning
//! threads inside each solve costs more than the warm solves themselves.
//! [`ControllerFleet`] instead splits every controller's tick into its three
//! phases and runs the middle one — the solves — as one batch on the shared
//! scheduler's persistent workers:
//!
//! 1. **Prepare** every controller ([`GsoController::tick_prepare`]):
//!    executor polling, fallback causes, schedule, problem snapshot.
//! 2. **Solve** all due non-fallback rounds as one
//!    [`BatchScheduler::solve_batch`] call. Each job carries its
//!    conference's own engine, so warm memos travel with the job and no
//!    state is shared between workers.
//! 3. **Commit** in ascending conference order
//!    ([`GsoController::tick_commit`]): watchdog, stickiness, execution,
//!    telemetry — byte-identical to each controller ticking alone.
//!
//! Teardown feeds a retiring conference's engine into the scheduler's slab
//! reservoir ([`ControllerFleet::retire`]); new conferences adopt from it.
//!
//! # Overload shedding and admission
//!
//! The fleet also owns the host's overload policy. A [`ShedPolicy`] gives
//! it a per-tick DP-row budget (the same work currency as the per-round
//! deadline watchdog); sustained overruns demote the lowest-priority
//! conferences — by their [`gso_algo::Tenancy`] — to the cheap §7 template
//! baseline via the existing fallback path, and sustained headroom
//! re-promotes them one per hysteresis window, best tier first.
//! [`PriorityClass::High`] conferences are never shed. An optional
//! [`AdmissionController`] gates joins at the front door with the same row
//! currency ([`ControllerFleet::admit`]); queued joins start automatically
//! when capacity frees. Both mechanisms are deterministic: demotion and
//! promotion order depend only on tenancy, fleet index and measured rows,
//! never on wall time, and [`ControllerFleet::state_digest`] fingerprints
//! the whole host.

use crate::admission::{AdmissionController, AdmissionDecision, QueuedJoin, RejectReason};
use crate::controller::{ControlOutput, GsoController, SolveOutcome, TickPrep};
use gso_algo::{BatchConfig, BatchJob, BatchScheduler, PriorityClass, Tenancy};
use gso_rtp::GsoTmmbr;
use gso_telemetry::{keys, Telemetry};
use gso_util::{ClientId, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// One fleet tick's per-conference result: the orchestration output (if a
/// round ran) and the due retransmissions.
pub type FleetTick = (Option<ControlOutput>, Vec<(ClientId, GsoTmmbr)>);

/// Overload shedding policy. Disabled by default (`row_budget_per_tick`
/// of 0): the fleet solves whatever it is given.
#[derive(Debug, Clone)]
pub struct ShedPolicy {
    /// Summed DP rows per tick the host can solve on deadline; 0 disables
    /// shedding.
    pub row_budget_per_tick: u64,
    /// Consecutive over-budget solving ticks before one conference is
    /// demoted to the template baseline.
    pub enter_ticks: u32,
    /// Consecutive solving ticks with at least `headroom` of the budget
    /// free before one demoted conference is re-promoted.
    pub exit_ticks: u32,
    /// Fraction of the budget that must be spare to count a tick toward
    /// re-promotion; the dead band between "over budget" and "this much
    /// headroom" resets both streaks, which is what stops demote/promote
    /// oscillation at the boundary.
    pub headroom: f64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy { row_budget_per_tick: 0, enter_ticks: 2, exit_ticks: 5, headroom: 0.25 }
    }
}

/// Per-conference fleet bookkeeping kept parallel to the controller list.
#[derive(Debug, Clone)]
struct Slot {
    /// Demoted to the template baseline by the shedding tier (distinct
    /// from a manual/operator fallback, which the fleet never releases).
    shed: bool,
    /// Peak DP rows one solve of this conference has cost, measured.
    peak_rows: u64,
    /// Rows committed against the admission ledger for this conference
    /// (the join-time estimate until measurement overtakes it).
    ledger_rows: u64,
}

impl Slot {
    fn new(ledger_rows: u64) -> Self {
        Slot { shed: false, peak_rows: 0, ledger_rows }
    }
}

/// A set of conference controllers driven through one shared batch
/// scheduler. Conference order is submission order; results and commits
/// always follow it, so a fleet tick is deterministic at any worker count.
pub struct ControllerFleet {
    scheduler: BatchScheduler,
    controllers: Vec<GsoController>,
    slots: Vec<Slot>,
    shed_policy: ShedPolicy,
    over_streak: u32,
    under_streak: u32,
    admission: Option<AdmissionController>,
    /// Controllers parked behind the admission queue, in queue order.
    waiting: VecDeque<GsoController>,
    telemetry: Telemetry,
}

impl ControllerFleet {
    /// A fleet with its own worker pool.
    #[must_use]
    pub fn new(cfg: &BatchConfig) -> Self {
        ControllerFleet {
            scheduler: BatchScheduler::new(cfg),
            controllers: Vec::new(),
            slots: Vec::new(),
            shed_policy: ShedPolicy::default(),
            over_streak: 0,
            under_streak: 0,
            admission: None,
            waiting: VecDeque::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a metrics registry for per-tenant rollups and shedding /
    /// admission counters.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Install (or replace) the overload shedding policy.
    pub fn set_shed_policy(&mut self, policy: ShedPolicy) {
        self.shed_policy = policy;
        self.over_streak = 0;
        self.under_streak = 0;
    }

    /// Install an admission controller; joins should then go through
    /// [`Self::admit`] instead of [`Self::push`].
    pub fn set_admission(&mut self, admission: AdmissionController) {
        self.admission = Some(admission);
    }

    /// The admission ledger, if installed.
    #[must_use]
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// Add a conference unconditionally; returns its fleet index. Bypasses
    /// admission (and books zero rows against it) — use [`Self::admit`]
    /// when the fleet is budget-gated.
    pub fn push(&mut self, controller: GsoController) -> usize {
        self.controllers.push(controller);
        self.slots.push(Slot::new(0));
        self.controllers.len() - 1
    }

    /// Ask the admission controller to seat a conference expected to cost
    /// `estimated_rows` DP rows per solving tick (the caller's estimate in
    /// the deadline watchdog's currency).
    ///
    /// `Admitted` seats it immediately; `Queued` parks the controller
    /// inside the fleet until teardown frees budget (it then starts
    /// automatically at the end of a [`Self::tick_all`]); a rejection
    /// returns the controller to the caller. Without an installed
    /// admission controller this is just [`Self::push`].
    pub fn admit(
        &mut self,
        controller: GsoController,
        estimated_rows: u64,
    ) -> Result<AdmissionDecision, Box<(RejectReason, GsoController)>> {
        let Some(admission) = self.admission.as_mut() else {
            self.push(controller);
            return Ok(AdmissionDecision::Admitted);
        };
        let tenancy = controller.tenancy();
        match admission.request(tenancy, estimated_rows) {
            AdmissionDecision::Admitted => {
                self.telemetry.incr(keys::ADMISSION_ADMITTED, tenancy);
                self.controllers.push(controller);
                self.slots.push(Slot::new(estimated_rows));
                Ok(AdmissionDecision::Admitted)
            }
            AdmissionDecision::Queued { position } => {
                self.telemetry.incr(keys::ADMISSION_QUEUED, tenancy);
                self.waiting.push_back(controller);
                Ok(AdmissionDecision::Queued { position })
            }
            AdmissionDecision::Rejected(reason) => {
                self.telemetry.incr(keys::ADMISSION_REJECTED, tenancy);
                Err(Box::new((reason, controller)))
            }
        }
    }

    /// Remove a conference, recycling its engine's DP slabs into the
    /// scheduler's reservoir for future conferences and releasing its rows
    /// from the admission ledger. Later conferences shift down by one
    /// index.
    pub fn retire(&mut self, index: usize) -> GsoController {
        let mut controller = self.controllers.remove(index);
        let slot = self.slots.remove(index);
        let engine = controller.take_engine();
        self.scheduler.recycle(engine);
        if let Some(admission) = self.admission.as_mut() {
            admission.release(controller.tenancy(), slot.ledger_rows);
        }
        controller
    }

    /// Number of conferences.
    #[must_use]
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// True when the fleet hosts no conferences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.controllers.is_empty()
    }

    /// Worker threads in the shared scheduler.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.scheduler.workers()
    }

    /// The conference at `index`.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut GsoController> {
        self.controllers.get_mut(index)
    }

    /// All conferences, for inspection.
    #[must_use]
    pub fn controllers(&self) -> &[GsoController] {
        &self.controllers
    }

    /// Is the conference at `index` currently demoted by the shedding
    /// tier?
    #[must_use]
    pub fn is_shed(&self, index: usize) -> bool {
        self.slots.get(index).is_some_and(|s| s.shed)
    }

    /// Conferences currently demoted by the shedding tier.
    #[must_use]
    pub fn shed_count(&self) -> usize {
        self.slots.iter().filter(|s| s.shed).count()
    }

    /// Conferences parked behind the admission queue.
    #[must_use]
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Tick every conference at `now`, interleaving all due solves on the
    /// shared workers. `out[i]` is conference `i`'s result — identical to
    /// calling `controllers[i].tick(now)` in isolation.
    pub fn tick_all(&mut self, now: SimTime) -> Vec<FleetTick> {
        // Phase 1: prepare every controller.
        let preps: Vec<(TickPrep, Vec<(ClientId, GsoTmmbr)>)> =
            self.controllers.iter_mut().map(|c| c.tick_prepare(now)).collect();

        // Phase 2: one batch over all due, non-fallback rounds. Jobs are
        // submitted in ascending conference order and solve_batch returns
        // them in submission order.
        let mut owners: Vec<usize> = Vec::new();
        let mut rows_before: Vec<u64> = Vec::new();
        let mut jobs: Vec<BatchJob> = Vec::new();
        let mut any_round = false;
        for (ci, (prep, _)) in preps.iter().enumerate() {
            if let TickPrep::Round(ctx) = prep {
                any_round = true;
                if !ctx.must_fall_back() {
                    let controller = self
                        .controllers
                        .get_mut(ci)
                        .expect("invariant: preps index the controller list");
                    let engine = controller.take_engine();
                    owners.push(ci);
                    rows_before.push(engine.stats().rows_recomputed);
                    jobs.push(BatchJob {
                        engine,
                        problem: Arc::clone(ctx.problem()),
                        // Commit audits against the trace in debug builds.
                        traced: cfg!(debug_assertions),
                    });
                }
            }
        }
        let results = self.scheduler.solve_batch(jobs);

        // Phase 3: hand engines and outcomes back, then commit in ascending
        // conference order.
        let mut total_rows: u64 = 0;
        let mut solved: Vec<Option<SolveOutcome>> = Vec::with_capacity(self.controllers.len());
        solved.resize_with(self.controllers.len(), || None);
        for ((ci, result), before) in owners.into_iter().zip(results).zip(rows_before) {
            let rows_delta = result.engine.stats().rows_recomputed - before;
            total_rows += rows_delta;
            let controller =
                self.controllers.get_mut(ci).expect("invariant: owners index the controller list");
            controller.restore_engine(result.engine);
            let slot = self.slots.get_mut(ci).expect("invariant: slots parallel the controllers");
            slot.peak_rows = slot.peak_rows.max(rows_delta);
            if slot.peak_rows > slot.ledger_rows {
                // Keep the admission ledger honest: a conference that
                // solves hotter than its join-time estimate occupies its
                // measured share of the budget from now on.
                if let Some(admission) = self.admission.as_mut() {
                    admission.correct_cost(slot.ledger_rows, slot.peak_rows);
                }
                slot.ledger_rows = slot.peak_rows;
            }
            let out = solved.get_mut(ci).expect("invariant: owners index the controller list");
            *out =
                Some(SolveOutcome { solution: result.solution, trace: result.trace, rows_delta });
        }
        let out: Vec<FleetTick> = self
            .controllers
            .iter_mut()
            .zip(preps)
            .zip(solved)
            .map(|((controller, (prep, retransmissions)), solved)| {
                let out = match prep {
                    TickPrep::Idle => None,
                    TickPrep::Round(ctx) => controller.tick_commit(now, ctx, solved),
                };
                (out, retransmissions)
            })
            .collect();

        self.rollup_tenants(&out, total_rows);
        self.evaluate_shedding(any_round, total_rows);
        self.seat_waiting();
        out
    }

    /// Per-tenant telemetry rollups for one tick's outputs.
    fn rollup_tenants(&self, out: &[FleetTick], tick_rows: u64) {
        if !self.telemetry.enabled() {
            return;
        }
        for (controller, (output, _)) in self.controllers.iter().zip(out) {
            let Some(output) = output else { continue };
            let tenancy = controller.tenancy();
            if output.fallback {
                self.telemetry.incr(keys::TENANT_FALLBACK_ROUNDS, tenancy);
            } else {
                self.telemetry.incr(keys::TENANT_SOLVED_ROUNDS, tenancy);
            }
        }
        // Summed QoE of each tenant's latest solutions: recomputed from
        // scratch each rollup so demotions show up immediately.
        let mut sums: Vec<(Tenancy, f64)> = Vec::new();
        for controller in &self.controllers {
            let Some(solution) = controller.last_solution() else { continue };
            let tenancy = controller.tenancy();
            match sums.iter_mut().find(|(t, _)| *t == tenancy) {
                Some((_, q)) => *q += solution.total_qoe,
                None => sums.push((tenancy, solution.total_qoe)),
            }
        }
        for (tenancy, qoe) in sums {
            self.telemetry.gauge(keys::TENANT_QOE, tenancy, qoe);
        }
        if tick_rows > 0 {
            self.telemetry.observe(keys::FLEET_TICK_ROWS, "tick", tick_rows, keys::WORK_BOUNDS);
        }
    }

    /// One step of the overload state machine, fed this tick's summed
    /// solve work. Only solving ticks advance the streaks, so the cadence
    /// of idle 100 ms ticks between 1–3 s orchestration rounds does not
    /// dilute the hysteresis.
    // sentinel: hot_path(fleet-shed)
    fn evaluate_shedding(&mut self, any_round: bool, total_rows: u64) {
        let budget = self.shed_policy.row_budget_per_tick;
        if budget == 0 || !any_round {
            return;
        }
        let spare_floor = (budget as f64 * self.shed_policy.headroom) as u64;
        if total_rows > budget {
            self.over_streak += 1;
            self.under_streak = 0;
            if self.over_streak >= self.shed_policy.enter_ticks {
                self.over_streak = 0;
                self.demote_one();
            }
        } else if total_rows <= budget.saturating_sub(spare_floor) {
            self.under_streak += 1;
            self.over_streak = 0;
            if self.under_streak >= self.shed_policy.exit_ticks {
                self.under_streak = 0;
                self.promote_one();
            }
        } else {
            // Dead band: neither direction accumulates evidence.
            self.over_streak = 0;
            self.under_streak = 0;
        }
    }

    /// Demote the worst-tier conference not yet on the template baseline.
    /// Order: higher [`PriorityClass::shed_rank`] first (Low before
    /// Normal), then higher tenant id, then higher fleet index — a total,
    /// deterministic order. High-priority conferences are never demoted.
    fn demote_one(&mut self) {
        let pick = self
            .controllers
            .iter()
            .zip(&self.slots)
            .enumerate()
            .filter(|(_, (c, s))| {
                c.tenancy().priority != PriorityClass::High && !s.shed && !c.fallback_active()
            })
            .max_by_key(|&(i, (c, _))| {
                let t = c.tenancy();
                (t.priority.shed_rank(), t.tenant, i)
            })
            .map(|(i, _)| i);
        let Some(i) = pick else { return };
        if let (Some(slot), Some(controller)) = (self.slots.get_mut(i), self.controllers.get_mut(i))
        {
            slot.shed = true;
            controller.set_fallback(true);
            let tenancy = controller.tenancy();
            self.telemetry.incr(keys::FLEET_SHED_DEMOTIONS, tenancy);
        }
        self.telemetry.gauge(keys::FLEET_SHED_ACTIVE, "fleet", self.shed_count() as f64);
    }

    /// Re-promote the best-tier demoted conference (reverse of the
    /// demotion order, so the most important tenant recovers first).
    fn promote_one(&mut self) {
        let pick = self
            .controllers
            .iter()
            .zip(&self.slots)
            .enumerate()
            .filter(|(_, (_, s))| s.shed)
            .min_by_key(|&(i, (c, _))| {
                let t = c.tenancy();
                (t.priority.shed_rank(), t.tenant, i)
            })
            .map(|(i, _)| i);
        let Some(i) = pick else { return };
        if let (Some(slot), Some(controller)) = (self.slots.get_mut(i), self.controllers.get_mut(i))
        {
            slot.shed = false;
            controller.set_fallback(false);
            let tenancy = controller.tenancy();
            self.telemetry.incr(keys::FLEET_SHED_PROMOTIONS, tenancy);
        }
        self.telemetry.gauge(keys::FLEET_SHED_ACTIVE, "fleet", self.shed_count() as f64);
    }

    /// Seat queued joins whose budget has freed, in queue order.
    fn seat_waiting(&mut self) {
        let Some(admission) = self.admission.as_mut() else { return };
        if self.waiting.is_empty() {
            return;
        }
        let ready: Vec<QueuedJoin> = admission.drain_ready();
        for join in ready {
            let controller = self
                .waiting
                .pop_front()
                .expect("invariant: waiting list parallels the admission queue");
            debug_assert_eq!(controller.tenancy(), join.tenancy);
            self.telemetry.incr(keys::ADMISSION_ADMITTED, join.tenancy);
            self.controllers.push(controller);
            self.slots.push(Slot::new(join.estimated_rows));
        }
    }

    /// Stable digest of the whole host: every controller's state, the
    /// shedding flags and streaks, and the admission ledger. Identical
    /// across runs and worker counts for the same event sequence.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        use gso_detguard::{StableHasher, StateDigest};
        let mut h = StableHasher::new();
        h.write_u64(self.controllers.len() as u64);
        for c in &self.controllers {
            h.write_u64(c.state_digest());
        }
        for s in &self.slots {
            s.shed.digest(&mut h);
            h.write_u64(s.peak_rows);
            h.write_u64(s.ledger_rows);
        }
        h.write_u64(u64::from(self.over_streak));
        h.write_u64(u64::from(self.under_streak));
        h.write_u64(self.waiting.len() as u64);
        if let Some(admission) = &self.admission {
            h.write_u64(admission.state_digest());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::controller::ControllerConfig;
    use crate::state::{CodecCapability, SubscribeIntent};
    use gso_algo::{ladders, Resolution, SourceId, TenantId};
    use gso_rtp::GsoTmmbn;
    use gso_util::{Bitrate, Ssrc, StreamKind};

    fn caps() -> CodecCapability {
        CodecCapability { ladders: vec![(StreamKind::Video, ladders::paper_table1())] }
    }

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    /// An n-party full-mesh conference controller with reported bandwidth.
    fn conference(n: u32, downlink_kbps: u64, ssrc: u32) -> GsoController {
        let mut c = GsoController::new(ControllerConfig::paper_defaults(), Ssrc(ssrc));
        for i in 1..=n {
            c.on_join(ClientId(i), caps());
        }
        for i in 1..=n {
            let intents: Vec<SubscribeIntent> = (1..=n)
                .filter(|j| *j != i)
                .map(|j| SubscribeIntent {
                    source: SourceId::video(ClientId(j)),
                    max_resolution: Resolution::R720,
                    tag: 0,
                })
                .collect();
            c.on_subscriptions(ClientId(i), intents);
            c.on_uplink_report(SimTime::ZERO, ClientId(i), k(2_000));
            c.on_downlink_report(SimTime::ZERO, ClientId(i), k(downlink_kbps));
        }
        c
    }

    fn tenant_conference(n: u32, ssrc: u32, tenant: u32, priority: PriorityClass) -> GsoController {
        let mut c = conference(n, 2_000, ssrc);
        c.set_tenancy(Tenancy::new(TenantId(tenant), priority));
        c
    }

    #[test]
    fn fleet_tick_matches_solo_ticks() {
        let shapes: Vec<(u32, u64)> = vec![(3, 2_000), (4, 1_200), (5, 1_800), (3, 700)];
        let mut solo: Vec<GsoController> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(n, d))| conference(n, d, 100 + i as u32))
            .collect();
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 2 });
        for (i, &(n, d)) in shapes.iter().enumerate() {
            fleet.push(conference(n, d, 100 + i as u32));
        }

        for step in 0..4u64 {
            let now = SimTime::from_millis(10 + step * 1_100);
            let fleet_out = fleet.tick_all(now);
            assert_eq!(fleet_out.len(), solo.len());
            for (ci, (solo_c, (fleet_out, fleet_retx))) in
                solo.iter_mut().zip(fleet_out).enumerate()
            {
                let (solo_out, solo_retx) = solo_c.tick(now);
                assert_eq!(
                    solo_out.map(|o| (o.solution, o.fallback)),
                    fleet_out.map(|o| (o.solution, o.fallback)),
                    "conference {ci} diverged at step {step}"
                );
                assert_eq!(solo_retx.len(), fleet_retx.len());
            }
            // State digests must agree exactly after every tick.
            for (ci, (solo_c, fleet_c)) in solo.iter().zip(fleet.controllers().iter()).enumerate() {
                assert_eq!(
                    solo_c.state_digest(),
                    fleet_c.state_digest(),
                    "conference {ci} digest diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn fleet_respects_manual_fallback() {
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 2 });
        fleet.push(conference(3, 2_000, 1));
        fleet.push(conference(3, 2_000, 2));
        fleet.get_mut(1).expect("present").set_fallback(true);
        let out = fleet.tick_all(SimTime::from_millis(10));
        assert!(!out[0].0.as_ref().expect("round ran").fallback);
        assert!(out[1].0.as_ref().expect("round ran").fallback);
    }

    #[test]
    fn retire_recycles_engine_slabs() {
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 1 });
        fleet.push(conference(4, 1_500, 7));
        let _ = fleet.tick_all(SimTime::from_millis(10));
        let retired = fleet.retire(0);
        drop(retired);
        assert!(fleet.is_empty());
        assert!(
            fleet.scheduler.idle_states() >= 4,
            "the retired conference's DP states must land in the reservoir"
        );
    }

    /// Make every conference's next round a real re-solve: alternating the
    /// speaker changes the QoE boosts, which invalidates the engine's
    /// whole-solve fingerprint and triggers an event round. Without this a
    /// steady-state fleet re-solves from warm memos at ~0 rows and the
    /// row-budget overload signal never fires — exactly as intended.
    fn perturb(fleet: &mut ControllerFleet, step: u64) {
        let speaker = Some(ClientId(1 + (step % 2) as u32));
        for i in 0..fleet.len() {
            fleet.get_mut(i).expect("present").on_speaker(speaker);
        }
    }

    /// Acknowledge every GTMB this tick delivered or retransmitted. Without
    /// acks the executor eventually declares clients undeliverable and the
    /// §7 failure path forces *everyone* into fallback, masking shedding.
    fn ack_tick(fleet: &mut ControllerFleet, ticks: &[FleetTick]) {
        for (i, (out, retx)) in ticks.iter().enumerate() {
            let configs = out.iter().flat_map(|o| o.configs.iter());
            for (client, msg) in configs.chain(retx.iter()) {
                fleet.get_mut(i).expect("present").on_ack(
                    *client,
                    &GsoTmmbn {
                        sender_ssrc: Ssrc(99),
                        epoch: msg.epoch,
                        request_seq: msg.request_seq,
                        entries: vec![],
                    },
                );
            }
        }
    }

    /// Run perturbed, acked, 1.1 s-spaced solving ticks starting at
    /// `start` (monotonic step index — time must never run backwards
    /// across calls). Returns the final tick's outputs.
    fn run_ticks(fleet: &mut ControllerFleet, start: u64, ticks: u64) -> Vec<FleetTick> {
        let mut last = Vec::new();
        for step in start..start + ticks {
            perturb(fleet, step);
            last = fleet.tick_all(SimTime::from_millis(10 + step * 1_100));
            ack_tick(fleet, &last);
        }
        last
    }

    #[test]
    fn overload_sheds_low_priority_first_and_never_high() {
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 2 });
        fleet.push(tenant_conference(4, 1, 1, PriorityClass::High));
        fleet.push(tenant_conference(4, 2, 2, PriorityClass::Normal));
        fleet.push(tenant_conference(4, 3, 3, PriorityClass::Low));
        fleet.push(tenant_conference(4, 4, 4, PriorityClass::Low));
        // A budget no real solve fits under: every solving tick is an
        // overrun, so the fleet sheds as fast as the hysteresis allows —
        // one conference per tick, worst tier first.
        fleet.set_shed_policy(ShedPolicy {
            row_budget_per_tick: 1,
            enter_ticks: 1,
            exit_ticks: 10,
            headroom: 0.25,
        });
        run_ticks(&mut fleet, 0, 2);
        assert!(fleet.is_shed(2) && fleet.is_shed(3), "both low conferences shed first");
        assert!(!fleet.is_shed(1), "normal must outlive every low conference");
        run_ticks(&mut fleet, 2, 6);
        assert!(fleet.is_shed(1), "sustained overload eventually sheds normal too");
        assert!(!fleet.is_shed(0), "high priority is never shed");
        // Only the high-priority conference still solves; its output is a
        // real solution, the shed ones serve the fallback template.
        let out = run_ticks(&mut fleet, 8, 1);
        assert!(!out[0].0.as_ref().expect("round ran").fallback);
        for i in [2usize, 3] {
            let o = out[i].0.as_ref().expect("round ran");
            assert!(o.fallback, "shed conference {i} must serve the template baseline");
            assert!(
                o.solution.is_template_baseline(),
                "demoted solution must carry the baseline marker"
            );
            assert!(
                !o.solution.received.is_empty(),
                "degraded conferences still get media, never zero"
            );
        }
    }

    #[test]
    fn headroom_repromotes_with_hysteresis_best_tier_first() {
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 1 });
        fleet.push(tenant_conference(3, 1, 1, PriorityClass::Normal));
        fleet.push(tenant_conference(3, 2, 2, PriorityClass::Low));
        fleet.set_shed_policy(ShedPolicy {
            row_budget_per_tick: 1,
            enter_ticks: 1,
            exit_ticks: 2,
            headroom: 0.25,
        });
        run_ticks(&mut fleet, 0, 2);
        assert_eq!(fleet.shed_count(), 2, "starvation budget sheds everything sheddable");
        let shed_digest = fleet.state_digest();

        // Relief: a budget nothing overruns. Promotion needs exit_ticks
        // consecutive under-headroom solving ticks — not one — and brings
        // the best tier back first, one per hysteresis window.
        fleet.set_shed_policy(ShedPolicy {
            row_budget_per_tick: u64::MAX / 2,
            enter_ticks: 1,
            exit_ticks: 2,
            headroom: 0.25,
        });
        run_ticks(&mut fleet, 2, 1);
        assert_eq!(fleet.shed_count(), 2, "one quiet tick must not yet re-promote");
        run_ticks(&mut fleet, 3, 1);
        assert_eq!(fleet.shed_count(), 1, "sustained headroom re-promotes one conference");
        assert!(!fleet.is_shed(0), "normal (best demoted tier) comes back before low");
        assert!(fleet.is_shed(1));
        run_ticks(&mut fleet, 4, 4);
        assert_eq!(fleet.shed_count(), 0, "relief eventually restores everyone");
        assert!(!fleet.controllers()[1].fallback_active(), "re-promoted conference solves again");
        assert_ne!(shed_digest, fleet.state_digest());
    }

    #[test]
    fn shedding_is_deterministic_across_worker_counts() {
        let build = |workers: usize| {
            let mut fleet = ControllerFleet::new(&BatchConfig { workers });
            for (i, p) in [
                PriorityClass::Normal,
                PriorityClass::Low,
                PriorityClass::High,
                PriorityClass::Low,
                PriorityClass::Normal,
            ]
            .iter()
            .enumerate()
            {
                fleet.push(tenant_conference(3 + (i as u32 % 2), i as u32 + 1, i as u32 + 1, *p));
            }
            fleet.set_shed_policy(ShedPolicy {
                row_budget_per_tick: 1,
                enter_ticks: 1,
                exit_ticks: 4,
                headroom: 0.25,
            });
            fleet
        };
        let mut a = build(1);
        let mut b = build(4);
        for step in 0..10u64 {
            let now = SimTime::from_millis(10 + step * 1_100);
            perturb(&mut a, step);
            perturb(&mut b, step);
            let ta = a.tick_all(now);
            ack_tick(&mut a, &ta);
            let tb = b.tick_all(now);
            ack_tick(&mut b, &tb);
            assert_eq!(
                a.state_digest(),
                b.state_digest(),
                "fleet digest diverged across worker counts at step {step}"
            );
        }
    }

    #[test]
    fn admitted_queued_join_seats_after_retire() {
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 1 });
        fleet.set_admission(AdmissionController::new(AdmissionConfig {
            row_budget: 1_000,
            high_reserve: 0.0,
            queue_capacity: 4,
            tenant_quota: 0,
        }));
        let seated = fleet.admit(tenant_conference(3, 1, 1, PriorityClass::Normal), 900);
        assert!(matches!(seated, Ok(AdmissionDecision::Admitted)));
        let queued = fleet.admit(tenant_conference(3, 2, 2, PriorityClass::Normal), 900);
        assert!(matches!(queued, Ok(AdmissionDecision::Queued { position: 0 })));
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.waiting_count(), 1);
        let rejected = fleet.admit(tenant_conference(3, 3, 3, PriorityClass::Low), 900);
        let Err(returned) = rejected else {
            panic!("low-priority join must be rejected outright");
        };
        assert_eq!(returned.0, RejectReason::BudgetExhausted);

        // Teardown frees the budget; the next tick seats the queued join.
        let _ = fleet.retire(0);
        let _ = fleet.tick_all(SimTime::from_millis(10));
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.waiting_count(), 0);
        assert_eq!(
            fleet.controllers()[0].tenancy(),
            Tenancy::new(TenantId(2), PriorityClass::Normal)
        );
    }

    #[test]
    fn measured_rows_correct_the_admission_ledger() {
        let mut fleet = ControllerFleet::new(&BatchConfig { workers: 1 });
        fleet.set_admission(AdmissionController::new(AdmissionConfig {
            row_budget: 1_000_000,
            high_reserve: 0.0,
            queue_capacity: 4,
            tenant_quota: 0,
        }));
        // A laughably low estimate: the measured solve must overwrite it.
        let _ = fleet.admit(tenant_conference(4, 1, 1, PriorityClass::Normal), 1);
        let _ = fleet.tick_all(SimTime::from_millis(10));
        let committed = fleet.admission().expect("installed").committed_rows();
        assert!(committed > 1, "ledger must carry the measured cost, got {committed}");
    }
}
