//! Bandwidth hysteresis (§7 "Avoiding video quality oscillations").
//!
//! Raw estimates fluctuate, and feeding every wiggle into the solver makes
//! video quality oscillate. The deployed fix: downgrades apply immediately
//! (safety first), but after a downgrade the link is *marked*, and an
//! upgrade is only accepted once the measured bandwidth exceeds the value in
//! effect by a confidence threshold — filtering measurement noise while
//! still tracking real recoveries.

use gso_util::{Bitrate, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::hash::Hash;

/// Hysteresis policy.
#[derive(Debug, Clone)]
pub struct HysteresisConfig {
    /// Fractional increase over the in-effect value required to upgrade
    /// after a downgrade.
    pub upgrade_threshold: f64,
    /// A marked (downgraded) link un-marks after this long without further
    /// downgrades, restoring immediate upgrades.
    pub mark_timeout: SimDuration,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        HysteresisConfig { upgrade_threshold: 0.15, mark_timeout: SimDuration::from_secs(30) }
    }
}

#[derive(Debug, Clone, Copy)]
struct LinkState {
    effective: Bitrate,
    marked_at: Option<SimTime>,
}

/// Per-link bandwidth gate. `K` identifies a link, e.g. `(ClientId, Dir)`.
#[derive(Debug)]
pub struct BandwidthHysteresis<K: Ord + Hash + Copy> {
    cfg: HysteresisConfig,
    links: BTreeMap<K, LinkState>,
}

impl<K: Ord + Hash + Copy> BandwidthHysteresis<K> {
    /// New gate.
    pub fn new(cfg: HysteresisConfig) -> Self {
        BandwidthHysteresis { cfg, links: BTreeMap::new() }
    }

    /// Feed a raw measurement; returns the effective bandwidth to hand the
    /// controller.
    pub fn filter(&mut self, key: K, now: SimTime, measured: Bitrate) -> Bitrate {
        let state =
            self.links.entry(key).or_insert(LinkState { effective: measured, marked_at: None });
        if measured < state.effective {
            // Downgrade: apply immediately and mark the link.
            state.effective = measured;
            state.marked_at = Some(now);
        } else if measured > state.effective {
            let marked = match state.marked_at {
                Some(at) => now.saturating_since(at) < self.cfg.mark_timeout,
                None => false,
            };
            let threshold = if marked {
                state.effective.mul_f64(1.0 + self.cfg.upgrade_threshold)
            } else {
                state.effective
            };
            if measured > threshold {
                state.effective = measured;
                if !marked {
                    state.marked_at = None;
                }
            }
        }
        state.effective
    }

    /// Current effective value for a link, if any measurement was seen.
    pub fn effective(&self, key: K) -> Option<Bitrate> {
        self.links.get(&key).map(|s| s.effective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn first_measurement_passes_through() {
        let mut h = BandwidthHysteresis::new(HysteresisConfig::default());
        assert_eq!(h.filter(1u32, t(0), k(1_000)), k(1_000));
    }

    #[test]
    fn downgrades_apply_immediately() {
        let mut h = BandwidthHysteresis::new(HysteresisConfig::default());
        h.filter(1u32, t(0), k(1_000));
        assert_eq!(h.filter(1, t(1), k(400)), k(400));
    }

    #[test]
    fn post_downgrade_upgrades_need_confidence() {
        let mut h = BandwidthHysteresis::new(HysteresisConfig::default());
        h.filter(1u32, t(0), k(1_000));
        h.filter(1, t(1), k(400)); // downgrade marks the link
                                   // +10% wiggle: suppressed (threshold is +15%).
        assert_eq!(h.filter(1, t(2), k(440)), k(400));
        // +20%: accepted.
        assert_eq!(h.filter(1, t(3), k(480)), k(480));
    }

    #[test]
    fn oscillating_measurements_produce_stable_output() {
        let mut h = BandwidthHysteresis::new(HysteresisConfig::default());
        h.filter(1u32, t(0), k(600));
        h.filter(1, t(1), k(500)); // downgrade, mark
        let mut changes = 0;
        let mut last = k(500);
        // ±8% noise around 520 for 20 s: output must not flap.
        for i in 0..20 {
            let v = if i % 2 == 0 { k(560) } else { k(490) };
            let out = h.filter(1, t(2 + i), v);
            if out != last {
                changes += 1;
                last = out;
            }
        }
        assert!(changes <= 2, "output flapped {changes} times");
    }

    #[test]
    fn mark_expires_after_timeout() {
        let cfg =
            HysteresisConfig { upgrade_threshold: 0.15, mark_timeout: SimDuration::from_secs(5) };
        let mut h = BandwidthHysteresis::new(cfg);
        h.filter(1u32, t(0), k(1_000));
        h.filter(1, t(1), k(400));
        // Within the mark window small upgrades are suppressed…
        assert_eq!(h.filter(1, t(3), k(430)), k(400));
        // …after it expires they pass again.
        assert_eq!(h.filter(1, t(10), k(430)), k(430));
    }

    #[test]
    fn links_are_independent() {
        let mut h = BandwidthHysteresis::new(HysteresisConfig::default());
        h.filter(1u32, t(0), k(1_000));
        h.filter(2u32, t(0), k(200));
        h.filter(1, t(1), k(300));
        assert_eq!(h.effective(1), Some(k(300)));
        assert_eq!(h.effective(2), Some(k(200)));
        assert_eq!(h.effective(3), None);
    }
}
