//! Property test for the §7 fallback builder: for *arbitrary* problems —
//! ragged ladders, tiny downlinks, resolution caps, watch-only clients,
//! boosts and tagged virtual publishers — `fallback_solution` must always
//! produce an auditor-clean configuration.
//!
//! The fallback is what the controller serves while everything else is on
//! fire, so it must never itself violate the constraint families: no
//! downlink budget overruns (Eq. 1–4), no codec violations (one stream per
//! resolution per source), and no subscription-relation violations
//! (streams only for real subscriptions, at most one per subscription,
//! resolution caps respected). Uplink budgets (Eq. 14) are the one family
//! the §7 fallback deliberately ignores — the paper's single-stream
//! degradation keeps publishers sending their smallest stream even when an
//! (possibly stale) uplink estimate says otherwise — so `UplinkExceeded`
//! findings are the only ones tolerated here.

use gso_algo::{ClientSpec, Ladder, Problem, Resolution, StreamSpec, Subscription};
use gso_audit::{report, SolutionAuditor, ViolationKind};
use gso_control::failure::fallback_solution;
use gso_util::{Bitrate, ClientId};
use proptest::prelude::*;

const LINES: [u16; 4] = [180, 360, 720, 1080];

/// Arbitrary valid ladders: 1–6 rungs at random resolutions with strictly
/// increasing bitrates. QoE is tied to the bitrate so the per-resolution
/// monotonicity rule holds by construction.
fn arb_ladder() -> impl Strategy<Value = Ladder> {
    let rung = ((0usize..LINES.len()).prop_map(|i| LINES[i]), 50u64..4_000);
    prop::collection::vec(rung, 1..=6).prop_map(|rungs| {
        let mut specs: Vec<StreamSpec> = Vec::new();
        let mut kbps_used = std::collections::BTreeSet::new();
        for (lines, kbps) in rungs {
            if !kbps_used.insert(kbps) {
                continue; // ladder bitrates must be unique
            }
            specs.push(StreamSpec::new(
                Resolution(lines),
                Bitrate::from_kbps(kbps),
                kbps as f64, // strictly increasing with bitrate
            ));
        }
        Ladder::new(specs).expect("constructed ladder is valid")
    })
}

/// Arbitrary problems: 1–5 clients (some watch-only), bandwidths from
/// starved to comfortable, subscriptions with random caps, boosts and
/// tags.
fn arb_problem() -> impl Strategy<Value = Problem> {
    (1usize..=5).prop_flat_map(|n| {
        let client = (arb_ladder(), 50u64..6_000, 50u64..6_000, prop::bool::ANY);
        let clients = prop::collection::vec(client, n);
        let sub = (0..n, 0..n, (0usize..LINES.len()).prop_map(|i| LINES[i]), 0u8..2, 1.0f64..3.0);
        let subs = prop::collection::vec(sub, 0..=n * 2);
        (clients, subs).prop_map(|(clients, subs)| {
            let specs: Vec<ClientSpec> = clients
                .iter()
                .enumerate()
                .map(|(i, (ladder, up, down, watch_only))| {
                    let mut c = ClientSpec::new(
                        ClientId(i as u32 + 1),
                        Bitrate::from_kbps(*up),
                        Bitrate::from_kbps(*down),
                        ladder.clone(),
                    );
                    if *watch_only {
                        c.sources.clear();
                    }
                    c
                })
                .collect();
            let mut seen = std::collections::BTreeSet::new();
            let mut subscriptions = Vec::new();
            for (i, j, cap, tag, boost) in subs {
                if i == j {
                    continue; // no self-subscriptions
                }
                let (sub_id, src_id) = (ClientId(i as u32 + 1), ClientId(j as u32 + 1));
                let Some(source) = specs[j].sources.first().map(|s| s.id) else { continue };
                if !seen.insert((sub_id, src_id, tag)) {
                    continue; // no duplicate (subscriber, source, tag)
                }
                subscriptions.push(
                    Subscription::new(sub_id, source, Resolution(cap))
                        .with_boost(boost)
                        .with_tag(tag),
                );
            }
            Problem::new(specs, subscriptions).expect("generated problem is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fallback_solution_is_always_auditor_clean(problem in arb_problem()) {
        let solution = fallback_solution(&problem);
        let findings: Vec<_> = SolutionAuditor::new()
            .audit_constraints(&problem, &solution)
            .into_iter()
            .filter(|v| !matches!(v.kind, ViolationKind::UplinkExceeded { .. }))
            .collect();
        prop_assert!(
            findings.is_empty(),
            "fallback configuration violates constraints:\n{}",
            report(&findings)
        );
        // The solution's own invariant checker agrees on the receive side.
        for c in problem.clients() {
            let rate: u64 = solution
                .received
                .get(&c.id)
                .map_or(0, |rs| rs.iter().map(|r| r.bitrate.as_bps()).sum());
            prop_assert!(
                rate <= c.downlink.as_bps(),
                "client {} receives {rate} bps over its {} downlink",
                c.id,
                c.downlink
            );
        }
    }
}
