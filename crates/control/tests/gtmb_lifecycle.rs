//! Property test for the §4.3 GTMB delivery lifecycle under message loss.
//!
//! RTCP gives no delivery guarantee, so the executor's contract is pure
//! liveness: whatever the ack-loss rate and controller tick cadence, every
//! client must end a delivery attempt either `applied` (acked) or `failed`
//! (handed to the §7 failure path) — never stuck pending forever. This is
//! exactly the property the pre-fix executor violated: re-executing an
//! unchanged solution every tick reset the retransmission budget, so an
//! unreachable client stayed pending for the conference lifetime.

use gso_algo::{ladders, ClientSpec, Problem, Resolution, SourceId, Subscription};
use gso_control::feedback::{FeedbackConfig, FeedbackExecutor};
use gso_rtp::{GsoTmmbn, GsoTmmbr, TmmbrEntry};
use gso_util::{Bitrate, ClientId, DetRng, SimTime, Ssrc};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// An `n`-party conference where everyone watches client 1.
fn solved(n: u32) -> (gso_algo::Solution, BTreeMap<SourceId, Vec<u16>>) {
    let ladder = ladders::paper_table1();
    let clients: Vec<ClientSpec> = (1..=n)
        .map(|i| {
            ClientSpec::new(
                ClientId(i),
                Bitrate::from_mbps(5),
                Bitrate::from_mbps(5),
                ladder.clone(),
            )
        })
        .collect();
    let subs: Vec<Subscription> = (2..=n)
        .map(|i| Subscription::new(ClientId(i), SourceId::video(ClientId(1)), Resolution::R720))
        .collect();
    let problem = Problem::new(clients, subs).expect("valid conference");
    let solution = gso_algo::solver::solve(&problem, &Default::default());
    let layers: BTreeMap<SourceId, Vec<u16>> =
        (1..=n).map(|i| (SourceId::video(ClientId(i)), vec![180u16, 360, 720])).collect();
    (solution, layers)
}

/// Deliver the acks for a batch of sent messages, each lost with
/// probability `loss`. Returns the clients whose ack went through.
fn deliver_lossy(
    ex: &mut FeedbackExecutor,
    msgs: &[(ClientId, GsoTmmbr)],
    loss: f64,
    rng: &mut DetRng,
    acked: &mut BTreeSet<ClientId>,
) {
    for (client, msg) in msgs {
        if !rng.chance(loss) {
            ex.on_ack(
                *client,
                &GsoTmmbn {
                    sender_ssrc: Ssrc(0xace),
                    epoch: msg.epoch,
                    request_seq: msg.request_seq,
                    entries: Vec::<TmmbrEntry>::new(),
                },
            );
            acked.insert(*client);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lossy acks × arbitrary tick cadence: after the controller stops
    /// issuing configs and the retransmission budget runs its course,
    /// every client is applied or failed and nothing is left pending.
    #[test]
    fn every_client_ends_applied_or_failed(
        seed in 0u64..1_000_000,
        n in 2u32..=5,
        cadence_ms in 100u64..=2_000,
        loss in 0.0f64..0.95,
    ) {
        let (solution, layers) = solved(n);
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let mut rng = DetRng::derive(seed, "gtmb-acks");
        let mut acked: BTreeSet<ClientId> = BTreeSet::new();
        let mut failed: BTreeSet<ClientId> = BTreeSet::new();

        // Phase 1: the controller re-executes the same solution every tick
        // (the worst case for budget accounting) while acks are lossy.
        let mut now = SimTime::ZERO;
        for tick in 0..30u64 {
            now = SimTime::from_micros(tick * cadence_ms * 1_000);
            let resent = ex.poll(now);
            failed.extend(ex.take_failed());
            deliver_lossy(&mut ex, &resent, loss, &mut rng, &mut acked);
            let (msgs, _) = ex.execute(now, &solution, &layers);
            deliver_lossy(&mut ex, &msgs, loss, &mut rng, &mut acked);
        }

        // Phase 2 (quiesce): no further executes; polling alone must drain
        // every outstanding entry within the retransmission budget (five
        // transmissions on the 200/400/800 ms backoff), whatever happened
        // above.
        for step in 1..=30u64 {
            let t = now + gso_util::SimDuration::from_millis(step * 200);
            let resent = ex.poll(t);
            failed.extend(ex.take_failed());
            deliver_lossy(&mut ex, &resent, loss, &mut rng, &mut acked);
        }

        for i in 1..=n {
            let c = ClientId(i);
            prop_assert!(!ex.pending(c), "client {c:?} still pending after quiesce");
            prop_assert!(
                acked.contains(&c) || failed.contains(&c),
                "client {c:?} neither applied nor failed"
            );
        }
    }

    /// Fully unreachable clients (100% ack loss) always reach the failure
    /// path, at every cadence — the regression the budget fix closes.
    #[test]
    fn unreachable_clients_always_fail(
        n in 2u32..=4,
        cadence_ms in 100u64..=2_000,
    ) {
        let (solution, layers) = solved(n);
        let mut ex = FeedbackExecutor::new(FeedbackConfig::default(), Ssrc(1));
        let mut failed: BTreeSet<ClientId> = BTreeSet::new();
        for tick in 0..60u64 {
            let now = SimTime::from_micros(tick * cadence_ms * 1_000);
            ex.poll(now);
            failed.extend(ex.take_failed());
            if failed.len() as u32 == n {
                break; // all clients already handed to the failure path
            }
            let (_msgs, _) = ex.execute(now, &solution, &layers);
        }
        prop_assert!(
            failed.len() as u32 == n,
            "only {} of {n} clients failed at cadence {cadence_ms}ms",
            failed.len()
        );
    }
}
