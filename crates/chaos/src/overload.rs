//! Fleet overload: 2× offered capacity against admission + shedding.
//!
//! Where the rest of the harness faults one wired conference, this module
//! stresses the *multi-tenant control plane*: a [`gso_control::ControllerFleet`]
//! of mixed-priority conferences is driven with per-tick churn at twice the
//! row budget the fleet is provisioned for, plus a mid-run join wave that
//! the admission controller must park or turn away. The verdict mirrors the
//! ISSUE acceptance gates:
//!
//! * high-priority tenant QoE within tolerance of the uncontended baseline
//!   (shedding must never touch the High tier),
//! * every low-priority conference demoted to the cheap template baseline —
//!   degraded, never starved (`received` stays non-empty),
//! * under sustained overload no join is admitted immediately; low-priority
//!   joins are rejected outright while better tiers queue,
//! * final configurations auditor-clean (uplink findings excluded for
//!   fallback outputs, as in the §7 runner), and
//! * digest-identical double runs at 1, 2 and 8 batch workers.
//!
//! The row budget is self-calibrating: an unlimited run measures the
//! fleet's real per-tick demand, and the overloaded run is provisioned at
//! half of it — so "2× offered capacity" holds by construction on any
//! machine, with no magic constants to drift as the solver evolves.

use gso_algo::{ladders, BatchConfig, PriorityClass, Resolution, SourceId, Tenancy, TenantId};
use gso_audit::{SolutionAuditor, ViolationKind};
use gso_control::{
    AdmissionConfig, AdmissionController, AdmissionDecision, CodecCapability, ControllerConfig,
    ControllerFleet, FleetTick, GsoController, ShedPolicy, SubscribeIntent,
};
use gso_detguard::{first_divergence, DigestEntry, DigestTrace};
use gso_rtp::GsoTmmbn;
use gso_telemetry::{keys, Telemetry};
use gso_util::{Bitrate, ClientId, DetRng, SimTime, Ssrc};

/// A deterministic multi-tenant overload schedule.
#[derive(Debug, Clone)]
pub struct OverloadPlan {
    /// Report/telemetry label.
    pub name: String,
    /// Tenancy and party count of each pre-seated conference.
    pub conferences: Vec<(Tenancy, u32)>,
    /// Reported downlink per conference (seed-jittered, constant per run).
    pub downlinks: Vec<Bitrate>,
    /// Solving ticks to run (1.1 s apart, every one churned).
    pub ticks: u64,
}

impl OverloadPlan {
    /// The reference plan: six conferences across three tenant tiers —
    /// two High, two Normal, two Low — with seed-varied sizes and
    /// downlinks. Long enough for shedding to reach steady state with the
    /// default hysteresis and still leave a tail to judge.
    pub fn standard(seed: u64) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-overload");
        let tiers = [
            PriorityClass::High,
            PriorityClass::High,
            PriorityClass::Normal,
            PriorityClass::Normal,
            PriorityClass::Low,
            PriorityClass::Low,
        ];
        let conferences = tiers
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                (Tenancy::new(TenantId(i as u32 + 1), p), 3 + rng.range_u64(0, 3) as u32)
            })
            .collect();
        let downlinks =
            (0..tiers.len()).map(|_| Bitrate::from_kbps(rng.range_u64(1_400, 2_400))).collect();
        OverloadPlan { name: "fleet-overload".to_string(), conferences, downlinks, ticks: 24 }
    }
}

/// What one fleet execution produced.
pub struct OverloadOutcome {
    /// Per-tick fleet + telemetry digests for the double-run comparison.
    pub trace: DigestTrace,
    /// Summed final QoE over the High-tier conferences.
    pub high_qoe: f64,
    /// Per Low-tier conference: (served fallback, template baseline,
    /// received non-empty) at its final round.
    pub low_finals: Vec<(bool, bool, bool)>,
    /// Conferences demoted by shedding at the end of the run.
    pub shed: usize,
    /// Mean summed DP rows per solving tick (the fleet's measured demand).
    pub rows_per_tick: u64,
    /// Auditor findings across every conference's final configuration
    /// (uplink findings excluded for fallback outputs).
    pub violations: usize,
    /// Join-wave decisions as (admitted, queued, rejected) counts.
    pub joins: (usize, usize, usize),
}

/// Acceptance bounds for [`check_overload`].
#[derive(Debug, Clone)]
pub struct OverloadBounds {
    /// Maximum relative High-tier QoE delta vs the uncontended baseline.
    pub qoe_tolerance: f64,
    /// Worker counts the double-run digest comparison covers.
    pub worker_counts: &'static [usize],
}

impl Default for OverloadBounds {
    fn default() -> Self {
        OverloadBounds { qoe_tolerance: 0.01, worker_counts: &[1, 2, 8] }
    }
}

/// The overload acceptance verdict.
#[derive(Debug, Clone)]
pub struct OverloadVerdict {
    /// Plan name.
    pub plan: String,
    /// Calibrated per-tick row budget the overloaded fleet ran under.
    pub budget_rows: u64,
    /// Measured uncontended demand (≈ 2 × `budget_rows` by construction).
    pub offered_rows: u64,
    /// Summed High-tier QoE under overload.
    pub high_qoe: f64,
    /// Summed High-tier QoE of the uncontended baseline.
    pub baseline_high_qoe: f64,
    /// High-tier QoE within tolerance of the baseline.
    pub qoe_ok: bool,
    /// Every Low conference demoted to the template baseline with media.
    pub degraded_ok: bool,
    /// Conferences shed at the end of the overloaded run.
    pub shed: usize,
    /// Join wave handled correctly: nothing admitted immediately, at
    /// least one queued, at least one rejected.
    pub admission_ok: bool,
    /// Zero auditor findings across final configurations.
    pub auditor_ok: bool,
    /// Auditor finding count.
    pub violations: usize,
    /// All runs digest-identical across worker counts and repeats.
    pub deterministic: bool,
    /// First divergence report when not deterministic.
    pub divergence: Option<String>,
}

impl OverloadVerdict {
    /// All acceptance gates hold.
    pub fn passed(&self) -> bool {
        self.qoe_ok
            && self.degraded_ok
            && self.admission_ok
            && self.auditor_ok
            && self.deterministic
    }

    /// One-line report row, shaped like [`crate::PlanVerdict::row`].
    pub fn row(&self) -> String {
        format!(
            "{:18} {} high-qoe {:>7.0} vs {:>7.0}  offered {}r/budget {}r  shed {}  \
             degraded {}  admission {}  violations {}  {}",
            self.plan,
            if self.passed() { "PASS" } else { "FAIL" },
            self.high_qoe,
            self.baseline_high_qoe,
            self.offered_rows,
            self.budget_rows,
            self.shed,
            if self.degraded_ok { "ok" } else { "STARVED" },
            if self.admission_ok { "ok" } else { "LEAKED" },
            self.violations,
            if self.deterministic { "digest-identical" } else { "DIVERGED" },
        )
    }
}

/// An n-party full-mesh conference under the given tenancy.
fn build_conference(tenancy: Tenancy, parties: u32, ssrc: u32, downlink: Bitrate) -> GsoController {
    let caps =
        CodecCapability { ladders: vec![(gso_util::StreamKind::Video, ladders::paper_table1())] };
    let mut c = GsoController::new(ControllerConfig::paper_defaults(), Ssrc(ssrc));
    for i in 1..=parties {
        c.on_join(ClientId(i), caps.clone());
    }
    for i in 1..=parties {
        let intents: Vec<SubscribeIntent> = (1..=parties)
            .filter(|j| *j != i)
            .map(|j| SubscribeIntent {
                source: SourceId::video(ClientId(j)),
                max_resolution: Resolution::R720,
                tag: 0,
            })
            .collect();
        c.on_subscriptions(ClientId(i), intents);
        c.on_uplink_report(SimTime::ZERO, ClientId(i), Bitrate::from_kbps(2_000));
        c.on_downlink_report(SimTime::ZERO, ClientId(i), downlink);
    }
    c.set_tenancy(tenancy);
    c
}

/// Acknowledge every GTMB a tick delivered or retransmitted so the §7
/// undeliverable-client path stays quiet — this scenario is about load,
/// not delivery failure.
fn ack_tick(fleet: &mut ControllerFleet, ticks: &[FleetTick]) {
    for (i, (out, retx)) in ticks.iter().enumerate() {
        let configs = out.iter().flat_map(|o| o.configs.iter());
        for (client, msg) in configs.chain(retx.iter()) {
            fleet.get_mut(i).expect("ticked conference exists").on_ack(
                *client,
                &GsoTmmbn {
                    sender_ssrc: Ssrc(9_999),
                    epoch: msg.epoch,
                    request_seq: msg.request_seq,
                    entries: vec![],
                },
            );
        }
    }
}

/// Execute the plan once. `budget_rows == 0` runs uncontended (no shedding,
/// no admission, no join wave) — that is the calibration/baseline mode.
pub fn run_overload(plan: &OverloadPlan, workers: usize, budget_rows: u64) -> OverloadOutcome {
    let telemetry = Telemetry::new(plan.name.clone());
    let mut fleet = ControllerFleet::new(&BatchConfig { workers });
    fleet.set_telemetry(telemetry.clone());
    for (i, &(tenancy, parties)) in plan.conferences.iter().enumerate() {
        fleet.push(build_conference(tenancy, parties, 100 + i as u32 * 10, plan.downlinks[i]));
    }
    if budget_rows > 0 {
        fleet.set_shed_policy(ShedPolicy {
            row_budget_per_tick: budget_rows,
            enter_ticks: 2,
            exit_ticks: 5,
            headroom: 0.25,
        });
        fleet.set_admission(AdmissionController::new(AdmissionConfig {
            row_budget: budget_rows,
            high_reserve: 0.2,
            queue_capacity: 8,
            tenant_quota: 0,
        }));
    }

    let mut trace = DigestTrace::new();
    let mut joins = (0usize, 0usize, 0usize);
    // Final-round snapshot per pre-seated conference:
    // (fallback, template baseline, received non-empty, qoe).
    let mut finals: Vec<Option<(bool, bool, bool, f64)>> = vec![None; plan.conferences.len()];
    for step in 0..plan.ticks {
        // Churn: rotate the active speaker in every conference so each
        // round invalidates the engine's whole-solve fingerprint and does
        // real DP work — a steady-state fleet re-solves from warm memos at
        // ~0 rows and would never look overloaded.
        for (i, &(_, parties)) in plan.conferences.iter().enumerate() {
            let speaker = ClientId(1 + (step % u64::from(parties)) as u32);
            fleet.get_mut(i).expect("pre-seated conference exists").on_speaker(Some(speaker));
        }
        // Mid-run join wave, one attempt per tier: by now the measured
        // ledger reflects ~2× the budget, so nothing may seat immediately.
        if budget_rows > 0 && step == plan.ticks / 2 {
            for (k, tier) in
                [PriorityClass::High, PriorityClass::Normal, PriorityClass::Low].iter().enumerate()
            {
                let tenancy = Tenancy::new(TenantId(90 + k as u32), *tier);
                let joiner =
                    build_conference(tenancy, 4, 900 + k as u32 * 10, Bitrate::from_kbps(1_800));
                match fleet.admit(joiner, budget_rows / 2) {
                    Ok(AdmissionDecision::Admitted) => joins.0 += 1,
                    Ok(AdmissionDecision::Queued { .. }) => joins.1 += 1,
                    Ok(AdmissionDecision::Rejected(_)) | Err(_) => joins.2 += 1,
                }
            }
        }
        let now = SimTime::from_millis(10 + step * 1_100);
        let out = fleet.tick_all(now);
        ack_tick(&mut fleet, &out);
        for (i, (output, _)) in out.iter().enumerate().take(finals.len()) {
            if let Some(o) = output {
                finals[i] = Some((
                    o.fallback,
                    o.solution.is_template_baseline(),
                    !o.solution.received.is_empty(),
                    o.solution.total_qoe,
                ));
            }
        }
        let fleet_digest = fleet.state_digest();
        let telemetry_digest = telemetry.export_digest();
        trace.record(DigestEntry::new(
            now.as_micros(),
            vec![("fleet".to_string(), fleet_digest), ("telemetry".to_string(), telemetry_digest)],
            format!(
                "t={}us fleet={fleet_digest:#018x} telemetry={telemetry_digest:#018x}",
                now.as_micros()
            ),
        ));
    }

    let mut high_qoe = 0.0;
    let mut low_finals = Vec::new();
    let mut violations = 0usize;
    let auditor = SolutionAuditor::new();
    for (i, &(tenancy, _)) in plan.conferences.iter().enumerate() {
        let last = finals[i].expect("every conference produced at least one round");
        match tenancy.priority {
            PriorityClass::High => high_qoe += last.3,
            PriorityClass::Low => low_finals.push((last.0, last.1, last.2)),
            PriorityClass::Normal => {}
        }
        let controller = &fleet.controllers()[i];
        if let (Ok(problem), Some(solution)) =
            (controller.picture.to_problem(), controller.last_solution())
        {
            violations += auditor
                .audit_constraints(&problem, solution)
                .iter()
                .filter(|v| !matches!(v.kind, ViolationKind::UplinkExceeded { .. }))
                .count();
        }
    }
    let rows_per_tick = telemetry
        .histogram(keys::FLEET_TICK_ROWS, "tick")
        .map_or(0, |h| h.sum.checked_div(h.total).unwrap_or(0));
    OverloadOutcome {
        trace,
        high_qoe,
        low_finals,
        shed: fleet.shed_count(),
        rows_per_tick,
        violations,
        joins,
    }
}

/// Calibrate, overload at 2× capacity, and render the acceptance verdict.
pub fn check_overload(seed: u64, bounds: &OverloadBounds) -> OverloadVerdict {
    let plan = OverloadPlan::standard(seed);
    let baseline = run_overload(&plan, 2, 0);
    let offered = baseline.rows_per_tick;
    let budget = (offered / 2).max(1);

    let reference = run_overload(&plan, 2, budget);
    let mut divergence = None;
    for &workers in bounds.worker_counts {
        for _ in 0..2 {
            let repeat = run_overload(&plan, workers, budget);
            if divergence.is_none() {
                divergence = first_divergence(&reference.trace, &repeat.trace).map(|d| d.report());
            }
        }
    }

    let qoe_ok = baseline.high_qoe > 0.0
        && (reference.high_qoe - baseline.high_qoe).abs()
            <= bounds.qoe_tolerance * baseline.high_qoe;
    let degraded_ok = !reference.low_finals.is_empty()
        && reference
            .low_finals
            .iter()
            .all(|&(fallback, template, media)| fallback && template && media);
    let (admitted, queued, rejected) = reference.joins;
    let admission_ok = admitted == 0 && queued >= 1 && rejected >= 1;
    OverloadVerdict {
        plan: plan.name.clone(),
        budget_rows: budget,
        offered_rows: offered,
        high_qoe: reference.high_qoe,
        baseline_high_qoe: baseline.high_qoe,
        qoe_ok,
        degraded_ok,
        shed: reference.shed,
        admission_ok,
        auditor_ok: reference.violations == 0,
        violations: reference.violations,
        deterministic: divergence.is_none(),
        divergence,
    }
}
