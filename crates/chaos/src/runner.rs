//! Tick-stepped fault-plan execution and verdicts.
//!
//! [`run_plan`] builds a [`Scenario`] onto the deterministic packet
//! simulator and steps it in controller-tick-sized intervals, applying
//! each due [`FaultEvent`] at the enclosing tick boundary and recording a
//! per-tick [`DigestTrace`] over the network simulator, the controller and
//! the telemetry registry. [`check_plan`] runs a plan *twice*, then renders
//! the §7 acceptance verdict: steady-state QoE within tolerance of the
//! no-fault baseline, bounded recovery time for every controller restart,
//! zero auditor violations in the final configuration, and digest-identical
//! double runs.

use crate::plan::{FaultEvent, FaultKind, FaultPlan, LinkFault, LinkSide};
use gso_audit::{SolutionAuditor, Violation, ViolationKind};
use gso_detguard::{first_divergence, DigestEntry, DigestTrace};
use gso_net::{LinkConfig, NodeId, Schedule};
use gso_sim::access::AccessNode;
use gso_sim::conference::ConferenceNode;
use gso_sim::{ClientNode, Scenario, ScenarioResult, WiredConference};
use gso_telemetry::{keys, HistogramSnapshot};
use gso_util::{ClientId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Acceptance bounds for [`check_plan`].
#[derive(Debug, Clone)]
pub struct ChaosBounds {
    /// Maximum relative steady-state QoE delta vs the no-fault baseline.
    /// QoE here is the controller's converged objective value
    /// ([`gso_algo::Solution::total_qoe`]): after recovery the controller
    /// must orchestrate back to (within 1% of) the no-fault configuration.
    pub qoe_tolerance: f64,
    /// Minimum faulted-run tail throughput as a fraction of the baseline's.
    /// Wire-level rates breathe with BWE probe phase (several percent), so
    /// this is a media-keeps-flowing floor, not an equality check.
    pub media_floor: f64,
    /// Maximum controller recovery time (restart → first full solve).
    pub recovery_ms: u64,
    /// Tail window over which steady-state throughput is measured.
    pub tail_window: SimDuration,
}

impl Default for ChaosBounds {
    fn default() -> Self {
        ChaosBounds {
            qoe_tolerance: 0.01,
            media_floor: 0.85,
            recovery_ms: 5_000,
            tail_window: SimDuration::from_secs(5),
        }
    }
}

/// Everything one plan execution produces.
pub struct ChaosOutcome {
    /// Harvested scenario metrics (QoE, rate series, telemetry handle).
    pub result: ScenarioResult,
    /// Per-tick state digests for the double-run comparison.
    pub trace: DigestTrace,
    /// Auditor findings against the final picture + last solution
    /// (uplink-budget findings excluded: the §7 fallback ignores them).
    pub violations: Vec<Violation>,
    /// Objective value of the controller's final solution (Σ received QoE).
    pub solution_qoe: f64,
    /// Recovery-time histogram for controller restarts, if any.
    pub recovery: Option<HistogramSnapshot>,
    /// `fallback.entered` / `fallback.exited` counter totals.
    pub fallback_entered: u64,
    /// See [`ChaosOutcome::fallback_entered`].
    pub fallback_exited: u64,
    /// `epoch.stale_rejected` counter total.
    pub stale_rejected: u64,
    /// Standby-takeover histogram (`cluster.takeover_ms`), if any standby
    /// was promoted.
    pub takeover: Option<HistogramSnapshot>,
    /// `cluster.promotions` counter total.
    pub promotions: u64,
    /// `cluster.fenced` counter total: stale-epoch writes *rejected* at the
    /// accessing nodes (rejection happens before application, so this
    /// counting is also the proof that zero stale writes were applied).
    pub fenced: u64,
    /// `cluster.stepdowns` counter total: zombies that received a `Fence`
    /// and stopped writing.
    pub stepdowns: u64,
}

/// Execute one plan against the scenario, stepping the simulator in 100 ms
/// ticks and applying due fault events at tick boundaries.
pub fn run_plan(scenario: &Scenario, plan: &FaultPlan) -> ChaosOutcome {
    let mut wired = scenario.build();
    let originals = snapshot_links(scenario, &mut wired);
    let end = SimTime::ZERO + scenario.duration;
    let tick = SimDuration::from_millis(100);
    let mut trace = DigestTrace::new();
    let mut idx = 0;
    let mut t = SimTime::ZERO;
    while t < end {
        while idx < plan.events.len() && plan.events[idx].at <= t {
            apply(&mut wired, scenario, &originals, &plan.events[idx]);
            idx += 1;
        }
        let next = (t + tick).min(end);
        wired.sim.run_until(next);
        t = next;
        let net = wired.sim.state_digest();
        let ctrl =
            wired.sim.node::<ConferenceNode>(wired.cn).map_or(0, |c| c.controller.state_digest());
        let standby = wired
            .standby
            .and_then(|sb| wired.sim.node::<ConferenceNode>(sb))
            .map_or(0, |c| c.controller.state_digest());
        let telemetry = wired.telemetry.export_digest();
        trace.record(DigestEntry::new(
            t.as_micros(),
            vec![
                ("net.sim".to_string(), net),
                ("ctrl".to_string(), ctrl),
                ("standby".to_string(), standby),
                ("telemetry".to_string(), telemetry),
            ],
            format!(
                "t={}us net={net:#018x} ctrl={ctrl:#018x} standby={standby:#018x} \
                 telemetry={telemetry:#018x}",
                t.as_micros()
            ),
        ));
    }
    let violations = audit_final(&wired);
    let solution_qoe =
        live_cn(&wired).and_then(|c| c.controller.last_solution()).map_or(0.0, |s| s.total_qoe);
    let recovery = wired.telemetry.histogram(keys::CTRL_RECOVERY_TIME_MS, "restart");
    let fallback_entered = wired.telemetry.counter_total(keys::CTRL_FALLBACK_ENTERED);
    let fallback_exited = wired.telemetry.counter_total(keys::CTRL_FALLBACK_EXITED);
    let stale_rejected = wired.telemetry.counter_total(keys::EPOCH_STALE_REJECTED);
    let takeover = wired.telemetry.histogram(keys::CLUSTER_TAKEOVER_MS, "takeover");
    let promotions = wired.telemetry.counter_total(keys::CLUSTER_PROMOTIONS);
    let fenced = wired.telemetry.counter_total(keys::CLUSTER_FENCED);
    let stepdowns = wired.telemetry.counter_total(keys::CLUSTER_STEPDOWNS);
    let result = scenario.harvest(wired, end);
    ChaosOutcome {
        result,
        trace,
        violations,
        solution_qoe,
        recovery,
        fallback_entered,
        fallback_exited,
        stale_rejected,
        takeover,
        promotions,
        fenced,
        stepdowns,
    }
}

/// The controller node that owns the conference at the end of a run: the
/// standby once it has been promoted, the original conference node
/// otherwise.
fn live_cn(wired: &WiredConference) -> Option<&ConferenceNode> {
    if let Some(node) = wired.standby.and_then(|sb| wired.sim.node::<ConferenceNode>(sb)) {
        if !node.is_standby() {
            return Some(node);
        }
    }
    wired.sim.node::<ConferenceNode>(wired.cn)
}

/// Steady-state QoE: mean received media rate over the tail window,
/// averaged over clients. After recovery every run must converge back to
/// the same orchestrated configuration, so this is directly comparable
/// between a faulted run and the no-fault baseline.
pub fn steady_state_qoe(result: &ScenarioResult, tail: SimDuration) -> f64 {
    let from = result.end.checked_sub(tail).unwrap_or(SimTime::ZERO);
    let rates: Vec<f64> = result
        .recv_series
        .values()
        .filter_map(|series| series.window_mean(from, result.end))
        .collect();
    if rates.is_empty() {
        0.0
    } else {
        rates.iter().sum::<f64>() / rates.len() as f64
    }
}

/// The no-fault reference a faulted run is judged against.
#[derive(Debug, Clone, Copy)]
pub struct Baseline {
    /// Converged orchestration objective (Σ received QoE).
    pub qoe: f64,
    /// Mean tail-window received rate over clients (bps).
    // sentinel: allow(unit-hygiene, reason = "measured mean throughput, inherently fractional; the Bitrate newtype is for configured stream rates")
    pub media_bps: f64,
}

impl Baseline {
    /// Measure the baseline from a no-fault [`run_plan`] outcome.
    pub fn from_outcome(outcome: &ChaosOutcome, tail: SimDuration) -> Self {
        Baseline { qoe: outcome.solution_qoe, media_bps: steady_state_qoe(&outcome.result, tail) }
    }
}

/// The per-plan acceptance verdict.
#[derive(Debug, Clone)]
pub struct PlanVerdict {
    /// Plan name.
    pub plan: String,
    /// Converged orchestration objective of the faulted run.
    pub qoe: f64,
    /// Converged orchestration objective of the no-fault baseline.
    pub baseline_qoe: f64,
    /// QoE within [`ChaosBounds::qoe_tolerance`] of the baseline.
    pub qoe_ok: bool,
    /// Tail-window received rate of the faulted run (bps).
    // sentinel: allow(unit-hygiene, reason = "measured mean throughput, inherently fractional; the Bitrate newtype is for configured stream rates")
    pub media_bps: f64,
    /// Tail throughput at or above [`ChaosBounds::media_floor`] × baseline.
    pub media_ok: bool,
    /// Final configuration is auditor-clean.
    pub auditor_ok: bool,
    /// Number of auditor findings (0 when `auditor_ok`).
    pub violations: usize,
    /// Every controller restart recovered within the bound.
    pub recovery_ok: bool,
    /// Mean recovery time in ms over the plan's restarts (0 if none).
    pub recovery_mean_ms: u64,
    /// Standby promotions matched [`crate::FaultPlan::expected_promotions`]
    /// and every takeover closed within the recovery bound.
    pub takeover_ok: bool,
    /// Mean takeover time in ms over the plan's promotions (0 if none).
    pub takeover_mean_ms: u64,
    /// Fencing behaved as the plan demands: stale-epoch writes rejected
    /// when a zombie exists (`cluster.fenced` > 0 with a stepdown), zero
    /// fenced writes otherwise.
    pub fencing_ok: bool,
    /// `cluster.fenced` total of the faulted run.
    pub fenced: u64,
    /// Both executions produced identical digest traces.
    pub deterministic: bool,
    /// First divergence report when not deterministic.
    pub divergence: Option<String>,
}

impl PlanVerdict {
    /// All acceptance checks hold.
    pub fn passed(&self) -> bool {
        self.qoe_ok
            && self.media_ok
            && self.auditor_ok
            && self.recovery_ok
            && self.takeover_ok
            && self.fencing_ok
            && self.deterministic
    }

    /// One-line report row.
    pub fn row(&self) -> String {
        format!(
            "{:20} {} qoe {:>7.0} vs {:>7.0} ({:+.2}%)  media {:>8.0} bps ({})  violations {}  \
             recovery {} ({} ms)  takeover {} ({} ms)  fenced {} ({})  {}",
            self.plan,
            if self.passed() { "PASS" } else { "FAIL" },
            self.qoe,
            self.baseline_qoe,
            if self.baseline_qoe > 0.0 {
                (self.qoe - self.baseline_qoe) / self.baseline_qoe * 100.0
            } else {
                0.0
            },
            self.media_bps,
            if self.media_ok { "ok" } else { "LOW" },
            self.violations,
            if self.recovery_ok { "ok" } else { "LATE" },
            self.recovery_mean_ms,
            if self.takeover_ok { "ok" } else { "BAD" },
            self.takeover_mean_ms,
            self.fenced,
            if self.fencing_ok { "ok" } else { "BAD" },
            if self.deterministic { "digest-identical" } else { "DIVERGED" },
        )
    }
}

/// Run `plan` twice against `scenario` and render the acceptance verdict
/// against the given no-fault baseline.
pub fn check_plan(
    scenario: &Scenario,
    baseline: Baseline,
    plan: &FaultPlan,
    bounds: &ChaosBounds,
) -> PlanVerdict {
    let a = run_plan(scenario, plan);
    let b = run_plan(scenario, plan);
    let divergence = first_divergence(&a.trace, &b.trace).map(|d| d.report());
    let qoe = a.solution_qoe;
    let qoe_ok =
        baseline.qoe > 0.0 && (qoe - baseline.qoe).abs() <= bounds.qoe_tolerance * baseline.qoe;
    let media_bps = steady_state_qoe(&a.result, bounds.tail_window);
    let media_ok = media_bps >= bounds.media_floor * baseline.media_bps;
    let (recovery_ok, recovery_mean_ms) = recovery_verdict(&a, plan, bounds.recovery_ms);
    let (takeover_ok, takeover_mean_ms) = takeover_verdict(&a, plan, bounds.recovery_ms);
    let fencing_ok = if plan.expect_fencing {
        // A zombie existed: its stale-epoch writes must have been rejected
        // (never applied) and the Fence replies must have made it step down.
        a.fenced > 0 && a.stepdowns > 0
    } else {
        a.fenced == 0
    };
    PlanVerdict {
        plan: plan.name.clone(),
        qoe,
        baseline_qoe: baseline.qoe,
        qoe_ok,
        media_bps,
        media_ok,
        auditor_ok: a.violations.is_empty(),
        violations: a.violations.len(),
        recovery_ok,
        recovery_mean_ms,
        takeover_ok,
        takeover_mean_ms,
        fencing_ok,
        fenced: a.fenced,
        deterministic: divergence.is_none(),
        divergence,
    }
}

/// Every restart must have closed a recovery window, and every sample must
/// sit in a histogram bucket at or below the bound.
fn recovery_verdict(outcome: &ChaosOutcome, plan: &FaultPlan, bound_ms: u64) -> (bool, u64) {
    window_verdict(outcome.recovery.as_ref(), plan.restarts(), bound_ms)
}

/// Exactly the expected number of standby promotions, each closing its
/// takeover window within the bound.
fn takeover_verdict(outcome: &ChaosOutcome, plan: &FaultPlan, bound_ms: u64) -> (bool, u64) {
    if outcome.promotions != plan.expected_promotions {
        return (false, 0);
    }
    window_verdict(outcome.takeover.as_ref(), plan.expected_promotions, bound_ms)
}

/// `expected` histogram samples, all in buckets at or below `bound_ms`;
/// returns `(ok, mean_ms)`.
fn window_verdict(
    histogram: Option<&HistogramSnapshot>,
    expected: u64,
    bound_ms: u64,
) -> (bool, u64) {
    if expected == 0 {
        return (histogram.is_none(), 0);
    }
    let Some(h) = histogram else { return (false, 0) };
    let mean = h.sum.checked_div(h.total).unwrap_or(0);
    if h.total != expected {
        return (false, mean);
    }
    let mut within = 0;
    for (i, &count) in h.counts.iter().enumerate() {
        if h.bounds.get(i).is_some_and(|&b| b <= bound_ms) {
            within += count;
        }
    }
    (within == h.total, mean)
}

/// Audit the controller's final picture against its last solution. Uplink
/// budget findings are excluded: the §7 single-stream fallback (which may
/// be the last output if a plan ends inside a degraded window) keeps
/// publishers sending their smallest stream even when a stale uplink
/// estimate says otherwise.
fn audit_final(wired: &WiredConference) -> Vec<Violation> {
    let Some(cn) = live_cn(wired) else { return Vec::new() };
    let Ok(problem) = cn.controller.picture.to_problem() else { return Vec::new() };
    let Some(solution) = cn.controller.last_solution() else { return Vec::new() };
    SolutionAuditor::new()
        .audit_constraints(&problem, solution)
        .into_iter()
        .filter(|v| !matches!(v.kind, ViolationKind::UplinkExceeded { .. }))
        .collect()
}

/// Clone the scenario-declared config of every client access link so
/// [`LinkFault::Restore`] and [`LinkFault::ExtraDelay`] have a reference.
fn snapshot_links(
    scenario: &Scenario,
    wired: &mut WiredConference,
) -> BTreeMap<(NodeId, NodeId), LinkConfig> {
    let mut originals = BTreeMap::new();
    let pairs: Vec<(NodeId, NodeId)> = wired
        .endpoints
        .iter()
        .filter_map(|(&client, &ep)| Some((ep, access_node_of(scenario, wired, client)?)))
        .flat_map(|(ep, an)| [(ep, an), (an, ep)])
        .collect();
    for (from, to) in pairs {
        if let Some(cfg) = wired.sim.link_config_mut(from, to) {
            originals.insert((from, to), cfg.clone());
        }
    }
    originals
}

fn access_node_of(
    scenario: &Scenario,
    wired: &WiredConference,
    client: ClientId,
) -> Option<NodeId> {
    let c = scenario.clients.iter().find(|c| c.id == client)?;
    wired.ans.get(c.region.min(wired.ans.len().saturating_sub(1))).copied()
}

fn apply(
    wired: &mut WiredConference,
    scenario: &Scenario,
    originals: &BTreeMap<(NodeId, NodeId), LinkConfig>,
    event: &FaultEvent,
) {
    match &event.kind {
        FaultKind::CtrlCrash => {
            let now = wired.sim.now();
            if let Some(cn) = wired.sim.node_mut::<ConferenceNode>(wired.cn) {
                cn.crash(now);
            }
        }
        FaultKind::CtrlRestart => {
            wired.sim.with_node_actions(wired.cn, |node, now, out| {
                if let Some(cn) = node.as_any_mut().downcast_mut::<ConferenceNode>() {
                    cn.restart(now, out);
                }
            });
        }
        FaultKind::ClientCrash(client) => {
            if let Some(&ep) = wired.endpoints.get(client) {
                if let Some(node) = wired.sim.node_mut::<ClientNode>(ep) {
                    node.crash();
                }
            }
        }
        FaultKind::ClientRejoin(client) => {
            if let Some(&ep) = wired.endpoints.get(client) {
                wired.sim.with_node_actions(ep, |node, now, out| {
                    if let Some(c) = node.as_any_mut().downcast_mut::<ClientNode>() {
                        c.rejoin(now, out);
                    }
                });
            }
        }
        FaultKind::SembBlackout(client, on) => {
            if let Some(&ep) = wired.endpoints.get(client) {
                if let Some(node) = wired.sim.node_mut::<ClientNode>(ep) {
                    node.set_semb_blackout(*on);
                }
            }
        }
        FaultKind::ReportBlackout(region, on) => {
            if let Some(&an) = wired.ans.get(*region) {
                if let Some(node) = wired.sim.node_mut::<AccessNode>(an) {
                    node.set_report_blackout(*on);
                }
            }
        }
        FaultKind::DeadlineOverrun(rounds) => {
            if let Some(cn) = wired.sim.node_mut::<ConferenceNode>(wired.cn) {
                cn.controller.inject_deadline_overrun(*rounds);
            }
        }
        FaultKind::ShardCrash => {
            // Same mechanics as a controller crash, but no restart ever
            // comes: only the standby's lease expiry can save the call.
            let now = wired.sim.now();
            if let Some(cn) = wired.sim.node_mut::<ConferenceNode>(wired.cn) {
                cn.crash(now);
            }
        }
        FaultKind::HeartbeatLink(blocked) => {
            if let Some(sb) = wired.standby {
                if let Some(cfg) = wired.sim.link_config_mut(wired.cn, sb) {
                    cfg.blocked = *blocked;
                }
            }
        }
        FaultKind::PartitionCn(blocked) => {
            // Symmetric partition: the active shard's island contains only
            // itself; accessing nodes and the standby stay connected.
            let cn = wired.cn;
            let mut peers: Vec<NodeId> = wired.ans.clone();
            peers.extend(wired.standby);
            for peer in peers {
                for (from, to) in [(cn, peer), (peer, cn)] {
                    if let Some(cfg) = wired.sim.link_config_mut(from, to) {
                        cfg.blocked = *blocked;
                    }
                }
            }
        }
        FaultKind::Link { client, side, fault } => {
            let Some(&ep) = wired.endpoints.get(client) else { return };
            let Some(an) = access_node_of(scenario, wired, *client) else { return };
            let (from, to) = match side {
                LinkSide::Up => (ep, an),
                LinkSide::Down => (an, ep),
            };
            let Some(base) = originals.get(&(from, to)) else { return };
            let Some(cfg) = wired.sim.link_config_mut(from, to) else { return };
            match fault {
                LinkFault::Loss(p) => cfg.loss = Schedule::constant(*p),
                LinkFault::Duplicate(p) => cfg.duplicate = Schedule::constant(*p),
                LinkFault::Reorder(jitter) => {
                    cfg.allow_reorder = true;
                    cfg.jitter = Schedule::constant(*jitter);
                }
                LinkFault::ExtraDelay(extra) => cfg.delay = base.delay + *extra,
                LinkFault::Restore => *cfg = base.clone(),
            }
        }
    }
}
