//! Seed-driven fault plans.
//!
//! A [`FaultPlan`] is a fully deterministic schedule of fault actions —
//! controller outages, link corruption windows, client crash/rejoin
//! storms, feedback blackouts, solver-deadline overruns — derived from a
//! single seed via [`gso_util::DetRng`]. The same seed always yields the
//! same plan, and the runner executes plans on the deterministic packet
//! simulator, so every chaos run replays bit-identically (the double-run
//! digest comparison in the runner enforces this).

use gso_util::{ClientId, DetRng, SimDuration, SimTime};

/// Which side of a client's access link a link fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSide {
    /// Client → accessing node (carries media uplink, SEMB and GTBN acks).
    Up,
    /// Accessing node → client (carries media downlink and GTMBs).
    Down,
}

/// A change to one direction of a client's access link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFault {
    /// Set the independent per-packet loss probability.
    Loss(f64),
    /// Set the independent per-packet duplication probability.
    Duplicate(f64),
    /// Allow reordering, with the given mean exponential jitter driving it.
    Reorder(SimDuration),
    /// Add fixed one-way delay on top of the scenario-declared base delay.
    ExtraDelay(SimDuration),
    /// Restore the link to its scenario-declared configuration.
    Restore,
}

/// Everything the chaos runner can do to a wired conference.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The controller process dies: all control input is dropped and no
    /// configuration goes out until [`FaultKind::CtrlRestart`].
    CtrlCrash,
    /// The controller restarts with empty in-memory state under a bumped
    /// epoch and resyncs from the accessing nodes (§7).
    CtrlRestart,
    /// A client endpoint dies silently (no Leave is signalled).
    ClientCrash(ClientId),
    /// A crashed client comes back and re-registers as a fresh endpoint.
    ClientRejoin(ClientId),
    /// Suppress (`true`) or resume (`false`) a client's SEMB uplink
    /// feedback, starving the controller of uplink estimates.
    SembBlackout(ClientId, bool),
    /// Suppress (`true`) or resume (`false`) an accessing node's downlink
    /// reports, by region index.
    ReportBlackout(usize, bool),
    /// Treat the next `n` fresh solves as solve-deadline overruns; the
    /// watchdog degrades those rounds to the fallback configuration.
    DeadlineOverrun(u32),
    /// Change one direction of a client's access link.
    Link {
        /// Whose access link.
        client: ClientId,
        /// Which direction.
        side: LinkSide,
        /// What to do to it.
        fault: LinkFault,
    },
    /// The active shard dies for good (no scripted restart); its standby
    /// must detect the silence and promote itself. Requires a
    /// [`gso_sim::Scenario`] built with `standby: true`.
    ShardCrash,
    /// Block (`true`) or heal (`false`) the active → standby link carrying
    /// heartbeats and replication deltas. Sub-lease blocks must *not*
    /// promote; a block outlasting the lease must promote exactly once.
    HeartbeatLink(bool),
    /// Partition (`true`) or heal (`false`) the active shard from every
    /// accessing node *and* its standby, both directions — the symmetric
    /// split-brain case: the zombie keeps solving on its island while the
    /// promoted standby takes the access layer, and epoch fencing must
    /// reject the zombie's writes once the partition heals.
    PartitionCn(bool),
}

/// One fault action at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the runner applies the action (at the enclosing tick boundary).
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A named, deterministic schedule of fault events.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Human-readable plan name (also the telemetry/report label).
    pub name: String,
    /// Events sorted ascending by time (ties keep insertion order).
    pub events: Vec<FaultEvent>,
    /// The plan assumes a failover pair (`Scenario::standby = true`).
    pub needs_standby: bool,
    /// Exactly this many standby promotions must occur (checked against
    /// `cluster.promotions` and the `cluster.takeover_ms` histogram).
    pub expected_promotions: u64,
    /// The plan produces a zombie writer whose stale-epoch traffic must be
    /// fenced (`cluster.fenced` > 0); when `false`, zero fenced writes are
    /// tolerated.
    pub expect_fencing: bool,
}

/// Start of the fault window: early enough that recovery and
/// re-convergence complete well before the steady-state QoE tail window.
const FAULT_WINDOW_START_MS: u64 = 8_000;

impl FaultPlan {
    /// A plan from explicit events (sorted by time, stable on ties).
    pub fn new(name: impl Into<String>, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan {
            name: name.into(),
            events,
            needs_standby: false,
            expected_promotions: 0,
            expect_fencing: false,
        }
    }

    /// The empty plan: no faults. Used for the baseline run.
    pub fn baseline() -> Self {
        FaultPlan::new("baseline", Vec::new())
    }

    /// How many controller restarts the plan performs (each one must close
    /// a recovery window within the documented bound).
    pub fn restarts(&self) -> u64 {
        self.events.iter().filter(|e| matches!(e.kind, FaultKind::CtrlRestart)).count() as u64
    }

    /// Controller outage: crash inside the fault window, restart 1–3 s
    /// later. Exercises the resync-from-accessing-nodes recovery path and
    /// the epoch bump that invalidates in-flight stale GTMBs.
    pub fn controller_outage(seed: u64) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-controller-outage");
        let crash = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 2_000));
        let outage = SimDuration::from_millis(rng.range_u64(1_000, 3_000));
        FaultPlan::new(
            "controller-outage",
            vec![
                FaultEvent { at: crash, kind: FaultKind::CtrlCrash },
                FaultEvent { at: crash + outage, kind: FaultKind::CtrlRestart },
            ],
        )
    }

    /// Control-channel corruption: one client's access link drops,
    /// duplicates, reorders and delays packets (GTMB/SEMB among them) for a
    /// 4–6 s window, then restores. Exercises the retransmission backoff,
    /// idempotent GTMB re-application and stale-epoch rejection.
    pub fn link_chaos(seed: u64, client: ClientId) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-link-chaos");
        let start = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 1_500));
        let stop = start + SimDuration::from_millis(rng.range_u64(4_000, 6_000));
        let loss = rng.range_f64(0.10, 0.25);
        let dup = rng.range_f64(0.10, 0.25);
        let jitter = SimDuration::from_millis(rng.range_u64(20, 60));
        let delay = SimDuration::from_millis(rng.range_u64(30, 80));
        let mut events = Vec::new();
        for side in [LinkSide::Up, LinkSide::Down] {
            for fault in [
                LinkFault::Loss(loss),
                LinkFault::Duplicate(dup),
                LinkFault::Reorder(jitter),
                LinkFault::ExtraDelay(delay),
            ] {
                events
                    .push(FaultEvent { at: start, kind: FaultKind::Link { client, side, fault } });
            }
            events.push(FaultEvent {
                at: stop,
                kind: FaultKind::Link { client, side, fault: LinkFault::Restore },
            });
        }
        FaultPlan::new("link-chaos", events)
    }

    /// Client crash/rejoin storm: every client except the first dies
    /// silently inside the fault window and rejoins 0.8–2.5 s later.
    /// Exercises endpoint re-registration, boot-generation timer fencing
    /// and the executor's fresh-endpoint reset.
    pub fn client_storm(seed: u64, clients: &[ClientId]) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-client-storm");
        let mut events = Vec::new();
        for &client in clients.iter().skip(1) {
            let crash = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 3_000));
            let gap = SimDuration::from_millis(rng.range_u64(800, 2_500));
            events.push(FaultEvent { at: crash, kind: FaultKind::ClientCrash(client) });
            events.push(FaultEvent { at: crash + gap, kind: FaultKind::ClientRejoin(client) });
        }
        FaultPlan::new("client-storm", events)
    }

    /// BWE feedback blackout: every client stops sending SEMB and the
    /// region-0 accessing node stops sending downlink reports for 4–6 s.
    /// The controller must keep serving its last-known-good picture.
    pub fn feedback_blackout(seed: u64, clients: &[ClientId]) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-feedback-blackout");
        let start = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 1_500));
        let stop = start + SimDuration::from_millis(rng.range_u64(4_000, 6_000));
        let mut events = Vec::new();
        for &client in clients {
            events.push(FaultEvent { at: start, kind: FaultKind::SembBlackout(client, true) });
            events.push(FaultEvent { at: stop, kind: FaultKind::SembBlackout(client, false) });
        }
        events.push(FaultEvent { at: start, kind: FaultKind::ReportBlackout(0, true) });
        events.push(FaultEvent { at: stop, kind: FaultKind::ReportBlackout(0, false) });
        FaultPlan::new("feedback-blackout", events)
    }

    /// Solver-deadline overruns: 2–4 consecutive solves blow their row
    /// budget; the watchdog degrades each to the fallback configuration
    /// and the controller re-promotes once solves are clean again.
    pub fn deadline_overrun(seed: u64) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-deadline-overrun");
        let at = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 2_000));
        let rounds = rng.range_u64(2, 5) as u32;
        FaultPlan::new(
            "deadline-overrun",
            vec![FaultEvent { at, kind: FaultKind::DeadlineOverrun(rounds) }],
        )
    }

    /// Shard crash: the active conference shard dies for good inside the
    /// fault window. The standby's lease expires within ~1 s, it promotes
    /// itself under a bumped epoch, rebuilds the controller from the
    /// replicated snapshots plus the accessing nodes' resync replies, and
    /// the conference re-converges. No zombie exists, so zero fenced
    /// writes are expected.
    pub fn shard_crash(seed: u64) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-shard-crash");
        let at = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 2_000));
        let mut plan =
            FaultPlan::new("shard-crash", vec![FaultEvent { at, kind: FaultKind::ShardCrash }]);
        plan.needs_standby = true;
        plan.expected_promotions = 1;
        plan
    }

    /// Standby promotion under load: the shard dies while one client's
    /// access link is inside a reorder + extra-delay window, so the
    /// takeover's resyncs, GTMB pushes and acks run against disordered,
    /// delayed control traffic. The load is deliberately loss-free: a loss
    /// window would crater the client's uplink estimate right as the
    /// promoted controller seeds its picture from the replica, and the
    /// resulting low allocation can trap BWE below a ladder-budget cliff —
    /// a steady-state property of rate allocation, not of failover. The
    /// link heals before the tail window; QoE must re-converge.
    pub fn promotion_under_load(seed: u64, client: ClientId) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-promotion-under-load");
        let start = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 1_000));
        let crash = start + SimDuration::from_millis(rng.range_u64(500, 1_500));
        let heal = start + SimDuration::from_millis(rng.range_u64(4_000, 5_000));
        let jitter = SimDuration::from_millis(rng.range_u64(20, 60));
        let delay = SimDuration::from_millis(rng.range_u64(30, 80));
        let mut events = Vec::new();
        for side in [LinkSide::Up, LinkSide::Down] {
            for fault in [LinkFault::Reorder(jitter), LinkFault::ExtraDelay(delay)] {
                events
                    .push(FaultEvent { at: start, kind: FaultKind::Link { client, side, fault } });
            }
            events.push(FaultEvent {
                at: heal,
                kind: FaultKind::Link { client, side, fault: LinkFault::Restore },
            });
        }
        events.push(FaultEvent { at: crash, kind: FaultKind::ShardCrash });
        let mut plan = FaultPlan::new("promotion-under-load", events);
        plan.needs_standby = true;
        plan.expected_promotions = 1;
        plan
    }

    /// Heartbeat-loss flapping: two sub-lease blocks of the heartbeat link
    /// that must *not* trigger a promotion, then one block outlasting the
    /// lease that must trigger exactly one. The active shard is healthy
    /// throughout, so after the promotion it is a zombie: its stale-epoch
    /// rules must be fenced and the `Fence` replies must make it step down.
    pub fn heartbeat_flapping(seed: u64) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-heartbeat-flapping");
        // Sub-lease windows: the 700 ms (minimum) lease tolerates ≤ 500 ms
        // of heartbeat silence even when the block lands right after a
        // renewal (next heartbeat arrives ≤ 100 ms after the heal).
        let mut events = Vec::new();
        let mut at = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 500));
        for _ in 0..2 {
            let window = SimDuration::from_millis(rng.range_u64(300, 450));
            events.push(FaultEvent { at, kind: FaultKind::HeartbeatLink(true) });
            events.push(FaultEvent { at: at + window, kind: FaultKind::HeartbeatLink(false) });
            at = at + window + SimDuration::from_millis(1_500);
        }
        // The killer block: well past the jittered lease bound (840 ms).
        events.push(FaultEvent { at, kind: FaultKind::HeartbeatLink(true) });
        events.push(FaultEvent {
            at: at + SimDuration::from_millis(2_000),
            kind: FaultKind::HeartbeatLink(false),
        });
        let mut plan = FaultPlan::new("heartbeat-flapping", events);
        plan.needs_standby = true;
        plan.expected_promotions = 1;
        plan.expect_fencing = true;
        plan
    }

    /// Symmetric partition (split-brain): the active shard is cut off from
    /// every accessing node *and* its standby, keeps solving on its island,
    /// and the standby promotes and captures the access layer. When the
    /// partition heals, the zombie's stale-epoch writes must be fenced —
    /// never applied — and the `Fence` replies must make it step down, so
    /// at no point do two writers drive the same conference.
    pub fn split_brain(seed: u64) -> Self {
        let mut rng = DetRng::derive(seed, "chaos-split-brain");
        let cut = SimTime::from_millis(FAULT_WINDOW_START_MS + rng.range_u64(0, 1_000));
        let heal = cut + SimDuration::from_millis(rng.range_u64(2_500, 3_500));
        let mut plan = FaultPlan::new(
            "split-brain",
            vec![
                FaultEvent { at: cut, kind: FaultKind::PartitionCn(true) },
                FaultEvent { at: heal, kind: FaultKind::PartitionCn(false) },
            ],
        );
        plan.needs_standby = true;
        plan.expected_promotions = 1;
        plan.expect_fencing = true;
        plan
    }

    /// The failover-plan matrix for one seed: every plan here requires a
    /// scenario built with a standby shard.
    pub fn failover_matrix(seed: u64, clients: &[ClientId]) -> Vec<FaultPlan> {
        let load_target = clients.first().copied().unwrap_or(ClientId(1));
        vec![
            FaultPlan::shard_crash(seed),
            FaultPlan::promotion_under_load(seed, load_target),
            FaultPlan::heartbeat_flapping(seed),
            FaultPlan::split_brain(seed),
        ]
    }

    /// The failover subset for CI smoke runs: the clean takeover path and
    /// the split-brain fencing path (the two §7 bounds unique to the
    /// sharded controller layer).
    pub fn failover_smoke(seed: u64) -> Vec<FaultPlan> {
        vec![FaultPlan::shard_crash(seed), FaultPlan::split_brain(seed)]
    }

    /// The full fault-plan matrix for one seed.
    pub fn matrix(seed: u64, clients: &[ClientId]) -> Vec<FaultPlan> {
        let storm_target = clients.first().copied().unwrap_or(ClientId(1));
        vec![
            FaultPlan::controller_outage(seed),
            FaultPlan::link_chaos(seed, storm_target),
            FaultPlan::client_storm(seed, clients),
            FaultPlan::feedback_blackout(seed, clients),
            FaultPlan::deadline_overrun(seed),
        ]
    }

    /// The reduced matrix for CI smoke runs: one control-plane outage and
    /// one watchdog degradation (the two recovery paths with bounds).
    pub fn smoke_matrix(seed: u64) -> Vec<FaultPlan> {
        vec![FaultPlan::controller_outage(seed), FaultPlan::deadline_overrun(seed)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let clients = [ClientId(1), ClientId(2), ClientId(3)];
        for seed in [0, 7, 42] {
            let a = FaultPlan::matrix(seed, &clients);
            let b = FaultPlan::matrix(seed, &clients);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.events, y.events);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::controller_outage(1);
        let b = FaultPlan::controller_outage(2);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn failover_plans_deterministic_and_well_formed() {
        let clients = [ClientId(1), ClientId(2), ClientId(3)];
        let a = FaultPlan::failover_matrix(11, &clients);
        let b = FaultPlan::failover_matrix(11, &clients);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.events, y.events);
            assert!(x.needs_standby, "{}: failover plans need a standby", x.name);
            assert_eq!(x.expected_promotions, 1, "{}", x.name);
            for w in x.events.windows(2) {
                assert!(w[0].at <= w[1].at, "{}: unsorted events", x.name);
            }
            for e in &x.events {
                assert!(e.at < SimTime::from_secs(20), "{}: late event", x.name);
            }
        }
        // Every heartbeat/partition block is healed so the tail window is
        // judged on a reconnected network.
        for plan in &a {
            let mut open = 0i32;
            for e in &plan.events {
                match e.kind {
                    FaultKind::HeartbeatLink(true) | FaultKind::PartitionCn(true) => open += 1,
                    FaultKind::HeartbeatLink(false) | FaultKind::PartitionCn(false) => open -= 1,
                    _ => {}
                }
            }
            assert_eq!(open, 0, "{}: unclosed block window", plan.name);
        }
    }

    #[test]
    fn events_sorted_and_windows_close() {
        let clients = [ClientId(1), ClientId(2), ClientId(3)];
        for plan in FaultPlan::matrix(9, &clients) {
            for w in plan.events.windows(2) {
                assert!(w[0].at <= w[1].at, "{}: unsorted events", plan.name);
            }
            // Every crash has a matching rejoin/restart, every blackout and
            // link window is closed, and everything lands before 20 s so
            // recovery can finish ahead of the steady-state tail window.
            let crashes =
                plan.events.iter().filter(|e| matches!(e.kind, FaultKind::CtrlCrash)).count();
            assert_eq!(crashes as u64, plan.restarts());
            for e in &plan.events {
                assert!(e.at < SimTime::from_secs(20), "{}: late event", plan.name);
            }
        }
    }
}
