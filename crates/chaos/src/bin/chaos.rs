//! Replay the chaos fault-plan matrix against the reference conference.
//!
//! Each plan is run twice (digest-identical double runs) and judged
//! against the §7 acceptance criteria: steady-state QoE within 1% of the
//! no-fault baseline, every controller restart recovered within the
//! documented bound, and an auditor-clean final configuration. Exits
//! non-zero if any plan fails.
//!
//! ```text
//! chaos [--smoke] [--seed N]
//! ```
//!
//! `--smoke` runs the reduced CI subset (controller outage + deadline
//! overrun on the standard conference, shard crash + split brain on the
//! standby-paired one); the default replays the full five-plan matrix plus
//! all four failover plans.

use gso_chaos::{check_overload, check_plan, failover_scenario, run_plan};
use gso_chaos::{standard_clients, standard_scenario};
use gso_chaos::{Baseline, ChaosBounds, FaultPlan, OverloadBounds};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => {
                println!("usage: chaos [--smoke] [--seed N]");
                return ExitCode::SUCCESS;
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }

    let scenario = standard_scenario(seed);
    let clients = standard_clients();
    let bounds = ChaosBounds::default();
    let plans =
        if smoke { FaultPlan::smoke_matrix(seed) } else { FaultPlan::matrix(seed, &clients) };

    println!(
        "chaos matrix: seed {seed}, {} plan(s), qoe tolerance {:.1}%, recovery bound {} ms",
        plans.len(),
        bounds.qoe_tolerance * 100.0,
        bounds.recovery_ms
    );
    let baseline = run_plan(&scenario, &FaultPlan::baseline());
    let baseline = Baseline::from_outcome(&baseline, bounds.tail_window);
    println!(
        "baseline: orchestrated qoe {:.0}, tail media {:.0} bps",
        baseline.qoe, baseline.media_bps
    );

    let mut failed = 0;
    for plan in &plans {
        let verdict = check_plan(&scenario, baseline, plan, &bounds);
        println!("{}", verdict.row());
        if let Some(report) = &verdict.divergence {
            println!("{report}");
        }
        if !verdict.passed() {
            failed += 1;
        }
    }

    // Failover plans run against the standby-paired conference and are
    // judged against its own no-fault baseline (the replication stream and
    // heartbeats change the wire mix, so the standard baseline is not the
    // right reference).
    let failover = failover_scenario(seed);
    let failover_plans = if smoke {
        FaultPlan::failover_smoke(seed)
    } else {
        FaultPlan::failover_matrix(seed, &clients)
    };
    let fo_baseline = run_plan(&failover, &FaultPlan::baseline());
    let fo_baseline = Baseline::from_outcome(&fo_baseline, bounds.tail_window);
    println!(
        "failover baseline: orchestrated qoe {:.0}, tail media {:.0} bps",
        fo_baseline.qoe, fo_baseline.media_bps
    );
    for plan in &failover_plans {
        let verdict = check_plan(&failover, fo_baseline, plan, &bounds);
        println!("{}", verdict.row());
        if let Some(report) = &verdict.divergence {
            println!("{report}");
        }
        if !verdict.passed() {
            failed += 1;
        }
    }
    // Fleet overload rides in both matrices: 2× offered capacity against
    // multi-tenant admission + shedding, judged on high-priority QoE.
    let overload = check_overload(seed, &OverloadBounds::default());
    println!("{}", overload.row());
    if let Some(report) = &overload.divergence {
        println!("{report}");
    }
    if !overload.passed() {
        failed += 1;
    }
    if failed > 0 {
        println!("{failed} plan(s) FAILED");
        ExitCode::FAILURE
    } else {
        println!("all plans passed");
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("chaos: {msg}\nusage: chaos [--smoke] [--seed N]");
    std::process::exit(2);
}
