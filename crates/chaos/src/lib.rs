//! Deterministic chaos harness for the GSO-Simulcast stack.
//!
//! Reproduces the paper's §7 "design for failure" claims as executable
//! checks. A seed-driven [`FaultPlan`] — controller outages and restarts,
//! GTMB/SEMB drop·dup·reorder·delay windows, client crash/rejoin storms,
//! BWE feedback blackouts, solver-deadline overruns — is executed
//! tick-by-tick against a [`gso_sim::Scenario`] by [`run_plan`], and
//! [`check_plan`] renders the acceptance verdict per plan:
//!
//! * post-fault steady-state QoE within tolerance of the no-fault
//!   baseline (recovery without lasting degradation),
//! * bounded recovery time for every controller restart
//!   (`recovery.time_ms`),
//! * an auditor-clean final configuration (constraint families of
//!   Eq. 1–13; uplink budgets excluded for the §7 fallback), and
//! * digest-identical double runs ([`gso_detguard::first_divergence`]).
//!
//! The [`overload`] module extends the harness from single-conference
//! faults to fleet-level overload: 2× offered capacity against the
//! multi-tenant admission controller and priority shedding, judged on
//! high-priority tenant QoE.
//!
//! The sharded-controller failover plans — shard crash, standby promotion
//! under load, heartbeat-loss flapping, symmetric-partition split brain —
//! run against [`failover_scenario`] (the same conference paired with a
//! standby shard) and are additionally judged on takeover time
//! (`cluster.takeover_ms` ≤ the recovery bound), exact promotion counts,
//! and split-brain fencing (`cluster.fenced` > 0 with a zombie stepdown,
//! zero otherwise).
//!
//! The `chaos` binary replays the full matrix plus the failover matrix and
//! the overload scenario (`--smoke` for the CI subset) and exits non-zero
//! on any failed verdict.

pub mod overload;
pub mod plan;
pub mod runner;

pub use overload::{
    check_overload, run_overload, OverloadBounds, OverloadOutcome, OverloadPlan, OverloadVerdict,
};
pub use plan::{FaultEvent, FaultKind, FaultPlan, LinkFault, LinkSide};
pub use runner::{
    check_plan, run_plan, steady_state_qoe, Baseline, ChaosBounds, ChaosOutcome, PlanVerdict,
};

use gso_algo::Resolution;
use gso_sim::workloads::ladder_for_mode;
use gso_sim::{ClientScenario, PolicyMode, Scenario};
use gso_util::{Bitrate, ClientId, SimDuration};

/// The reference conference every chaos plan runs against: three clients
/// on clean 6/10 Mbps links, everyone subscribed to everyone at 720p, GSO
/// orchestration, 30 s. Links have headroom over the full ladders so the
/// no-fault objective is stable at its maximum — any post-fault deficit is
/// then attributable to the fault, not to BWE breathing across a rung
/// boundary. Faults land in the 8–16 s window (see [`plan`]), leaving the
/// final [`ChaosBounds::tail_window`] for steady-state comparison.
pub fn standard_scenario(seed: u64) -> Scenario {
    let ladder = ladder_for_mode(PolicyMode::Gso);
    let mut s = Scenario {
        seed,
        mode: PolicyMode::Gso,
        duration: SimDuration::from_secs(30),
        clients: (1..=3)
            .map(|i| {
                ClientScenario::clean(
                    ClientId(i),
                    Bitrate::from_mbps(6),
                    Bitrate::from_mbps(10),
                    ladder.clone(),
                )
            })
            .collect(),
        speaker_schedule: Vec::new(),
        standby: false,
    };
    s.subscribe_all_to_all(Resolution::R720);
    s
}

/// The client ids of [`standard_scenario`].
pub fn standard_clients() -> Vec<ClientId> {
    (1..=3).map(ClientId).collect()
}

/// [`standard_scenario`] paired with a standby shard: the reference
/// conference for the failover plans (shard crash, promotion under load,
/// heartbeat flapping, split brain). Scripted-restart plans stay on the
/// standby-free scenario — a restart and a promotion would both bump the
/// epoch 0 → 1, and two writers at equal epochs cannot be fenced apart.
pub fn failover_scenario(seed: u64) -> Scenario {
    let mut s = standard_scenario(seed);
    s.standby = true;
    s
}
