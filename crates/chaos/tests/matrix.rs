//! Acceptance tests for the chaos harness.
//!
//! The smoke subset (controller outage + deadline overrun — the two
//! recovery paths with documented bounds) runs on every `cargo test`; the
//! full five-plan matrix is `#[ignore]`d for local/CI deep runs via
//! `cargo test -p gso-chaos -- --ignored`.

use gso_chaos::{check_overload, check_plan, failover_scenario, run_overload};
use gso_chaos::{run_plan, Baseline, ChaosBounds, FaultPlan, OverloadBounds, OverloadPlan};
use gso_chaos::{standard_clients, standard_scenario};
use gso_sim::Scenario;
use gso_telemetry::keys;
use gso_util::ClientId;

fn assert_plans_pass_on(scenario: &Scenario, plans: &[FaultPlan]) {
    let bounds = ChaosBounds::default();
    let baseline = run_plan(scenario, &FaultPlan::baseline());
    let baseline = Baseline::from_outcome(&baseline, bounds.tail_window);
    assert!(baseline.qoe > 0.0, "baseline never solved");
    assert!(baseline.media_bps > 500_000.0, "baseline unhealthy: {}", baseline.media_bps);
    for plan in plans {
        let verdict = check_plan(scenario, baseline, plan, &bounds);
        assert!(
            verdict.passed(),
            "{} failed: {}\n{}",
            plan.name,
            verdict.row(),
            verdict.divergence.as_deref().unwrap_or("")
        );
    }
}

fn assert_plans_pass(plans: &[FaultPlan]) {
    assert_plans_pass_on(&standard_scenario(7), plans);
}

#[test]
fn smoke_matrix_passes() {
    assert_plans_pass(&FaultPlan::smoke_matrix(7));
}

#[test]
fn failover_smoke_passes() {
    assert_plans_pass_on(&failover_scenario(7), &FaultPlan::failover_smoke(7));
}

#[test]
#[ignore = "full matrix is a deep run (~10 simulated minutes); CI runs the binary instead"]
fn full_matrix_passes() {
    assert_plans_pass(&FaultPlan::matrix(7, &standard_clients()));
}

#[test]
#[ignore = "full failover matrix is a deep run; CI runs the binary instead"]
fn full_failover_matrix_passes() {
    assert_plans_pass_on(
        &failover_scenario(7),
        &FaultPlan::failover_matrix(7, &standard_clients()),
    );
}

/// A shard crash must exercise the takeover machinery end to end: exactly
/// one promotion, a takeover window inside the §7 bound, and — with no
/// zombie writing — zero fenced writes.
#[test]
fn shard_crash_records_takeover() {
    let scenario = failover_scenario(7);
    let plan = FaultPlan::shard_crash(7);
    let outcome = run_plan(&scenario, &plan);
    assert_eq!(outcome.promotions, 1, "standby must promote exactly once");
    let takeover = outcome.takeover.expect("promotion must record takeover time");
    assert_eq!(takeover.total, 1, "one promotion, one takeover sample");
    assert!(takeover.sum <= 5_000, "takeover {} ms exceeds bound", takeover.sum);
    assert_eq!(outcome.fenced, 0, "a dead shard writes nothing to fence");
}

/// A symmetric partition must produce a fenced zombie: the old shard keeps
/// writing on its island, the promoted standby captures the access layer,
/// and after the heal the zombie's stale-epoch writes are rejected and the
/// Fence replies make it step down.
#[test]
fn split_brain_fences_zombie() {
    let scenario = failover_scenario(7);
    let plan = FaultPlan::split_brain(7);
    let outcome = run_plan(&scenario, &plan);
    assert_eq!(outcome.promotions, 1, "standby must promote exactly once");
    assert!(outcome.fenced >= 1, "the healed zombie's writes must be fenced");
    assert!(outcome.stepdowns >= 1, "the fenced zombie must step down");
}

/// Sub-lease heartbeat-loss windows must not promote; only the final
/// lease-outlasting window may, exactly once.
#[test]
fn heartbeat_flapping_promotes_exactly_once() {
    let scenario = failover_scenario(7);
    let plan = FaultPlan::heartbeat_flapping(7);
    let outcome = run_plan(&scenario, &plan);
    assert_eq!(outcome.promotions, 1, "flapping must cause exactly one promotion");
    assert!(outcome.fenced >= 1, "the still-alive old shard must be fenced");
}

/// A controller outage must actually exercise the §7 machinery: the
/// restart bumps the epoch, the recovery histogram records exactly one
/// sample, and the run is digest-stable.
#[test]
fn controller_outage_records_recovery() {
    let scenario = standard_scenario(7);
    let plan = FaultPlan::controller_outage(7);
    let outcome = run_plan(&scenario, &plan);
    let recovery = outcome.recovery.expect("restart must record recovery time");
    assert_eq!(recovery.total, 1, "one restart, one recovery sample");
    assert!(recovery.sum <= 5_000, "recovery {} ms exceeds bound", recovery.sum);
}

/// Link chaos must actually hit the idempotency path: with 10–25%
/// duplication on the victim's access link for several seconds, at least
/// one GTMB arrives twice and is re-acked without re-application.
#[test]
fn link_chaos_exercises_idempotent_reapplication() {
    let scenario = standard_scenario(7);
    let plan = FaultPlan::link_chaos(7, ClientId(1));
    let outcome = run_plan(&scenario, &plan);
    let dup_reacked = outcome.result.telemetry.counter_total(keys::EPOCH_DUP_REACKED);
    assert!(dup_reacked >= 1, "no duplicated GTMB was re-acked (counter {dup_reacked})");
}

/// The fleet overload scenario must pass all its acceptance gates: 2×
/// offered capacity, high-priority QoE within 1% of the uncontended
/// baseline, low-priority conferences degraded to the template baseline
/// (never starved), no join admitted mid-overload, auditor-clean finals,
/// and digest-identical double runs at 1/2/8 workers.
#[test]
fn overload_verdict_passes() {
    let verdict = check_overload(7, &OverloadBounds::default());
    assert!(
        verdict.passed(),
        "fleet-overload failed: {}\n{}",
        verdict.row(),
        verdict.divergence.as_deref().unwrap_or("")
    );
    assert!(verdict.shed >= 2, "overload must demote at least the two low conferences");
    assert!(
        verdict.offered_rows >= 2 * verdict.budget_rows,
        "calibration must offer at least twice the provisioned budget"
    );
}

/// An uncontended fleet run must never shed, queue or reject anyone — the
/// overload machinery is strictly additive.
#[test]
fn uncontended_fleet_never_sheds() {
    let plan = OverloadPlan::standard(7);
    let outcome = run_overload(&plan, 2, 0);
    assert_eq!(outcome.shed, 0, "no shedding without a budget");
    assert_eq!(outcome.joins, (0, 0, 0), "no join wave without admission");
    assert!(outcome.rows_per_tick > 0, "churned fleet must do real solve work");
    assert!(
        outcome.low_finals.iter().all(|&(fallback, _, media)| !fallback && media),
        "uncontended low-priority conferences solve normally"
    );
}

/// Deadline overruns must enter fallback and then re-promote.
#[test]
fn deadline_overrun_enters_and_exits_fallback() {
    let scenario = standard_scenario(7);
    let plan = FaultPlan::deadline_overrun(7);
    let outcome = run_plan(&scenario, &plan);
    assert!(outcome.fallback_entered >= 1, "watchdog never entered fallback");
    assert_eq!(
        outcome.fallback_entered, outcome.fallback_exited,
        "fallback entered {} times but exited {}",
        outcome.fallback_entered, outcome.fallback_exited
    );
}
