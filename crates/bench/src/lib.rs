//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation. Each bench target first prints the
//! reproduced rows/series, then (where meaningful) runs Criterion timings of
//! the underlying computational kernel.

/// Normalize values so the maximum maps to 1.0, like the paper's plots.
pub fn normalized(values: &[f64]) -> Vec<f64> {
    gso_util::stats::normalize_to_max(values)
}

/// Print a figure banner.
pub fn banner(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}
