//! Fig. 12 — CDF of the controller call interval under network churn.

use criterion::Criterion;
use gso_bench::banner;
use gso_sim::experiments::fig12;

fn print_figure() {
    banner("Fig. 12: CDF of GSO control algorithm call interval");
    let samples = fig12::fig12(21, 240);
    println!("samples: {}", samples.len());
    println!(
        "min {:.2}s  mean {:.2}s  max {:.2}s   (paper: min 1s, mean 1.8s, max 3s)",
        samples.min(),
        samples.mean(),
        samples.max()
    );
    println!("{:>10} {:>8}", "interval", "CDF");
    let cdf = samples.cdf();
    // Print ~20 evenly spaced CDF points.
    let step = (cdf.len() / 20).max(1);
    for (v, p) in cdf.iter().step_by(step) {
        println!("{v:>9.2}s {p:>8.3}");
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_scheduler");
    group.sample_size(50);
    group.bench_function("scheduler_10k_polls", |b| {
        b.iter(|| {
            let mut s = gso_control::ControlScheduler::new(Default::default());
            let mut fired = 0u32;
            for i in 0..10_000u64 {
                if i % 17 == 0 {
                    s.trigger_event();
                }
                if s.poll(gso_util::SimTime::from_millis(i * 10)) {
                    fired += 1;
                }
            }
            fired
        });
    });
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
