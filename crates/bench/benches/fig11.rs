//! Fig. 11 — user satisfaction score (normalized) over the rollout.

use criterion::Criterion;
use gso_bench::banner;
use gso_sim::deployment::{self, ImprovementFactors, Rollout};

fn print_figure() {
    banner("Fig. 11: user satisfaction score by date (population model)");
    let days = deployment::simulate_deployment(Rollout::paper(), ImprovementFactors::paper(), 31);
    let max = days.iter().map(|d| d.satisfaction).fold(0.0, f64::max);
    println!("{:<12} {:>9} {:>14}", "date", "coverage", "satisfaction");
    // The paper's Fig. 11 spans Nov 12 – Dec 24 (days 42..85).
    for d in days.iter().skip(42).take(43).step_by(2) {
        println!("{:<12} {:>9.2} {:>14.4}", d.date, d.coverage, d.satisfaction / max);
    }
    let before = deployment::window_mean(&days, 42..50, |d| d.satisfaction);
    let after = deployment::window_mean(&days, 80..85, |d| d.satisfaction);
    println!(
        "satisfaction gain across rollout: +{:.1}% (paper: +7.2%)",
        (after - before) / before * 100.0
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_satisfaction");
    group.sample_size(50);
    group.bench_function("logistic_model_day", |b| {
        b.iter(|| {
            deployment::simulate_deployment(
                Rollout { days: 7, start: 2, full: 5 },
                ImprovementFactors::paper(),
                2,
            )
        });
    });
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
