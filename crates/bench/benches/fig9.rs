//! Fig. 9 — client CPU utilization (work-unit model) across application
//! scenarios, GSO vs Non-GSO.

use criterion::Criterion;
use gso_bench::banner;
use gso_sim::experiments::fig9::{self, AppScenario};
use gso_sim::PolicyMode;

fn print_figure() {
    banner("Fig. 9: client CPU utilization (video / audio / screen)");
    let results = fig9::fig9(13, false);
    println!("{:<8} {:<8} {:>14} {:>16}", "app", "system", "sender CPU", "receiver CPU");
    for r in &results {
        let app = match r.scenario {
            AppScenario::Video => "video",
            AppScenario::Audio => "audio",
            AppScenario::Screen => "screen",
        };
        let sys = if r.mode == PolicyMode::Gso { "GSO" } else { "Non-GSO" };
        println!("{:<8} {:<8} {:>13.1}% {:>15.1}%", app, sys, r.sender * 100.0, r.receiver * 100.0);
    }
    println!("(audio unaffected by GSO; video/screen overhead stays within a few percent)");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_cost_model");
    group.sample_size(30);
    group.bench_function("utilization_math", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for lines in [180u16, 360, 720] {
                acc += gso_media::cost::encode_cost(lines, 10_000);
                acc += gso_media::cost::decode_cost(lines);
            }
            gso_media::cost::utilization(acc, 1.0)
        });
    });
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
