//! Fig. 8 — slow-link tests: normalized framerate, video quality and video
//! stall across the Table 2 impairment matrix, for all four systems.

use criterion::Criterion;
use gso_bench::banner;
use gso_sim::experiments::fig8;
use gso_sim::PolicyMode;

fn print_figure() {
    banner("Fig. 8: slow-link tests (Table 2 cases x 4 systems)");
    let results = fig8::fig8(17, false);
    let label = |m: PolicyMode| match m {
        PolicyMode::Gso => "GSO",
        PolicyMode::NonGso => "Non-GSO",
        PolicyMode::Competitor1 => "Comp-1",
        PolicyMode::Competitor2 => "Comp-2",
    };
    // Normalize each metric against the global best, as the paper does.
    let fr_max = results.iter().map(|r| r.framerate).fold(0.0, f64::max);
    let q_max = results.iter().map(|r| r.quality).fold(0.0, f64::max);
    println!(
        "{:<12} {:<8} {:>10} {:>10} {:>12} {:>12}",
        "case", "system", "framerate", "quality", "video-stall", "voice-stall"
    );
    for r in &results {
        println!(
            "{:<12} {:<8} {:>10.3} {:>10.3} {:>12.4} {:>12.4}",
            r.case.name,
            label(r.mode),
            r.framerate / fr_max.max(1e-9),
            r.quality / q_max.max(1e-9),
            r.video_stall,
            r.voice_stall
        );
    }
    // Summary: how often GSO wins each metric.
    let cases: Vec<&str> = {
        let mut v: Vec<&str> = results.iter().map(|r| r.case.name).collect();
        v.dedup();
        v
    };
    let mut wins = 0;
    for case in &cases {
        let of = |m: PolicyMode| results.iter().find(|r| r.case.name == *case && r.mode == m);
        let g = of(PolicyMode::Gso).unwrap();
        if [PolicyMode::NonGso, PolicyMode::Competitor1, PolicyMode::Competitor2]
            .iter()
            .all(|&m| of(m).is_none_or(|o| g.video_stall <= o.video_stall + 0.02))
        {
            wins += 1;
        }
    }
    println!("GSO has (near-)lowest video stall in {wins}/{} cases", cases.len());
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_one_cell");
    group.sample_size(10);
    group.bench_function("gso_normal_10s", |b| {
        b.iter(|| {
            let mut s = gso_sim::workloads::slow_link_scenario(
                PolicyMode::Gso,
                gso_sim::workloads::slow_link_cases()[0],
                1,
            );
            s.duration = gso_util::SimDuration::from_secs(10);
            s.run()
        });
    });
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
