//! solver_scale — SolveEngine vs the one-shot solver at Fig. 6c shapes.
//!
//! Times three regimes on the paper's large-meeting tuples:
//!
//! * `seq_cold` — the plain `solver::solve` baseline (what Fig. 6c reports);
//! * `engine_cold` — a cache-cleared [`SolveEngine`] (measures engine
//!   overhead on first contact);
//! * `warm_*` — re-solves after a single-client bandwidth delta and after a
//!   single-source ladder reduction (the controller's steady-state work).
//!
//! A multi-conference harness then drives 64 concurrent 20-party
//! conferences through one orchestration tick each, cold and warm, the way
//! a conference node's control plane would each round — first sequentially
//! (one engine per conference, solved in a loop), then through the
//! persistent [`BatchScheduler`] at 1/2/4/8 workers. The batch section also
//! reports heap allocations per warm solve, measured by a counting
//! `GlobalAlloc` wrapper (bench-only; the library crates stay allocator-
//! agnostic).
//!
//! Every timed engine path is first cross-checked bit-identical against a
//! fresh `solver::solve` on the same problem. Both the full run and
//! `--smoke` (CI) write machine-readable `BENCH_solver.json` at the repo
//! root; smoke output is marked `"smoke":true` so baselines are never taken
//! from it.

use gso_algo::{
    ladders, solver, BatchConfig, BatchJob, BatchScheduler, PriorityClass, Problem, Resolution,
    SolveEngine, SolverConfig, SourceId, Tenancy, TenantId,
};
use gso_bench::banner;
use gso_control::{
    AdmissionConfig, AdmissionController, CodecCapability, ControllerConfig, ControllerFleet,
    FleetTick, GsoController, ShedPolicy, SubscribeIntent,
};
use gso_rtp::GsoTmmbn;
use gso_sim::experiments::fig6;
use gso_util::{Bitrate, ClientId, SimTime, Ssrc, StreamKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counts every heap allocation made by the process. Only the delta around
/// a timed region is reported, so the harness's own setup allocations do
/// not pollute the per-solve numbers.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

#[allow(unsafe_code)]
// SAFETY: pure pass-through to `System`; the counter is a relaxed atomic
// increment with no effect on layout or aliasing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // lockwatch: allow(atomics-policy, reason = "monotonic stat counter; the reader only wants an approximate total, no ordering with other memory")
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // lockwatch: allow(atomics-policy, reason = "monotonic stat counter; the reader only wants an approximate total, no ordering with other memory")
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations since process start.
fn allocs_now() -> u64 {
    // lockwatch: allow(atomics-policy, reason = "single-threaded harness reads its own counter; deltas need no cross-thread ordering")
    ALLOCS.load(Ordering::Relaxed)
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Rebuild `base` with one subscriber's downlink scaled to 80 % — the
/// single-client invalidation the controller sees on a bandwidth report.
fn with_bandwidth_delta(base: &Problem) -> Problem {
    let mut clients = base.clients().to_vec();
    // Prefer a receive-only subscriber; symmetric meetings have none, so
    // fall back to the last client.
    let victim = match clients.iter().rposition(|c| c.sources.is_empty()) {
        Some(i) => &mut clients[i],
        None => clients.last_mut().expect("non-empty problem"),
    };
    victim.downlink = Bitrate::from_bps(victim.downlink.as_bps() * 8 / 10);
    Problem::new(clients, base.subscriptions().to_vec()).expect("delta problem valid")
}

/// Rebuild `base` with one publisher's top resolution removed from its
/// ladder — the single-source invalidation a Step-3 reduction (or an SDP
/// renegotiation) causes. `first` picks the lowest-id publisher (worst case
/// for the DP prefix cache), otherwise the highest-id one (best case).
fn with_reduced_ladder(base: &Problem, first: bool) -> Problem {
    let mut clients = base.clients().to_vec();
    let idx = if first {
        clients.iter().position(|c| !c.sources.is_empty())
    } else {
        clients.iter().rposition(|c| !c.sources.is_empty())
    }
    .expect("at least one publisher");
    let ladder = &mut clients[idx].sources[0].ladder;
    let top = *ladder.resolutions().last().expect("non-empty ladder");
    *ladder = ladder.without_resolution(top);
    Problem::new(clients, base.subscriptions().to_vec()).expect("reduced problem valid")
}

/// Assert the engine (cold and warm-after-`prime`) matches `solver::solve`.
fn cross_check(engine: &mut SolveEngine, prime: &Problem, target: &Problem) {
    engine.clear_cache();
    engine.solve(prime);
    let warm = engine.solve(target);
    let fresh = solver::solve(target, engine.config());
    assert_eq!(warm, fresh, "warm engine solution must be bit-identical to the solver");
}

struct ShapeReport {
    shape: (usize, usize, usize),
    seq_cold_ms: f64,
    engine_cold_ms: f64,
    warm_bw_delta_ms: f64,
    warm_reduction_last_ms: f64,
    warm_reduction_first_ms: f64,
}

impl ShapeReport {
    fn warm_speedup(&self) -> f64 {
        self.seq_cold_ms / self.warm_reduction_last_ms.max(1e-9)
    }

    fn to_json(&self) -> String {
        let (p, s, l) = self.shape;
        format!(
            concat!(
                "{{\"pubs\":{},\"subs\":{},\"levels\":{},",
                "\"seq_cold_ms\":{:.4},\"engine_cold_ms\":{:.4},",
                "\"warm_bw_delta_ms\":{:.4},",
                "\"warm_reduction_last_ms\":{:.4},\"warm_reduction_first_ms\":{:.4},",
                "\"warm_speedup_vs_cold\":{:.2}}}"
            ),
            p,
            s,
            l,
            self.seq_cold_ms,
            self.engine_cold_ms,
            self.warm_bw_delta_ms,
            self.warm_reduction_last_ms,
            self.warm_reduction_first_ms,
            self.warm_speedup()
        )
    }
}

fn bench_shape(shape: (usize, usize, usize), cold_reps: usize, warm_reps: usize) -> ShapeReport {
    let (pubs, subs, levels) = shape;
    let base = fig6::asymmetric_meeting(pubs, subs, levels);
    let delta = with_bandwidth_delta(&base);
    let reduced_last = with_reduced_ladder(&base, false);
    let reduced_first = with_reduced_ladder(&base, true);
    let cfg = SolverConfig::default();

    // Correctness first: every warm path must match a fresh solve.
    let mut engine = SolveEngine::new(cfg.clone());
    cross_check(&mut engine, &base, &base);
    cross_check(&mut engine, &base, &delta);
    cross_check(&mut engine, &base, &reduced_last);
    cross_check(&mut engine, &base, &reduced_first);

    let seq_cold_ms = median_ms(cold_reps, || {
        std::hint::black_box(solver::solve(&base, &cfg));
    });

    let mut engine = SolveEngine::new(cfg.clone());
    let engine_cold_ms = median_ms(cold_reps, || {
        engine.clear_cache();
        std::hint::black_box(engine.solve(&base));
    });

    // Warm paths alternate between the base and the perturbed problem so
    // every timed solve is a true warm re-solve with one invalidation.
    let warm_bw_delta_ms = {
        let mut engine = SolveEngine::new(cfg.clone());
        engine.solve(&base);
        let mut flip = false;
        median_ms(warm_reps, || {
            let p = if flip { &base } else { &delta };
            flip = !flip;
            std::hint::black_box(engine.solve(p));
        })
    };
    let warm_reduction_last_ms = {
        let mut engine = SolveEngine::new(cfg.clone());
        engine.solve(&base);
        let mut flip = false;
        median_ms(warm_reps, || {
            let p = if flip { &base } else { &reduced_last };
            flip = !flip;
            std::hint::black_box(engine.solve(p));
        })
    };
    let warm_reduction_first_ms = {
        let mut engine = SolveEngine::new(cfg.clone());
        engine.solve(&base);
        let mut flip = false;
        median_ms(warm_reps, || {
            let p = if flip { &base } else { &reduced_first };
            flip = !flip;
            std::hint::black_box(engine.solve(p));
        })
    };

    ShapeReport {
        shape,
        seq_cold_ms,
        engine_cold_ms,
        warm_bw_delta_ms,
        warm_reduction_last_ms,
        warm_reduction_first_ms,
    }
}

/// The jittered problem every conference `ci` sees at warm tick `tick`:
/// one rotating client reports a downlink change (70–129 % of nominal,
/// from a fixed sequence so every configuration solves identical inputs).
fn jittered(base: &Problem, tick: usize, ci: usize) -> Problem {
    let mut clients = base.clients().to_vec();
    let idx = (tick + ci) % clients.len();
    let scale = 70 + ((tick * 13 + ci * 7) % 60) as u64;
    let c = clients.get_mut(idx).expect("index within client count");
    c.downlink = Bitrate::from_bps(c.downlink.as_bps() * scale / 100);
    Problem::new(clients, base.subscriptions().to_vec()).expect("jittered valid")
}

struct MultiConfReport {
    conferences: usize,
    parties: usize,
    cold_tick_ms: f64,
    warm_tick_ms: f64,
    warm_allocs_per_solve: f64,
}

impl MultiConfReport {
    fn warm_solves_per_sec(&self) -> f64 {
        self.conferences as f64 / (self.warm_tick_ms.max(1e-9) / 1e3)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"conferences\":{},\"parties\":{},\"cold_tick_ms\":{:.4},",
                "\"warm_tick_ms\":{:.4},\"warm_allocs_per_solve\":{:.1},",
                "\"conference_solves_per_sec_warm\":{:.1}}}"
            ),
            self.conferences,
            self.parties,
            self.cold_tick_ms,
            self.warm_tick_ms,
            self.warm_allocs_per_solve,
            self.warm_solves_per_sec()
        )
    }
}

/// Drive `conferences` concurrent `parties`-way meetings through control
/// ticks: one engine per conference solved in a plain loop — the sequential
/// reference the batch scheduler is measured against.
fn bench_multi_conference(
    conferences: usize,
    parties: usize,
    warm_ticks: usize,
) -> MultiConfReport {
    let ladder = ladders::paper_table1();
    let bases: Vec<Problem> =
        (0..conferences).map(|_| fig6::symmetric_meeting(parties, ladder.clone())).collect();
    let mut engines: Vec<SolveEngine> =
        (0..conferences).map(|_| SolveEngine::new(SolverConfig::default())).collect();

    let t = Instant::now();
    for (engine, base) in engines.iter_mut().zip(&bases) {
        std::hint::black_box(engine.solve(base));
    }
    let cold_tick_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut ticks_ms = Vec::with_capacity(warm_ticks);
    let mut allocs = 0u64;
    for tick in 0..warm_ticks {
        let problems: Vec<Problem> =
            bases.iter().enumerate().map(|(ci, base)| jittered(base, tick, ci)).collect();
        let a = allocs_now();
        let t = Instant::now();
        for (engine, p) in engines.iter_mut().zip(&problems) {
            std::hint::black_box(engine.solve(p));
        }
        ticks_ms.push(t.elapsed().as_secs_f64() * 1e3);
        allocs += allocs_now() - a;
    }
    ticks_ms.sort_by(f64::total_cmp);
    let warm_tick_ms = ticks_ms[ticks_ms.len() / 2];
    let warm_allocs_per_solve = allocs as f64 / (warm_ticks * conferences) as f64;

    MultiConfReport { conferences, parties, cold_tick_ms, warm_tick_ms, warm_allocs_per_solve }
}

struct BatchTickReport {
    workers: usize,
    cold_tick_ms: f64,
    warm_tick_ms: f64,
    warm_allocs_per_solve: f64,
}

impl BatchTickReport {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workers\":{},\"cold_tick_ms\":{:.4},\"warm_tick_ms\":{:.4},",
                "\"warm_allocs_per_solve\":{:.1}}}"
            ),
            self.workers, self.cold_tick_ms, self.warm_tick_ms, self.warm_allocs_per_solve
        )
    }
}

/// The same multi-conference workload through the persistent
/// [`BatchScheduler`]: one cold batch, then jittered warm batches. Timing
/// and allocation deltas bracket `solve_batch` only, so problem
/// construction (the controller's job, not the scheduler's) stays outside
/// the measurement. Warm solutions are cross-checked against a sequential
/// engine once per worker count.
fn bench_batch_tick(
    conferences: usize,
    parties: usize,
    warm_ticks: usize,
    workers: usize,
) -> BatchTickReport {
    let ladder = ladders::paper_table1();
    let bases: Vec<Arc<Problem>> = (0..conferences)
        .map(|_| Arc::new(fig6::symmetric_meeting(parties, ladder.clone())))
        .collect();
    let cfg = SolverConfig::default();
    let mut sched = BatchScheduler::new(&BatchConfig { workers });

    let jobs: Vec<BatchJob> = bases
        .iter()
        .map(|p| BatchJob {
            engine: SolveEngine::new(cfg.clone()),
            problem: Arc::clone(p),
            traced: false,
        })
        .collect();
    let t = Instant::now();
    let mut results = sched.solve_batch(jobs);
    let cold_tick_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut ticks_ms = Vec::with_capacity(warm_ticks);
    let mut allocs = 0u64;
    for tick in 0..warm_ticks {
        let problems: Vec<Arc<Problem>> =
            bases.iter().enumerate().map(|(ci, base)| Arc::new(jittered(base, tick, ci))).collect();
        let jobs: Vec<BatchJob> = results
            .into_iter()
            .zip(&problems)
            .map(|(r, p)| BatchJob { engine: r.engine, problem: Arc::clone(p), traced: false })
            .collect();
        let a = allocs_now();
        let t = Instant::now();
        results = sched.solve_batch(jobs);
        ticks_ms.push(t.elapsed().as_secs_f64() * 1e3);
        allocs += allocs_now() - a;
    }
    ticks_ms.sort_by(f64::total_cmp);
    let warm_tick_ms = ticks_ms[ticks_ms.len() / 2];
    let warm_allocs_per_solve = allocs as f64 / (warm_ticks * conferences) as f64;

    // Correctness: one final untimed warm batch, checked bit-identical
    // against the one-shot solver on every conference.
    let problems: Vec<Arc<Problem>> = bases
        .iter()
        .enumerate()
        .map(|(ci, base)| Arc::new(jittered(base, warm_ticks, ci)))
        .collect();
    let jobs: Vec<BatchJob> = results
        .into_iter()
        .zip(&problems)
        .map(|(r, p)| BatchJob { engine: r.engine, problem: Arc::clone(p), traced: false })
        .collect();
    for (p, r) in problems.iter().zip(sched.solve_batch(jobs)) {
        assert_eq!(
            r.solution,
            solver::solve(p, &cfg),
            "warm batch solution must be bit-identical to the solver ({workers} workers)"
        );
    }

    BatchTickReport { workers, cold_tick_ms, warm_tick_ms, warm_allocs_per_solve }
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One fleet tick under sustained overload: admission + priority shedding
/// active, every conference churned so each round does real solve work.
struct TenantOverloadReport {
    conferences: usize,
    parties: u32,
    workers: usize,
    warm_tick_ms: f64,
    allocs_per_tick: f64,
    shed: usize,
}

impl TenantOverloadReport {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"conferences\":{},\"parties\":{},\"workers\":{},",
                "\"warm_tick_ms\":{:.4},\"allocs_per_tick\":{:.1},\"shed\":{}}}"
            ),
            self.conferences,
            self.parties,
            self.workers,
            self.warm_tick_ms,
            self.allocs_per_tick,
            self.shed
        )
    }
}

/// An n-party full-mesh conference under the given tenancy.
fn tenant_conference(tenancy: Tenancy, parties: u32, ssrc: u32) -> GsoController {
    let caps = CodecCapability { ladders: vec![(StreamKind::Video, ladders::paper_table1())] };
    let mut c = GsoController::new(ControllerConfig::paper_defaults(), Ssrc(ssrc));
    for i in 1..=parties {
        c.on_join(ClientId(i), caps.clone());
    }
    for i in 1..=parties {
        let intents: Vec<SubscribeIntent> = (1..=parties)
            .filter(|j| *j != i)
            .map(|j| SubscribeIntent {
                source: SourceId::video(ClientId(j)),
                max_resolution: Resolution::R720,
                tag: 0,
            })
            .collect();
        c.on_subscriptions(ClientId(i), intents);
        c.on_uplink_report(SimTime::ZERO, ClientId(i), Bitrate::from_kbps(2_000));
        c.on_downlink_report(SimTime::ZERO, ClientId(i), Bitrate::from_kbps(1_800));
    }
    c.set_tenancy(tenancy);
    c
}

/// Ack every delivered/retransmitted GTMB so the §7 undeliverable-client
/// path stays out of the measurement.
fn ack_fleet_tick(fleet: &mut ControllerFleet, ticks: &[FleetTick]) {
    for (i, (out, retx)) in ticks.iter().enumerate() {
        let configs = out.iter().flat_map(|o| o.configs.iter());
        for (client, msg) in configs.chain(retx.iter()) {
            fleet.get_mut(i).expect("ticked conference exists").on_ack(
                *client,
                &GsoTmmbn {
                    sender_ssrc: Ssrc(9_999),
                    epoch: msg.epoch,
                    request_seq: msg.request_seq,
                    entries: vec![],
                },
            );
        }
    }
}

/// Median tick latency and allocations of an overloaded multi-tenant
/// fleet: a starvation row budget keeps the shedding state machine and the
/// admission ledger active on every tick, and a standing low-priority join
/// attempt exercises the admission reject path each round.
fn bench_tenant_overload(
    conferences: usize,
    parties: u32,
    ticks: usize,
    workers: usize,
) -> TenantOverloadReport {
    let mut fleet = ControllerFleet::new(&BatchConfig { workers });
    for i in 0..conferences {
        let tier = match i % 3 {
            0 => PriorityClass::High,
            1 => PriorityClass::Normal,
            _ => PriorityClass::Low,
        };
        let tenancy = Tenancy::new(TenantId(i as u32 + 1), tier);
        fleet.push(tenant_conference(tenancy, parties, 100 + i as u32 * 10));
    }
    fleet.set_shed_policy(ShedPolicy {
        row_budget_per_tick: 1,
        enter_ticks: 2,
        exit_ticks: 5,
        headroom: 0.25,
    });
    fleet.set_admission(AdmissionController::new(AdmissionConfig {
        row_budget: 1,
        high_reserve: 0.2,
        queue_capacity: 8,
        tenant_quota: 0,
    }));
    let mut joiner =
        Some(tenant_conference(Tenancy::new(TenantId(999), PriorityClass::Low), parties, 9_990));

    let mut step = |fleet: &mut ControllerFleet, tick: usize| {
        for i in 0..fleet.len() {
            let speaker = ClientId(1 + (tick as u32 % parties));
            fleet.get_mut(i).expect("pre-seated conference exists").on_speaker(Some(speaker));
        }
        if let Some(c) = joiner.take() {
            // Low + exhausted budget → always rejected, controller returned.
            joiner = fleet.admit(c, 1_000).err().map(|e| (*e).1);
        }
        let now = SimTime::from_millis(10 + tick as u64 * 1_100);
        let out = fleet.tick_all(now);
        ack_fleet_tick(fleet, &out);
    };

    // Warmup: cold solves plus enough ticks for shedding to reach its
    // steady state under the starvation budget.
    let warmup = 2 + 2 * conferences;
    for tick in 0..warmup {
        step(&mut fleet, tick);
    }
    let mut samples = Vec::with_capacity(ticks);
    let a = allocs_now();
    for tick in warmup..warmup + ticks {
        let t = Instant::now();
        step(&mut fleet, tick);
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let allocs_per_tick = (allocs_now() - a) as f64 / ticks as f64;
    samples.sort_by(f64::total_cmp);
    TenantOverloadReport {
        conferences,
        parties,
        workers,
        warm_tick_ms: samples[samples.len() / 2],
        allocs_per_tick,
        shed: fleet.shed_count(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (shapes, cold_reps, warm_reps): (&[(usize, usize, usize)], usize, usize) = if smoke {
        (&[(4, 10, 9)], 1, 3)
    } else {
        (&[(10, 50, 9), (10, 200, 18), (10, 400, 18)], 7, 25)
    };

    banner("solver_scale: SolveEngine cold/warm at Fig. 6c shapes");
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "(P, S, L)", "seq cold", "eng cold", "warm bw", "warm red", "warm red1", "×warm"
    );
    let mut reports = Vec::new();
    for &shape in shapes {
        let r = bench_shape(shape, cold_reps, warm_reps);
        println!(
            "{:>14} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8.1}",
            format!("{:?}", r.shape),
            r.seq_cold_ms,
            r.engine_cold_ms,
            r.warm_bw_delta_ms,
            r.warm_reduction_last_ms,
            r.warm_reduction_first_ms,
            r.warm_speedup()
        );
        reports.push(r);
    }
    println!("(ms medians; ×warm = seq cold / warm single-source reduction re-solve)");

    let (confs, parties, ticks) = if smoke { (4, 6, 2) } else { (64, 20, 10) };
    banner("solver_scale: multi-conference control-plane throughput");
    let mc = bench_multi_conference(confs, parties, ticks);
    println!(
        "sequential: {} conferences × {} parties: cold tick {:.2} ms, warm tick {:.2} ms \
         ({:.0} conference solves/s warm, {:.0} allocs/solve)",
        mc.conferences,
        mc.parties,
        mc.cold_tick_ms,
        mc.warm_tick_ms,
        mc.warm_solves_per_sec(),
        mc.warm_allocs_per_solve
    );

    let mut batch_reports = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let b = bench_batch_tick(confs, parties, ticks, workers);
        println!(
            "batch w={}: cold tick {:.2} ms, warm tick {:.2} ms ({:.0} allocs/solve)",
            b.workers, b.cold_tick_ms, b.warm_tick_ms, b.warm_allocs_per_solve
        );
        batch_reports.push(b);
    }
    println!("host parallelism: {} (batch workers beyond it time-share)", host_parallelism());

    banner("solver_scale: multi-tenant fleet under overload (admission + shedding)");
    let (ov_confs, ov_parties, ov_ticks, ov_workers) =
        if smoke { (6, 4, 4, 2) } else { (18, 6, 12, 4) };
    let ov = bench_tenant_overload(ov_confs, ov_parties, ov_ticks, ov_workers);
    println!(
        "tenant_overload w={}: {} conferences × {} parties: warm tick {:.3} ms \
         ({:.0} allocs/tick, {} shed)",
        ov.workers, ov.conferences, ov.parties, ov.warm_tick_ms, ov.allocs_per_tick, ov.shed
    );

    let json = format!(
        concat!(
            "{{\"bench\":\"solver_scale\",\"unit\":\"milliseconds\",\"smoke\":{},",
            "\"host_parallelism\":{},\"shapes\":[{}],\"multi_conference\":{},",
            "\"batch_tick\":[{}],\"tenant_overload\":{}}}\n"
        ),
        smoke,
        host_parallelism(),
        reports.iter().map(ShapeReport::to_json).collect::<Vec<_>>().join(","),
        mc.to_json(),
        batch_reports.iter().map(BatchTickReport::to_json).collect::<Vec<_>>().join(","),
        ov.to_json()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    std::fs::write(out, json).expect("write BENCH_solver.json");
    println!("wrote {out}");
}
