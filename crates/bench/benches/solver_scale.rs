//! solver_scale — SolveEngine vs the one-shot solver at Fig. 6c shapes.
//!
//! Times four regimes on the paper's large-meeting tuples:
//!
//! * `seq_cold` — the plain `solver::solve` baseline (what Fig. 6c reports);
//! * `engine_cold` — a cache-cleared [`SolveEngine`] (measures engine
//!   overhead on first contact);
//! * `warm_*` — re-solves after a single-client bandwidth delta and after a
//!   single-source ladder reduction (the controller's steady-state work);
//! * `parallel_cold` — the engine's sharded Step-1 (meaningful only on
//!   multi-core hosts; `host_parallelism` in the output records reality).
//!
//! A multi-conference harness then drives 64 concurrent 20-party
//! conferences through one orchestration tick each, cold and warm, the way
//! a conference node's control plane would each round.
//!
//! Every timed engine path is first cross-checked bit-identical against a
//! fresh `solver::solve` on the same problem. The full run writes
//! machine-readable `BENCH_solver.json` at the repo root; `--smoke` runs a
//! trimmed version (CI) and writes nothing.

use gso_algo::{ladders, solver, EngineConfig, Problem, SolveEngine, SolverConfig};
use gso_bench::banner;
use gso_sim::experiments::fig6;
use gso_util::Bitrate;
use std::time::Instant;

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Rebuild `base` with one subscriber's downlink scaled to 80 % — the
/// single-client invalidation the controller sees on a bandwidth report.
fn with_bandwidth_delta(base: &Problem) -> Problem {
    let mut clients = base.clients().to_vec();
    // Prefer a receive-only subscriber; symmetric meetings have none, so
    // fall back to the last client.
    let victim = match clients.iter().rposition(|c| c.sources.is_empty()) {
        Some(i) => &mut clients[i],
        None => clients.last_mut().expect("non-empty problem"),
    };
    victim.downlink = Bitrate::from_bps(victim.downlink.as_bps() * 8 / 10);
    Problem::new(clients, base.subscriptions().to_vec()).expect("delta problem valid")
}

/// Rebuild `base` with one publisher's top resolution removed from its
/// ladder — the single-source invalidation a Step-3 reduction (or an SDP
/// renegotiation) causes. `first` picks the lowest-id publisher (worst case
/// for the DP prefix cache), otherwise the highest-id one (best case).
fn with_reduced_ladder(base: &Problem, first: bool) -> Problem {
    let mut clients = base.clients().to_vec();
    let idx = if first {
        clients.iter().position(|c| !c.sources.is_empty())
    } else {
        clients.iter().rposition(|c| !c.sources.is_empty())
    }
    .expect("at least one publisher");
    let ladder = &mut clients[idx].sources[0].ladder;
    let top = *ladder.resolutions().last().expect("non-empty ladder");
    *ladder = ladder.without_resolution(top);
    Problem::new(clients, base.subscriptions().to_vec()).expect("reduced problem valid")
}

/// Assert the engine (cold and warm-after-`prime`) matches `solver::solve`.
fn cross_check(engine: &mut SolveEngine, prime: &Problem, target: &Problem) {
    engine.clear_cache();
    engine.solve(prime);
    let warm = engine.solve(target);
    let fresh = solver::solve(target, engine.config());
    assert_eq!(warm, fresh, "warm engine solution must be bit-identical to the solver");
}

struct ShapeReport {
    shape: (usize, usize, usize),
    seq_cold_ms: f64,
    engine_cold_ms: f64,
    parallel_cold_ms: f64,
    warm_bw_delta_ms: f64,
    warm_reduction_last_ms: f64,
    warm_reduction_first_ms: f64,
}

impl ShapeReport {
    fn warm_speedup(&self) -> f64 {
        self.seq_cold_ms / self.warm_reduction_last_ms.max(1e-9)
    }

    fn to_json(&self) -> String {
        let (p, s, l) = self.shape;
        format!(
            concat!(
                "{{\"pubs\":{},\"subs\":{},\"levels\":{},",
                "\"seq_cold_ms\":{:.4},\"engine_cold_ms\":{:.4},",
                "\"parallel_cold_ms\":{:.4},\"warm_bw_delta_ms\":{:.4},",
                "\"warm_reduction_last_ms\":{:.4},\"warm_reduction_first_ms\":{:.4},",
                "\"warm_speedup_vs_cold\":{:.2}}}"
            ),
            p,
            s,
            l,
            self.seq_cold_ms,
            self.engine_cold_ms,
            self.parallel_cold_ms,
            self.warm_bw_delta_ms,
            self.warm_reduction_last_ms,
            self.warm_reduction_first_ms,
            self.warm_speedup()
        )
    }
}

#[allow(clippy::too_many_lines)]
fn bench_shape(shape: (usize, usize, usize), cold_reps: usize, warm_reps: usize) -> ShapeReport {
    let (pubs, subs, levels) = shape;
    let base = fig6::asymmetric_meeting(pubs, subs, levels);
    let delta = with_bandwidth_delta(&base);
    let reduced_last = with_reduced_ladder(&base, false);
    let reduced_first = with_reduced_ladder(&base, true);
    let cfg = SolverConfig::default();

    // Correctness first: every warm path must match a fresh solve.
    let mut engine = SolveEngine::new(cfg.clone());
    cross_check(&mut engine, &base, &base);
    cross_check(&mut engine, &base, &delta);
    cross_check(&mut engine, &base, &reduced_last);
    cross_check(&mut engine, &base, &reduced_first);
    let mut par = SolveEngine::with_engine_config(
        cfg.clone(),
        EngineConfig { threads: 0, parallel_threshold: 0 },
    );
    cross_check(&mut par, &base, &base);

    let seq_cold_ms = median_ms(cold_reps, || {
        std::hint::black_box(solver::solve(&base, &cfg));
    });

    let mut engine = SolveEngine::new(cfg.clone());
    let engine_cold_ms = median_ms(cold_reps, || {
        engine.clear_cache();
        std::hint::black_box(engine.solve(&base));
    });

    let parallel_cold_ms = median_ms(cold_reps, || {
        par.clear_cache();
        std::hint::black_box(par.solve(&base));
    });

    // Warm paths alternate between the base and the perturbed problem so
    // every timed solve is a true warm re-solve with one invalidation.
    let warm_bw_delta_ms = {
        let mut engine = SolveEngine::new(cfg.clone());
        engine.solve(&base);
        let mut flip = false;
        median_ms(warm_reps, || {
            let p = if flip { &base } else { &delta };
            flip = !flip;
            std::hint::black_box(engine.solve(p));
        })
    };
    let warm_reduction_last_ms = {
        let mut engine = SolveEngine::new(cfg.clone());
        engine.solve(&base);
        let mut flip = false;
        median_ms(warm_reps, || {
            let p = if flip { &base } else { &reduced_last };
            flip = !flip;
            std::hint::black_box(engine.solve(p));
        })
    };
    let warm_reduction_first_ms = {
        let mut engine = SolveEngine::new(cfg.clone());
        engine.solve(&base);
        let mut flip = false;
        median_ms(warm_reps, || {
            let p = if flip { &base } else { &reduced_first };
            flip = !flip;
            std::hint::black_box(engine.solve(p));
        })
    };

    ShapeReport {
        shape,
        seq_cold_ms,
        engine_cold_ms,
        parallel_cold_ms,
        warm_bw_delta_ms,
        warm_reduction_last_ms,
        warm_reduction_first_ms,
    }
}

struct MultiConfReport {
    conferences: usize,
    parties: usize,
    cold_tick_ms: f64,
    warm_tick_ms: f64,
}

impl MultiConfReport {
    fn warm_solves_per_sec(&self) -> f64 {
        self.conferences as f64 / (self.warm_tick_ms.max(1e-9) / 1e3)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"conferences\":{},\"parties\":{},\"cold_tick_ms\":{:.4},",
                "\"warm_tick_ms\":{:.4},\"conference_solves_per_sec_warm\":{:.1}}}"
            ),
            self.conferences,
            self.parties,
            self.cold_tick_ms,
            self.warm_tick_ms,
            self.warm_solves_per_sec()
        )
    }
}

/// Drive `conferences` concurrent `parties`-way meetings through control
/// ticks: one engine per conference, bandwidth jitter on a rotating client
/// between warm ticks — the load a conference node's control plane carries.
fn bench_multi_conference(
    conferences: usize,
    parties: usize,
    warm_ticks: usize,
) -> MultiConfReport {
    let ladder = ladders::paper_table1();
    let bases: Vec<Problem> =
        (0..conferences).map(|_| fig6::symmetric_meeting(parties, ladder.clone())).collect();
    let mut engines: Vec<SolveEngine> =
        (0..conferences).map(|_| SolveEngine::new(SolverConfig::default())).collect();

    let t = Instant::now();
    for (engine, base) in engines.iter_mut().zip(&bases) {
        std::hint::black_box(engine.solve(base));
    }
    let cold_tick_ms = t.elapsed().as_secs_f64() * 1e3;

    // Warm ticks: each round, one client per conference reports a downlink
    // change (rotating through clients, ±jitter from a fixed sequence).
    let mut total = 0.0;
    for tick in 0..warm_ticks {
        let problems: Vec<Problem> = bases
            .iter()
            .enumerate()
            .map(|(ci, base)| {
                let mut clients = base.clients().to_vec();
                let idx = (tick + ci) % clients.len();
                let scale = 70 + ((tick * 13 + ci * 7) % 60) as u64; // 70–129 %
                let c = &mut clients[idx];
                c.downlink = Bitrate::from_bps(c.downlink.as_bps() * scale / 100);
                Problem::new(clients, base.subscriptions().to_vec()).expect("jittered valid")
            })
            .collect();
        let t = Instant::now();
        for (engine, p) in engines.iter_mut().zip(&problems) {
            std::hint::black_box(engine.solve(p));
        }
        total += t.elapsed().as_secs_f64() * 1e3;
    }
    let warm_tick_ms = total / warm_ticks as f64;

    MultiConfReport { conferences, parties, cold_tick_ms, warm_tick_ms }
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (shapes, cold_reps, warm_reps): (&[(usize, usize, usize)], usize, usize) = if smoke {
        (&[(4, 10, 9)], 1, 3)
    } else {
        (&[(10, 50, 9), (10, 200, 18), (10, 400, 18)], 7, 25)
    };

    banner("solver_scale: SolveEngine cold/warm/parallel at Fig. 6c shapes");
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "(P, S, L)",
        "seq cold",
        "eng cold",
        "par cold",
        "warm bw",
        "warm red",
        "warm red1",
        "×warm"
    );
    let mut reports = Vec::new();
    for &shape in shapes {
        let r = bench_shape(shape, cold_reps, warm_reps);
        println!(
            "{:>14} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8.1}",
            format!("{:?}", r.shape),
            r.seq_cold_ms,
            r.engine_cold_ms,
            r.parallel_cold_ms,
            r.warm_bw_delta_ms,
            r.warm_reduction_last_ms,
            r.warm_reduction_first_ms,
            r.warm_speedup()
        );
        reports.push(r);
    }
    println!("(ms medians; ×warm = seq cold / warm single-source reduction re-solve)");

    let (confs, parties, ticks) = if smoke { (4, 6, 2) } else { (64, 20, 10) };
    banner("solver_scale: multi-conference control-plane throughput");
    let mc = bench_multi_conference(confs, parties, ticks);
    println!(
        "{} conferences × {} parties: cold tick {:.2} ms, warm tick {:.2} ms ({:.0} conference solves/s warm)",
        mc.conferences,
        mc.parties,
        mc.cold_tick_ms,
        mc.warm_tick_ms,
        mc.warm_solves_per_sec()
    );
    println!("host parallelism: {} (parallel Step-1 needs >1 to pay off)", host_parallelism());

    if !smoke {
        let json = format!(
            concat!(
                "{{\"bench\":\"solver_scale\",\"unit\":\"milliseconds\",",
                "\"host_parallelism\":{},\"shapes\":[{}],\"multi_conference\":{}}}\n"
            ),
            host_parallelism(),
            reports.iter().map(ShapeReport::to_json).collect::<Vec<_>>().join(","),
            mc.to_json()
        );
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
        std::fs::write(out, json).expect("write BENCH_solver.json");
        println!("wrote {out}");
    }
}
