//! Fig. 10 — deployment time series of video stall, voice stall and
//! framerate (normalized) over the rollout.

use criterion::Criterion;
use gso_bench::banner;
use gso_sim::deployment::{self, ImprovementFactors, Rollout};

fn print_figure() {
    banner("Fig. 10: deployment metrics by date (population model)");
    // Improvement factors measured from the simulator itself.
    let measured = deployment::measure_improvements(29, 3);
    println!(
        "simulator-measured improvements: video stall -{:.0}%, voice stall -{:.0}%, framerate +{:.1}%",
        measured.video_stall_reduction * 100.0,
        measured.voice_stall_reduction * 100.0,
        measured.framerate_gain * 100.0
    );
    println!("paper: video stall -35%, voice stall -50%, framerate +6%  (production)");
    let days = deployment::simulate_deployment(Rollout::paper(), measured, 29);
    let vs_max = days.iter().map(|d| d.video_stall).fold(0.0, f64::max);
    let as_max = days.iter().map(|d| d.voice_stall).fold(0.0, f64::max);
    let fr_max = days.iter().map(|d| d.framerate).fold(0.0, f64::max);
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>11}",
        "date", "coverage", "video-stall", "voice-stall", "framerate"
    );
    for d in days.iter().step_by(3) {
        println!(
            "{:<12} {:>9.2} {:>12.3} {:>12.3} {:>11.3}",
            d.date,
            d.coverage,
            d.video_stall / vs_max,
            d.voice_stall / as_max,
            d.framerate / fr_max
        );
    }
    let before = deployment::window_mean(&days, 0..50, |d| d.video_stall);
    let after = deployment::window_mean(&days, 80..106, |d| d.video_stall);
    println!(
        "video stall: pre-rollout {:.4} -> full-deployment {:.4} ({:.0}% reduction)",
        before,
        after,
        (before - after) / before * 100.0
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_population");
    group.sample_size(30);
    group.bench_function("simulate_106_days", |b| {
        b.iter(|| {
            deployment::simulate_deployment(Rollout::paper(), ImprovementFactors::paper(), 1)
        });
    });
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
