//! Table 1 — worked examples of the control algorithm.
//!
//! Prints the reproduced final solutions for the paper's three cases and
//! Criterion-times the solver on them.

use criterion::Criterion;
use gso_bench::banner;
use gso_sim::experiments::table1;

fn print_table() {
    banner("Table 1: examples of GSO-Simulcast's control algorithm");
    println!("{:<6} {:<8} {:>8} {:>8} {:>8}   (paper)", "case", "client", "720P", "360P", "180P");
    for case in 0..3 {
        let rows = table1::solve_case(case);
        let paper = table1::paper_rows(case);
        for (row, expect) in rows.iter().zip(&paper) {
            let fmt =
                |b: Option<gso_util::Bitrate>| b.map_or_else(|| "-".into(), |b| b.to_string());
            println!(
                "case{:<2} {:<8} {:>8} {:>8} {:>8}   {}",
                case + 1,
                row.client,
                fmt(row.r720),
                fmt(row.r360),
                fmt(row.r180),
                if row == expect { "matches paper" } else { "MISMATCH" },
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    for case in 0..3 {
        let problem = table1::case_problem(case);
        group.bench_function(format!("solve_case{}", case + 1), |b| {
            b.iter(|| gso_algo::solver::solve(&problem, &Default::default()));
        });
    }
    group.finish();
}

fn main() {
    print_table();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
