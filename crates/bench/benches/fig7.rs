//! Fig. 7 — transient bitrate adaptation: GSO (fine ladder) vs Non-GSO
//! (coarse ladder) under abrupt downlink caps.

use criterion::Criterion;
use gso_bench::banner;
use gso_sim::experiments::fig7;
use gso_sim::PolicyMode;
use gso_util::SimTime;

fn print_mode(mode: PolicyMode, label: &str) {
    banner(&format!("Fig. 7{label}: transient adaptation ({mode:?})"));
    let traces = fig7::fig7(mode, 11);
    print!("{:>6}", "t(s)");
    for t in &traces {
        print!(" {:>10}", format!("cap={}", t.cap));
    }
    println!();
    for sec in (2..=80).step_by(2) {
        print!("{sec:>6}");
        for t in &traces {
            let v = t
                .series
                .window_mean(SimTime::from_secs(sec - 2), SimTime::from_secs(sec))
                .unwrap_or(0.0);
            print!(" {:>10.0}", v / 1000.0);
        }
        println!();
    }
    for t in &traces {
        let capped = fig7::capped_window_mean(&t.series).unwrap_or(0.0) / 1000.0;
        let recovered = fig7::recovered_mean(&t.series).unwrap_or(0.0) / 1000.0;
        println!(
            "cap {}: capped-window mean {:.0} kbps, post-recovery {:.0} kbps",
            t.cap, capped, recovered
        );
    }
}

fn bench(c: &mut Criterion) {
    // The transient scenario is seconds of simulated time; benchmark one
    // short run as the end-to-end kernel.
    let mut group = c.benchmark_group("fig7_scenario");
    group.sample_size(10);
    group.bench_function("gso_625k_20s", |b| {
        b.iter(|| {
            let mut s = gso_sim::workloads::slow_link_scenario(
                PolicyMode::Gso,
                gso_sim::workloads::slow_link_cases()[0],
                1,
            );
            s.duration = gso_util::SimDuration::from_secs(5);
            s.run()
        });
    });
    group.finish();
}

fn main() {
    print_mode(PolicyMode::Gso, "a");
    print_mode(PolicyMode::NonGso, "b");
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
