//! Fig. 6c — GSO compute time at large meeting sizes.

use criterion::Criterion;
use gso_bench::{banner, normalized};
use gso_sim::experiments::fig6;

fn print_figure() {
    banner("Fig. 6c: GSO control algorithm at scale (pubs, subs, levels)");
    let rows = fig6::fig6c();
    let norm = normalized(&rows.iter().map(|r| r.gso_secs).collect::<Vec<_>>());
    println!("{:>16} {:>12} {:>12} {:>12}", "(P, S, L)", "time(norm)", "time(s)", "QoE");
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:>16} {:>12.3} {:>12.4} {:>12.0}",
            format!("{:?}", r.shape),
            norm[i],
            r.gso_secs,
            r.qoe
        );
    }
    println!("(linear in subscribers and levels, superlinear in publishers — real-time at 100s of participants)");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6c_scale");
    group.sample_size(10);
    for &(p, s, l) in &[(10usize, 50usize, 9usize), (10, 200, 18)] {
        let problem = fig6::asymmetric_meeting(p, s, l);
        group.bench_function(format!("{p}x{s}x{l}"), |b| {
            b.iter(|| gso_algo::solver::solve(&problem, &Default::default()));
        });
    }
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
