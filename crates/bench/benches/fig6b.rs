//! Fig. 6b — compute time and QoE optimality vs. the number of bitrate
//! levels (3 participants).

use criterion::Criterion;
use gso_bench::{banner, normalized};
use gso_sim::experiments::fig6;

fn print_figure() {
    banner("Fig. 6b: GSO vs brute force, bitrate levels 2-8 (3 participants)");
    let rows = fig6::fig6b(Some(2_000_000));
    let brute_norm = normalized(&rows.iter().map(|r| r.brute_secs).collect::<Vec<_>>());
    let max_brute = rows.iter().map(|r| r.brute_secs).fold(0.0, f64::max);
    println!(
        "{:>7} {:>14} {:>14} {:>12} {:>12} {:>10} {:>6}",
        "levels", "brute(norm)", "gso(norm)", "brute(s)", "gso(s)", "optimality", "mode"
    );
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:>7} {:>14.3e} {:>14.3e} {:>12.4e} {:>12.4e} {:>10.4} {:>6}",
            r.x,
            brute_norm[i],
            r.gso_secs / max_brute,
            r.brute_secs,
            r.gso_secs,
            r.optimality,
            if r.extrapolated { "proj" } else { "meas" },
        );
    }
    println!("(brute grows exponentially with levels; GSO scales linearly — enabling fine-grained ladders)");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_gso_vs_levels");
    group.sample_size(15);
    for levels in [2usize, 5, 8] {
        let ladder = gso_algo::ladders::fine(levels);
        let clients: Vec<gso_algo::ClientSpec> = (1..=3u32)
            .map(|i| {
                gso_algo::ClientSpec::new(
                    gso_util::ClientId(i),
                    gso_util::Bitrate::from_kbps(1_600),
                    gso_util::Bitrate::from_kbps(1_500),
                    ladder.clone(),
                )
            })
            .collect();
        let mut subs = Vec::new();
        for i in 1..=3u32 {
            for j in 1..=3u32 {
                if i != j {
                    subs.push(gso_algo::Subscription::new(
                        gso_util::ClientId(i),
                        gso_algo::SourceId::video(gso_util::ClientId(j)),
                        gso_algo::Resolution::R720,
                    ));
                }
            }
        }
        let problem = gso_algo::Problem::new(clients, subs).unwrap();
        group.bench_function(format!("levels_{levels}"), |b| {
            b.iter(|| gso_algo::solver::solve(&problem, &Default::default()));
        });
    }
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
