//! Ablations beyond the paper: design choices DESIGN.md calls out.
//!
//! * **Ladder granularity** — delivered rate under a tight cap as the
//!   number of bitrate levels grows (the value of "fine-grained").
//! * **Merge-to-min vs. naive max** — what Step 2's min rule costs/saves.
//! * **DP quantization** — solver time vs. optimality as the knapsack
//!   bandwidth unit coarsens.
//! * **Hysteresis on/off** — configuration churn with and without the
//!   oscillation gate (§7).

use criterion::Criterion;
use gso_algo::{ladders, solver, SolverConfig};
use gso_bench::banner;
use gso_sim::experiments::fig6;
use gso_util::Bitrate;

fn ablation_quantization() {
    banner("Ablation: knapsack quantization unit vs time/QoE");
    let problem = fig6::asymmetric_meeting(10, 100, 18);
    println!("{:>10} {:>12} {:>12}", "unit", "time(s)", "QoE");
    let mut reference = None;
    for unit_kbps in [1u64, 10, 50, 100] {
        let cfg = SolverConfig { unit: Bitrate::from_kbps(unit_kbps) };
        let start = std::time::Instant::now();
        let sol = solver::solve(&problem, &cfg);
        let secs = start.elapsed().as_secs_f64();
        let q = sol.total_qoe;
        let r = *reference.get_or_insert(q);
        println!(
            "{:>8}k {:>12.4} {:>12.0}  ({:+.2}% vs 1k unit)",
            unit_kbps,
            secs,
            q,
            (q - r) / r * 100.0
        );
    }
}

fn ablation_ladder_granularity() {
    banner("Ablation: bitrate-ladder granularity vs fit under a 625 Kbps cap");
    println!("{:>8} {:>16}", "levels", "best fit (kbps)");
    for levels in [2usize, 3, 5, 8, 12, 15] {
        let ladder = ladders::fine(levels);
        // The best stream that fits a 625×0.9−50 = 512 kbps budget.
        let budget = Bitrate::from_kbps(512);
        let best = ladder
            .specs()
            .iter()
            .filter(|s| s.bitrate <= budget)
            .map(|s| s.bitrate.as_kbps())
            .max()
            .unwrap_or(0);
        println!("{levels:>8} {best:>16}");
    }
    println!("(finer ladders close the video/network mismatch of Fig. 3b)");
}

fn ablation_merge() {
    banner("Ablation: Step-2 merge rule (min, per the paper) downlink safety");
    // With merge-to-min, every subscriber's downlink constraint holds after
    // merging; a merge-to-max rule would overrun the slowest subscriber.
    let problem = fig6::asymmetric_meeting(4, 12, 9);
    let sol = solver::solve(&problem, &SolverConfig::default());
    let ok = sol.validate(&problem).is_ok();
    let mut would_overrun = 0;
    for (sub, streams) in &sol.received {
        let budget = problem.client(*sub).unwrap().downlink;
        // Reconstruct what merge-to-max would have delivered: the max
        // requested bitrate in each policy's audience group is unknown
        // post-merge, so bound it by the ladder max at that resolution.
        let max_rate: u64 = streams
            .iter()
            .map(|r| {
                problem
                    .source(r.source)
                    .and_then(|s| {
                        s.ladder.at_resolution(r.resolution).last().map(|x| x.bitrate.as_bps())
                    })
                    .unwrap_or(r.bitrate.as_bps())
            })
            .sum();
        if max_rate > budget.as_bps() {
            would_overrun += 1;
        }
    }
    println!(
        "merge-to-min: all constraints hold = {ok}; merge-to-max upper bound would overrun {} / {} subscribers",
        would_overrun,
        sol.received.len()
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kernels");
    group.sample_size(10);
    let problem = fig6::asymmetric_meeting(10, 100, 18);
    for unit in [1u64, 10, 100] {
        group.bench_function(format!("solve_unit_{unit}k"), |b| {
            let cfg = SolverConfig { unit: Bitrate::from_kbps(unit) };
            b.iter(|| solver::solve(&problem, &cfg));
        });
    }
    group.finish();
}

fn main() {
    ablation_quantization();
    ablation_ladder_granularity();
    ablation_merge();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
