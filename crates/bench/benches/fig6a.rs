//! Fig. 6a — compute time (normalized, log scale in the paper) and QoE
//! optimality vs. the number of participants.

use criterion::Criterion;
use gso_bench::{banner, normalized};
use gso_sim::experiments::fig6;

fn print_figure() {
    banner("Fig. 6a: GSO vs brute force, participants 2-8");
    let rows = fig6::fig6a(Some(2_000_000));
    let brute_norm = normalized(&rows.iter().map(|r| r.brute_secs).collect::<Vec<_>>());
    let gso_norm: Vec<f64> = {
        let max_brute = rows.iter().map(|r| r.brute_secs).fold(0.0, f64::max);
        rows.iter().map(|r| r.gso_secs / max_brute).collect()
    };
    println!(
        "{:>4} {:>14} {:>14} {:>12} {:>12} {:>10} {:>6}",
        "n", "brute(norm)", "gso(norm)", "brute(s)", "gso(s)", "optimality", "mode"
    );
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:>4} {:>14.3e} {:>14.3e} {:>12.4e} {:>12.4e} {:>10.4} {:>6}",
            r.x,
            brute_norm[i],
            gso_norm[i],
            r.brute_secs,
            r.gso_secs,
            r.optimality,
            if r.extrapolated { "proj" } else { "meas" },
        );
    }
    println!(
        "(brute time grows exponentially; GSO stays flat; optimality ≈ 1 — the Fig. 6a shape)"
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_gso_solver");
    group.sample_size(15);
    for n in [2usize, 4, 8] {
        let ladder = gso_algo::ladders::uniform(
            &[gso_algo::Resolution::R180, gso_algo::Resolution::R360, gso_algo::Resolution::R720],
            2,
        );
        let problem = fig6::asymmetric_meeting(n, n, 6);
        let _ = ladder;
        group.bench_function(format!("participants_{n}"), |b| {
            b.iter(|| gso_algo::solver::solve(&problem, &Default::default()));
        });
    }
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
