//! Delay-gradient + loss-based bandwidth estimation (GCC-style).
//!
//! GSO relies on *sender-side* estimation (§4.2): the sender keeps a history
//! of what it sent, the receiver returns per-packet arrival times
//! (transport-wide feedback), and the estimator derives available bandwidth
//! from the delay trend, observed loss and delivered throughput.
//!
//! The structure follows the Google Congestion Control draft the paper
//! cites: a trendline filter detects queue build-up from the slope of
//! one-way delay, an AIMD controller converges on a rate, and a loss
//! controller caps it when packets die. Two production lessons from §7 are
//! modelled explicitly:
//!
//! * **Over-estimation on small streams** — when the send rate is far below
//!   capacity the delay trend stays flat, so a naive estimator grows without
//!   bound. Like GCC, the rate is therefore capped near the *measured*
//!   throughput (`1.5×`), which in turn under-uses big links...
//! * **...fixed by probing** — short paced bursts (see [`crate::probe`])
//!   carry `is_probe` packets; a feedback window dominated by probe traffic
//!   is allowed to raise the estimate directly to the probed goodput.

use gso_telemetry::{keys, Telemetry};
use gso_util::{Bitrate, SimDuration, SimTime};
use std::collections::VecDeque;

/// One sent packet's fate, resolved from transport feedback by
/// [`crate::history::SendHistory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketResult {
    /// When the sender transmitted it.
    pub sent_at: SimTime,
    /// When the receiver saw it; `None` = lost.
    pub arrived_at: Option<SimTime>,
    /// Wire size in bytes.
    pub size: usize,
    /// True if this was probe padding.
    pub probe: bool,
}

/// Detector state, as in the GCC draft.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthUsage {
    /// Delay stable.
    Normal,
    /// Delay rising: the bottleneck queue is filling.
    Overuse,
    /// Delay falling: the queue is draining.
    Underuse,
}

/// Estimator tuning knobs.
#[derive(Debug, Clone)]
pub struct BweConfig {
    /// Floor of the estimate.
    pub min_rate: Bitrate,
    /// Ceiling of the estimate.
    pub max_rate: Bitrate,
    /// Starting estimate before any feedback.
    pub initial_rate: Bitrate,
    /// Multiplicative increase per second in the increase state.
    pub increase_per_sec: f64,
    /// Back-off factor applied to measured throughput on overuse.
    pub beta: f64,
    /// Delay-slope threshold (ms of delay growth per second) for overuse.
    pub slope_threshold: f64,
    /// Throughput multiple the estimate may not exceed without probing.
    pub throughput_cap: f64,
    /// Minimum spacing between delay-triggered multiplicative decreases: a
    /// deep queue takes a while to drain and keeps the delay slope positive;
    /// decreasing on every window during the drain would collapse the
    /// estimate far below the link rate.
    pub decrease_cooldown: SimDuration,
    /// Minimum spacing between loss-triggered decreases. Shorter than the
    /// delay cooldown: a loss *burst* (queue overflow) lasts about one
    /// drain, while *sustained* random loss must keep pushing the rate down
    /// (GCC's loss controller), so the loss path may fire a few times per
    /// second.
    pub loss_cooldown: SimDuration,
}

impl Default for BweConfig {
    fn default() -> Self {
        BweConfig {
            min_rate: Bitrate::from_kbps(50),
            max_rate: Bitrate::from_mbps(20),
            initial_rate: Bitrate::from_kbps(300),
            increase_per_sec: 1.08,
            beta: 0.85,
            slope_threshold: 12.0,
            throughput_cap: 1.5,
            decrease_cooldown: SimDuration::from_millis(1_500),
            loss_cooldown: SimDuration::from_millis(400),
        }
    }
}

/// Sender-side bandwidth estimator.
#[derive(Debug)]
pub struct SenderBwe {
    cfg: BweConfig,
    rate: f64,
    usage: BandwidthUsage,
    /// (arrival ms, delay-variation accumulator ms) samples for the trend.
    trend_samples: VecDeque<(f64, f64)>,
    accumulated_delay_ms: f64,
    last_pair: Option<(SimTime, SimTime)>,
    last_update: Option<SimTime>,
    last_decrease: Option<SimTime>,
    last_loss_decrease: Option<SimTime>,
    last_overuse: Option<SimTime>,
    /// Smoothed loss fraction.
    loss: f64,
    /// Last measured delivered throughput.
    throughput: f64,
    overuse_streak: u32,
    /// Delay-trend samples are discarded until this instant: a probe burst
    /// queues *media* packets behind it, and their inflated delays would
    /// read as overuse.
    trend_blackout_until: Option<SimTime>,
    /// Adaptive over-use threshold (GCC §5 of the draft): recurring benign
    /// delay spikes — keyframes, wireless schedulers — raise the threshold
    /// so they stop reading as congestion, while sustained queue growth
    /// still overshoots it.
    threshold: f64,
    last_threshold_update: Option<SimTime>,
    /// Highest path capacity ever demonstrated — by probe bursts (whose
    /// packet spacing measures the bottleneck line rate) or by delivered
    /// throughput exceeding the previous belief. Clamps the rate so the
    /// 1.5×-throughput growth cap cannot compound indefinitely; when the
    /// true capacity later *drops*, the clamp simply goes inactive and the
    /// over-use/loss controllers take over.
    capacity: Option<f64>,
    /// Metrics sink (disabled by default; see `gso-telemetry`).
    telemetry: Telemetry,
    /// Metric label identifying this estimator's path ("up:<client>" /
    /// "down:<client>").
    label: String,
}

impl SenderBwe {
    /// Create an estimator.
    pub fn new(cfg: BweConfig) -> Self {
        let rate = cfg.initial_rate.as_bps() as f64;
        let threshold = cfg.slope_threshold;
        SenderBwe {
            cfg,
            rate,
            usage: BandwidthUsage::Normal,
            trend_samples: VecDeque::new(),
            accumulated_delay_ms: 0.0,
            last_pair: None,
            last_update: None,
            last_decrease: None,
            last_loss_decrease: None,
            last_overuse: None,
            loss: 0.0,
            throughput: 0.0,
            overuse_streak: 0,
            trend_blackout_until: None,
            threshold,
            last_threshold_update: None,
            capacity: None,
            telemetry: Telemetry::disabled(),
            label: String::new(),
        }
    }

    /// Attach a metrics registry; `label` names the path this estimator
    /// watches (e.g. `"up:client3"`).
    pub fn set_telemetry(&mut self, telemetry: Telemetry, label: impl Into<String>) {
        self.telemetry = telemetry;
        self.label = label.into();
    }

    /// Current estimate.
    pub fn estimate(&self) -> Bitrate {
        Bitrate::from_bps(self.rate as u64)
    }

    /// Current detector state (exposed for tests/telemetry).
    pub fn usage(&self) -> BandwidthUsage {
        self.usage
    }

    /// Smoothed loss fraction seen by the estimator.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Last measured delivered throughput.
    pub fn throughput(&self) -> Bitrate {
        Bitrate::from_bps(self.throughput as u64)
    }

    /// Ingest one feedback window's packet results (chronological by send
    /// time) and update the estimate.
    pub fn on_feedback(&mut self, now: SimTime, results: &[PacketResult]) {
        if results.is_empty() {
            return;
        }
        // ---- Loss ---------------------------------------------------------
        let lost = results.iter().filter(|r| r.arrived_at.is_none()).count();
        let window_loss = lost as f64 / results.len() as f64;
        self.loss = 0.5 * self.loss + 0.5 * window_loss;

        // ---- Throughput over the feedback window --------------------------
        // Media only: probe padding is short-burst and would inflate the
        // apparent delivery rate (and with it the growth cap).
        let delivered: usize =
            results.iter().filter(|r| !r.probe && r.arrived_at.is_some()).map(|r| r.size).sum();
        let arrivals: Vec<(SimTime, usize)> = results
            .iter()
            .filter(|r| !r.probe)
            .filter_map(|r| r.arrived_at.map(|a| (a, r.size)))
            .collect();
        if arrivals.len() >= 2 {
            let first = arrivals
                .iter()
                .min_by_key(|&&(a, _)| a)
                .copied()
                .expect("invariant: len >= 2 was just checked");
            let last = arrivals
                .iter()
                .map(|&(a, _)| a)
                .max()
                .expect("invariant: len >= 2 was just checked");
            let span = last.saturating_since(first.0).as_secs_f64();
            if span > 1e-3 {
                // The earliest packet only opens the measurement window; its
                // bytes are excluded so two packets measure one gap.
                self.throughput = (delivered - first.1) as f64 * 8.0 / span;
            }
        }

        // ---- Delay trend ---------------------------------------------------
        // Probe clusters poison the trend twice over: the probes themselves
        // ride at line rate, and the media packets queued *behind* them
        // inherit the inflated delay. Any window containing probe traffic
        // therefore resets the trend and opens a short blackout during which
        // no samples are collected — the over-use detector only ever sees
        // steady-state media (this mirrors WebRTC's separate handling of
        // probe clusters).
        if results.iter().any(|r| r.probe) {
            let last_arrival = results.iter().filter_map(|r| r.arrived_at).max();
            self.trend_blackout_until =
                Some(last_arrival.unwrap_or(now) + SimDuration::from_millis(400));
            self.trend_samples.clear();
            self.accumulated_delay_ms = 0.0;
            self.last_pair = None;
        }
        let blacked_out = self.trend_blackout_until.is_some_and(|t| now < t);
        if !blacked_out {
            for r in results {
                if r.probe {
                    continue;
                }
                let Some(arr) = r.arrived_at else { continue };
                if let Some((prev_sent, prev_arr)) = self.last_pair {
                    let d_send = r.sent_at.saturating_since(prev_sent).as_secs_f64() * 1e3;
                    let d_arr = arr.saturating_since(prev_arr).as_secs_f64() * 1e3;
                    self.accumulated_delay_ms += d_arr - d_send;
                    let t_ms = arr.as_secs_f64() * 1e3;
                    self.trend_samples.push_back((t_ms, self.accumulated_delay_ms));
                    if self.trend_samples.len() > 40 {
                        self.trend_samples.pop_front();
                    }
                }
                self.last_pair = Some((r.sent_at, arr));
            }
        }
        let slope = self.delay_slope_ms_per_sec();
        // Adapt the threshold (GCC's k_up/k_down): drift toward |slope| when
        // exceeded (fast), decay back toward the configured base (slow), and
        // never adapt to extreme outliers, which must stay detectable.
        let dt_thresh = self
            .last_threshold_update
            .map_or(0.1, |t| now.saturating_since(t).as_secs_f64())
            .clamp(0.0, 1.0);
        self.last_threshold_update = Some(now);
        let abs_slope = slope.abs();
        if abs_slope < 4.0 * self.threshold {
            let k = if abs_slope > self.threshold { 1.2 } else { 0.06 };
            let target =
                if abs_slope > self.threshold { abs_slope } else { self.cfg.slope_threshold };
            self.threshold += k * (target - self.threshold) * dt_thresh;
            self.threshold =
                self.threshold.clamp(self.cfg.slope_threshold, 8.0 * self.cfg.slope_threshold);
        }
        let new_usage = if slope > self.threshold {
            BandwidthUsage::Overuse
        } else if slope < -self.threshold {
            BandwidthUsage::Underuse
        } else {
            BandwidthUsage::Normal
        };
        self.overuse_streak =
            if new_usage == BandwidthUsage::Overuse { self.overuse_streak + 1 } else { 0 };
        if new_usage == BandwidthUsage::Overuse {
            self.last_overuse = Some(now);
            if self.usage != BandwidthUsage::Overuse {
                self.telemetry.incr(keys::BWE_OVERUSE, &self.label);
                self.telemetry.event(now, keys::EV_BWE_OVERUSE, &self.label);
            }
        }
        self.usage = new_usage;

        // ---- Probe shortcut -------------------------------------------------
        // A delivered probe cluster measures real path capacity: its packets
        // crossed the bottleneck back-to-back, so their arrival spacing is
        // the line rate. The throughput is computed over the probe packets
        // alone — averaging over the whole (mostly idle) feedback window
        // would just re-measure the application rate.
        let probe_arrivals: Vec<(SimTime, usize)> = results
            .iter()
            .filter(|r| r.probe)
            .filter_map(|r| r.arrived_at.map(|a| (a, r.size)))
            .collect();
        let mut probe_rate = 0.0;
        if probe_arrivals.len() >= 3 {
            let first = probe_arrivals
                .iter()
                .min_by_key(|&&(a, _)| a)
                .copied()
                .expect("invariant: len >= 3 was just checked");
            let last = probe_arrivals
                .iter()
                .map(|&(a, _)| a)
                .max()
                .expect("invariant: len >= 3 was just checked");
            let span = last.saturating_since(first.0).as_secs_f64();
            let bytes: usize = probe_arrivals.iter().map(|&(_, s)| s).sum();
            if span > 1e-4 {
                probe_rate = (bytes - first.1) as f64 * 8.0 / span;
            }
        }
        let probed = probe_rate > 0.0 && window_loss < 0.05;

        // ---- Rate update ----------------------------------------------------
        let dt =
            self.last_update.map_or(0.1, |t| now.saturating_since(t).as_secs_f64()).clamp(0.0, 1.0);
        self.last_update = Some(now);

        let pre_rate = self.rate;
        let cooled_down = self
            .last_decrease
            .is_none_or(|t| now.saturating_since(t) >= self.cfg.decrease_cooldown);
        match self.usage {
            BandwidthUsage::Overuse if self.overuse_streak >= 2 && cooled_down => {
                // β × measured throughput, but never a cliff: an app-limited
                // window can make the throughput sample tiny relative to the
                // estimate, and a single window must not erase it.
                let target = self.cfg.beta * self.throughput.max(self.cfg.min_rate.as_bps() as f64);
                self.rate = target.max(0.5 * self.rate);
                self.last_decrease = Some(now);
                self.telemetry.incr(keys::BWE_DECREASES, &self.label);
                // Reset the trend after acting on it.
                self.trend_samples.clear();
                self.accumulated_delay_ms = 0.0;
                self.overuse_streak = 0;
            }
            BandwidthUsage::Overuse | BandwidthUsage::Underuse => { /* hold */ }
            BandwidthUsage::Normal => {
                self.rate *= self.cfg.increase_per_sec.powf(dt);
            }
        }

        // Growth cap near measured throughput: without congestion signals
        // the estimate never *decreases* (this is precisely the
        // over-estimation behaviour §7 describes for small streams), but it
        // may not grow beyond ~1.5× what was actually delivered — unless a
        // probe burst demonstrated real capacity.
        if probed {
            self.rate = self.rate.max(0.9 * probe_rate);
            self.capacity = Some(self.capacity.map_or(probe_rate, |c| c.max(probe_rate)));
            self.telemetry.incr(keys::BWE_PROBE_LIFTS, &self.label);
            self.telemetry.event(
                now,
                keys::EV_BWE_PROBE,
                format!("{} validated {} bps", self.label, probe_rate as u64),
            );
        } else if self.throughput > 0.0 {
            let cap = self.cfg.throughput_cap * self.throughput + 20_000.0;
            self.rate = self.rate.min(cap.max(pre_rate));
        }

        // Loss controller (GCC): heavy loss in this window backs off
        // multiplicatively — rate-limited so a single burst of queue drops
        // cannot compound across consecutive 100 ms windows, but frequent
        // enough that *sustained* random loss keeps driving the rate down.
        // …and only when the delay signal corroborates congestion: loss that
        // arrives with a flat delay trend is *random* (radio, last-hop), and
        // backing off cannot fix it — it would only starve the stream (the
        // NACK path is the tool for that regime). Loss-and-delay gating is
        // how production estimators survive lossy links.
        let loss_cooled = self
            .last_loss_decrease
            .is_none_or(|t| now.saturating_since(t) >= self.cfg.loss_cooldown);
        let congestive =
            self.last_overuse.is_some_and(|t| now.saturating_since(t) <= SimDuration::from_secs(1));
        if window_loss > 0.10 && loss_cooled && congestive {
            self.rate *= 1.0 - 0.5 * window_loss;
            self.last_decrease = Some(now);
            self.last_loss_decrease = Some(now);
            self.telemetry.incr(keys::BWE_DECREASES, &self.label);
        }

        // Delivering more than the believed capacity disproves the belief.
        if let Some(c) = self.capacity.as_mut() {
            if self.throughput > *c {
                *c = self.throughput;
            }
        }
        if let Some(c) = self.capacity {
            self.rate = self.rate.min(0.95 * c);
        }
        self.rate =
            self.rate.clamp(self.cfg.min_rate.as_bps() as f64, self.cfg.max_rate.as_bps() as f64);
        // The estimate trajectory, sampled once per feedback window.
        self.telemetry.gauge(keys::BWE_ESTIMATE_BPS, &self.label, self.rate.floor());
    }

    /// Least-squares slope of the accumulated-delay samples, in ms of delay
    /// per second of time; 0 with fewer than 5 samples.
    fn delay_slope_ms_per_sec(&self) -> f64 {
        let n = self.trend_samples.len();
        if n < 5 {
            return 0.0;
        }
        let mean_t: f64 = self.trend_samples.iter().map(|&(t, _)| t).sum::<f64>() / n as f64;
        let mean_d: f64 = self.trend_samples.iter().map(|&(_, d)| d).sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for &(t, d) in &self.trend_samples {
            num += (t - mean_t) * (d - mean_d);
            den += (t - mean_t) * (t - mean_t);
        }
        if den < 1e-9 {
            0.0
        } else {
            // ms of delay per ms of time → per second.
            (num / den) * 1e3
        }
    }

    /// Time since the estimate last decreased; used by the hysteresis gate.
    pub fn since_last_decrease(&self, now: SimTime) -> Option<SimDuration> {
        self.last_decrease.map(|t| now.saturating_since(t))
    }

    /// Probe-demonstrated path capacity, if any probe completed yet.
    pub fn capacity(&self) -> Option<Bitrate> {
        self.capacity.map(|c| Bitrate::from_bps(c as u64))
    }

    /// True when the current estimate is pressing against (or beyond) what
    /// probing has demonstrated — the sender should validate with a fresh
    /// probe burst rather than commit media to an unproven rate.
    pub fn needs_validation(&self) -> bool {
        match self.capacity {
            None => true,
            Some(c) => self.rate >= 0.9 * c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the estimator against a virtual bottleneck: packets are sent at
    /// `send_rate`, serialized through `capacity` with a FIFO queue, for
    /// `seconds`; feedback every 100 ms. Returns the estimator.
    fn drive(
        bwe: &mut SenderBwe,
        capacity: Bitrate,
        send_rate_of: impl Fn(&SenderBwe) -> Bitrate,
        seconds: f64,
        probe_plan: impl Fn(SimTime) -> bool,
    ) {
        let pkt = 1200usize;
        let mut queue_free_at = SimTime::ZERO;
        let mut window: Vec<PacketResult> = Vec::new();
        let mut next_feedback = SimTime::from_millis(100);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + SimDuration::from_secs_f64(seconds);
        while t < end {
            let rate = send_rate_of(bwe).as_bps().max(1);
            let gap = SimDuration::from_secs_f64(pkt as f64 * 8.0 / rate as f64);
            // Transmit through the bottleneck.
            let start = queue_free_at.max(t);
            let ser = capacity.serialization_time(pkt).unwrap();
            let queue_delay = start.saturating_since(t);
            let (arrived, probe) = if queue_delay > SimDuration::from_millis(500) {
                (None, probe_plan(t)) // tail-dropped
            } else {
                queue_free_at = start + ser;
                (Some(start + ser + SimDuration::from_millis(20)), probe_plan(t))
            };
            window.push(PacketResult { sent_at: t, arrived_at: arrived, size: pkt, probe });
            t += gap;
            if t >= next_feedback {
                bwe.on_feedback(next_feedback, &window);
                window.clear();
                next_feedback += SimDuration::from_millis(100);
            }
        }
    }

    fn end_of(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn converges_below_capacity() {
        let mut bwe = SenderBwe::new(BweConfig::default());
        let cap = Bitrate::from_mbps(1);
        drive(&mut bwe, cap, super::SenderBwe::estimate, 30.0, |_| false);
        let est = bwe.estimate().as_bps() as f64;
        assert!(est > 0.5e6, "estimate too low: {est}");
        assert!(est < 1.3e6, "estimate exceeds capacity band: {est}");
        let _ = end_of(30.0);
    }

    #[test]
    fn small_stream_estimate_capped_near_throughput() {
        // Sending 200 Kbps on a 10 Mbps link: without probing the estimate
        // must stay near 1.5× the send rate (the §7 over-estimation guard).
        let mut bwe = SenderBwe::new(BweConfig::default());
        let cap = Bitrate::from_mbps(10);
        drive(&mut bwe, cap, |_| Bitrate::from_kbps(200), 10.0, |_| false);
        let est = bwe.estimate().as_kbps();
        assert!(est <= 340, "cap failed: {est} kbps");
    }

    #[test]
    fn probing_discovers_capacity_beyond_app_rate() {
        let mut bwe = SenderBwe::new(BweConfig::default());
        let cap = Bitrate::from_mbps(4);
        // App sends 200 Kbps; every 3 s a 200 ms probe burst at 8× estimate.
        drive(
            &mut bwe,
            cap,
            |b| {
                Bitrate::from_kbps(200)
                    .max(Bitrate::from_bps((b.estimate().as_bps() as f64 * 0.0) as u64))
            },
            2.0,
            |_| false,
        );
        let before = bwe.estimate();
        // Probe phase: send at 8× current estimate, marked as probe.
        let mut t = SimTime::from_secs(2);
        let mut window = Vec::new();
        let probe_rate = Bitrate::from_bps(before.as_bps() * 8).min(cap);
        let pkt = 1200;
        let gap = SimDuration::from_secs_f64(pkt as f64 * 8.0 / probe_rate.as_bps() as f64);
        let mut free = t;
        for _ in 0..100 {
            let ser = cap.serialization_time(pkt).unwrap();
            let start = free.max(t);
            free = start + ser;
            window.push(PacketResult {
                sent_at: t,
                arrived_at: Some(start + ser + SimDuration::from_millis(20)),
                size: pkt,
                probe: true,
            });
            t += gap;
        }
        bwe.on_feedback(t, &window);
        let after = bwe.estimate();
        assert!(
            after.as_bps() > before.as_bps() * 2,
            "probe should lift the estimate: {before} -> {after}"
        );
    }

    #[test]
    fn heavy_loss_backs_off() {
        let mut bwe = SenderBwe::new(BweConfig::default());
        // 50% of packets lost, flat delay.
        let mut t = SimTime::ZERO;
        for round in 0..20 {
            let mut window = Vec::new();
            for i in 0..20 {
                let sent = t + SimDuration::from_millis(i * 5);
                window.push(PacketResult {
                    sent_at: sent,
                    arrived_at: (i % 2 == 0).then(|| sent + SimDuration::from_millis(30)),
                    size: 1200,
                    probe: false,
                });
            }
            t += SimDuration::from_millis(100);
            bwe.on_feedback(t, &window);
            let _ = round;
        }
        assert!(bwe.loss() > 0.3);
        // 240 Kbps delivered at 50% loss: estimate must sit well below the
        // unconstrained growth path.
        assert!(bwe.estimate() < Bitrate::from_kbps(400), "got {}", bwe.estimate());
    }

    #[test]
    fn rising_delay_triggers_overuse_and_decrease() {
        let mut bwe = SenderBwe::new(BweConfig::default());
        let mut t = SimTime::ZERO;
        // Arrival delay grows 5 ms per packet: a severe queue build-up.
        let mut delay = 20u64;
        for _ in 0..10 {
            let mut window = Vec::new();
            for i in 0..10u64 {
                let sent = t + SimDuration::from_millis(i * 10);
                delay += 5;
                window.push(PacketResult {
                    sent_at: sent,
                    arrived_at: Some(sent + SimDuration::from_millis(delay)),
                    size: 1200,
                    probe: false,
                });
            }
            t += SimDuration::from_millis(100);
            bwe.on_feedback(t, &window);
        }
        // With a persistently rising queue the rate must be pinned at
        // β × measured throughput rather than growing.
        assert!(bwe.since_last_decrease(t).is_some(), "overuse must trigger a decrease");
        let ceiling = bwe.throughput().as_bps() as f64 * 0.9;
        assert!(
            (bwe.estimate().as_bps() as f64) <= ceiling,
            "got {} vs throughput {}",
            bwe.estimate(),
            bwe.throughput()
        );
    }

    #[test]
    fn estimate_respects_bounds_and_probed_capacity() {
        let cfg = BweConfig {
            min_rate: Bitrate::from_kbps(100),
            max_rate: Bitrate::from_kbps(5_000),
            ..BweConfig::default()
        };
        let mut bwe = SenderBwe::new(cfg);
        // Clean, fast feedback for a long time: must clamp at max.
        let mut t = SimTime::ZERO;
        for _ in 0..600 {
            let mut window = Vec::new();
            for i in 0..50u64 {
                let sent = t + SimDuration::from_millis(i * 2);
                window.push(PacketResult {
                    sent_at: sent,
                    arrived_at: Some(sent + SimDuration::from_millis(10)),
                    size: 1200,
                    probe: true,
                });
            }
            t += SimDuration::from_millis(100);
            bwe.on_feedback(t, &window);
        }
        // Clamped by the configured ceiling AND by 0.95× the capacity the
        // probe packets demonstrated (whichever is lower).
        assert!(bwe.estimate() <= Bitrate::from_kbps(5_000));
        let cap = bwe.capacity().expect("probes demonstrated capacity");
        assert!(bwe.estimate().as_bps() as f64 <= 0.95 * cap.as_bps() as f64 + 1.0);
        assert!(bwe.estimate() >= Bitrate::from_mbps(4), "got {}", bwe.estimate());
    }

    #[test]
    fn empty_feedback_is_noop() {
        let mut bwe = SenderBwe::new(BweConfig::default());
        let before = bwe.estimate();
        bwe.on_feedback(SimTime::from_secs(1), &[]);
        assert_eq!(bwe.estimate(), before);
    }
}
