//! Receive-side transport feedback generation.
//!
//! The receiving end of a path (a client for its downlink, an accessing
//! node for each client's uplink) records packet arrivals per SSRC and
//! periodically emits [`TransportFeedback`] messages covering the sequence
//! span since the last report, with `None` entries for packets that never
//! arrived.

use gso_rtp::{seq_newer, TransportFeedback};
use gso_util::{SimTime, Ssrc};
use std::collections::BTreeMap;

#[derive(Debug, Default)]
struct StreamState {
    /// Arrival µs by sequence, pending report.
    arrivals: BTreeMap<u16, u64>,
    /// First sequence not yet covered by a report.
    next_base: Option<u16>,
    /// Highest sequence seen.
    highest: Option<u16>,
    feedback_seq: u32,
}

/// Generates transport-wide feedback for every stream arriving on a path.
#[derive(Debug, Default)]
pub struct TwccGenerator {
    streams: BTreeMap<Ssrc, StreamState>,
}

impl TwccGenerator {
    /// Empty generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a packet arrival.
    pub fn on_packet(&mut self, now: SimTime, ssrc: Ssrc, sequence: u16) {
        let s = self.streams.entry(ssrc).or_default();
        s.arrivals.insert(sequence, now.as_micros());
        match s.highest {
            None => s.highest = Some(sequence),
            Some(h) if seq_newer(sequence, h) => s.highest = Some(sequence),
            _ => {}
        }
        if s.next_base.is_none() {
            s.next_base = Some(sequence);
        }
    }

    /// Emit one feedback message per stream covering everything since the
    /// previous report. Streams with nothing new produce nothing.
    pub fn poll(&mut self) -> Vec<(Ssrc, TransportFeedback)> {
        let mut out = Vec::new();
        for (&ssrc, s) in self.streams.iter_mut() {
            let (Some(base), Some(highest)) = (s.next_base, s.highest) else { continue };
            let span = highest.wrapping_sub(base) as usize + 1;
            if s.arrivals.is_empty() {
                continue;
            }
            // Cap pathological spans (e.g. long outages) to the feedback
            // message limit.
            let span = span.min(u16::MAX as usize);
            let mut arrivals = Vec::with_capacity(span);
            for i in 0..span {
                let seq = base.wrapping_add(i as u16);
                arrivals.push(s.arrivals.remove(&seq));
            }
            s.next_base = Some(base.wrapping_add(span as u16));
            s.feedback_seq += 1;
            out.push((
                ssrc,
                TransportFeedback {
                    sender_ssrc: ssrc,
                    feedback_seq: s.feedback_seq,
                    base_seq: base,
                    arrivals,
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_cover_span_with_losses() {
        let mut g = TwccGenerator::new();
        g.on_packet(SimTime::from_millis(10), Ssrc(1), 100);
        g.on_packet(SimTime::from_millis(20), Ssrc(1), 101);
        // 102 lost.
        g.on_packet(SimTime::from_millis(40), Ssrc(1), 103);
        let fbs = g.poll();
        assert_eq!(fbs.len(), 1);
        let fb = &fbs[0].1;
        assert_eq!(fb.base_seq, 100);
        assert_eq!(fb.arrivals, vec![Some(10_000), Some(20_000), None, Some(40_000)]);
    }

    #[test]
    fn subsequent_polls_continue_from_last_base() {
        let mut g = TwccGenerator::new();
        g.on_packet(SimTime::from_millis(1), Ssrc(1), 0);
        let first = g.poll();
        assert_eq!(first[0].1.arrivals.len(), 1);
        g.on_packet(SimTime::from_millis(2), Ssrc(1), 1);
        g.on_packet(SimTime::from_millis(3), Ssrc(1), 2);
        let second = g.poll();
        assert_eq!(second[0].1.base_seq, 1);
        assert_eq!(second[0].1.arrivals.len(), 2);
        assert_eq!(second[0].1.feedback_seq, 2);
    }

    #[test]
    fn empty_poll_produces_nothing() {
        let mut g = TwccGenerator::new();
        assert!(g.poll().is_empty());
        g.on_packet(SimTime::ZERO, Ssrc(1), 0);
        let _ = g.poll();
        assert!(g.poll().is_empty(), "no new packets, no report");
    }

    #[test]
    fn streams_are_independent() {
        let mut g = TwccGenerator::new();
        g.on_packet(SimTime::from_millis(1), Ssrc(1), 50);
        g.on_packet(SimTime::from_millis(2), Ssrc(2), 900);
        let fbs = g.poll();
        assert_eq!(fbs.len(), 2);
        assert_eq!(fbs[0].0, Ssrc(1));
        assert_eq!(fbs[1].0, Ssrc(2));
        assert_eq!(fbs[1].1.base_seq, 900);
    }

    #[test]
    fn late_packet_from_reported_span_is_not_rereported() {
        let mut g = TwccGenerator::new();
        g.on_packet(SimTime::from_millis(1), Ssrc(1), 10);
        g.on_packet(SimTime::from_millis(2), Ssrc(1), 12);
        let _ = g.poll(); // reports 10..=12 with 11 missing
                          // 11 arrives late: it sits below next_base and is reported in the
                          // next span start (harmlessly re-covered) or dropped.
        g.on_packet(SimTime::from_millis(9), Ssrc(1), 11);
        g.on_packet(SimTime::from_millis(10), Ssrc(1), 13);
        let fbs = g.poll();
        let fb = &fbs[0].1;
        assert_eq!(fb.base_seq, 13);
        assert_eq!(fb.arrivals.len(), 1);
    }
}
