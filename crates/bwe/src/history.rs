//! Sender-side packet history, resolving transport feedback into
//! [`PacketResult`]s.
//!
//! The sender records every outgoing packet keyed by `(ssrc, sequence)`;
//! when a [`TransportFeedback`] for that SSRC arrives, the reported arrival
//! times are joined against the history. Entries older than a horizon are
//! garbage-collected.

use crate::estimator::PacketResult;
use gso_rtp::TransportFeedback;
use gso_util::{SimDuration, SimTime, Ssrc};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct SentRecord {
    sent_at: SimTime,
    size: usize,
    probe: bool,
}

/// History of sent packets across all of one sender's streams.
#[derive(Debug, Default)]
pub struct SendHistory {
    records: BTreeMap<(Ssrc, u16), SentRecord>,
}

/// Keep records this long before pruning.
const HORIZON: SimDuration = SimDuration::from_secs(5);

impl SendHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an outgoing packet.
    pub fn record(&mut self, ssrc: Ssrc, sequence: u16, now: SimTime, size: usize, probe: bool) {
        self.records.insert((ssrc, sequence), SentRecord { sent_at: now, size, probe });
    }

    /// Join a feedback message against the history, in send order. Packets
    /// the history does not know are skipped (e.g. pruned or pre-restart).
    pub fn resolve(&mut self, ssrc: Ssrc, fb: &TransportFeedback) -> Vec<PacketResult> {
        let mut out = Vec::with_capacity(fb.arrivals.len());
        for (i, arrival) in fb.arrivals.iter().enumerate() {
            let seq = fb.base_seq.wrapping_add(i as u16);
            if let Some(rec) = self.records.remove(&(ssrc, seq)) {
                out.push(PacketResult {
                    sent_at: rec.sent_at,
                    arrived_at: arrival.map(SimTime::from_micros),
                    size: rec.size,
                    probe: rec.probe,
                });
            }
        }
        out.sort_by_key(|r| r.sent_at);
        out
    }

    /// Discard records older than the horizon.
    pub fn prune(&mut self, now: SimTime) {
        self.records.retain(|_, r| now.saturating_since(r.sent_at) <= HORIZON);
    }

    /// Number of unresolved records (for tests).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no packets are outstanding.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_joins_arrivals_and_losses() {
        let mut h = SendHistory::new();
        let ssrc = Ssrc(1);
        for i in 0..5u16 {
            h.record(ssrc, 100 + i, SimTime::from_millis(u64::from(i) * 10), 1200, false);
        }
        let fb = TransportFeedback {
            sender_ssrc: Ssrc(9),
            feedback_seq: 0,
            base_seq: 100,
            arrivals: vec![Some(50_000), None, Some(70_000), Some(80_000), None],
        };
        let results = h.resolve(ssrc, &fb);
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].arrived_at, Some(SimTime::from_millis(50)));
        assert_eq!(results[1].arrived_at, None);
        assert!(h.is_empty(), "resolved records are consumed");
    }

    #[test]
    fn unknown_sequences_skipped() {
        let mut h = SendHistory::new();
        h.record(Ssrc(1), 5, SimTime::ZERO, 100, false);
        let fb = TransportFeedback {
            sender_ssrc: Ssrc(9),
            feedback_seq: 0,
            base_seq: 0,
            arrivals: vec![Some(1); 3], // seqs 0,1,2 unknown
        };
        assert!(h.resolve(Ssrc(1), &fb).is_empty());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn wrong_ssrc_not_consumed() {
        let mut h = SendHistory::new();
        h.record(Ssrc(1), 0, SimTime::ZERO, 100, false);
        let fb = TransportFeedback {
            sender_ssrc: Ssrc(9),
            feedback_seq: 0,
            base_seq: 0,
            arrivals: vec![Some(1)],
        };
        assert!(h.resolve(Ssrc(2), &fb).is_empty());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn prune_discards_old_records() {
        let mut h = SendHistory::new();
        h.record(Ssrc(1), 0, SimTime::ZERO, 100, false);
        h.record(Ssrc(1), 1, SimTime::from_secs(8), 100, false);
        h.prune(SimTime::from_secs(10));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn wrapping_base_seq() {
        let mut h = SendHistory::new();
        h.record(Ssrc(1), u16::MAX, SimTime::ZERO, 100, false);
        h.record(Ssrc(1), 0, SimTime::from_millis(1), 100, false);
        let fb = TransportFeedback {
            sender_ssrc: Ssrc(9),
            feedback_seq: 0,
            base_seq: u16::MAX,
            arrivals: vec![Some(10_000), Some(20_000)],
        };
        let r = h.resolve(Ssrc(1), &fb);
        assert_eq!(r.len(), 2);
        assert!(r[0].sent_at < r[1].sent_at);
    }
}
