//! Sender-side bandwidth estimation for GSO-Simulcast.
//!
//! GSO collects uplink bandwidth at the sender and downlink bandwidth at the
//! accessing node — both via sender-side estimation over transport-wide
//! feedback (§4.2). This crate provides that estimator plus the production
//! refinements of §7:
//!
//! * [`estimator`] — GCC-style delay-gradient + loss + AIMD estimation, with
//!   the small-stream over-estimation guard.
//! * [`history`] — sender packet history joined against feedback.
//! * [`twcc`] — receive-side transport feedback generation.
//! * [`probe`] — short paced probe bursts that discover headroom beyond the
//!   application's send rate.
//! * [`semb`] — SEMB report scheduling with time + event triggers.

pub mod estimator;
pub mod history;
pub mod probe;
pub mod semb;
pub mod twcc;

pub use estimator::{BandwidthUsage, BweConfig, PacketResult, SenderBwe};
pub use history::SendHistory;
pub use probe::{ProbeCluster, ProbeConfig, ProbeController};
pub use semb::{SembConfig, SembScheduler};
pub use twcc::TwccGenerator;
