//! Bandwidth probing (§7 "Addressing bandwidth over-estimation").
//!
//! GCC-like estimators cap their estimate near the observed throughput, so a
//! client sending only small streams never learns how much uplink it really
//! has — and GSO needs that number to decide whether higher layers are
//! feasible. The fix deployed in the paper: "send probing packets in short
//! bursts controlled by a pacer to probe the bandwidth upper bound", with
//! carefully limited redundancy.
//!
//! The [`ProbeController`] decides when to emit a probe cluster and at what
//! rate; the client's pacer turns a cluster into padding packets flagged
//! `is_probe` in the send history.

use gso_util::{Bitrate, SimDuration, SimTime};

/// A probe cluster to be paced onto the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeCluster {
    /// Rate to pace padding at.
    pub target_rate: Bitrate,
    /// Burst duration.
    pub duration: SimDuration,
}

/// Probe scheduling policy.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Multipliers for the initial exponential probes after startup.
    pub initial_multipliers: Vec<f64>,
    /// Multiplier for periodic re-probes when application-limited.
    pub periodic_multiplier: f64,
    /// Interval between periodic probes.
    pub periodic_interval: SimDuration,
    /// Burst length; short, to bound the traffic overhead.
    pub burst: SimDuration,
    /// Never probe above this rate.
    pub max_rate: Bitrate,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            initial_multipliers: vec![3.0, 6.0],
            periodic_multiplier: 2.0,
            periodic_interval: SimDuration::from_millis(2_500),
            burst: SimDuration::from_millis(200),
            max_rate: Bitrate::from_mbps(20),
        }
    }
}

/// Decides when to probe.
#[derive(Debug)]
pub struct ProbeController {
    cfg: ProbeConfig,
    initial_sent: usize,
    last_probe: Option<SimTime>,
}

impl ProbeController {
    /// New controller; the first polls emit the initial exponential probes.
    pub fn new(cfg: ProbeConfig) -> Self {
        ProbeController { cfg, initial_sent: 0, last_probe: None }
    }

    /// Ask whether to probe now.
    ///
    /// `estimate` is the current bandwidth estimate; `app_limited` is true
    /// when the application's send rate is well below the estimate (the
    /// regime where the estimate is capped and must be refreshed by probing).
    pub fn poll(
        &mut self,
        now: SimTime,
        estimate: Bitrate,
        app_limited: bool,
    ) -> Option<ProbeCluster> {
        // Initial probes: run through the multiplier sequence back-to-back
        // (each waits for the previous burst to finish).
        if self.initial_sent < self.cfg.initial_multipliers.len() {
            if let Some(last) = self.last_probe {
                if now.saturating_since(last) < self.cfg.burst * 2 {
                    return None;
                }
            }
            let m = self.cfg.initial_multipliers[self.initial_sent];
            self.initial_sent += 1;
            self.last_probe = Some(now);
            return Some(ProbeCluster {
                target_rate: estimate.mul_f64(m).min(self.cfg.max_rate),
                duration: self.cfg.burst,
            });
        }
        // Periodic probes only when application-limited.
        if !app_limited {
            return None;
        }
        let due = match self.last_probe {
            None => true,
            Some(last) => now.saturating_since(last) >= self.cfg.periodic_interval,
        };
        if !due {
            return None;
        }
        self.last_probe = Some(now);
        Some(ProbeCluster {
            target_rate: estimate.mul_f64(self.cfg.periodic_multiplier).min(self.cfg.max_rate),
            duration: self.cfg.burst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_probes_run_the_multiplier_ladder() {
        let mut pc = ProbeController::new(ProbeConfig::default());
        let est = Bitrate::from_kbps(300);
        let p1 = pc.poll(SimTime::ZERO, est, false).unwrap();
        assert_eq!(p1.target_rate, Bitrate::from_kbps(900));
        // Too soon for the second.
        assert!(pc.poll(SimTime::from_millis(100), est, false).is_none());
        let p2 = pc.poll(SimTime::from_millis(500), est, false).unwrap();
        assert_eq!(p2.target_rate, Bitrate::from_kbps(1_800));
        // Ladder exhausted; not app-limited → no more probes.
        assert!(pc.poll(SimTime::from_secs(60), est, false).is_none());
    }

    #[test]
    fn periodic_probe_only_when_app_limited() {
        let mut pc = ProbeController::new(ProbeConfig::default());
        let est = Bitrate::from_kbps(500);
        // Drain the initial ladder.
        let _ = pc.poll(SimTime::ZERO, est, false);
        let _ = pc.poll(SimTime::from_secs(1), est, false);
        assert!(pc.poll(SimTime::from_secs(10), est, false).is_none());
        let p = pc.poll(SimTime::from_secs(10), est, true).unwrap();
        assert_eq!(p.target_rate, Bitrate::from_kbps(1_000));
        // Respects the periodic interval.
        assert!(pc.poll(SimTime::from_secs(12), est, true).is_none());
        assert!(pc.poll(SimTime::from_secs(15), est, true).is_some());
    }

    #[test]
    fn probe_rate_clamped_to_max() {
        let cfg = ProbeConfig { max_rate: Bitrate::from_kbps(800), ..ProbeConfig::default() };
        let mut pc = ProbeController::new(cfg);
        let p = pc.poll(SimTime::ZERO, Bitrate::from_kbps(500), false).unwrap();
        assert_eq!(p.target_rate, Bitrate::from_kbps(800));
    }

    #[test]
    fn burst_is_short_to_bound_overhead() {
        // §7: probing redundancy "needs to be carefully adjusted to reduce
        // the traffic overhead" — a default burst costs at most
        // rate × 200 ms of extra traffic.
        let cfg = ProbeConfig::default();
        assert!(cfg.burst <= SimDuration::from_millis(250));
    }
}
