//! SEMB report scheduling (§7 "Reducing message reporting frequency").
//!
//! Uplink estimates are reported to the conference node in APP/SEMB
//! messages. Reporting on every estimator update would overwhelm the
//! conference node, so the paper deploys **both a time trigger and an event
//! trigger**: periodic refreshes, plus immediate reports when the estimate
//! moves significantly — rate-limited by a minimum gap.

use gso_util::{Bitrate, SimDuration, SimTime};

/// Reporting policy.
#[derive(Debug, Clone)]
pub struct SembConfig {
    /// Periodic refresh interval (the time trigger).
    pub time_trigger: SimDuration,
    /// Relative change that fires the event trigger.
    pub change_threshold: f64,
    /// Minimum gap between any two reports.
    pub min_gap: SimDuration,
}

impl Default for SembConfig {
    fn default() -> Self {
        SembConfig {
            time_trigger: SimDuration::from_secs(1),
            change_threshold: 0.10,
            min_gap: SimDuration::from_millis(100),
        }
    }
}

/// Decides when a SEMB report should be sent.
#[derive(Debug)]
pub struct SembScheduler {
    cfg: SembConfig,
    last_report: Option<(SimTime, Bitrate)>,
}

impl SembScheduler {
    /// New scheduler; the first poll always reports.
    pub fn new(cfg: SembConfig) -> Self {
        SembScheduler { cfg, last_report: None }
    }

    /// Should a report with the current `estimate` be sent now? If yes, the
    /// report is recorded and the value to send is returned.
    pub fn poll(&mut self, now: SimTime, estimate: Bitrate) -> Option<Bitrate> {
        let fire = match self.last_report {
            None => true,
            Some((at, value)) => {
                let elapsed = now.saturating_since(at);
                if elapsed < self.cfg.min_gap {
                    false
                } else if elapsed >= self.cfg.time_trigger {
                    true
                } else {
                    let prev = value.as_bps() as f64;
                    let cur = estimate.as_bps() as f64;
                    let change = if prev > 0.0 { (cur - prev).abs() / prev } else { 1.0 };
                    change >= self.cfg.change_threshold
                }
            }
        };
        if fire {
            self.last_report = Some((now, estimate));
            Some(estimate)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Bitrate {
        Bitrate::from_kbps(v)
    }

    #[test]
    fn first_poll_reports() {
        let mut s = SembScheduler::new(SembConfig::default());
        assert_eq!(s.poll(SimTime::ZERO, k(500)), Some(k(500)));
    }

    #[test]
    fn time_trigger_fires_periodically() {
        let mut s = SembScheduler::new(SembConfig::default());
        s.poll(SimTime::ZERO, k(500));
        assert_eq!(s.poll(SimTime::from_millis(900), k(500)), None);
        assert_eq!(s.poll(SimTime::from_millis(1_000), k(500)), Some(k(500)));
    }

    #[test]
    fn event_trigger_fires_on_significant_change() {
        let mut s = SembScheduler::new(SembConfig::default());
        s.poll(SimTime::ZERO, k(500));
        // 5% change: below threshold.
        assert_eq!(s.poll(SimTime::from_millis(300), k(525)), None);
        // 20% change: fires immediately.
        assert_eq!(s.poll(SimTime::from_millis(400), k(600)), Some(k(600)));
    }

    #[test]
    fn min_gap_rate_limits_event_storms() {
        let mut s = SembScheduler::new(SembConfig::default());
        s.poll(SimTime::ZERO, k(500));
        // Large change but within the minimum gap: suppressed.
        assert_eq!(s.poll(SimTime::from_millis(50), k(1_000)), None);
        assert_eq!(s.poll(SimTime::from_millis(150), k(1_000)), Some(k(1_000)));
    }

    #[test]
    fn change_measured_against_last_report_not_last_poll() {
        let mut s = SembScheduler::new(SembConfig::default());
        s.poll(SimTime::ZERO, k(500));
        // Creep in small steps: each below threshold vs the last *report*…
        assert_eq!(s.poll(SimTime::from_millis(200), k(520)), None);
        assert_eq!(s.poll(SimTime::from_millis(400), k(540)), None);
        // …until the cumulative drift exceeds 10% of 500.
        assert_eq!(s.poll(SimTime::from_millis(600), k(560)), Some(k(560)));
    }
}
