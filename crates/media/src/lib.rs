//! Simulated media pipeline: simulcast encoding, packetization, receive-side
//! reassembly/playout, and QoE metric models.
//!
//! This crate is the stand-in for real codecs and player pipelines
//! (documented substitution — the experiments measure which *bitrates* flow
//! and what stalls result, not pixel fidelity):
//!
//! * [`encoder`] — per-layer simulcast encoders with rate control, keyframe
//!   cadence, and GTMB-driven reconfiguration (including layer disable).
//! * [`frame`] — encoded frames and RTP packetization/fragmentation.
//! * [`receiver`] — reassembly, NACK-based loss recovery, keyframe
//!   resynchronization, in-order playout.
//! * [`audio`] — constant-bitrate audio source and the audio protection
//!   headroom (§7).
//! * [`metrics`] — the paper's stall and framerate definitions (footnotes
//!   9–10).
//! * [`quality`] — a parametric VMAF-like quality score.
//! * [`cost`] — the client CPU work-unit model behind Fig. 9.

pub mod audio;
pub mod cost;
pub mod encoder;
pub mod frame;
pub mod metrics;
pub mod quality;
pub mod receiver;

pub use audio::{AudioSource, AUDIO_BITRATE, AUDIO_PROTECTION};
pub use encoder::{EncoderConfig, LayerConfig, SimulcastEncoder};
pub use frame::{packetize, EncodedFrame, FragmentHeader, MTU_PAYLOAD};
pub use metrics::{VideoPlayback, VoicePlayback};
pub use quality::vmaf_proxy;
pub use receiver::{ReceiverOutput, RenderStats, RenderedFrame, StreamReceiver};
