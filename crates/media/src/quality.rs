//! Video quality model — the VMAF substitution.
//!
//! The paper scores slow-link tests with VMAF (Fig. 8, footnote 8), which
//! needs real decoded pixels. The simulator substitutes a parametric model
//! with VMAF's qualitative properties: quality rises concavely with bitrate,
//! saturates at a resolution-dependent ceiling, degrades when the bitrate is
//! stretched over too many pixels, and is discounted by low framerate. The
//! absolute numbers are on a 0–100 scale like VMAF; only relative
//! comparisons are used by the experiments (Fig. 8 normalizes to the best
//! case, as does the paper).

use gso_util::Bitrate;

/// Model a VMAF-like score for a stream delivered at `bitrate` and rendered
/// at `fps`, with the given vertical resolution.
pub fn vmaf_proxy(resolution_lines: u16, bitrate: Bitrate, fps: f64) -> f64 {
    if bitrate.is_zero() || fps <= 0.0 {
        return 0.0;
    }
    let kbps = bitrate.as_kbps() as f64;
    // Bitrate needed to reach ~63 % of the resolution's ceiling.
    let knee = match resolution_lines {
        0..=180 => 150.0,
        181..=360 => 450.0,
        361..=720 => 1000.0,
        _ => 2200.0,
    };
    // Higher resolutions can reach higher ceilings when fed enough bits.
    let ceiling = match resolution_lines {
        0..=180 => 55.0,
        181..=360 => 72.0,
        361..=720 => 95.0,
        _ => 100.0,
    };
    let spatial = ceiling * (1.0 - (-kbps / knee).exp());
    // Framerate discount: full score at ≥ 15 fps, sharp penalty below.
    let temporal = (fps / 15.0).min(1.0).powf(0.7);
    spatial * temporal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(kbps: u64) -> Bitrate {
        Bitrate::from_kbps(kbps)
    }

    #[test]
    fn increases_with_bitrate() {
        let q1 = vmaf_proxy(720, k(500), 15.0);
        let q2 = vmaf_proxy(720, k(1000), 15.0);
        let q3 = vmaf_proxy(720, k(1500), 15.0);
        assert!(q1 < q2 && q2 < q3);
    }

    #[test]
    fn higher_resolution_wins_when_bits_suffice() {
        assert!(vmaf_proxy(720, k(1500), 15.0) > vmaf_proxy(360, k(1500), 15.0));
        assert!(vmaf_proxy(360, k(800), 15.0) > vmaf_proxy(180, k(800), 15.0));
    }

    #[test]
    fn starved_high_resolution_loses_to_fed_low_resolution() {
        // 720P at 200 Kbps looks worse than 180P at 200 Kbps — the
        // video/network mismatch the controller avoids.
        assert!(vmaf_proxy(720, k(200), 15.0) < vmaf_proxy(180, k(200), 15.0));
    }

    #[test]
    fn framerate_discount() {
        let full = vmaf_proxy(360, k(600), 15.0);
        let half = vmaf_proxy(360, k(600), 7.5);
        assert!(half < full);
        assert!(half > 0.5 * full, "discount is concave, not linear");
        assert_eq!(vmaf_proxy(360, k(600), 0.0), 0.0);
    }

    #[test]
    fn zero_bitrate_scores_zero_and_range_holds() {
        assert_eq!(vmaf_proxy(720, Bitrate::ZERO, 15.0), 0.0);
        for lines in [180u16, 360, 720, 1080] {
            for kbps in [50u64, 300, 1500, 10_000] {
                let q = vmaf_proxy(lines, k(kbps), 30.0);
                assert!((0.0..=100.0).contains(&q), "{lines}p {kbps}k -> {q}");
            }
        }
    }
}
