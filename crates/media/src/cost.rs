//! Client-side CPU cost model (the Fig. 9 substitution).
//!
//! The paper measures CPU utilization of the Dingtalk app on a Huawei P30.
//! We cannot run that hardware, so each pipeline stage is assigned a *work
//! unit* cost calibrated so that a single 720P encode+send at 15 fps lands
//! around 20 % of the device budget — matching the magnitude of Fig. 9. The
//! figure's actual claim is *relative* (GSO adds < 1 % sender / < 2 %
//! receiver overhead versus non-GSO), and the deltas here come from the same
//! sources as in production: extra enabled layers, SEMB reporting and GTMB
//! processing.
//!
//! One work unit ≡ one microsecond of reference-device CPU time.

/// Work to capture one camera frame (scaling, color conversion).
pub const CAPTURE_COST_PER_FRAME: f64 = 900.0;

/// Encode work per frame: `base + per_pixel × pixels` (hardware-ish encoder).
pub fn encode_cost(resolution_lines: u16, _frame_bytes: usize) -> f64 {
    let pixels = f64::from(resolution_lines) * (f64::from(resolution_lines) * 16.0 / 9.0);
    120.0 + pixels * 6.0e-3
}

/// Decode work per frame at a given resolution.
pub fn decode_cost(resolution_lines: u16) -> f64 {
    let pixels = f64::from(resolution_lines) * (f64::from(resolution_lines) * 16.0 / 9.0);
    60.0 + pixels * 2.5e-3
}

/// Render/compose work per displayed frame.
pub const RENDER_COST_PER_FRAME: f64 = 200.0;

/// Packetization/depacketization work per RTP packet.
pub const PACKET_COST: f64 = 6.0;

/// Processing one RTCP control message (reports, GTMB/GTBN, SEMB).
pub const RTCP_COST: f64 = 25.0;

/// Audio encode+send work per 20 ms audio frame.
pub const AUDIO_FRAME_COST: f64 = 80.0;

/// The reference device's budget: work units per second at 100 % CPU.
pub const DEVICE_BUDGET_PER_SEC: f64 = 1.0e6;

/// Convert accumulated work units over a wall duration to a utilization
/// fraction in [0, 1] (clamped).
pub fn utilization(work_units: f64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    (work_units / (seconds * DEVICE_BUDGET_PER_SEC)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_cost_scales_with_resolution() {
        assert!(encode_cost(720, 10_000) > encode_cost(360, 10_000));
        assert!(encode_cost(360, 10_000) > encode_cost(180, 10_000));
    }

    #[test]
    fn single_720p_sender_lands_near_20_percent() {
        // 15 fps × (capture + encode@720) for 10 s.
        let per_frame = CAPTURE_COST_PER_FRAME + encode_cost(720, 12_000);
        let work = per_frame * 15.0 * 10.0;
        let u = utilization(work, 10.0);
        assert!(u > 0.08 && u < 0.3, "utilization {u}");
    }

    #[test]
    fn utilization_clamps() {
        assert_eq!(utilization(1e12, 1.0), 1.0);
        assert_eq!(utilization(1.0, 0.0), 0.0);
    }

    #[test]
    fn decode_cheaper_than_encode() {
        assert!(decode_cost(720) < encode_cost(720, 10_000));
    }
}
