//! Receive-side video pipeline: reassembly, loss recovery, playout.
//!
//! One [`StreamReceiver`] exists per subscribed video stream. It reassembles
//! frames from RTP fragments, requests retransmission of missing packets via
//! NACK, and renders frames in decode order: a delta frame is only decodable
//! if its predecessor was decoded, otherwise the receiver freezes until the
//! next keyframe — which is what turns packet loss into the video stalls the
//! paper measures.

use crate::frame::FragmentHeader;
use gso_rtp::{seq_newer, RtpPacket};
use gso_util::{SimDuration, SimTime, Ssrc};
use std::collections::BTreeMap;

/// A frame delivered to the renderer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderedFrame {
    /// Frame counter within the stream.
    pub frame_id: u64,
    /// Render (delivery) time.
    pub rendered_at: SimTime,
    /// Resolution in lines.
    pub resolution_lines: u16,
    /// Total encoded bytes of the frame.
    pub size: usize,
    /// Whether this was a keyframe.
    pub keyframe: bool,
}

/// Running aggregates over the frames a receiver has rendered.
///
/// This replaces the old unbounded `rendered_log`: an hours-long
/// deployment-sim run used to hold every [`RenderedFrame`] ever rendered.
/// Individual frames are delivered exactly once through
/// [`ReceiverOutput::rendered`]; the receiver itself only keeps these
/// constant-size aggregates, which feed the `gso-telemetry` metrics layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderStats {
    /// Frames rendered.
    pub frames: u64,
    /// Encoded bytes across rendered frames.
    pub bytes: u64,
    /// Keyframes among them.
    pub keyframes: u64,
    /// Sum of `resolution_lines` over rendered frames (mean resolution =
    /// `resolution_line_sum / frames`).
    pub resolution_line_sum: u64,
    /// Time of the first rendered frame.
    pub first_render: Option<SimTime>,
    /// Time of the most recent rendered frame.
    pub last_render: Option<SimTime>,
}

impl RenderStats {
    fn record(&mut self, frame: &RenderedFrame) {
        self.frames += 1;
        self.bytes += frame.size as u64;
        if frame.keyframe {
            self.keyframes += 1;
        }
        self.resolution_line_sum += u64::from(frame.resolution_lines);
        if self.first_render.is_none() {
            self.first_render = Some(frame.rendered_at);
        }
        self.last_render = Some(frame.rendered_at);
    }

    /// Merge another aggregate into this one (for per-source rollups).
    pub fn merge(&mut self, other: &RenderStats) {
        self.frames += other.frames;
        self.bytes += other.bytes;
        self.keyframes += other.keyframes;
        self.resolution_line_sum += other.resolution_line_sum;
        self.first_render = match (self.first_render, other.first_render) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_render = match (self.last_render, other.last_render) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Output of feeding a packet into the receiver.
#[derive(Debug, Default)]
pub struct ReceiverOutput {
    /// Frames that became renderable, in order.
    pub rendered: Vec<RenderedFrame>,
    /// Sequence numbers that should be NACKed now.
    pub nacks: Vec<u16>,
    /// True if the receiver is stuck waiting for a keyframe (the publisher
    /// should be asked for one if this persists).
    pub needs_keyframe: bool,
}

#[derive(Debug)]
struct PartialFrame {
    header: FragmentHeader,
    received: Vec<bool>,
    bytes: usize,
    first_seen: SimTime,
}

/// Per-stream receive state.
#[derive(Debug)]
pub struct StreamReceiver {
    ssrc: Ssrc,
    /// Highest sequence seen (for gap detection).
    highest_seq: Option<u16>,
    /// Sequence numbers detected missing and not yet received, with the
    /// time each was first missed and how many times it was NACKed.
    missing: BTreeMap<u16, (SimTime, u8)>,
    /// Frames being assembled.
    partial: BTreeMap<u64, PartialFrame>,
    /// Next frame we are allowed to decode (`None` = wait for any keyframe).
    next_decodable: Option<u64>,
    /// Completed frames waiting on decode order.
    ready: BTreeMap<u64, RenderedFrame>,
    /// Constant-size render aggregates (for metrics).
    stats: RenderStats,
    /// Retransmit a NACK if the packet is still missing after this long.
    nack_retry: SimDuration,
    /// Give up on a packet after this many NACKs and wait for a keyframe.
    max_nacks: u8,
    /// Accumulated decode/render work units.
    work_units: f64,
    /// Total packets received (including retransmissions).
    pub packets_received: u64,
}

impl StreamReceiver {
    /// Create a receiver for one stream.
    pub fn new(ssrc: Ssrc) -> Self {
        StreamReceiver {
            ssrc,
            highest_seq: None,
            missing: BTreeMap::new(),
            partial: BTreeMap::new(),
            next_decodable: None,
            ready: BTreeMap::new(),
            stats: RenderStats::default(),
            nack_retry: SimDuration::from_millis(100),
            max_nacks: 3,
            work_units: 0.0,
            packets_received: 0,
        }
    }

    /// The stream this receiver tracks.
    pub fn ssrc(&self) -> Ssrc {
        self.ssrc
    }

    /// Feed an arriving RTP packet.
    pub fn on_packet(&mut self, now: SimTime, packet: &RtpPacket) -> ReceiverOutput {
        let mut out = ReceiverOutput::default();
        if packet.ssrc != self.ssrc {
            return out;
        }
        self.packets_received += 1;
        self.work_units += crate::cost::PACKET_COST;

        // Gap detection against the highest sequence seen.
        match self.highest_seq {
            None => self.highest_seq = Some(packet.sequence),
            Some(h) if seq_newer(packet.sequence, h) => {
                let mut s = h.wrapping_add(1);
                while s != packet.sequence {
                    self.missing.insert(s, (now, 0));
                    s = s.wrapping_add(1);
                }
                self.highest_seq = Some(packet.sequence);
            }
            Some(_) => {
                // A retransmission or reordering fills a hole.
                self.missing.remove(&packet.sequence);
            }
        }

        let Some(header) = FragmentHeader::parse(&packet.payload) else {
            return out;
        };

        // Assemble the frame.
        let entry = self.partial.entry(header.frame_id).or_insert_with(|| PartialFrame {
            header,
            received: vec![false; header.frag_count as usize],
            bytes: 0,
            first_seen: now,
        });
        let idx = header.frag_index as usize;
        if idx < entry.received.len() && !entry.received[idx] {
            entry.received[idx] = true;
            entry.bytes += packet.payload.len() - crate::frame::FRAG_HEADER_LEN;
        }
        if entry.received.iter().all(|&r| r) {
            let frame = RenderedFrame {
                frame_id: header.frame_id,
                rendered_at: now,
                resolution_lines: entry.header.resolution_lines,
                size: entry.bytes,
                keyframe: entry.header.keyframe,
            };
            self.partial.remove(&header.frame_id);
            self.ready.insert(frame.frame_id, frame);
            self.drain_ready(now, &mut out);
        }

        // Emit NACKs for fresh or stale-enough gaps.
        self.collect_nacks(now, &mut out);
        out
    }

    /// Periodic poll: retries NACKs, expires stale state, reports keyframe
    /// need. Call every few tens of milliseconds.
    pub fn poll(&mut self, now: SimTime) -> ReceiverOutput {
        let mut out = ReceiverOutput::default();
        self.collect_nacks(now, &mut out);

        // Drop partial frames that can never complete (their packets were
        // abandoned) and frames that predate the decode horizon.
        let abandoned: Vec<u64> = self
            .partial
            .iter()
            .filter(|(_, p)| now.saturating_since(p.first_seen) > SimDuration::from_secs(2))
            .map(|(&id, _)| id)
            .collect();
        for id in abandoned {
            self.partial.remove(&id);
            // We lost a frame for good: freeze until the next keyframe.
            self.next_decodable = None;
            out.needs_keyframe = true;
        }
        self.drain_ready(now, &mut out);
        out
    }

    fn collect_nacks(&mut self, now: SimTime, out: &mut ReceiverOutput) {
        let mut gave_up = false;
        let retry = self.nack_retry;
        let max = self.max_nacks;
        let mut to_remove = Vec::new();
        for (&seq, entry) in self.missing.iter_mut() {
            let (since, count) = *entry;
            if count == 0 || now.saturating_since(since) >= retry {
                if count >= max {
                    to_remove.push(seq);
                    gave_up = true;
                } else {
                    out.nacks.push(seq);
                    *entry = (now, count + 1);
                }
            }
        }
        for seq in to_remove {
            self.missing.remove(&seq);
        }
        if gave_up {
            self.next_decodable = None;
            out.needs_keyframe = true;
        }
    }

    fn drain_ready(&mut self, _now: SimTime, out: &mut ReceiverOutput) {
        loop {
            // When frozen (no decodable successor), resume at the earliest
            // complete keyframe, discarding anything older.
            if self.next_decodable.is_none() {
                let Some(kid) = self.ready.iter().find(|(_, f)| f.keyframe).map(|(&id, _)| id)
                else {
                    break;
                };
                let stale: Vec<u64> = self.ready.range(..kid).map(|(&id, _)| id).collect();
                for id in stale {
                    self.ready.remove(&id);
                }
                self.next_decodable = Some(kid);
            }
            let next = self.next_decodable.expect("set above");
            // Frames older than the decode horizon can never render.
            let stale: Vec<u64> = self.ready.range(..next).map(|(&id, _)| id).collect();
            for id in stale {
                self.ready.remove(&id);
            }
            // Render strictly in decode order; a delayed predecessor (e.g.
            // awaiting retransmission) blocks its successors.
            let Some(frame) = self.ready.remove(&next) else { break };
            self.next_decodable = Some(next + 1);
            self.work_units += crate::cost::decode_cost(frame.resolution_lines)
                + crate::cost::RENDER_COST_PER_FRAME;
            self.stats.record(&frame);
            out.rendered.push(frame);
        }
    }

    /// Running aggregates over everything rendered so far. The frames
    /// themselves are handed out exactly once via
    /// [`ReceiverOutput::rendered`]; only these aggregates persist.
    pub fn render_stats(&self) -> RenderStats {
        self.stats
    }

    /// Drain the aggregates: returns the counts accumulated since the last
    /// drain and resets them, so a periodic metrics snapshot can feed
    /// counters without double-counting.
    pub fn take_render_stats(&mut self) -> RenderStats {
        std::mem::take(&mut self.stats)
    }

    /// Accumulated decode/render work units.
    pub fn work_units(&self) -> f64 {
        self.work_units
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, LayerConfig, SimulcastEncoder};
    use crate::frame::packetize;
    use gso_util::{Bitrate, DetRng};

    fn make_stream(seconds: u64, kbps: u64) -> Vec<RtpPacket> {
        let mut enc = SimulcastEncoder::new(
            EncoderConfig::default(),
            vec![LayerConfig {
                ssrc: Ssrc(1),
                resolution_lines: 360,
                target: Bitrate::from_kbps(kbps),
            }],
            DetRng::derive(3, "recv-test"),
        );
        let mut seq = 0u16;
        let mut packets = Vec::new();
        let dt = enc.frame_interval();
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(seconds) {
            for f in enc.tick(t) {
                packets.extend(packetize(&f, &mut seq, 96));
            }
            t += dt;
        }
        packets
    }

    #[test]
    fn clean_stream_renders_every_frame() {
        let packets = make_stream(2, 600);
        let mut rx = StreamReceiver::new(Ssrc(1));
        let mut rendered = Vec::new();
        for (i, p) in packets.iter().enumerate() {
            let out = rx.on_packet(SimTime::from_millis(i as u64 * 5), p);
            rendered.extend(out.rendered);
            assert!(out.nacks.is_empty());
        }
        assert_eq!(rendered.len(), 30, "2 s at 15 fps");
        // Frames render in order.
        let ids: Vec<u64> = rendered.iter().map(|f| f.frame_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        // The aggregates agree with the drained frames.
        let stats = rx.render_stats();
        assert_eq!(stats.frames, 30);
        assert_eq!(stats.bytes, rendered.iter().map(|f| f.size as u64).sum::<u64>());
        assert_eq!(stats.keyframes, rendered.iter().filter(|f| f.keyframe).count() as u64);
        assert_eq!(stats.first_render, Some(rendered[0].rendered_at));
        assert_eq!(stats.last_render, Some(rendered[29].rendered_at));
    }

    #[test]
    fn missing_packet_triggers_nack_and_blocks_decode() {
        let packets = make_stream(1, 1500);
        // Find a multi-fragment frame and drop its middle packet.
        let victim = packets
            .iter()
            .position(|p| {
                let h = FragmentHeader::parse(&p.payload).unwrap();
                h.frag_count > 1 && h.frag_index == 1 && h.frame_id > 0
            })
            .expect("stream has multi-fragment frames");
        let mut rx = StreamReceiver::new(Ssrc(1));
        let mut nacked = Vec::new();
        let mut rendered = Vec::new();
        for (i, p) in packets.iter().enumerate() {
            if i == victim {
                continue;
            }
            let out = rx.on_packet(SimTime::from_millis(i as u64), p);
            nacked.extend(out.nacks);
            rendered.extend(out.rendered);
        }
        assert!(nacked.contains(&packets[victim].sequence));
        // The victim frame and everything after it is stuck.
        let victim_frame = FragmentHeader::parse(&packets[victim].payload).unwrap().frame_id;
        assert!(rendered.iter().all(|f| f.frame_id < victim_frame));
        // Retransmission unblocks the pipeline.
        let out = rx.on_packet(SimTime::from_secs(2), &packets[victim]);
        assert!(out.rendered.iter().any(|f| f.frame_id == victim_frame));
        assert!(out.rendered.len() > 1, "queued frames drain after repair");
    }

    #[test]
    fn keyframe_recovers_from_unrepaired_loss() {
        let packets = make_stream(5, 400); // single-fragment frames mostly
        let mut rx = StreamReceiver::new(Ssrc(1));
        let mut rendered = Vec::new();
        for (i, p) in packets.iter().enumerate() {
            // Drop everything in "frame 10..15" region once.
            let h = FragmentHeader::parse(&p.payload).unwrap();
            if (10..15).contains(&h.frame_id) {
                continue;
            }
            let t = SimTime::from_millis(66 * i as u64);
            rendered.extend(rx.on_packet(t, p).rendered);
            // Poll occasionally to expire NACKs.
            rendered.extend(rx.poll(t).rendered);
        }
        assert!(rendered.iter().any(|f| f.frame_id >= 15), "a later keyframe must resume playback");
        // Frames 10..15 never rendered.
        assert!(rendered.iter().all(|f| !(10..15).contains(&f.frame_id)));
    }

    #[test]
    fn nack_retries_then_gives_up() {
        let packets = make_stream(1, 300);
        let mut rx = StreamReceiver::new(Ssrc(1));
        // Deliver first and third packets, skipping the second.
        rx.on_packet(SimTime::ZERO, &packets[0]);
        let out = rx.on_packet(SimTime::from_millis(10), &packets[2]);
        assert_eq!(out.nacks, vec![packets[1].sequence]);
        // Polls beyond the retry interval re-NACK up to the limit.
        let mut total_nacks = 1;
        let mut needs_key = false;
        for ms in (200..2000).step_by(150) {
            let out = rx.poll(SimTime::from_millis(ms));
            total_nacks += out.nacks.len();
            needs_key |= out.needs_keyframe;
        }
        assert_eq!(total_nacks, 3, "initial NACK + retries up to max_nacks");
        assert!(needs_key, "after giving up, a keyframe is requested");
    }

    #[test]
    fn wrong_ssrc_ignored() {
        let packets = make_stream(1, 300);
        let mut rx = StreamReceiver::new(Ssrc(2));
        let out = rx.on_packet(SimTime::ZERO, &packets[0]);
        assert!(out.rendered.is_empty());
        assert_eq!(rx.packets_received, 0);
    }

    #[test]
    fn duplicate_packets_are_idempotent() {
        let packets = make_stream(1, 300);
        let mut rx = StreamReceiver::new(Ssrc(1));
        rx.on_packet(SimTime::ZERO, &packets[0]);
        let n = rx.render_stats().frames;
        rx.on_packet(SimTime::from_millis(1), &packets[0]);
        assert_eq!(rx.render_stats().frames, n, "duplicate must not double-render");
    }

    #[test]
    fn take_render_stats_drains_without_double_counting() {
        let packets = make_stream(2, 600);
        let mut rx = StreamReceiver::new(Ssrc(1));
        let mid = packets.len() / 2;
        for (i, p) in packets[..mid].iter().enumerate() {
            rx.on_packet(SimTime::from_millis(i as u64 * 5), p);
        }
        let first = rx.take_render_stats();
        assert!(first.frames > 0);
        assert_eq!(rx.render_stats(), RenderStats::default(), "drained");
        for (i, p) in packets[mid..].iter().enumerate() {
            rx.on_packet(SimTime::from_millis((mid + i) as u64 * 5), p);
        }
        let second = rx.take_render_stats();
        assert_eq!(first.frames + second.frames, 30, "no loss, no double count");
        let mut merged = first;
        merged.merge(&second);
        assert_eq!(merged.frames, 30);
        assert_eq!(merged.first_render, first.first_render);
        assert_eq!(merged.last_render, second.last_render);
    }
}
