//! Encoded frames and their packetization into RTP.
//!
//! The simulator does not encode pixels; an [`EncodedFrame`] carries only
//! the attributes that matter to transport and QoE — size, keyframe flag,
//! resolution, capture time. Frames are fragmented into MTU-sized RTP
//! packets whose payloads begin with a small fragment header so the receiver
//! can reassemble without codec knowledge.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gso_rtp::RtpPacket;
use gso_util::{SimTime, Ssrc};

/// Payload bytes available per RTP packet (1200-byte MTU minus RTP header).
pub const MTU_PAYLOAD: usize = 1188;

/// Size of the fragment header at the start of every payload.
pub const FRAG_HEADER_LEN: usize = 16;

/// RTP clock rate used for video timestamps (90 kHz, the RTP convention).
pub const VIDEO_CLOCK_HZ: u64 = 90_000;

/// One encoded video frame, pre-packetization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedFrame {
    /// The simulcast layer that produced it.
    pub ssrc: Ssrc,
    /// Monotone per-layer frame counter.
    pub frame_id: u64,
    /// True for intra (key) frames, which decode without a predecessor.
    pub keyframe: bool,
    /// Encoded size in bytes.
    pub size: usize,
    /// Vertical resolution in lines.
    pub resolution_lines: u16,
    /// Capture timestamp.
    pub captured_at: SimTime,
}

/// The fragment header carried at the start of each payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentHeader {
    /// Frame the fragment belongs to.
    pub frame_id: u64,
    /// Index of this fragment within the frame.
    pub frag_index: u16,
    /// Total fragments in the frame.
    pub frag_count: u16,
    /// Keyframe flag.
    pub keyframe: bool,
    /// Resolution in lines (carried so receivers can track quality).
    pub resolution_lines: u16,
}

impl FragmentHeader {
    /// Serialize into the first [`FRAG_HEADER_LEN`] bytes of a payload.
    pub fn write(&self, b: &mut BytesMut) {
        b.put_u64(self.frame_id);
        b.put_u16(self.frag_index);
        b.put_u16(self.frag_count);
        b.put_u8(u8::from(self.keyframe));
        b.put_u16(self.resolution_lines);
        b.put_u8(0); // reserved
    }

    /// Parse from the front of a payload; `None` if too short.
    pub fn parse(payload: &[u8]) -> Option<FragmentHeader> {
        if payload.len() < FRAG_HEADER_LEN {
            return None;
        }
        let mut b = payload;
        let frame_id = b.get_u64();
        let frag_index = b.get_u16();
        let frag_count = b.get_u16();
        let keyframe = b.get_u8() != 0;
        let resolution_lines = b.get_u16();
        Some(FragmentHeader { frame_id, frag_index, frag_count, keyframe, resolution_lines })
    }
}

/// Fragment an encoded frame into RTP packets.
///
/// `next_seq` is the per-SSRC sequence counter, advanced by the number of
/// packets produced. The RTP marker bit is set on the final fragment, per
/// video RTP convention.
pub fn packetize(frame: &EncodedFrame, next_seq: &mut u16, payload_type: u8) -> Vec<RtpPacket> {
    let data_per_packet = MTU_PAYLOAD - FRAG_HEADER_LEN;
    let frag_count = frame.size.div_ceil(data_per_packet).max(1) as u16;
    let timestamp = ((frame.captured_at.as_micros() * VIDEO_CLOCK_HZ) / 1_000_000) as u32;
    let mut packets = Vec::with_capacity(frag_count as usize);
    let mut remaining = frame.size;
    for i in 0..frag_count {
        let chunk = remaining.min(data_per_packet);
        remaining -= chunk;
        let mut payload = BytesMut::with_capacity(FRAG_HEADER_LEN + chunk);
        FragmentHeader {
            frame_id: frame.frame_id,
            frag_index: i,
            frag_count,
            keyframe: frame.keyframe,
            resolution_lines: frame.resolution_lines,
        }
        .write(&mut payload);
        payload.resize(FRAG_HEADER_LEN + chunk, 0);
        packets.push(RtpPacket {
            marker: i + 1 == frag_count,
            payload_type,
            sequence: *next_seq,
            timestamp,
            ssrc: frame.ssrc,
            payload: payload.freeze(),
        });
        *next_seq = next_seq.wrapping_add(1);
    }
    packets
}

/// Total wire bytes (RTP headers included) of a packetized frame; used by
/// rate accounting without materializing packets.
pub fn packetized_size(frame_size: usize) -> usize {
    let data_per_packet = MTU_PAYLOAD - FRAG_HEADER_LEN;
    let frags = frame_size.div_ceil(data_per_packet).max(1);
    frame_size + frags * (FRAG_HEADER_LEN + gso_rtp::RTP_HEADER_LEN)
}

/// Extract the payload bytes of a packet as a `Bytes` for reassembly.
pub fn payload_bytes(packet: &RtpPacket) -> Bytes {
    packet.payload.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(size: usize) -> EncodedFrame {
        EncodedFrame {
            ssrc: Ssrc(7),
            frame_id: 3,
            keyframe: true,
            size,
            resolution_lines: 720,
            captured_at: SimTime::from_millis(500),
        }
    }

    #[test]
    fn small_frame_single_packet() {
        let mut seq = 100;
        let pkts = packetize(&frame(500), &mut seq, 96);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].marker);
        assert_eq!(pkts[0].sequence, 100);
        assert_eq!(seq, 101);
        let h = FragmentHeader::parse(&pkts[0].payload).unwrap();
        assert_eq!(h.frag_count, 1);
        assert!(h.keyframe);
        assert_eq!(h.resolution_lines, 720);
        assert_eq!(pkts[0].payload.len(), FRAG_HEADER_LEN + 500);
    }

    #[test]
    fn large_frame_fragments_with_marker_on_last() {
        let size = 5000;
        let mut seq = 0;
        let pkts = packetize(&frame(size), &mut seq, 96);
        let per = MTU_PAYLOAD - FRAG_HEADER_LEN;
        assert_eq!(pkts.len(), size.div_ceil(per));
        assert!(pkts.iter().rev().skip(1).all(|p| !p.marker));
        assert!(pkts.last().unwrap().marker);
        // Sequence numbers are consecutive.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.sequence as usize, i);
        }
        // Total payload data (minus headers) equals the frame size.
        let data: usize = pkts.iter().map(|p| p.payload.len() - FRAG_HEADER_LEN).sum();
        assert_eq!(data, size);
    }

    #[test]
    fn header_roundtrip() {
        let h = FragmentHeader {
            frame_id: u64::MAX - 1,
            frag_index: 9,
            frag_count: 10,
            keyframe: false,
            resolution_lines: 360,
        };
        let mut b = BytesMut::new();
        h.write(&mut b);
        assert_eq!(b.len(), FRAG_HEADER_LEN);
        assert_eq!(FragmentHeader::parse(&b).unwrap(), h);
        assert!(FragmentHeader::parse(&b[..10]).is_none());
    }

    #[test]
    fn timestamps_use_90khz_clock() {
        let mut seq = 0;
        let pkts = packetize(&frame(10), &mut seq, 96);
        // 500 ms at 90 kHz = 45 000 ticks.
        assert_eq!(pkts[0].timestamp, 45_000);
    }

    #[test]
    fn zero_size_frame_still_emits_one_packet() {
        let mut seq = 0;
        let pkts = packetize(&frame(0), &mut seq, 96);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload.len(), FRAG_HEADER_LEN);
    }

    #[test]
    fn packetized_size_accounts_headers() {
        let per = MTU_PAYLOAD - FRAG_HEADER_LEN;
        assert_eq!(
            packetized_size(per * 2),
            per * 2 + 2 * (FRAG_HEADER_LEN + gso_rtp::RTP_HEADER_LEN)
        );
    }

    #[test]
    fn seq_wraps_across_frames() {
        let mut seq = u16::MAX;
        let pkts = packetize(&frame(3000), &mut seq, 96);
        assert_eq!(pkts[0].sequence, u16::MAX);
        assert_eq!(pkts[1].sequence, 0);
    }
}
