//! Audio source.
//!
//! Audio is not orchestrated by GSO (§5: "pure audio communication is not
//! handled by GSO-Simulcast"), but it shares links with video, which is why
//! the controller subtracts a protection bandwidth before allocating video
//! (§7 "Protecting audios") — and why reduced video congestion improves
//! voice stalls (§6). The source emits constant-bitrate 20 ms frames.

use gso_rtp::RtpPacket;
use gso_util::{Bitrate, SimDuration, SimTime, Ssrc};

/// Audio frame cadence (one packet per 20 ms, the Opus default).
pub const AUDIO_FRAME_INTERVAL: SimDuration = SimDuration::from_millis(20);

/// Default audio bitrate.
pub const AUDIO_BITRATE: Bitrate = Bitrate::from_kbps(24);

/// Bandwidth headroom reserved for audio + control when allocating video
/// (§7 "Protecting audios"): audio itself plus RTCP and retransmissions.
pub const AUDIO_PROTECTION: Bitrate = Bitrate::from_kbps(50);

/// A constant-bitrate audio packet source.
#[derive(Debug)]
pub struct AudioSource {
    ssrc: Ssrc,
    next_seq: u16,
    payload_type: u8,
    frame_bytes: usize,
    work_units: f64,
}

impl AudioSource {
    /// Create a source at [`AUDIO_BITRATE`].
    pub fn new(ssrc: Ssrc, payload_type: u8) -> Self {
        let frame_bytes =
            (AUDIO_BITRATE.as_bps() as f64 / 8.0 * AUDIO_FRAME_INTERVAL.as_secs_f64()) as usize;
        AudioSource { ssrc, next_seq: 0, payload_type, frame_bytes, work_units: 0.0 }
    }

    /// The packet cadence.
    pub fn frame_interval(&self) -> SimDuration {
        AUDIO_FRAME_INTERVAL
    }

    /// Produce the packet for this tick.
    pub fn tick(&mut self, now: SimTime) -> RtpPacket {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.work_units += crate::cost::AUDIO_FRAME_COST;
        RtpPacket {
            marker: false,
            payload_type: self.payload_type,
            sequence: seq,
            timestamp: (now.as_micros() * 48 / 1_000) as u32, // 48 kHz clock
            ssrc: self.ssrc,
            payload: bytes::Bytes::from(vec![0u8; self.frame_bytes]),
        }
    }

    /// Accumulated encode work units.
    pub fn work_units(&self) -> f64 {
        self.work_units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_packets_at_cadence() {
        let mut src = AudioSource::new(Ssrc(9), 111);
        let p0 = src.tick(SimTime::ZERO);
        let p1 = src.tick(SimTime::from_millis(20));
        assert_eq!(p0.sequence, 0);
        assert_eq!(p1.sequence, 1);
        assert_eq!(p0.ssrc, Ssrc(9));
        // 24 kbps × 20 ms = 60 bytes.
        assert_eq!(p0.payload.len(), 60);
        assert_eq!(p1.timestamp - p0.timestamp, 960); // 20 ms at 48 kHz
    }

    #[test]
    fn sequence_wraps() {
        let mut src = AudioSource::new(Ssrc(9), 111);
        src.next_seq = u16::MAX;
        let a = src.tick(SimTime::ZERO);
        let b = src.tick(SimTime::from_millis(20));
        assert_eq!(a.sequence, u16::MAX);
        assert_eq!(b.sequence, 0);
    }

    #[test]
    fn rate_matches_constant() {
        let mut src = AudioSource::new(Ssrc(1), 111);
        let mut bytes = 0usize;
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(10) {
            bytes += src.tick(t).payload.len();
            t += src.frame_interval();
        }
        let rate = bytes as f64 * 8.0 / 10.0;
        assert!((rate - 24_000.0).abs() < 500.0, "rate {rate}");
    }
}
