//! QoE metric trackers, matching the paper's definitions.
//!
//! * **Video stall** (footnote 9): the percentage of playback intervals in
//!   which the maximum delay between two consecutive frames exceeds 200 ms.
//! * **Voice stall** (footnote 10): the percentage of audio playback
//!   intervals whose packet loss exceeds 10 %.
//! * **Framerate**: rendered frames per second of session time.

use gso_util::{SimDuration, SimTime};

/// Interval length over which stalls are assessed (1 s playback intervals).
pub const PLAYBACK_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// Inter-frame gap that constitutes a video stall.
pub const VIDEO_STALL_GAP: SimDuration = SimDuration::from_millis(200);

/// Packet-loss fraction that constitutes a voice stall in an interval.
pub const VOICE_STALL_LOSS: f64 = 0.10;

/// Tracks video stalls and framerate from frame render times.
#[derive(Debug, Clone)]
pub struct VideoPlayback {
    start: SimTime,
    last_render: Option<SimTime>,
    frames: u64,
    /// Max inter-frame gap observed per playback interval, indexed by
    /// interval number.
    interval_max_gap: Vec<SimDuration>,
}

impl VideoPlayback {
    /// Begin tracking at session start.
    pub fn new(start: SimTime) -> Self {
        VideoPlayback { start, last_render: None, frames: 0, interval_max_gap: Vec::new() }
    }

    fn interval_index(&self, t: SimTime) -> usize {
        (t.saturating_since(self.start).as_micros() / PLAYBACK_INTERVAL.as_micros()) as usize
    }

    fn bump_gap(&mut self, idx: usize, gap: SimDuration) {
        if self.interval_max_gap.len() <= idx {
            self.interval_max_gap.resize(idx + 1, SimDuration::ZERO);
        }
        if gap > self.interval_max_gap[idx] {
            self.interval_max_gap[idx] = gap;
        }
    }

    /// Gap that would be recorded if a frame rendered at `at` (for debug).
    pub fn pending_gap(&self, at: SimTime) -> SimDuration {
        at.saturating_since(self.last_render.unwrap_or(self.start))
    }

    /// Record a rendered frame.
    pub fn on_frame(&mut self, rendered_at: SimTime) {
        self.frames += 1;
        let reference = self.last_render.unwrap_or(self.start);
        let gap = rendered_at.saturating_since(reference);
        // Attribute the gap to the interval where it *ends* (where the
        // stall is perceived).
        let idx = self.interval_index(rendered_at);
        self.bump_gap(idx, gap);
        self.last_render = Some(rendered_at);
    }

    /// Close the session at `end`, extending a trailing freeze to the end.
    fn finalize_gaps(&self, end: SimTime) -> Vec<SimDuration> {
        let mut gaps = self.interval_max_gap.clone();
        let last = self.last_render.unwrap_or(self.start);
        let tail_gap = end.saturating_since(last);
        let end_idx = self.interval_index(end).max(1) - 1;
        if gaps.len() <= end_idx {
            gaps.resize(end_idx + 1, SimDuration::ZERO);
        }
        // A trailing freeze stalls every interval it spans.
        if tail_gap > VIDEO_STALL_GAP {
            let from = self.interval_index(last);
            for g in gaps.iter_mut().skip(from) {
                if tail_gap > *g {
                    *g = tail_gap;
                }
            }
        }
        gaps
    }

    /// Fraction of playback intervals containing a stall, in [0, 1].
    pub fn stall_rate(&self, end: SimTime) -> f64 {
        let gaps = self.finalize_gaps(end);
        if gaps.is_empty() {
            return 0.0;
        }
        let stalled = gaps.iter().filter(|&&g| g > VIDEO_STALL_GAP).count();
        stalled as f64 / gaps.len() as f64
    }

    /// Average rendered framerate over the session.
    pub fn framerate(&self, end: SimTime) -> f64 {
        let secs = end.saturating_since(self.start).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.frames as f64 / secs
        }
    }

    /// Total frames rendered.
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

/// Tracks voice stalls from per-packet sequence numbers.
#[derive(Debug, Clone)]
pub struct VoicePlayback {
    start: SimTime,
    /// (received, expected-est) per interval.
    intervals: Vec<(u64, u64)>,
    highest_seq: Option<u16>,
}

impl VoicePlayback {
    /// Begin tracking at session start.
    pub fn new(start: SimTime) -> Self {
        VoicePlayback { start, intervals: Vec::new(), highest_seq: None }
    }

    fn interval_index(&self, t: SimTime) -> usize {
        (t.saturating_since(self.start).as_micros() / PLAYBACK_INTERVAL.as_micros()) as usize
    }

    /// Record an arriving audio packet with its RTP sequence number.
    pub fn on_packet(&mut self, now: SimTime, seq: u16) {
        let idx = self.interval_index(now);
        if self.intervals.len() <= idx {
            self.intervals.resize(idx + 1, (0, 0));
        }
        self.intervals[idx].0 += 1;
        // Expected packets derived from sequence advancement: a jump of k
        // means k packets should have landed in this interval region.
        let advance = match self.highest_seq {
            None => 1,
            Some(h) => {
                let d = seq.wrapping_sub(h);
                if d == 0 || d >= 0x8000 {
                    0 // duplicate or reordered; already counted
                } else {
                    u64::from(d)
                }
            }
        };
        if advance > 0 {
            self.highest_seq = Some(seq);
            self.intervals[idx].1 += advance;
        }
    }

    /// Fraction of intervals whose loss exceeded [`VOICE_STALL_LOSS`].
    pub fn stall_rate(&self, end: SimTime) -> f64 {
        let n_intervals = self.interval_index(end).max(1);
        let mut stalled = 0usize;
        for i in 0..n_intervals {
            let (recv, expect) = self.intervals.get(i).copied().unwrap_or((0, 0));
            // An interval with no packets at all while the session ran is a
            // total outage — count it as stalled.
            if expect == 0 && recv == 0 {
                stalled += 1;
                continue;
            }
            let expect = expect.max(recv);
            let loss = 1.0 - recv as f64 / expect.max(1) as f64;
            if loss > VOICE_STALL_LOSS {
                stalled += 1;
            }
        }
        stalled as f64 / n_intervals as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn smooth_video_has_no_stalls() {
        let mut v = VideoPlayback::new(SimTime::ZERO);
        for i in 0..150 {
            v.on_frame(t(i * 66)); // ~15 fps for ~10 s
        }
        let end = t(10_000);
        assert_eq!(v.stall_rate(end), 0.0);
        assert!((v.framerate(end) - 15.0).abs() < 0.5);
    }

    #[test]
    fn single_long_gap_stalls_one_interval() {
        let mut v = VideoPlayback::new(SimTime::ZERO);
        for i in 0..15 {
            v.on_frame(t(i * 66));
        }
        // 400 ms freeze inside interval 1.
        v.on_frame(t(1_400));
        for i in 0..54 {
            v.on_frame(t(1_466 + i * 66));
        }
        let end = t(5_000);
        let rate = v.stall_rate(end);
        assert!((rate - 0.2).abs() < 1e-9, "1 of 5 intervals stalled, got {rate}");
    }

    #[test]
    fn trailing_freeze_counts_to_end() {
        let mut v = VideoPlayback::new(SimTime::ZERO);
        v.on_frame(t(100));
        // Nothing more until the 5 s mark: intervals 0..5 all stalled.
        let rate = v.stall_rate(t(5_000));
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn no_frames_at_all_is_fully_stalled() {
        let v = VideoPlayback::new(SimTime::ZERO);
        assert_eq!(v.stall_rate(t(3_000)), 1.0);
        assert_eq!(v.framerate(t(3_000)), 0.0);
    }

    #[test]
    fn voice_clean_stream_no_stalls() {
        let mut a = VoicePlayback::new(SimTime::ZERO);
        for i in 0..500u64 {
            a.on_packet(t(i * 20), i as u16); // 50 pkt/s for 10 s
        }
        assert_eq!(a.stall_rate(t(10_000)), 0.0);
    }

    #[test]
    fn voice_loss_above_threshold_stalls_interval() {
        let mut a = VoicePlayback::new(SimTime::ZERO);
        let mut seq = 0u16;
        for i in 0..500u64 {
            let in_second_interval = (1_000..2_000).contains(&(i * 20));
            seq = seq.wrapping_add(1);
            // Drop 20 % of packets in interval 1 only.
            if in_second_interval && i % 5 == 0 {
                continue;
            }
            a.on_packet(t(i * 20), seq);
        }
        let rate = a.stall_rate(t(10_000));
        assert!((rate - 0.1).abs() < 1e-9, "1 of 10 intervals stalled, got {rate}");
    }

    #[test]
    fn voice_total_outage_interval_counts() {
        let mut a = VoicePlayback::new(SimTime::ZERO);
        a.on_packet(t(100), 1);
        // Session runs 3 s but audio dies after the first interval.
        let rate = a.stall_rate(t(3_000));
        assert!(rate >= 2.0 / 3.0 - 1e-9, "dead intervals must stall, got {rate}");
    }
}
