//! The simulcast encoder bank.
//!
//! A publisher runs one encoder per simulcast layer (resolution), each with
//! its own SSRC (§4.2). The controller reconfigures layers via GTMB
//! feedback: setting a layer's target bitrate, or disabling it entirely with
//! a zero bitrate — the mechanism behind "the controller will inform the
//! publisher to stop pushing that stream" (Fig. 3d).
//!
//! Frame sizes track the target bitrate with small log-normal variation and
//! periodically larger keyframes, reproducing the burstiness that makes
//! rate/capacity mismatches cause queueing in the network simulator.

use crate::frame::EncodedFrame;
use gso_util::{Bitrate, DetRng, SimDuration, SimTime, Ssrc};

/// Static configuration of one simulcast layer.
#[derive(Debug, Clone)]
pub struct LayerConfig {
    /// The layer's SSRC (one per resolution, per §4.2).
    pub ssrc: Ssrc,
    /// Vertical resolution in lines.
    pub resolution_lines: u16,
    /// Initial target bitrate; zero starts the layer disabled.
    pub target: Bitrate,
}

/// Encoder-wide configuration.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Frames per second produced by every enabled layer.
    pub fps: f64,
    /// Interval between keyframes.
    pub keyframe_interval: SimDuration,
    /// Size multiplier of a keyframe relative to a delta frame.
    pub keyframe_gain: f64,
    /// Standard deviation of per-frame size variation (fraction of mean).
    pub size_jitter: f64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            fps: 15.0,
            // Conferencing encoders use long GoPs with smoothed intra
            // refresh; a 3 s cadence with a modest keyframe gain keeps the
            // bursts small enough not to destabilize a well-fitted link.
            keyframe_interval: SimDuration::from_secs(3),
            keyframe_gain: 2.0,
            size_jitter: 0.08,
        }
    }
}

#[derive(Debug)]
struct Layer {
    ssrc: Ssrc,
    resolution_lines: u16,
    target: Bitrate,
    next_frame_id: u64,
    /// Keyframe phase offset so sibling layers do not all produce their
    /// (larger) keyframes in the same tick — the combined burst would
    /// needlessly spike the uplink queue.
    keyframe_phase: SimDuration,
    last_keyframe: Option<SimTime>,
    /// Rate-control debt: bytes over/under target so far, fed back into the
    /// next frame's size so the long-run average matches the target.
    byte_debt: f64,
    force_keyframe: bool,
}

/// A bank of per-layer encoders for one video source.
#[derive(Debug)]
pub struct SimulcastEncoder {
    cfg: EncoderConfig,
    layers: Vec<Layer>,
    rng: DetRng,
    /// Accumulated encode work units (see [`crate::cost`]).
    work_units: f64,
}

impl SimulcastEncoder {
    /// Build an encoder bank. Layers with a zero initial target start
    /// disabled.
    pub fn new(cfg: EncoderConfig, layers: Vec<LayerConfig>, rng: DetRng) -> Self {
        let n = layers.len().max(1) as u64;
        let layers = layers
            .into_iter()
            .enumerate()
            .map(|(i, l)| Layer {
                ssrc: l.ssrc,
                resolution_lines: l.resolution_lines,
                target: l.target,
                next_frame_id: 0,
                keyframe_phase: cfg.keyframe_interval * i as u64 / n,
                last_keyframe: None,
                byte_debt: 0.0,
                force_keyframe: false,
            })
            .collect();
        SimulcastEncoder { cfg, layers, rng, work_units: 0.0 }
    }

    /// The frame production interval.
    pub fn frame_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.cfg.fps)
    }

    /// Set a layer's target bitrate; zero disables it (GTMB semantics).
    /// Returns true if the SSRC matched a layer.
    pub fn set_layer_rate(&mut self, ssrc: Ssrc, target: Bitrate) -> bool {
        match self.layers.iter_mut().find(|l| l.ssrc == ssrc) {
            Some(l) => {
                let was_off = l.target.is_zero();
                l.target = target;
                if was_off && !target.is_zero() {
                    // A re-enabled layer must start with a keyframe so
                    // subscribers can decode immediately.
                    l.force_keyframe = true;
                }
                true
            }
            None => false,
        }
    }

    /// Current target of a layer.
    pub fn layer_rate(&self, ssrc: Ssrc) -> Option<Bitrate> {
        self.layers.iter().find(|l| l.ssrc == ssrc).map(|l| l.target)
    }

    /// Request a keyframe on all enabled layers (e.g. after a new subscriber
    /// joins or a receiver reports an unrecoverable loss).
    pub fn request_keyframe(&mut self) {
        for l in &mut self.layers {
            l.force_keyframe = true;
        }
    }

    /// Sum of enabled layers' targets — what the client is being asked to
    /// push upstream.
    pub fn total_target(&self) -> Bitrate {
        self.layers.iter().map(|l| l.target).sum()
    }

    /// SSRCs of all layers, enabled or not.
    pub fn layer_ssrcs(&self) -> Vec<Ssrc> {
        self.layers.iter().map(|l| l.ssrc).collect()
    }

    /// Produce one frame per enabled layer. Call once per frame interval.
    pub fn tick(&mut self, now: SimTime) -> Vec<EncodedFrame> {
        let mut frames = Vec::new();
        for layer in &mut self.layers {
            if layer.target.is_zero() {
                continue;
            }
            let first = layer.last_keyframe.is_none();
            let keyframe = layer.force_keyframe
                || match layer.last_keyframe {
                    None => true,
                    Some(t) => now.saturating_since(t) >= self.cfg.keyframe_interval,
                };
            layer.force_keyframe = false;
            if keyframe {
                // The first keyframe is immediate (subscribers need it), but
                // its cadence is back-dated by the layer's phase so sibling
                // layers keyframe at different ticks from then on.
                layer.last_keyframe = Some(if first {
                    now.checked_sub(layer.keyframe_phase).unwrap_or(now)
                } else {
                    now
                });
            }

            // Mean frame size that hits the target on average; keyframes are
            // larger, delta frames proportionally smaller so the GoP still
            // averages to target. With interval K frames and gain g, one key
            // + (K-1) deltas must sum to K·mean_raw.
            let mean_raw = layer.target.as_bps() as f64 / 8.0 / self.cfg.fps;
            let frames_per_gop = (self.cfg.keyframe_interval.as_secs_f64() * self.cfg.fps).max(1.0);
            let delta_scale = frames_per_gop / (frames_per_gop - 1.0 + self.cfg.keyframe_gain);
            let mean = if keyframe {
                mean_raw * delta_scale * self.cfg.keyframe_gain
            } else {
                mean_raw * delta_scale
            };
            // Log-normal-ish jitter plus rate-control debt correction.
            let noisy = mean * (1.0 + self.cfg.size_jitter * self.rng.gaussian());
            let corrected = (noisy - 0.1 * layer.byte_debt).max(mean * 0.2);
            layer.byte_debt += corrected - mean;

            let size = corrected.round().max(1.0) as usize;
            self.work_units += crate::cost::encode_cost(layer.resolution_lines, size);
            frames.push(EncodedFrame {
                ssrc: layer.ssrc,
                frame_id: layer.next_frame_id,
                keyframe,
                size,
                resolution_lines: layer.resolution_lines,
                captured_at: now,
            });
            layer.next_frame_id += 1;
        }
        // Capture itself costs work regardless of how many layers encode.
        self.work_units += crate::cost::CAPTURE_COST_PER_FRAME;
        frames
    }

    /// Accumulated encode+capture work units.
    pub fn work_units(&self) -> f64 {
        self.work_units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder(targets: &[(u32, u16, u64)]) -> SimulcastEncoder {
        let layers = targets
            .iter()
            .map(|&(ssrc, lines, kbps)| LayerConfig {
                ssrc: Ssrc(ssrc),
                resolution_lines: lines,
                target: Bitrate::from_kbps(kbps),
            })
            .collect();
        SimulcastEncoder::new(EncoderConfig::default(), layers, DetRng::derive(5, "enc"))
    }

    fn run(enc: &mut SimulcastEncoder, seconds: u64) -> Vec<EncodedFrame> {
        let mut frames = Vec::new();
        let dt = enc.frame_interval();
        let mut t = SimTime::ZERO;
        let end = SimTime::from_secs(seconds);
        while t < end {
            frames.extend(enc.tick(t));
            t += dt;
        }
        frames
    }

    #[test]
    fn long_run_rate_tracks_target() {
        let mut enc = encoder(&[(1, 720, 1000)]);
        let frames = run(&mut enc, 30);
        let total: usize = frames.iter().map(|f| f.size).sum();
        let rate = total as f64 * 8.0 / 30.0;
        assert!((rate - 1_000_000.0).abs() / 1_000_000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn first_frame_is_keyframe_and_cadence_holds() {
        let mut enc = encoder(&[(1, 720, 800)]);
        let frames = run(&mut enc, 10);
        assert!(frames[0].keyframe);
        let keys: Vec<&EncodedFrame> = frames.iter().filter(|f| f.keyframe).collect();
        // 10 s at a 3 s keyframe interval = 4 keyframes (t=0, 3, 6, 9).
        assert_eq!(keys.len(), 4);
        // Keyframes are larger than the average delta frame.
        let avg_delta: f64 =
            frames.iter().filter(|f| !f.keyframe).map(|f| f.size as f64).sum::<f64>()
                / frames.iter().filter(|f| !f.keyframe).count() as f64;
        for k in keys {
            assert!(k.size as f64 > 1.4 * avg_delta);
        }
    }

    #[test]
    fn disabled_layer_produces_nothing() {
        let mut enc = encoder(&[(1, 720, 1000), (2, 180, 0)]);
        let frames = run(&mut enc, 2);
        assert!(frames.iter().all(|f| f.ssrc == Ssrc(1)));
    }

    #[test]
    fn reenabling_layer_forces_keyframe() {
        let mut enc = encoder(&[(1, 720, 1000)]);
        let _ = run(&mut enc, 1); // consume initial keyframe
        assert!(enc.set_layer_rate(Ssrc(1), Bitrate::ZERO));
        assert!(enc.tick(SimTime::from_secs(1)).is_empty());
        assert!(enc.set_layer_rate(Ssrc(1), Bitrate::from_kbps(500)));
        let frames = enc.tick(SimTime::from_millis(1100));
        assert_eq!(frames.len(), 1);
        assert!(frames[0].keyframe, "re-enabled layer must restart with a keyframe");
    }

    #[test]
    fn rate_change_applies() {
        let mut enc = encoder(&[(1, 360, 800)]);
        let _ = run(&mut enc, 5);
        enc.set_layer_rate(Ssrc(1), Bitrate::from_kbps(400));
        let frames: Vec<EncodedFrame> = {
            let dt = enc.frame_interval();
            let mut t = SimTime::from_secs(5);
            let mut out = Vec::new();
            while t < SimTime::from_secs(35) {
                out.extend(enc.tick(t));
                t += dt;
            }
            out
        };
        let total: usize = frames.iter().map(|f| f.size).sum();
        let rate = total as f64 * 8.0 / 30.0;
        assert!((rate - 400_000.0).abs() / 400_000.0 < 0.08, "rate {rate}");
    }

    #[test]
    fn unknown_ssrc_rejected() {
        let mut enc = encoder(&[(1, 720, 1000)]);
        assert!(!enc.set_layer_rate(Ssrc(99), Bitrate::from_kbps(1)));
        assert_eq!(enc.layer_rate(Ssrc(99)), None);
    }

    #[test]
    fn work_units_grow_with_resolution() {
        let mut hi = encoder(&[(1, 720, 1000)]);
        let mut lo = encoder(&[(1, 180, 1000)]);
        let _ = run(&mut hi, 5);
        let _ = run(&mut lo, 5);
        assert!(hi.work_units() > lo.work_units());
    }

    #[test]
    fn total_target_sums_enabled_layers() {
        let enc = encoder(&[(1, 720, 1000), (2, 360, 500), (3, 180, 0)]);
        assert_eq!(enc.total_target(), Bitrate::from_kbps(1500));
        assert_eq!(enc.layer_ssrcs().len(), 3);
    }
}
