//! Source-level nondeterminism lint.
//!
//! The scanner is deliberately token-level rather than AST-based: the
//! workspace builds offline with no proc-macro parser available, and the
//! hazards this lint hunts (hash-ordered collections, wall-clock reads,
//! ambient randomness, unordered cross-thread merges) are all visible as
//! identifier patterns. The scanner first *masks* the source — comments,
//! string literals, char literals, and raw strings are blanked to spaces,
//! preserving line structure — so a `"HashMap"` inside a log message or a
//! doc comment never fires. `#[cfg(test)]` item spans are skipped via brace
//! matching: test code may use wall clocks and scratch maps freely.
//!
//! Exemptions are line-scoped pragmas:
//!
//! ```text
//! // detguard: allow(wall-clock, reason = "host benchmark, not sim time")
//! ```
//!
//! A pragma applies to its own line and the line directly below it. A pragma
//! with no reason, an unknown rule name, or no matching finding is itself a
//! violation — allowlists must never rot silently.

use gso_srcmodel::lex::{is_ident_byte, mask_source};
use gso_srcmodel::pragma;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees are scanned. These are the hot paths whose
/// behaviour must replay bit-identically, plus the observer crates whose
/// *judgements* must themselves be deterministic (`audit` verdicts,
/// `bench` baselines, and `lockwatch` findings feed CI gates); `util` owns
/// the approved shims and `telemetry`/`detguard` stay exempt as the
/// instrumentation boundary.
pub const HOT_PATH_CRATES: &[&str] = &[
    "algo",
    "audit",
    "bench",
    "control",
    "net",
    "sim",
    "sfu",
    "bwe",
    "media",
    "chaos",
    "lockwatch",
    "cluster",
];

/// Workspace-root source trees scanned in addition to the crate list:
/// integration tests and examples drive the replay scenarios, so ambient
/// nondeterminism there corrupts the fixtures the digests are checked
/// against.
pub const ROOT_TREES: &[&str] = &["tests", "examples"];

/// Lint rule identifiers.
pub const RULE_IDS: &[&str] =
    &["hash-collection", "wall-clock", "ambient-rand", "float-accum-unordered", "unordered-merge"];

/// Bare identifiers that trigger a rule wherever they appear in code.
const IDENT_TRIGGERS: &[(&str, &str)] = &[
    ("hash-collection", "HashMap"),
    ("hash-collection", "HashSet"),
    ("hash-collection", "RandomState"),
    ("hash-collection", "DefaultHasher"),
    ("wall-clock", "Instant"),
    ("wall-clock", "SystemTime"),
    ("ambient-rand", "thread_rng"),
    ("ambient-rand", "from_entropy"),
    ("ambient-rand", "OsRng"),
    ("unordered-merge", "Mutex"),
    ("unordered-merge", "RwLock"),
    ("unordered-merge", "mpsc"),
    ("unordered-merge", "rayon"),
];

/// Qualified paths that trigger a rule (matched with whitespace collapsed,
/// so `thread :: spawn` still fires).
const PATH_TRIGGERS: &[(&str, &str)] = &[
    ("ambient-rand", "rand::random"),
    ("unordered-merge", "thread::spawn"),
    ("unordered-merge", "thread::scope"),
];

/// One lint hit, allowed or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path of the offending file, relative to the scan root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier from [`RULE_IDS`].
    pub rule: String,
    /// The trigger token that fired.
    pub trigger: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Whether a pragma exempts this finding.
    pub allowed: bool,
    /// The pragma's justification, when allowed.
    pub reason: Option<String>,
}

/// A malformed or unused pragma — always a violation.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// Path of the file, relative to the scan root.
    pub file: String,
    /// 1-based line of the pragma.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Aggregate result of a scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Every rule hit, exempted or not.
    pub findings: Vec<Finding>,
    /// Malformed/unused pragmas.
    pub pragma_errors: Vec<PragmaError>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a valid pragma.
    #[must_use]
    pub fn unallowed(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.allowed).collect()
    }

    /// Total violations: unallowed findings plus pragma errors.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.unallowed().len() + self.pragma_errors.len()
    }

    /// Machine-readable JSON report (hand-rolled; stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violations\": {},", self.violation_count());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"trigger\": {}, \"allowed\": {}, \"reason\": {}, \"snippet\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.rule),
                json_str(&f.trigger),
                f.allowed,
                f.reason.as_deref().map_or_else(|| "null".to_string(), json_str),
                json_str(&f.snippet),
            );
        }
        out.push_str("\n  ],\n  \"pragma_errors\": [");
        for (i, e) in self.pragma_errors.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&e.file),
                e.line,
                json_str(&e.message),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// Source masking (comments/strings/chars blanked, line structure kept)
// lives in the shared source model: `gso_srcmodel::lex::mask_source`.

// ---------------------------------------------------------------------------
// cfg(test) span skipping
// ---------------------------------------------------------------------------

/// Mark lines covered by `#[cfg(test)]`-gated items (attribute through the
/// matching close brace or terminating semicolon).
fn test_spans(code: &str) -> Vec<bool> {
    let line_count = code.lines().count() + 1;
    let mut skipped = vec![false; line_count + 1];
    let bytes = code.as_bytes();
    let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    if !compact.contains("#[cfg(test)]") {
        return skipped;
    }

    // Walk the masked code looking for `#` `[` cfg ( test ) `]` sequences,
    // tolerating interior whitespace.
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'#' {
            if let Some(end) = match_cfg_test(bytes, i) {
                // Find the item's extent: first `{` (brace-match) or `;`
                // before any `{`.
                let mut depth = 0i32;
                let mut j = end;
                let mut item_end = bytes.len();
                while j < bytes.len() {
                    match bytes[j] {
                        b'{' => {
                            depth += 1;
                        }
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                item_end = j + 1;
                                break;
                            }
                        }
                        b';' if depth == 0 => {
                            item_end = j + 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let start_line = 1 + bytes[..i].iter().filter(|&&b| b == b'\n').count();
                let end_line =
                    1 + bytes[..item_end.min(bytes.len())].iter().filter(|&&b| b == b'\n').count();
                for s in skipped.iter_mut().take(end_line + 1).skip(start_line) {
                    *s = true;
                }
                i = item_end;
                continue;
            }
        }
        i += 1;
    }
    skipped
}

/// If `bytes[i..]` starts a `#[cfg(test)]` attribute (whitespace tolerated),
/// return the index just past the closing `]`.
fn match_cfg_test(bytes: &[u8], i: usize) -> Option<usize> {
    let expect = [b'#', b'[', b'c', b'f', b'g', b'(', b't', b'e', b's', b't', b')', b']'];
    let mut j = i;
    for &want in &expect {
        while j < bytes.len() && bytes[j].is_ascii_whitespace() && want != b'#' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != want {
            return None;
        }
        j += 1;
    }
    Some(j)
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Pragma {
    line: usize,
    rule: String,
    reason: Option<String>,
    used: bool,
    malformed: Option<String>,
}

/// Parse `detguard:` pragmas out of the collected line comments.
fn parse_pragmas(comments: &[(usize, String)]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find("detguard:") else {
            continue;
        };
        // Require an identifier boundary so prose mentioning paths like
        // `gso_detguard::DigestTrace` is not mistaken for a pragma.
        if pos > 0
            && text[..pos].chars().next_back().is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            continue;
        }
        let body = text[pos + "detguard:".len()..].trim();
        if body.starts_with(':') {
            continue; // a `detguard::` path reference, not a pragma
        }
        let Some(rest) = body.strip_prefix("allow(") else {
            out.push(Pragma {
                line: *line,
                rule: String::new(),
                reason: None,
                used: false,
                malformed: Some(format!("unrecognized pragma form: `{body}`")),
            });
            continue;
        };
        let allow = pragma::parse_allow(rest, RULE_IDS);
        out.push(Pragma {
            line: *line,
            rule: allow.rule,
            reason: allow.reason,
            used: false,
            malformed: allow.malformed,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Per-file scan
// ---------------------------------------------------------------------------

fn ident_positions(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(p) = line[from..].find(word) {
        let start = from + p;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn path_match(compact: &str, pat: &str) -> bool {
    let bytes = compact.as_bytes();
    let mut from = 0;
    while let Some(p) = compact[from..].find(pat) {
        let start = from + p;
        let end = start + pat.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Scan one already-loaded source file. Exposed for unit tests; [`scan_workspace`]
/// is the directory-walking entry point.
pub fn scan_source(file_label: &str, src: &str, report: &mut Report) {
    let masked = mask_source(src);
    let skipped = test_spans(&masked.code);
    let mut pragmas = parse_pragmas(&masked.comments);
    let src_lines: Vec<&str> = src.lines().collect();

    for (idx, code_line) in masked.code.lines().enumerate() {
        let line_no = idx + 1;
        if *skipped.get(line_no).unwrap_or(&false) {
            continue;
        }
        let compact: String = code_line.chars().filter(|c| !c.is_whitespace()).collect();
        let mut hits: Vec<(&str, &str)> = Vec::new();
        for (rule, word) in IDENT_TRIGGERS {
            if ident_positions(code_line, word) {
                hits.push((rule, word));
            }
        }
        for (rule, pat) in PATH_TRIGGERS {
            if path_match(&compact, pat) {
                hits.push((rule, pat));
            }
        }
        // float-accum-unordered: a fold/sum over a hash container touching
        // floats on one statement line.
        let has_hash =
            ident_positions(code_line, "HashMap") || ident_positions(code_line, "HashSet");
        let has_accum =
            compact.contains(".sum::") || compact.contains(".sum()") || compact.contains(".fold(");
        let has_float = ident_positions(code_line, "f64") || ident_positions(code_line, "f32");
        if has_hash && has_accum && has_float {
            hits.push(("float-accum-unordered", "sum/fold over hash container"));
        }

        for (rule, trigger) in hits {
            let pragma = pragmas.iter_mut().find(|p| {
                p.malformed.is_none()
                    && p.rule == *rule
                    && (p.line == line_no || p.line + 1 == line_no)
            });
            let (allowed, reason) = match pragma {
                Some(p) => {
                    p.used = true;
                    (true, p.reason.clone())
                }
                None => (false, None),
            };
            report.findings.push(Finding {
                file: file_label.to_string(),
                line: line_no,
                rule: (*rule).to_string(),
                trigger: (*trigger).to_string(),
                snippet: src_lines.get(idx).map_or("", |l| l.trim()).to_string(),
                allowed,
                reason,
            });
        }
    }

    for p in &pragmas {
        if let Some(msg) = &p.malformed {
            report.pragma_errors.push(PragmaError {
                file: file_label.to_string(),
                line: p.line,
                message: msg.clone(),
            });
        } else if !p.used {
            report.pragma_errors.push(PragmaError {
                file: file_label.to_string(),
                line: p.line,
                message: format!(
                    "unused pragma: no `{}` finding on this or the next line — remove it",
                    p.rule
                ),
            });
        }
    }
    report.files_scanned += 1;
}

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// report order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every hot-path crate's `src/` tree under a workspace root.
///
/// # Errors
/// Propagates I/O failures reading the source tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for krate in HOT_PATH_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        for path in files {
            let src = std::fs::read_to_string(&path)?;
            let label = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().into_owned();
            scan_source(&label, &src, &mut report);
        }
    }
    for tree in ROOT_TREES {
        let dir = root.join(tree);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&dir, &mut files)?;
        for path in files {
            let src = std::fs::read_to_string(&path)?;
            let label = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().into_owned();
            scan_source(&label, &src, &mut report);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Report {
        let mut r = Report::default();
        scan_source("test.rs", src, &mut r);
        r
    }

    #[test]
    fn flags_hashmap_in_code() {
        let r = scan("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n");
        assert_eq!(r.unallowed().len(), 2);
        assert!(r.findings.iter().all(|f| f.rule == "hash-collection"));
    }

    #[test]
    fn ignores_hashmap_in_comments_and_strings() {
        let r =
            scan("// HashMap is not used here\nfn f() { let _ = \"HashMap\"; }\n/* HashMap */\n");
        assert_eq!(r.findings.len(), 0);
    }

    #[test]
    fn ignores_cfg_test_modules() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    #[test]\n    fn t() { let _ = Instant::now(); }\n}\n";
        let r = scan(src);
        assert_eq!(r.findings.len(), 0, "test-only code must be exempt");
    }

    #[test]
    fn pragma_on_preceding_line_allows_with_reason() {
        let src = "// detguard: allow(wall-clock, reason = \"host benchmark\")\nuse std::time::Instant;\n";
        let r = scan(src);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].allowed);
        assert_eq!(r.findings[0].reason.as_deref(), Some("host benchmark"));
        assert_eq!(r.violation_count(), 0);
    }

    #[test]
    fn pragma_on_same_line_allows() {
        let src = "let t = Instant::now(); // detguard: allow(wall-clock, reason = \"bench\")\n";
        let r = scan(src);
        assert_eq!(r.violation_count(), 0);
        assert!(r.findings[0].allowed);
    }

    #[test]
    fn pragma_without_reason_is_a_violation() {
        let src = "// detguard: allow(wall-clock)\nuse std::time::Instant;\n";
        let r = scan(src);
        // Malformed pragma never exempts, so the finding stays unallowed AND
        // the pragma itself is an error.
        assert_eq!(r.unallowed().len(), 1);
        assert_eq!(r.pragma_errors.len(), 1);
        assert!(r.pragma_errors[0].message.contains("reason"));
    }

    #[test]
    fn unknown_rule_pragma_is_a_violation() {
        let src = "// detguard: allow(bogus-rule, reason = \"x\")\nfn f() {}\n";
        let r = scan(src);
        assert_eq!(r.pragma_errors.len(), 1);
        assert!(r.pragma_errors[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_pragma_is_a_violation() {
        let src = "// detguard: allow(wall-clock, reason = \"nothing here\")\nfn f() {}\n";
        let r = scan(src);
        assert_eq!(r.pragma_errors.len(), 1);
        assert!(r.pragma_errors[0].message.contains("unused"));
    }

    #[test]
    fn thread_scope_fires_unordered_merge() {
        let r = scan("fn f() { std::thread::scope(|s| {}); }\n");
        assert_eq!(r.unallowed().len(), 1);
        assert_eq!(r.findings[0].rule, "unordered-merge");
    }

    #[test]
    fn ambient_rand_fires() {
        let r = scan("fn f() { let x: u32 = rand::random(); let r = thread_rng(); }\n");
        assert_eq!(r.unallowed().len(), 2);
        assert!(r.findings.iter().all(|f| f.rule == "ambient-rand"));
    }

    #[test]
    fn float_accum_over_hash_fires() {
        let r = scan("fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n");
        assert!(r.findings.iter().any(|f| f.rule == "float-accum-unordered"));
    }

    #[test]
    fn identifier_boundaries_respected() {
        // `MyHashMapLike` and `instant_var` must not fire.
        let r = scan("struct MyHashMapLike; fn f(instant_var: u32) {}\n");
        assert_eq!(r.findings.len(), 0);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If the masker ate `'a` as a char literal it would swallow `>` and
        // corrupt the rest of the line, hiding the HashMap.
        let r = scan("fn f<'a>(m: &'a HashMap<u32, u32>) {}\n");
        assert_eq!(r.unallowed().len(), 1);
    }

    #[test]
    fn raw_strings_are_masked() {
        let r = scan("fn f() { let _ = r#\"HashMap Instant\"#; }\n");
        assert_eq!(r.findings.len(), 0);
    }

    #[test]
    fn json_report_shape() {
        let r = scan("use std::time::Instant;\n");
        let json = r.to_json();
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"rule\": \"wall-clock\""));
    }
}
