//! `detguard` — nondeterminism lint CLI.
//!
//! Scans the hot-path crates' sources for nondeterminism hazards and exits
//! nonzero on any unallowlisted finding or malformed/unused pragma, so CI
//! can gate on it directly.
//!
//! ```text
//! detguard [--root <workspace-root>] [--json]
//! ```
//!
//! `--root` defaults to the current directory; `--json` prints the
//! machine-readable report instead of the human summary.

use gso_detguard::lint;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(v) = args.next() else {
                    eprintln!("detguard: --root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: detguard [--root <workspace-root>] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detguard: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detguard: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "detguard: scanned {} files across hot-path crates {:?}",
            report.files_scanned,
            lint::HOT_PATH_CRATES
        );
        for f in &report.findings {
            if f.allowed {
                println!(
                    "  allowed  {}:{} [{}] {} — reason: {}",
                    f.file,
                    f.line,
                    f.rule,
                    f.trigger,
                    f.reason.as_deref().unwrap_or("<none>")
                );
            }
        }
        for f in report.unallowed() {
            println!(
                "  VIOLATION {}:{} [{}] {}\n    {}",
                f.file, f.line, f.rule, f.trigger, f.snippet
            );
        }
        for e in &report.pragma_errors {
            println!("  VIOLATION {}:{} [pragma] {}", e.file, e.line, e.message);
        }
        println!(
            "detguard: {} finding(s), {} allowed, {} violation(s)",
            report.findings.len(),
            report.findings.iter().filter(|f| f.allowed).count(),
            report.violation_count()
        );
    }

    if report.violation_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
