//! Double-run digest comparison and divergence bisection.
//!
//! Each deterministic run produces a [`DigestTrace`]: an ordered sequence of
//! [`DigestEntry`] ticks, each carrying the tick label, a combined digest,
//! and per-component digests plus a state dump for forensics. Comparing two
//! traces with [`first_divergence`] does not scan linearly: it builds
//! prefix-combined hashes and binary-searches for the first index where the
//! prefixes disagree, so locating the first bad tick in an `n`-tick run costs
//! `O(n)` hashing once plus `O(log n)` comparisons — the same shape as
//! bisecting a regression in version control.

use crate::digest::StableHasher;

/// One recorded tick of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestEntry {
    /// Tick label (usually the sim-time in microseconds).
    pub tick: u64,
    /// Combined digest over every component at this tick.
    pub combined: u64,
    /// Per-component `(name, digest)` pairs, in a fixed recording order.
    pub components: Vec<(String, u64)>,
    /// Human-readable state dump captured at recording time (may be empty
    /// when the recorder runs with dumps disabled).
    pub dump: String,
}

impl DigestEntry {
    /// Build an entry from component digests, deriving the combined digest.
    #[must_use]
    pub fn new(tick: u64, components: Vec<(String, u64)>, dump: String) -> Self {
        let mut h = StableHasher::new();
        h.write_u64(tick);
        h.write_len(components.len());
        for (name, digest) in &components {
            h.write_str(name);
            h.write_u64(*digest);
        }
        DigestEntry { tick, combined: h.finish(), components, dump }
    }
}

/// An ordered per-tick digest sequence from one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DigestTrace {
    /// Recorded ticks, in execution order.
    pub entries: Vec<DigestEntry>,
}

impl DigestTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        DigestTrace::default()
    }

    /// Append one tick.
    pub fn record(&mut self, entry: DigestEntry) {
        self.entries.push(entry);
    }

    /// Combined digests of every prefix: `prefix[i]` covers entries `0..i`.
    /// `prefix[0]` is the empty-prefix digest; length is `entries.len() + 1`.
    #[must_use]
    pub fn prefix_digests(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.entries.len() + 1);
        let mut h = StableHasher::new();
        out.push(h.finish());
        for e in &self.entries {
            h.write_u64(e.combined);
            out.push(h.finish());
        }
        out
    }
}

/// The first point where two runs disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into `entries` of the first divergent tick.
    pub index: usize,
    /// The divergent entry from run A (`None` if run A ended first).
    pub a: Option<DigestEntry>,
    /// The divergent entry from run B (`None` if run B ended first).
    pub b: Option<DigestEntry>,
    /// Component names whose digests differ at the divergent tick (empty when
    /// the divergence is a length mismatch).
    pub divergent_components: Vec<String>,
}

impl Divergence {
    /// Multi-line forensic report: which tick diverged, which components, and
    /// both state dumps.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        match (&self.a, &self.b) {
            (Some(a), Some(b)) => {
                out.push_str(&format!(
                    "first divergence at index {} (tick {}):\n",
                    self.index, a.tick
                ));
                if a.tick != b.tick {
                    out.push_str(&format!(
                        "  tick label mismatch: run A tick {} vs run B tick {}\n",
                        a.tick, b.tick
                    ));
                }
                for name in &self.divergent_components {
                    let da = a.components.iter().find(|(n, _)| n == name).map(|(_, d)| *d);
                    let db = b.components.iter().find(|(n, _)| n == name).map(|(_, d)| *d);
                    out.push_str(&format!(
                        "  component {name}: A={} B={}\n",
                        da.map_or_else(|| "<absent>".to_string(), |d| format!("{d:#018x}")),
                        db.map_or_else(|| "<absent>".to_string(), |d| format!("{d:#018x}")),
                    ));
                }
                if !a.dump.is_empty() || !b.dump.is_empty() {
                    out.push_str("  --- run A state ---\n");
                    out.push_str(&indent(&a.dump));
                    out.push_str("  --- run B state ---\n");
                    out.push_str(&indent(&b.dump));
                }
            }
            (Some(a), None) => {
                out.push_str(&format!(
                    "run B ended at index {} but run A continues (tick {})\n",
                    self.index, a.tick
                ));
            }
            (None, Some(b)) => {
                out.push_str(&format!(
                    "run A ended at index {} but run B continues (tick {})\n",
                    self.index, b.tick
                ));
            }
            (None, None) => out.push_str("traces are identical\n"),
        }
        out
    }
}

fn indent(s: &str) -> String {
    let mut out = String::new();
    for line in s.lines() {
        out.push_str("    ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Bisect two traces to the first divergent tick.
///
/// Returns `None` when the traces are identical. On a length mismatch with an
/// identical common prefix, the divergence index is the shorter trace's
/// length and the missing side is `None`.
#[must_use]
pub fn first_divergence(a: &DigestTrace, b: &DigestTrace) -> Option<Divergence> {
    let pa = a.prefix_digests();
    let pb = b.prefix_digests();
    let common = a.entries.len().min(b.entries.len());

    // Invariant for the binary search: prefixes of length `lo` agree,
    // prefixes of length `hi` disagree (or `hi` is past the common range).
    let diverged_in_common = pa[common] != pb[common];
    if !diverged_in_common {
        if a.entries.len() == b.entries.len() {
            return None;
        }
        // Identical common prefix, one run simply stopped recording earlier.
        return Some(Divergence {
            index: common,
            a: a.entries.get(common).cloned(),
            b: b.entries.get(common).cloned(),
            divergent_components: Vec::new(),
        });
    }

    let (mut lo, mut hi) = (0usize, common);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if pa[mid] == pb[mid] {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Prefixes of length `lo` agree and length `hi = lo + 1` disagree, so
    // entry `lo` is the first divergent tick.
    let idx = lo;
    let ea = &a.entries[idx];
    let eb = &b.entries[idx];
    let mut names: Vec<String> = Vec::new();
    for (name, da) in &ea.components {
        match eb.components.iter().find(|(n, _)| n == name) {
            Some((_, db)) if db == da => {}
            _ => names.push(name.clone()),
        }
    }
    for (name, _) in &eb.components {
        if !ea.components.iter().any(|(n, _)| n == name) {
            names.push(name.clone());
        }
    }
    Some(Divergence {
        index: idx,
        a: Some(ea.clone()),
        b: Some(eb.clone()),
        divergent_components: names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tick: u64, comps: &[(&str, u64)]) -> DigestEntry {
        DigestEntry::new(
            tick,
            comps.iter().map(|(n, d)| ((*n).to_string(), *d)).collect(),
            format!("dump@{tick}"),
        )
    }

    fn trace(entries: Vec<DigestEntry>) -> DigestTrace {
        DigestTrace { entries }
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = trace((0..50).map(|i| entry(i, &[("x", i * 7)])).collect());
        assert!(first_divergence(&t, &t.clone()).is_none());
    }

    #[test]
    fn bisects_to_first_divergent_tick() {
        let a = trace((0..100).map(|i| entry(i, &[("x", i)])).collect());
        let mut b = a.clone();
        // Diverge at index 37 and (as a real fault would) at every tick after.
        for i in 37..100 {
            b.entries[i] = entry(i as u64, &[("x", i as u64 + 1000)]);
        }
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 37);
        assert_eq!(d.divergent_components, vec!["x".to_string()]);
        assert!(d.report().contains("index 37"));
    }

    #[test]
    fn single_tick_divergence_is_found() {
        let a = trace((0..64).map(|i| entry(i, &[("q", i * 3)])).collect());
        let mut b = a.clone();
        b.entries[0] = entry(0, &[("q", 999)]);
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 0);
    }

    #[test]
    fn divergence_at_last_tick_is_found() {
        let a = trace((0..9).map(|i| entry(i, &[("q", i)])).collect());
        let mut b = a.clone();
        b.entries[8] = entry(8, &[("q", 77)]);
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 8);
    }

    #[test]
    fn length_mismatch_reports_shorter_end() {
        let a = trace((0..10).map(|i| entry(i, &[("x", i)])).collect());
        let b = trace((0..7).map(|i| entry(i, &[("x", i)])).collect());
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.index, 7);
        assert!(d.a.is_some());
        assert!(d.b.is_none());
        assert!(d.report().contains("run B ended"));
    }

    #[test]
    fn component_set_mismatch_names_both_sides() {
        let a = trace(vec![entry(0, &[("x", 1), ("y", 2)])]);
        let b = trace(vec![entry(0, &[("x", 1), ("z", 3)])]);
        let d = first_divergence(&a, &b).expect("must diverge");
        assert!(d.divergent_components.contains(&"y".to_string()));
        assert!(d.divergent_components.contains(&"z".to_string()));
    }
}
