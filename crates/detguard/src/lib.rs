//! Determinism guard for the GSO-Simulcast workspace.
//!
//! The centralized controller's whole value proposition — replayable
//! re-solves, bit-identical incremental solving, byte-stable telemetry
//! exports — rests on determinism, and this crate makes that property
//! enforceable instead of assumed:
//!
//! * [`lint`] — a source-level nondeterminism lint (the `detguard` binary)
//!   that walks the hot-path crates and flags hazards: hash-ordered
//!   collections, wall-clock reads, ambient randomness, float accumulation
//!   over unordered containers, and unordered cross-thread merges. Every
//!   exemption needs an inline `// detguard: allow(rule, reason = "…")`
//!   pragma carrying a justification.
//! * [`digest`] — a [`StateDigest`](digest::StateDigest) trait with a
//!   portable, seed-free 64-bit [`StableHasher`](digest::StableHasher), so
//!   every layer (solver solutions and traces, controller state, simulator
//!   event queue, telemetry export) can be fingerprinted per tick.
//! * [`compare`] — digest-sequence comparison that bisects two runs to the
//!   first divergent tick and reports both states.
//!
//! The lint is the static prong; the digests are the runtime prong that
//! catches what a source scan cannot (e.g. a data race that survives review,
//! or an allocator-order dependence). CI runs both.

pub mod compare;
pub mod digest;
pub mod lint;

pub use compare::{first_divergence, DigestEntry, DigestTrace, Divergence};
pub use digest::{StableHasher, StateDigest};
