//! Stable 64-bit state digests.
//!
//! [`StableHasher`] is a fixed-seed FNV-1a accumulator with a splitmix64
//! finalizer: no per-process randomization (unlike `DefaultHasher`), no
//! platform dependence (all writes are explicit little-endian integers), so
//! a digest computed today on one host equals the digest of the same state
//! on any other host or run. [`StateDigest`] is the visitor trait each layer
//! implements; composite digests are order-sensitive by design — hashing a
//! `BTreeMap` walks it in key order, and hashing a `Vec` walks it in index
//! order, so any reordering of logically-ordered state changes the digest.
//!
//! Floats are hashed through [`f64::to_bits`]: two states digest equal iff
//! their floats are bit-identical, which is exactly the reproduction's
//! "bit-identical solve" guarantee (tolerance-based comparison would mask
//! the accumulation-order bugs this crate exists to catch).

use gso_util::{Bitrate, ClientId, SimDuration, SimTime, Ssrc, StreamKind};
use std::collections::BTreeMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Deterministic, seed-free 64-bit hash accumulator.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh accumulator (fixed FNV offset basis; never randomized).
    #[must_use]
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `u8`.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorb an `f64` through its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a length prefix (guards against concatenation ambiguity:
    /// `["ab","c"]` and `["a","bc"]` must not collide).
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// Absorb a string (length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.write_len(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Finish with a splitmix64 avalanche so near-identical states land far
    /// apart in digest space.
    #[must_use]
    pub fn finish(&self) -> u64 {
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A type that can contribute to a stable state digest.
pub trait StateDigest {
    /// Absorb this value's state into the accumulator.
    fn digest(&self, h: &mut StableHasher);

    /// This value's standalone 64-bit digest.
    fn state_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        self.digest(&mut h);
        h.finish()
    }
}

macro_rules! digest_as_u64 {
    ($($t:ty),*) => {$(
        impl StateDigest for $t {
            fn digest(&self, h: &mut StableHasher) {
                h.write_u64(u64::from(*self));
            }
        }
    )*};
}

digest_as_u64!(u8, u16, u32, u64, bool);

impl StateDigest for usize {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StateDigest for i64 {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StateDigest for f64 {
    fn digest(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StateDigest for str {
    fn digest(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StateDigest for String {
    fn digest(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StateDigest + ?Sized> StateDigest for &T {
    fn digest(&self, h: &mut StableHasher) {
        (**self).digest(h);
    }
}

impl<T: StateDigest> StateDigest for Option<T> {
    fn digest(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.digest(h);
            }
        }
    }
}

impl<T: StateDigest> StateDigest for [T] {
    fn digest(&self, h: &mut StableHasher) {
        h.write_len(self.len());
        for v in self {
            v.digest(h);
        }
    }
}

impl<T: StateDigest> StateDigest for Vec<T> {
    fn digest(&self, h: &mut StableHasher) {
        self.as_slice().digest(h);
    }
}

impl<A: StateDigest, B: StateDigest> StateDigest for (A, B) {
    fn digest(&self, h: &mut StableHasher) {
        self.0.digest(h);
        self.1.digest(h);
    }
}

impl<A: StateDigest, B: StateDigest, C: StateDigest> StateDigest for (A, B, C) {
    fn digest(&self, h: &mut StableHasher) {
        self.0.digest(h);
        self.1.digest(h);
        self.2.digest(h);
    }
}

impl<K: StateDigest, V: StateDigest> StateDigest for BTreeMap<K, V> {
    fn digest(&self, h: &mut StableHasher) {
        h.write_len(self.len());
        for (k, v) in self {
            k.digest(h);
            v.digest(h);
        }
    }
}

// ---------------------------------------------------------------------------
// Foundation types from gso-util (implemented here: detguard owns the trait).
// ---------------------------------------------------------------------------

impl StateDigest for SimTime {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(self.as_micros());
    }
}

impl StateDigest for SimDuration {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(self.as_micros());
    }
}

impl StateDigest for Bitrate {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(self.as_bps());
    }
}

impl StateDigest for ClientId {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

impl StateDigest for Ssrc {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

impl StateDigest for StreamKind {
    fn digest(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            StreamKind::Audio => 0,
            StreamKind::Video => 1,
            StreamKind::Screen => 2,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_calls() {
        let v = vec![(ClientId(1), Bitrate::from_kbps(500)), (ClientId(2), Bitrate::from_kbps(7))];
        assert_eq!(v.state_digest(), v.state_digest());
    }

    #[test]
    fn known_value_is_pinned() {
        // Pin the scalar path end-to-end (FNV-1a over 8 LE bytes, then
        // splitmix64) so an accidental change to the hash function — which
        // would silently invalidate every recorded baseline — fails loudly.
        let mut state = FNV_OFFSET;
        for b in 42u64.to_le_bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let expected = z ^ (z >> 31);
        assert_eq!(42u64.state_digest(), expected);
        assert_ne!(42u64.state_digest(), 43u64.state_digest());
    }

    #[test]
    fn order_sensitivity() {
        let a = vec![1u64, 2, 3].state_digest();
        let b = vec![3u64, 2, 1].state_digest();
        assert_ne!(a, b, "element order must matter");
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let a = vec!["ab".to_string(), "c".to_string()].state_digest();
        let b = vec!["a".to_string(), "bc".to_string()].state_digest();
        assert_ne!(a, b);
    }

    #[test]
    fn float_bits_not_value_tolerance() {
        assert_ne!((0.1f64 + 0.2).state_digest(), 0.3f64.state_digest());
        assert_eq!(1.5f64.state_digest(), 1.5f64.state_digest());
    }

    #[test]
    fn option_tags_disambiguate() {
        assert_ne!(Some(0u64).state_digest(), None::<u64>.state_digest());
    }

    #[test]
    fn btreemap_digest_follows_key_order() {
        let mut m1 = BTreeMap::new();
        m1.insert(2u64, 20u64);
        m1.insert(1u64, 10u64);
        let mut m2 = BTreeMap::new();
        m2.insert(1u64, 10u64);
        m2.insert(2u64, 20u64);
        // Insertion order is irrelevant: BTreeMap iterates in key order.
        assert_eq!(m1.state_digest(), m2.state_digest());
    }
}
