//! The lint's own acceptance gate: scanning the real workspace must come
//! back clean — zero unallowlisted findings, zero pragma errors — and every
//! allowlisted finding must carry a justification. CI enforces the same
//! invariant through the `detguard` binary; this test keeps it local.

use gso_detguard::lint::scan_workspace;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn hot_path_crates_have_no_unallowlisted_nondeterminism() {
    let report = scan_workspace(workspace_root()).expect("scan workspace");
    assert!(report.files_scanned > 0, "scan must actually cover the hot-path crates");
    let violations = report.unallowed();
    assert!(
        violations.is_empty() && report.pragma_errors.is_empty(),
        "workspace must be detguard-clean, got:\n{}",
        report.to_json()
    );
}

#[test]
fn every_allowlisted_finding_carries_a_reason() {
    let report = scan_workspace(workspace_root()).expect("scan workspace");
    for f in &report.findings {
        if f.allowed {
            let reason = f.reason.as_deref().unwrap_or("");
            assert!(
                !reason.trim().is_empty(),
                "{}:{} rule {} is allowlisted without a justification",
                f.file,
                f.line,
                f.rule
            );
        }
    }
}

#[test]
fn known_sanctioned_sites_are_present_and_allowlisted() {
    // The workspace has exactly two sanctioned hazard classes today: the
    // batch scheduler's work-stealing plumbing and the Fig. 6 host-time
    // stopwatch. If either disappears this test goes stale on purpose —
    // update it alongside the pragma so the allowlist stays a reviewed,
    // enumerable set.
    let report = scan_workspace(workspace_root()).expect("scan workspace");
    let allowed: Vec<(&str, &str)> = report
        .findings
        .iter()
        .filter(|f| f.allowed)
        .map(|f| (f.file.as_str(), f.rule.as_str()))
        .collect();
    assert!(
        allowed.iter().any(|(file, rule)| file.ends_with("batch.rs") && *rule == "unordered-merge"),
        "expected the batch-scheduler work-stealing pragma, got {allowed:?}"
    );
    assert!(
        allowed.iter().any(|(file, rule)| file.ends_with("fig6.rs") && *rule == "wall-clock"),
        "expected the Fig. 6 stopwatch pragma, got {allowed:?}"
    );
}
