//! Full-system double-run determinism (the runtime prong's acceptance gate).
//!
//! Every example scenario is run twice with the same seed; the runs must
//! produce a byte-identical `metrics_json` export *and* an identical
//! per-tick [`DigestTrace`] over the network simulator, the controller, and
//! the telemetry registry. A third test seeds a deliberate divergence and
//! proves [`first_divergence`] bisects to exactly the tick where it was
//! injected — the comparator works, not just the happy path.
//!
//! These live in detguard's dev-tests (not gso-sim's) because the digest
//! feature and the comparator belong to this crate, and gso-sim already
//! depends on it — the dev-dependency cycle is the sanctioned direction.

use gso_detguard::first_divergence;
use gso_sim::workloads::{ladder_for_mode, slow_link_cases, slow_link_scenario};
use gso_sim::{ClientScenario, PolicyMode, Scenario};
use gso_util::{Bitrate, ClientId, SimDuration, SimTime};
use proptest::prelude::*;

use gso_algo::Resolution;

/// A short two-party GSO conference on clean links.
fn two_party(seed: u64) -> Scenario {
    let ladder = ladder_for_mode(PolicyMode::Gso);
    let mut s = Scenario {
        seed,
        mode: PolicyMode::Gso,
        duration: SimDuration::from_secs(10),
        clients: vec![
            ClientScenario::clean(
                ClientId(1),
                Bitrate::from_mbps(4),
                Bitrate::from_mbps(4),
                ladder.clone(),
            ),
            ClientScenario::clean(
                ClientId(2),
                Bitrate::from_mbps(4),
                Bitrate::from_mbps(4),
                ladder,
            ),
        ],
        speaker_schedule: Vec::new(),
        standby: false,
    };
    s.subscribe_all_to_all(Resolution::R720);
    s
}

/// A three-party meeting with an impaired link, shortened for test budget.
fn impaired(seed: u64) -> Scenario {
    let mut s = slow_link_scenario(PolicyMode::Gso, slow_link_cases()[5], seed);
    s.duration = SimDuration::from_secs(10);
    s
}

/// A cross-region conference exercising the inter-node relay mesh.
fn cross_region(seed: u64) -> Scenario {
    let mut s = two_party(seed);
    s.clients[1].region = 1;
    s
}

fn example_scenarios(seed: u64) -> Vec<(&'static str, Scenario)> {
    vec![
        ("two-party", two_party(seed)),
        ("impaired", impaired(seed)),
        ("cross-region", cross_region(seed)),
    ]
}

fn assert_double_run_identical(name: &str, scenario: &Scenario) {
    let (ra, ta) = scenario.run_digest(None);
    let (rb, tb) = scenario.run_digest(None);
    assert_eq!(
        ra.metrics_json, rb.metrics_json,
        "{name}: metrics_json must be byte-identical across same-seed runs"
    );
    assert!(!ta.entries.is_empty(), "{name}: recorder must produce ticks");
    if let Some(d) = first_divergence(&ta, &tb) {
        panic!("{name}: per-tick digests diverged\n{}", d.report());
    }
}

#[test]
fn example_scenarios_are_digest_identical_across_runs() {
    for (name, s) in example_scenarios(42) {
        assert_double_run_identical(name, &s);
    }
}

#[test]
fn digest_run_matches_plain_run_output() {
    // Stepping the simulator tick-by-tick must process the same event stream
    // as one uninterrupted run: the harvested export is byte-identical.
    let s = two_party(7);
    let plain = s.run();
    let (stepped, _) = s.run_digest(None);
    assert_eq!(plain.metrics_json, stepped.metrics_json);
}

#[test]
fn seeded_divergence_is_bisected_to_the_injection_tick() {
    let s = two_party(11);
    let fault_at = SimTime::from_secs(5);
    let (_, clean) = s.run_digest(None);
    let (_, faulted) = s.run_digest(Some(fault_at));
    assert_eq!(clean.entries.len(), faulted.entries.len());

    let d = first_divergence(&clean, &faulted).expect("the seeded fault must diverge");
    // The fault fires at the first tick boundary >= 5 s, so the first
    // divergent entry is the one covering (5.0 s, 5.1 s] — index 50 of the
    // 100 ms tick sequence.
    assert_eq!(d.index, 50, "bisection must land exactly on the injection tick");
    let entry = d.a.as_ref().expect("clean run has the tick");
    assert_eq!(entry.tick, SimTime::from_millis(5_100).as_micros());
    // The junk packet is unroutable: only the simulator core notices it.
    assert_eq!(d.divergent_components, vec!["net.sim".to_string()]);
    assert!(d.report().contains("net.sim"), "report names the component:\n{}", d.report());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Satellite guarantee: any seed, not just the pinned ones, double-runs
    /// to identical bytes and identical per-tick digests.
    #[test]
    fn any_seed_double_runs_identically(seed in 0u64..1_000) {
        let s = two_party(seed);
        assert_double_run_identical("two-party", &s);
    }
}
