//! gso-srcmodel — shared token-level source model for workspace analyzers.
//!
//! The workspace builds offline with no `syn`, so its static analyzers
//! (gso-sentinel, gso-detguard's lint, gso-lockwatch) are hand-rolled
//! token-level tools. This crate owns the parts they share so each tool is
//! only its passes:
//!
//! * [`lex`] — source masking (comments/strings/chars blanked, offsets and
//!   line structure preserved) and tokenization;
//! * [`parse`] — the approximate item/body parser: functions with module
//!   path, impl type, test-ness, call expressions, panic/alloc sites,
//!   metric and unit-hygiene sites, and an ordered synchronization-event
//!   stream (lock acquisitions, blocking calls, scope boundaries) for
//!   concurrency analyses;
//! * [`graph`] — the approximate intra-workspace call graph with
//!   dependency-constrained edge resolution and reachability;
//! * [`pragma`] — the shared reason-mandatory `allow(rule, reason = "…")`
//!   exemption grammar;
//! * workspace walking — crate `src/` (and optionally `benches/`) trees
//!   plus the root facade crate, and the Cargo-manifest dependency map
//!   that constrains cross-crate call edges.

pub mod graph;
pub mod lex;
pub mod model;
pub mod parse;
pub mod pragma;

pub use graph::CallGraph;
pub use model::{
    BindKind, CallRef, FnInfo, MetricSite, ParsedFile, Site, SiteKind, SyncEvent, SyncOp, UnitCtx,
    UnitSite,
};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Which source trees a workspace walk visits beyond every crate's `src/`
/// and the root facade crate's `src/`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalkOptions {
    /// Also parse each crate's `benches/` tree (bench harnesses run real
    /// workspace code, so concurrency discipline applies there too).
    pub crate_benches: bool,
    /// Also parse the workspace root's `examples/` tree.
    pub root_examples: bool,
}

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// report order.
///
/// # Errors
/// Propagates I/O failures reading the directory.
pub fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Module path implied by a file's location under its crate's `src/`:
/// `src/lib.rs` → `[]`, `src/mckp.rs` → `["mckp"]`, `src/bin/x.rs` → `[]`,
/// `src/a/mod.rs` → `["a"]`.
fn module_prefix(rel: &Path) -> Vec<String> {
    let mut parts: Vec<String> = rel
        .with_extension("")
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if parts.first().is_some_and(|p| p == "bin") {
        return Vec::new();
    }
    if parts.last().is_some_and(|l| l == "lib" || l == "main" || l == "mod") {
        parts.pop();
    }
    parts
}

/// Parse one file from disk into a [`ParsedFile`].
///
/// # Errors
/// Propagates I/O failures reading the file.
pub fn parse_path(
    root: &Path,
    path: &Path,
    krate: &str,
    src_dir: &Path,
) -> std::io::Result<ParsedFile> {
    let src = std::fs::read_to_string(path)?;
    let label = path.strip_prefix(root).unwrap_or(path).to_string_lossy().into_owned();
    let rel = path.strip_prefix(src_dir).unwrap_or(path);
    Ok(parse::parse_file(&label, krate, &module_prefix(rel), &src))
}

/// Parse every crate's `src/` tree under a workspace root, plus the root
/// facade crate's own `src/`.
///
/// # Errors
/// Propagates I/O failures reading the source tree.
pub fn parse_workspace(root: &Path) -> std::io::Result<Vec<ParsedFile>> {
    parse_workspace_with(root, WalkOptions::default())
}

/// Parse a workspace with explicit [`WalkOptions`].
///
/// # Errors
/// Propagates I/O failures reading the source tree.
pub fn parse_workspace_with(root: &Path, opts: WalkOptions) -> std::io::Result<Vec<ParsedFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let krate = dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let mut trees = vec![dir.join("src")];
        if opts.crate_benches {
            trees.push(dir.join("benches"));
        }
        for tree in trees {
            if !tree.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            rust_files(&tree, &mut files)?;
            for path in files {
                out.push(parse_path(root, &path, &krate, &tree)?);
            }
        }
    }
    // The workspace-root facade crate.
    let mut root_trees = vec![(root.join("src"), "gso_simulcast")];
    if opts.root_examples {
        root_trees.push((root.join("examples"), "examples"));
    }
    for (tree, krate) in root_trees {
        if !tree.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&tree, &mut files)?;
        for path in files {
            out.push(parse_path(root, &path, krate, &tree)?);
        }
    }
    Ok(out)
}

/// Parse a flat directory of standalone fixture files. Each file is
/// treated as its own crate (named after the file stem) so fixtures stay
/// self-contained; the file-name label keeps reports directory-agnostic.
///
/// # Errors
/// Propagates I/O failures reading the directory.
pub fn parse_fixture_dir(dir: &Path) -> std::io::Result<Vec<ParsedFile>> {
    let mut files = Vec::new();
    rust_files(dir, &mut files)?;
    let mut parsed = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let stem = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let label = path.file_name().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        parsed.push(parse::parse_file(&label, &stem, &[], &src));
    }
    Ok(parsed)
}

/// Intra-workspace dependencies of one crate, read from its `Cargo.toml`
/// `[dependencies]` section: every `gso-x` entry maps to crate directory
/// name `x`. Dev-dependencies are ignored — they only link into tests,
/// which are never call-graph nodes.
fn manifest_deps(manifest: &Path) -> std::io::Result<Vec<String>> {
    let text = std::fs::read_to_string(manifest)?;
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps {
            if let Some(rest) = line.strip_prefix("gso-") {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                deps.push(name.replace('-', "_"));
            }
        }
    }
    Ok(deps)
}

/// The workspace crate-dependency map: crate directory name → direct
/// intra-workspace dependencies, plus the root facade crate.
///
/// # Errors
/// Propagates I/O failures reading the manifests.
pub fn workspace_deps(root: &Path) -> std::io::Result<BTreeMap<String, Vec<String>>> {
    let mut deps = BTreeMap::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.filter_map(Result::ok) {
            let dir = entry.path();
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                let krate =
                    dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                deps.insert(krate, manifest_deps(&manifest)?);
            }
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        deps.insert("gso_simulcast".to_string(), manifest_deps(&root_manifest)?);
    }
    Ok(deps)
}
