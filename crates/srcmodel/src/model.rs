//! Data model shared by the parser, call graph, and passes.

/// How a call expression names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallRef {
    /// `recv.name(..)` — resolved by name against every workspace method
    /// (conservative: dynamic dispatch and generics make the receiver type
    /// unknowable at token level).
    Method(String),
    /// `a::b::name(..)` — resolved by path-suffix match; `Self::` is
    /// rewritten to the surrounding impl type first.
    Path(Vec<String>),
    /// `name(..)` — resolved same-module first, then same-crate, then
    /// workspace-wide.
    Bare(String),
}

/// A panic or allocation site inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Can abort the hot path: `unwrap`, undocumented `expect`, `panic!`
    /// family, raw indexing/slicing, division by a runtime value.
    Panic,
    /// `.expect("invariant: …")` — the sanctioned, documented form; counted
    /// in the report but never a violation.
    DocumentedInvariant,
    /// Allocator traffic: `Vec::new`, `push`, `collect`, `clone`, `format!`…
    Alloc,
}

/// One panic/alloc site.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based source line.
    pub line: usize,
    /// Site class.
    pub kind: SiteKind,
    /// The trigger (e.g. `unwrap`, `index`, `collect`, `format!`).
    pub what: &'static str,
}

/// One parsed function (free function or method) with its body events.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Scan-root-relative file path.
    pub file: String,
    /// Crate the file belongs to (directory name under `crates/`).
    pub krate: String,
    /// Module path within the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// Surrounding `impl`/`trait` type name, if any.
    pub type_ctx: Option<String>,
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Line where the item starts (first attribute), for marker attachment.
    pub start_line: usize,
    /// True when under `#[cfg(test)]` or `#[test]`.
    pub is_test: bool,
    /// Calls made by the body: `(line, callee)`.
    pub calls: Vec<(usize, CallRef)>,
    /// Panic/alloc sites in the body.
    pub sites: Vec<Site>,
    /// Ordered synchronization events in the body (lock acquisitions,
    /// blocking operations, scope boundaries, …).
    pub sync: Vec<SyncEvent>,
}

impl FnInfo {
    /// Fully qualified display name, e.g. `algo::mckp::McState::solve_flat`.
    #[must_use]
    pub fn qualified(&self) -> String {
        let mut out = self.krate.clone();
        for m in &self.module {
            out.push_str("::");
            out.push_str(m);
        }
        if let Some(t) = &self.type_ctx {
            out.push_str("::");
            out.push_str(t);
        }
        out.push_str("::");
        out.push_str(&self.name);
        out
    }

    /// Path segments of the qualified name, for suffix matching.
    // sentinel: cold_path(reason = "analyzer-side name materialization; it lands in runtime hot cones only via name-matching unrelated `segments` method calls, and it never runs inside the simulator")
    #[must_use]
    pub fn segments(&self) -> Vec<&str> {
        let mut segs: Vec<&str> = vec![&self.krate];
        segs.extend(self.module.iter().map(String::as_str));
        if let Some(t) = &self.type_ctx {
            segs.push(t);
        }
        segs.push(&self.name);
        segs
    }
}

/// How a lock-guard binding was introduced, which governs the
/// approximation of its lifetime during the linear event walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindKind {
    /// `let g = m.lock()…;` — the guard lives until its block closes.
    Let,
    /// `if let Ok(g) = m.lock() { … }` / `while let …` — the guard lives
    /// only inside the condition's block.
    CondLet,
    /// Acquired as a temporary inside an expression statement — the guard
    /// dies at the end of the statement.
    Temp,
}

/// What a [`SyncEvent`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOp {
    /// A guard acquisition: `.lock()`, or zero-argument `.read()`/`.write()`.
    Acquire {
        /// The acquiring method (`lock`, `read`, `write`).
        method: String,
        /// Approximate lock identity: the last field-like segment of the
        /// receiver chain (`self.shared.signal.lock()` → `signal`).
        lock: String,
        /// The full receiver chain, dot-joined, for diagnostics.
        chain: String,
        /// How the resulting guard was bound.
        bind: BindKind,
        /// The bound variable name, when there is one.
        var: Option<String>,
    },
    /// A condvar wait: `wait`, `wait_timeout`, `wait_while`,
    /// `wait_timeout_while`.
    Wait {
        /// The wait method name.
        method: String,
        /// First-argument identifier — the guard handed to the condvar,
        /// which is released for the duration of the wait.
        guard_arg: Option<String>,
        /// True when the wait sits inside a `while`/`loop` body (the
        /// predicate-loop discipline).
        in_loop: bool,
    },
    /// A blocking operation other than locking: channel `recv`,
    /// `thread::join`/`sleep`/`park`, file or socket I/O.
    Block {
        /// Category of the blocking operation.
        what: &'static str,
    },
    /// An explicit `drop(var)` / `mem::drop(var)` — ends the named guard.
    DropVar {
        /// The dropped variable.
        var: String,
    },
    /// A `.await` suspension point — any held guard spans a yield.
    Await,
    /// A `std::sync::atomic::Ordering::…` argument.
    AtomicOrdering {
        /// The ordering variant (`Relaxed`, `Acquire`, …).
        ordering: String,
        /// The atomic method it was passed to, when the last method call
        /// on the same line is known (`load`, `store`, `fetch_add`, …).
        op: Option<String>,
    },
    /// A workspace-resolvable call — index into [`FnInfo::calls`].
    Call {
        /// Position of the call in the function's `calls` list.
        index: usize,
    },
    /// End of an expression statement (`;`) at the event's depth.
    Semi,
    /// A block closed; the event's depth is the depth *after* closing.
    ScopeEnd,
}

/// One entry of a function body's ordered synchronization-event stream,
/// consumed by concurrency analyses (lockwatch). Events appear in source
/// (token) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncEvent {
    /// 1-based source line.
    pub line: usize,
    /// Brace depth at the event (body entered at 1).
    pub depth: usize,
    /// What happened.
    pub op: SyncOp,
}

/// A telemetry recording call site (metric-key pass input).
#[derive(Debug, Clone)]
pub struct MetricSite {
    /// 1-based source line.
    pub line: usize,
    /// The method called (`incr`, `gauge`, `observe`, …).
    pub method: String,
    /// True when the first argument is a `keys::`-path const.
    pub keyed: bool,
    /// Raw first-argument text for the report.
    pub arg: String,
}

/// Declaration context of a unit-hygiene site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitCtx {
    /// Function parameter.
    Param,
    /// Struct/enum field.
    Field,
    /// `let` binding with an explicit primitive annotation.
    Let,
    /// Function return type (the *function name* matched the unit pattern).
    Return,
    /// `const`/`static` item.
    Const,
}

/// A bare-primitive declaration whose identifier names a bitrate unit.
#[derive(Debug, Clone)]
pub struct UnitSite {
    /// 1-based source line.
    pub line: usize,
    /// The offending identifier.
    pub ident: String,
    /// The primitive type it was declared as.
    pub prim: String,
    /// Where the declaration sits.
    pub ctx: UnitCtx,
    /// True when inside test code (exempt).
    pub is_test: bool,
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Scan-root-relative path.
    pub file: String,
    /// Owning crate.
    pub krate: String,
    /// Parsed functions.
    pub fns: Vec<FnInfo>,
    /// Metric recording call sites.
    pub metric_sites: Vec<MetricSite>,
    /// Unit-hygiene declaration sites.
    pub unit_sites: Vec<UnitSite>,
    /// Line comments (for pragmas and markers).
    pub comments: Vec<(usize, String)>,
    /// Raw source lines (for snippets).
    pub src_lines: Vec<String>,
}
