//! Source masking and tokenization.
//!
//! The analyzer is deliberately hand-rolled rather than `syn`-based: the
//! workspace builds offline with no registry access, so a full proc-macro
//! parser is unavailable. Everything the four sentinel passes need —
//! item structure, call expressions, indexing, a handful of macro names —
//! is recoverable from a token stream, the same trade detguard's lint
//! makes one level lower (raw lines).
//!
//! Masking blanks comments, string literals, char literals and raw strings
//! to spaces while preserving byte offsets and line structure, so a
//! `"unwrap"` inside a log message never fires and token offsets index the
//! original source. Line comments are collected on the side: sentinel's
//! markers and allow-pragmas live in them.

/// Token kinds. Punctuation is kept one byte per token; the parser peeks
/// for multi-byte operators (`::`, `->`, `..`) itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including suffixed forms like `10u64`).
    Int,
    /// Float literal (`1.0`, `1e6`, `2.5f64`).
    Float,
    /// Single punctuation byte.
    Punct(u8),
}

/// One token of masked source.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the token start in the original source.
    pub off: usize,
    /// Byte length of the token.
    pub len: usize,
    /// 1-based source line.
    pub line: usize,
}

impl Tok {
    /// The token's text, sliced out of the (masked) source it was lexed
    /// from.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.off..self.off + self.len]
    }

    /// True when the token is the punctuation byte `b`.
    #[must_use]
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// Masking output: blanked code plus the comments that were stripped.
pub struct Masked {
    /// Source with comments/strings/chars blanked; same byte length and
    /// line structure as the input.
    pub code: String,
    /// `(line, text)` of every line comment and block comment opening line.
    pub comments: Vec<(usize, String)>,
}

/// Blank comments, strings, char literals and raw strings to spaces.
#[must_use]
pub fn mask_source(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    let blank = |b: u8| if b == b'\n' { b'\n' } else { b' ' };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                code.push(b'\n');
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    code.push(b' ');
                    i += 1;
                }
                comments.push((line, src[start..i].to_string()));
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                code.push(b' ');
                code.push(b' ');
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        code.push(b' ');
                        code.push(b' ');
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        code.push(b' ');
                        code.push(b' ');
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        code.push(blank(bytes[i]));
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let mut j = i;
                if bytes[j] == b'b' {
                    code.push(b' ');
                    j += 1;
                }
                code.push(b' ');
                j += 1; // past 'r'
                let mut hashes = 0;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    code.push(b' ');
                    j += 1;
                }
                code.push(b' ');
                j += 1; // past opening quote
                loop {
                    if j >= bytes.len() {
                        break;
                    }
                    if bytes[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            code.resize(code.len() + (k - j), b' ');
                            j = k;
                            break;
                        }
                    }
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    code.push(blank(bytes[j]));
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                code.push(b' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        code.push(b' ');
                        code.push(blank(bytes[i + 1]));
                        if bytes[i + 1] == b'\n' {
                            line += 1;
                        }
                        i += 2;
                        continue;
                    }
                    if bytes[i] == b'"' {
                        code.push(b' ');
                        i += 1;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    code.push(blank(bytes[i]));
                    i += 1;
                }
            }
            b'\'' if is_char_literal(bytes, i) => {
                code.push(b' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        code.push(b' ');
                        code.push(b' ');
                        i += 2;
                        continue;
                    }
                    if bytes[i] == b'\'' {
                        code.push(b' ');
                        i += 1;
                        break;
                    }
                    code.push(b' ');
                    i += 1;
                }
            }
            _ => {
                code.push(b);
                i += 1;
            }
        }
    }

    Masked { code: String::from_utf8_lossy(&code).into_owned(), comments }
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= bytes.len() || bytes[j] != b'r' {
            return false;
        }
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    if i + 1 >= bytes.len() {
        return false;
    }
    if bytes[i + 1] == b'\\' {
        return true;
    }
    i + 2 < bytes.len() && bytes[i + 2] == b'\''
}

/// True for bytes that may appear in an identifier.
#[must_use]
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize masked source. Whitespace separates tokens; punctuation is
/// emitted byte-by-byte.
#[must_use]
pub fn tokenize(code: &str) -> Vec<Tok> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, off: start, len: i - start, line });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            let mut float = false;
            while i < bytes.len() {
                let c = bytes[i];
                if c.is_ascii_alphanumeric() || c == b'_' {
                    if c == b'e' || c == b'E' {
                        // Exponent only counts as float when followed by a
                        // digit or sign (so `0xE` stays an int).
                        if i + 1 < bytes.len()
                            && (bytes[i + 1].is_ascii_digit()
                                || bytes[i + 1] == b'+'
                                || bytes[i + 1] == b'-')
                            && !code[start..i].starts_with("0x")
                        {
                            float = true;
                            i += 1; // consume the sign/digit start below
                        }
                    }
                    i += 1;
                    continue;
                }
                // `1.0` — a dot followed by a digit continues the number;
                // `0..n` (range) does not.
                if c == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    float = true;
                    i += 1;
                    continue;
                }
                break;
            }
            let text = &code[start..i];
            let kind = if float || text.contains("f32") || text.contains("f64") {
                TokKind::Float
            } else {
                TokKind::Int
            };
            toks.push(Tok { kind, off: start, len: i - start, line });
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct(b), off: i, len: 1, line });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let m = mask_source("let x = \"unwrap\"; // unwrap here\n/* unwrap */ let y = 1;\n");
        assert!(!m.code.contains("unwrap"));
        assert_eq!(m.comments.len(), 1, "only line comments are collected");
        assert!(m.comments[0].1.contains("unwrap here"));
        assert_eq!(m.code.len(), 57);
    }

    #[test]
    fn tokenizes_idents_numbers_puncts() {
        let m = mask_source("fn f(a: u64) -> f64 { a as f64 / 2.0 }");
        let toks = tokenize(&m.code);
        let texts: Vec<&str> = toks.iter().map(|t| t.text(&m.code)).collect();
        assert_eq!(
            texts,
            vec![
                "fn", "f", "(", "a", ":", "u64", ")", "-", ">", "f64", "{", "a", "as", "f64", "/",
                "2.0", "}"
            ]
        );
        assert_eq!(toks[15].kind, TokKind::Float);
    }

    #[test]
    fn range_is_not_a_float() {
        let m = mask_source("for i in 0..10 {}");
        let toks = tokenize(&m.code);
        assert_eq!(toks[3].kind, TokKind::Int);
        assert_eq!(toks[3].text(&m.code), "0");
        assert!(toks[4].is_punct(b'.'));
    }

    #[test]
    fn lifetimes_survive_masking() {
        let m = mask_source("fn f<'a>(x: &'a str) {}");
        assert!(m.code.contains("'a"));
    }

    #[test]
    fn raw_strings_blank() {
        let m = mask_source("let s = r#\"panic! unwrap\"#;");
        assert!(!m.code.contains("panic"));
    }
}
