//! Token-level item parser.
//!
//! Walks the masked token stream of one file and recovers the structure
//! the passes need: functions (with module path, impl type, test-ness and
//! body events), metric recording call sites, and bare-primitive unit
//! declarations. The grammar subset is deliberately approximate — it must
//! never panic or loop on any input, and over-approximation (an extra call
//! edge, a spurious site that a pragma then documents) is acceptable where
//! exactness would need full type information.

use crate::lex::{self, Tok, TokKind};
use crate::model::{
    BindKind, CallRef, FnInfo, MetricSite, ParsedFile, Site, SiteKind, SyncEvent, SyncOp, UnitCtx,
    UnitSite,
};

/// Primitive types the unit-hygiene pass considers "bare".
const PRIMS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Telemetry recording methods whose first argument must be a `keys::`
/// const. `add` is ambiguous (`Add::add`), so it only counts when the
/// receiver chain visibly ends in `telemetry`.
const METRIC_METHODS: &[&str] = &[
    "incr",
    "gauge",
    "observe",
    "counter",
    "counter_total",
    "gauge_value",
    "histogram",
    "histogram_total",
];

/// Macro names that unconditionally panic.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Macro names that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Method names that (may) hit the allocator. Also consulted by the call
/// graph: these verbs are counted as allocation sites where they occur and
/// are exempt from name-based method resolution (see [`crate::graph`]).
pub const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "collect",
    "clone",
    "cloned",
    "to_vec",
    "to_owned",
    "to_string",
    "extend",
    "extend_from_slice",
    "resize",
    "reserve",
    "insert",
];

/// `Type::ctor` paths that allocate (matched on the last two segments).
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Box", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("VecDeque", "new"),
];

/// Condvar wait methods (all release their guard for the wait's duration).
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Accessor verbs skipped when reducing a receiver chain to a lock
/// identity: `self.queues.get(qi).expect(…).lock()` locks `queues`.
const ACCESSOR_VERBS: &[&str] = &[
    "get",
    "get_mut",
    "expect",
    "unwrap",
    "as_ref",
    "as_mut",
    "as_deref",
    "borrow",
    "borrow_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "first",
    "last",
    "entry",
    "clone",
    "deref",
    "deref_mut",
];

/// Qualified paths that block the calling thread, matched on the last two
/// segments: `(qualifier, name, category)`.
const BLOCKING_PATHS: &[(&str, &str, &str)] = &[
    ("thread", "sleep", "thread-sleep"),
    ("thread", "park", "thread-park"),
    ("fs", "read", "file-io"),
    ("fs", "read_to_string", "file-io"),
    ("fs", "write", "file-io"),
    ("fs", "read_dir", "file-io"),
    ("fs", "copy", "file-io"),
    ("File", "open", "file-io"),
    ("File", "create", "file-io"),
    ("TcpStream", "connect", "socket-io"),
    ("TcpListener", "bind", "socket-io"),
    ("UdpSocket", "bind", "socket-io"),
];

/// `std::sync::atomic::Ordering` variants. The variant names disambiguate
/// from `cmp::Ordering` (`Less`/`Equal`/`Greater`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "in", "as", "move", "else", "let", "fn",
    "unsafe", "ref", "mut", "box", "await", "yield", "break", "continue", "where", "impl", "dyn",
];

/// True when `ident` names a bitrate quantity that must use the `Bitrate`
/// newtype instead of a bare primitive.
#[must_use]
pub fn is_unit_ident(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    lower == "bps"
        || lower == "kbps"
        || lower == "mbps"
        || lower.ends_with("_bps")
        || lower.ends_with("_kbps")
        || lower.ends_with("_mbps")
        || lower.contains("bitrate")
}

struct Parser<'a> {
    toks: &'a [Tok],
    code: &'a str,
    raw: &'a str,
    i: usize,
    out: ParsedFile,
    /// Brace depth inside the current function body (entered at 1).
    body_depth: usize,
    /// Depths at which `while`/`loop` bodies opened, innermost last.
    loop_stack: Vec<usize>,
    /// A `while`/`loop` keyword was seen; the next `{` opens its body.
    pending_loop: bool,
    /// `(var, cond)` of the current statement's `let` binding, when the
    /// statement started with one (`cond` = `if let` / `while let`).
    cur_let: Option<(String, bool)>,
    /// Name and line of the most recent method call, for tying an
    /// `Ordering::` argument to its atomic operation.
    last_method: Option<(String, usize)>,
}

/// Parse one file. `module_prefix` is the module path implied by the file's
/// location under `src/` (empty for `lib.rs` / binaries).
///
/// A file named `tests.rs` or living under a `tests/` directory is a test
/// module pulled in via `#[cfg(test)] mod tests;` (or an integration-test
/// tree): the gating attribute sits in the *parent* file, so it is
/// detected here from the path instead.
#[must_use]
pub fn parse_file(
    file_label: &str,
    krate: &str,
    module_prefix: &[String],
    src: &str,
) -> ParsedFile {
    let test_file = file_label.ends_with("/tests.rs")
        || file_label == "tests.rs"
        || file_label.split('/').any(|seg| seg == "tests");
    let masked = lex::mask_source(src);
    let toks = lex::tokenize(&masked.code);
    let mut p = Parser {
        toks: &toks,
        code: &masked.code,
        raw: src,
        i: 0,
        body_depth: 0,
        loop_stack: Vec::new(),
        pending_loop: false,
        cur_let: None,
        last_method: None,
        out: ParsedFile {
            file: file_label.to_string(),
            krate: krate.to_string(),
            comments: masked.comments,
            src_lines: src.lines().map(str::to_string).collect(),
            ..ParsedFile::default()
        },
    };
    let mut module = module_prefix.to_vec();
    p.parse_items(&mut module, None, test_file);
    p.out
}

impl Parser<'_> {
    fn peek(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.i + n)
    }

    fn text(&self, t: &Tok) -> &str {
        t.text(self.code)
    }

    fn raw_line(&self, line: usize) -> &str {
        self.out.src_lines.get(line - 1).map_or("", String::as_str)
    }

    /// Skip a balanced delimiter pair starting at the current token (which
    /// must be the opener). Leaves `i` just past the closer.
    fn skip_balanced(&mut self, open: u8, close: u8) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skip a balanced `<…>` generic list, treating `->` as a unit so the
    /// `>` of a nested fn-pointer return type does not close the list.
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct(b'-') && self.peek(1).is_some_and(|n| n.is_punct(b'>')) {
                self.i += 2;
                continue;
            }
            if t.is_punct(b'<') {
                depth += 1;
            } else if t.is_punct(b'>') {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Consume an attribute starting at `#` (or `#!`). Returns
    /// `(is_cfg_test, is_cfg_debug)` — whether it gates on `test` or
    /// `debug_assertions`.
    fn consume_attr(&mut self) -> (bool, bool) {
        self.i += 1; // '#'
        if self.peek(0).is_some_and(|t| t.is_punct(b'!')) {
            self.i += 1;
        }
        let start = self.i;
        if self.peek(0).is_some_and(|t| t.is_punct(b'[')) {
            self.skip_balanced(b'[', b']');
        }
        let attr_toks = &self.toks[start..self.i];
        let words: Vec<&str> = attr_toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(self.code))
            .collect();
        let is_cfg = words.first() == Some(&"cfg");
        // `cfg(not(test))` / `cfg(not(debug_assertions))` gate code that IS
        // live in release — the negation must not trigger the skip.
        let negated = words.contains(&"not");
        let test =
            (is_cfg && !negated && words.contains(&"test")) || words.first() == Some(&"test");
        let debug = is_cfg && !negated && words.contains(&"debug_assertions");
        (test, debug)
    }

    /// Item-level parse loop. Returns at the `}` closing the enclosing
    /// item body (or at end of file).
    #[allow(clippy::too_many_lines)]
    fn parse_items(&mut self, module: &mut Vec<String>, type_ctx: Option<&str>, in_test: bool) {
        let mut pending_test = false;
        let mut pending_attr_line: Option<usize> = None;
        while let Some(t) = self.peek(0) {
            match t.kind {
                TokKind::Punct(b'#') => {
                    let line = t.line;
                    let (is_test, _) = self.consume_attr();
                    pending_test |= is_test;
                    pending_attr_line.get_or_insert(line);
                }
                TokKind::Punct(b'}') => {
                    // Closer of the enclosing item body.
                    self.i += 1;
                    return;
                }
                TokKind::Punct(b'{') => {
                    // Unexpected brace at item level: skip it wholesale.
                    self.skip_balanced(b'{', b'}');
                    (pending_test, pending_attr_line) = (false, None);
                }
                TokKind::Ident => {
                    let word = self.text(t).to_string();
                    match word.as_str() {
                        "mod" => {
                            let name =
                                self.peek(1).map(|n| self.text(n).to_string()).unwrap_or_default();
                            self.i += 2;
                            match self.peek(0) {
                                Some(n) if n.is_punct(b'{') => {
                                    self.i += 1;
                                    module.push(name);
                                    self.parse_items(module, None, in_test || pending_test);
                                    module.pop();
                                }
                                _ => {
                                    // `mod x;` — skip to `;`.
                                    while self.peek(0).is_some_and(|n| !n.is_punct(b';')) {
                                        self.i += 1;
                                    }
                                    self.i += 1;
                                }
                            }
                            (pending_test, pending_attr_line) = (false, None);
                        }
                        "use" => {
                            while self.peek(0).is_some_and(|n| !n.is_punct(b';')) {
                                self.i += 1;
                            }
                            self.i += 1;
                            (pending_test, pending_attr_line) = (false, None);
                        }
                        "impl" | "trait" => {
                            let ty = self.parse_impl_header(&word);
                            if self.peek(0).is_some_and(|n| n.is_punct(b'{')) {
                                self.i += 1;
                                self.parse_items(module, ty.as_deref(), in_test || pending_test);
                            }
                            (pending_test, pending_attr_line) = (false, None);
                        }
                        "fn" => {
                            let attr_line = pending_attr_line.take().unwrap_or(t.line);
                            self.parse_fn(module, type_ctx, in_test || pending_test, attr_line);
                            pending_test = false;
                        }
                        "struct" | "enum" | "union" => {
                            self.parse_adt(in_test || pending_test);
                            (pending_test, pending_attr_line) = (false, None);
                        }
                        "const" | "static" => {
                            // `const NAME: TYPE = …;` (but `const fn` is a
                            // function — leave `fn` for the next loop turn).
                            if self.peek(1).is_some_and(|n| self.text(n) == "fn") {
                                self.i += 1;
                            } else {
                                self.parse_const_item(in_test || pending_test);
                                (pending_test, pending_attr_line) = (false, None);
                            }
                        }
                        _ => {
                            self.i += 1;
                        }
                    }
                }
                _ => {
                    self.i += 1;
                }
            }
        }
    }

    /// Parse the header of an `impl`/`trait` item, returning the self-type
    /// (or trait) name. Leaves `i` at the body `{` (or past `;`).
    fn parse_impl_header(&mut self, kw: &str) -> Option<String> {
        self.i += 1; // 'impl' / 'trait'
        let mut last_seg: Option<String> = None;
        let mut after_for = false;
        let mut for_seg: Option<String> = None;
        while let Some(t) = self.peek(0) {
            match t.kind {
                TokKind::Punct(b'{') | TokKind::Punct(b';') => break,
                TokKind::Punct(b'<') => self.skip_generics(),
                TokKind::Ident => {
                    let w = self.text(t).to_string();
                    match w.as_str() {
                        "for" if kw == "impl" => {
                            after_for = true;
                            self.i += 1;
                        }
                        "where" => {
                            // Bounds until the body brace.
                            while self
                                .peek(0)
                                .is_some_and(|n| !n.is_punct(b'{') && !n.is_punct(b';'))
                            {
                                if self.peek(0).is_some_and(|n| n.is_punct(b'<')) {
                                    self.skip_generics();
                                } else {
                                    self.i += 1;
                                }
                            }
                        }
                        _ => {
                            if after_for {
                                for_seg = Some(w);
                            } else {
                                last_seg = Some(w);
                            }
                            self.i += 1;
                        }
                    }
                }
                _ => self.i += 1,
            }
        }
        for_seg.or(last_seg)
    }

    /// Scan a struct/enum/union body for `ident: Prim` field declarations.
    fn parse_adt(&mut self, in_test: bool) {
        self.i += 1; // keyword
                     // Skip name + generics + where clause until `{`, `(` or `;`.
        loop {
            match self.peek(0) {
                None => return,
                Some(t) if t.is_punct(b'<') => self.skip_generics(),
                Some(t) if t.is_punct(b'(') => {
                    // Tuple struct: unnamed fields, nothing to check.
                    self.skip_balanced(b'(', b')');
                }
                Some(t) if t.is_punct(b';') => {
                    self.i += 1;
                    return;
                }
                Some(t) if t.is_punct(b'{') => break,
                _ => self.i += 1,
            }
        }
        let start = self.i;
        self.skip_balanced(b'{', b'}');
        let body = &self.toks[start..self.i];
        let mut j = 0usize;
        while j + 2 < body.len() {
            if body[j].kind == TokKind::Ident
                && body[j + 1].is_punct(b':')
                && body[j + 2].kind == TokKind::Ident
            {
                let ident = body[j].text(self.code);
                let prim = body[j + 2].text(self.code);
                if is_unit_ident(ident) && PRIMS.contains(&prim) {
                    self.out.unit_sites.push(UnitSite {
                        line: body[j].line,
                        ident: ident.to_string(),
                        prim: prim.to_string(),
                        ctx: UnitCtx::Field,
                        is_test: in_test,
                    });
                }
            }
            j += 1;
        }
    }

    /// `const NAME: TYPE = …;` — unit-hygiene check on the item name.
    fn parse_const_item(&mut self, in_test: bool) {
        self.i += 1; // 'const' / 'static'
                     // Optional `mut` on statics.
        if self.peek(0).is_some_and(|t| self.text(t) == "mut") {
            self.i += 1;
        }
        let (name, line) = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => (self.text(t).to_string(), t.line),
            _ => (String::new(), 0),
        };
        self.i += 1;
        if self.peek(0).is_some_and(|t| t.is_punct(b':')) {
            self.i += 1;
            if let Some(t) = self.peek(0) {
                if t.kind == TokKind::Ident {
                    let prim = self.text(t).to_string();
                    if is_unit_ident(&name) && PRIMS.contains(&prim.as_str()) {
                        self.out.unit_sites.push(UnitSite {
                            line,
                            ident: name.clone(),
                            prim,
                            ctx: UnitCtx::Const,
                            is_test: in_test,
                        });
                    }
                }
            }
        }
        while self.peek(0).is_some_and(|t| !t.is_punct(b';')) {
            if self.peek(0).is_some_and(|t| t.is_punct(b'{')) {
                self.skip_balanced(b'{', b'}');
            } else {
                self.i += 1;
            }
        }
        self.i += 1;
    }

    /// Parse `fn name(params) -> ret { body }` starting at the `fn` token.
    fn parse_fn(
        &mut self,
        module: &[String],
        type_ctx: Option<&str>,
        in_test: bool,
        start_line: usize,
    ) {
        let fn_line = self.peek(0).map_or(0, |t| t.line);
        self.i += 1; // 'fn'
        let name = match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => self.text(t).to_string(),
            _ => return,
        };
        self.i += 1;
        if self.peek(0).is_some_and(|t| t.is_punct(b'<')) {
            self.skip_generics();
        }
        // Parameter list.
        let params_start = self.i;
        if self.peek(0).is_some_and(|t| t.is_punct(b'(')) {
            self.skip_balanced(b'(', b')');
        }
        let params = &self.toks[params_start..self.i];
        if !in_test {
            let mut j = 0usize;
            while j + 2 < params.len() {
                if params[j].kind == TokKind::Ident && params[j + 1].is_punct(b':') {
                    // Find the first type ident after ':', skipping
                    // `&`, `mut`, lifetimes.
                    let mut k = j + 2;
                    while k < params.len()
                        && (params[k].is_punct(b'&')
                            || params[k].is_punct(b'\'')
                            || (params[k].kind == TokKind::Ident
                                && params[k].text(self.code) == "mut"))
                    {
                        k += 1;
                    }
                    if k < params.len() && params[k].kind == TokKind::Ident {
                        let ident = params[j].text(self.code);
                        let prim = params[k].text(self.code);
                        if is_unit_ident(ident) && PRIMS.contains(&prim) {
                            self.out.unit_sites.push(UnitSite {
                                line: params[j].line,
                                ident: ident.to_string(),
                                prim: prim.to_string(),
                                ctx: UnitCtx::Param,
                                is_test: in_test,
                            });
                        }
                    }
                }
                j += 1;
            }
        }
        // Return type.
        if self.peek(0).is_some_and(|t| t.is_punct(b'-'))
            && self.peek(1).is_some_and(|t| t.is_punct(b'>'))
        {
            self.i += 2;
            // First ident of the return type.
            let mut k = self.i;
            while let Some(t) = self.toks.get(k) {
                if t.kind == TokKind::Ident && self.text(t) != "mut" {
                    if !in_test && is_unit_ident(&name) && PRIMS.contains(&self.text(t)) {
                        self.out.unit_sites.push(UnitSite {
                            line: fn_line,
                            ident: name.clone(),
                            prim: self.text(t).to_string(),
                            ctx: UnitCtx::Return,
                            is_test: in_test,
                        });
                    }
                    break;
                }
                if t.is_punct(b'{') || t.is_punct(b';') {
                    break;
                }
                k += 1;
            }
        }
        // Skip to body `{` or declaration `;` (through any where clause).
        loop {
            match self.peek(0) {
                None => return,
                Some(t) if t.is_punct(b';') => {
                    self.i += 1;
                    // Trait method declaration without body.
                    self.out.fns.push(FnInfo {
                        file: self.out.file.clone(),
                        krate: self.out.krate.clone(),
                        module: module.to_vec(),
                        type_ctx: type_ctx.map(str::to_string),
                        name,
                        line: fn_line,
                        start_line,
                        is_test: in_test,
                        calls: Vec::new(),
                        sites: Vec::new(),
                        sync: Vec::new(),
                    });
                    return;
                }
                Some(t) if t.is_punct(b'{') => break,
                Some(t) if t.is_punct(b'<') => self.skip_generics(),
                _ => self.i += 1,
            }
        }
        let mut info = FnInfo {
            file: self.out.file.clone(),
            krate: self.out.krate.clone(),
            module: module.to_vec(),
            type_ctx: type_ctx.map(str::to_string),
            name,
            line: fn_line,
            start_line,
            is_test: in_test,
            calls: Vec::new(),
            sites: Vec::new(),
            sync: Vec::new(),
        };
        self.i += 1; // '{'
        self.parse_body(&mut info, 1);
        self.out.fns.push(info);
    }

    /// Walk a function body collecting calls, panic/alloc sites, and
    /// synchronization events. `depth` is the brace depth (entered at 1).
    #[allow(clippy::too_many_lines)]
    fn parse_body(&mut self, info: &mut FnInfo, depth: usize) {
        self.body_depth = depth;
        self.loop_stack.clear();
        self.pending_loop = false;
        self.cur_let = None;
        self.last_method = None;
        while let Some(t) = self.peek(0) {
            let line = t.line;
            match t.kind {
                TokKind::Punct(b'{') => {
                    self.body_depth += 1;
                    if self.pending_loop {
                        self.loop_stack.push(self.body_depth);
                        self.pending_loop = false;
                    }
                    self.cur_let = None;
                    self.i += 1;
                }
                TokKind::Punct(b'}') => {
                    self.body_depth -= 1;
                    while self.loop_stack.last().is_some_and(|&d| d > self.body_depth) {
                        self.loop_stack.pop();
                    }
                    self.i += 1;
                    if self.body_depth == 0 {
                        return;
                    }
                    info.sync.push(SyncEvent {
                        line,
                        depth: self.body_depth,
                        op: SyncOp::ScopeEnd,
                    });
                }
                TokKind::Punct(b';') => {
                    info.sync.push(SyncEvent { line, depth: self.body_depth, op: SyncOp::Semi });
                    self.cur_let = None;
                    self.i += 1;
                }
                TokKind::Punct(b'#') => {
                    let (_, is_debug) = self.consume_attr();
                    if is_debug {
                        // Skip the debug-only statement/block: the release
                        // hot path never executes it.
                        self.skip_debug_statement();
                    }
                }
                TokKind::Punct(b'[') => {
                    // Indexing when preceded by a value-producing token.
                    let prev = self.i.checked_sub(1).and_then(|p| self.toks.get(p));
                    let is_index = match prev {
                        Some(p) => match p.kind {
                            TokKind::Ident => !NON_CALL_KEYWORDS.contains(&p.text(self.code)),
                            TokKind::Punct(b')') | TokKind::Punct(b']') => true,
                            _ => false,
                        },
                        None => false,
                    };
                    if is_index && !info.is_test {
                        info.sites.push(Site { line, kind: SiteKind::Panic, what: "index" });
                    }
                    self.i += 1;
                }
                TokKind::Punct(b'/') | TokKind::Punct(b'%') => {
                    self.maybe_division_site(info);
                }
                TokKind::Punct(b'.') => {
                    self.method_or_field(info);
                }
                TokKind::Ident => {
                    self.ident_in_body(info);
                }
                _ => {
                    self.i += 1;
                }
            }
        }
    }

    /// After a `#[cfg(debug_assertions)]` attribute inside a body: skip the
    /// gated statement — through the first balanced block and a trailing
    /// `;`, or to a bare `;` for block-less statements.
    fn skip_debug_statement(&mut self) {
        while let Some(t) = self.peek(0) {
            if t.is_punct(b'{') {
                self.skip_balanced(b'{', b'}');
                if self.peek(0).is_some_and(|n| n.is_punct(b';')) {
                    self.i += 1;
                }
                return;
            }
            if t.is_punct(b';') {
                self.i += 1;
                return;
            }
            if t.is_punct(b'}') {
                return; // malformed gate at block end — don't escape the body
            }
            self.i += 1;
        }
    }

    /// `/` or `%` in binary position with a non-literal divisor.
    fn maybe_division_site(&mut self, info: &mut FnInfo) {
        let t = &self.toks[self.i];
        let line = t.line;
        let prev = self.i.checked_sub(1).and_then(|p| self.toks.get(p));
        let binary = matches!(
            prev.map(|p| p.kind),
            Some(TokKind::Ident | TokKind::Int | TokKind::Float)
                | Some(TokKind::Punct(b')'))
                | Some(TokKind::Punct(b']'))
        );
        self.i += 1;
        if !binary || info.is_test {
            return;
        }
        let mut next = self.peek(0);
        // `a /= b` — divisor is one token further.
        if next.is_some_and(|n| n.is_punct(b'=')) {
            self.i += 1;
            next = self.peek(0);
        }
        let divisor_runtime = match next.map(|n| n.kind) {
            Some(TokKind::Ident) => !matches!(next.map(|n| n.text(self.code)), Some("self")),
            Some(TokKind::Punct(b'(')) => true,
            _ => false,
        };
        // Best-effort float exclusion: f64/f32 division cannot panic. The
        // raw line text is checked because tokens carry no type info.
        let float_ctx = {
            let raw = self.raw_line(line);
            raw.contains("f64")
                || raw.contains("f32")
                || prev.is_some_and(|p| p.kind == TokKind::Float)
        };
        if divisor_runtime && !float_ctx {
            info.sites.push(Site { line, kind: SiteKind::Panic, what: "div" });
        }
    }

    /// `.name` — method call or field access.
    fn method_or_field(&mut self, info: &mut FnInfo) {
        let dot = self.i;
        self.i += 1; // '.'
        let Some(t) = self.peek(0) else { return };
        if t.kind != TokKind::Ident {
            return; // tuple index `.0`, `..` range, etc.
        }
        let name = self.text(t).to_string();
        let line = t.line;
        let name_off = t.off;
        self.i += 1;
        if name == "await" && !self.peek(0).is_some_and(|n| n.is_punct(b'(')) {
            // Postfix `.await` — a yield point, not a field access.
            info.sync.push(SyncEvent { line, depth: self.body_depth, op: SyncOp::Await });
            return;
        }
        // Optional turbofish.
        if self.peek(0).is_some_and(|n| n.is_punct(b':'))
            && self.peek(1).is_some_and(|n| n.is_punct(b':'))
            && self.peek(2).is_some_and(|n| n.is_punct(b'<'))
        {
            self.i += 2;
            self.skip_generics();
        }
        if !self.peek(0).is_some_and(|n| n.is_punct(b'(')) {
            return; // field access
        }
        // It's a method call. Record the edge and classify the site.
        info.calls.push((line, CallRef::Method(name.clone())));
        info.sync.push(SyncEvent {
            line,
            depth: self.body_depth,
            op: SyncOp::Call { index: info.calls.len() - 1 },
        });
        self.last_method = Some((name.clone(), line));
        self.sync_method_event(info, &name, line, dot);
        match name.as_str() {
            "unwrap" if !info.is_test => {
                info.sites.push(Site { line, kind: SiteKind::Panic, what: "unwrap" });
            }
            "expect" if !info.is_test => {
                // The sanctioned form documents the invariant in the
                // message: `.expect("invariant: …")`. The argument is
                // masked, so check the raw source after the call token.
                let rest = &self.raw[name_off..];
                let documented = rest
                    .split_once('(')
                    .is_some_and(|(_, after)| after.trim_start().starts_with("\"invariant:"));
                let kind = if documented { SiteKind::DocumentedInvariant } else { SiteKind::Panic };
                info.sites.push(Site { line, kind, what: "expect" });
            }
            m if ALLOC_METHODS.contains(&m) && !info.is_test => {
                info.sites.push(Site {
                    line,
                    kind: SiteKind::Alloc,
                    what: ALLOC_METHODS.iter().find(|a| **a == m).copied().unwrap_or("alloc"),
                });
            }
            m if METRIC_METHODS.contains(&m) => {
                self.record_metric_site(&name, line);
            }
            "add" => {
                // Only a metric when the receiver chain visibly ends in
                // `telemetry` (e.g. `self.telemetry.add(…)`).
                let recv =
                    self.i.checked_sub(3).and_then(|p| self.toks.get(p)).map(|t| t.text(self.code));
                if recv == Some("telemetry") {
                    self.record_metric_site(&name, line);
                }
            }
            _ => {}
        }
        self.i += 1; // move past '(' — arguments are scanned as normal tokens
    }

    /// Classify a method call as a synchronization event (guard
    /// acquisition, condvar wait, blocking receive/join). `i` sits on the
    /// call's opening `(`; `dot` is the token index of the receiver `.`.
    fn sync_method_event(&mut self, info: &mut FnInfo, name: &str, line: usize, dot: usize) {
        let zero_arg = self.peek(1).is_some_and(|n| n.is_punct(b')'));
        let op = match name {
            // `read`/`write` only acquire when zero-argument (the
            // `RwLock` signature); `lock` has no common non-lock overload.
            "lock" => Some(self.acquire_op(name, dot)),
            "read" | "write" if zero_arg => Some(self.acquire_op(name, dot)),
            w if WAIT_METHODS.contains(&w) => {
                let guard_arg = self
                    .peek(1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text(self.code).to_string());
                Some(SyncOp::Wait {
                    method: name.to_string(),
                    guard_arg,
                    in_loop: !self.loop_stack.is_empty(),
                })
            }
            "recv" | "recv_timeout" | "recv_deadline" => {
                Some(SyncOp::Block { what: "channel-recv" })
            }
            "join" if zero_arg => Some(SyncOp::Block { what: "thread-join" }),
            _ => None,
        };
        if let Some(op) = op {
            info.sync.push(SyncEvent { line, depth: self.body_depth, op });
        }
    }

    /// Build an [`SyncOp::Acquire`] for the lock method whose receiver `.`
    /// sits at token index `dot`.
    fn acquire_op(&self, method: &str, dot: usize) -> SyncOp {
        let segs = self.receiver_chain(dot);
        let lock = segs
            .iter()
            .rev()
            .find(|s| !ACCESSOR_VERBS.contains(&s.as_str()))
            .cloned()
            .unwrap_or_else(|| "<expr>".to_string());
        let chain = segs.join(".");
        let (bind, var) = match self.cur_let.clone() {
            Some((v, true)) => (BindKind::CondLet, Some(v)),
            Some((v, false)) => (BindKind::Let, Some(v)),
            None => (BindKind::Temp, None),
        };
        SyncOp::Acquire { method: method.to_string(), lock, chain, bind, var }
    }

    /// Walk backwards from the `.` at token index `dot`, collecting the
    /// receiver chain's identifier segments in source order. Balanced
    /// `(…)`/`[…]` groups (call arguments, indexing) are skipped; the walk
    /// stops at anything that is not part of a field/method/path chain.
    fn receiver_chain(&self, dot: usize) -> Vec<String> {
        let mut segs: Vec<String> = Vec::new();
        let mut k = dot;
        while k > 0 {
            let p = &self.toks[k - 1];
            match p.kind {
                TokKind::Ident => {
                    let w = p.text(self.code);
                    if NON_CALL_KEYWORDS.contains(&w) {
                        break;
                    }
                    segs.push(w.to_string());
                    k -= 1;
                    if k == 0 {
                        break;
                    }
                    let q = &self.toks[k - 1];
                    if q.is_punct(b'.') {
                        k -= 1;
                    } else if q.is_punct(b':') && k >= 2 && self.toks[k - 2].is_punct(b':') {
                        k -= 2;
                    } else {
                        break;
                    }
                }
                TokKind::Punct(b')') | TokKind::Punct(b']') => {
                    let (open, close) = if p.is_punct(b')') { (b'(', b')') } else { (b'[', b']') };
                    let mut depth = 0usize;
                    let mut m = k;
                    let mut matched = false;
                    while m > 0 {
                        m -= 1;
                        let t = &self.toks[m];
                        if t.is_punct(close) {
                            depth += 1;
                        } else if t.is_punct(open) {
                            depth -= 1;
                            if depth == 0 {
                                matched = true;
                                break;
                            }
                        }
                    }
                    if !matched {
                        break;
                    }
                    k = m;
                }
                TokKind::Punct(b'?') => k -= 1,
                _ => break,
            }
        }
        segs.reverse();
        segs
    }

    /// Classify the first argument of a metric recording call. `i` sits on
    /// the opening `(`.
    fn record_metric_site(&mut self, method: &str, line: usize) {
        let mut j = self.i + 1;
        // A masked string literal leaves no tokens, so the next token after
        // `(` would be `,` or `)` — that is the literal-name violation.
        let keyed = match self.toks.get(j) {
            Some(t) if t.kind == TokKind::Ident => {
                // Walk the path: `keys::X`, `gso_telemetry::keys::X`, or a
                // bare variable. Any segment named `keys` qualifies.
                let mut segs = vec![t.text(self.code)];
                j += 1;
                while self.toks.get(j).is_some_and(|n| n.is_punct(b':'))
                    && self.toks.get(j + 1).is_some_and(|n| n.is_punct(b':'))
                {
                    j += 2;
                    if let Some(n) = self.toks.get(j) {
                        if n.kind == TokKind::Ident {
                            segs.push(n.text(self.code));
                            j += 1;
                        }
                    }
                }
                segs.len() >= 2 && segs[..segs.len() - 1].contains(&"keys")
            }
            _ => false,
        };
        let raw = self.raw_line(line);
        let arg = raw
            .split_once('(')
            .map_or("", |(_, after)| after.split(',').next().unwrap_or(after).trim())
            .to_string();
        self.out.metric_sites.push(MetricSite { line, method: method.to_string(), keyed, arg });
    }

    /// Identifier in expression position: macro, path call, bare call, or
    /// `let` binding (unit-hygiene).
    fn ident_in_body(&mut self, info: &mut FnInfo) {
        let t = &self.toks[self.i];
        let word = self.text(t).to_string();
        let line = t.line;

        // `let ident: Prim` — unit-hygiene on annotated bindings.
        if word == "let" {
            if let (Some(n1), Some(n2), Some(n3)) = (self.peek(1), self.peek(2), self.peek(3)) {
                if n1.kind == TokKind::Ident && n2.is_punct(b':') && n3.kind == TokKind::Ident {
                    let ident = self.text(n1);
                    let prim = self.text(n3);
                    if is_unit_ident(ident) && PRIMS.contains(&prim) && !info.is_test {
                        self.out.unit_sites.push(UnitSite {
                            line: n1.line,
                            ident: ident.to_string(),
                            prim: prim.to_string(),
                            ctx: UnitCtx::Let,
                            is_test: info.is_test,
                        });
                    }
                }
            }
            // Capture the bound variable so a `.lock()` in this statement's
            // initializer is tied to a named guard. The last pattern ident
            // before `=` (skipping `mut`/`ref`, stopping at a type
            // annotation) is the binding: `let Ok(mut sig) = …` → `sig`.
            let cond = self
                .i
                .checked_sub(1)
                .and_then(|p| self.toks.get(p))
                .is_some_and(|p| matches!(p.text(self.code), "if" | "while"));
            let mut var = None;
            let mut k = self.i + 1;
            while let Some(n) = self.toks.get(k) {
                if n.is_punct(b'=') || n.is_punct(b';') || n.is_punct(b'{') || n.is_punct(b':') {
                    break;
                }
                if n.kind == TokKind::Ident {
                    let w = n.text(self.code);
                    if !matches!(w, "mut" | "ref") {
                        var = Some(w.to_string());
                    }
                }
                if k - self.i > 24 {
                    break;
                }
                k += 1;
            }
            self.cur_let = var.map(|v| (v, cond));
            self.i += 1;
            return;
        }

        // `while`/`loop` — the next `{` opens a loop body (condvar
        // predicate-loop discipline needs to know).
        if word == "while" || word == "loop" {
            self.pending_loop = true;
            self.i += 1;
            return;
        }

        // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
        if self.peek(1).is_some_and(|n| n.is_punct(b'!'))
            && self
                .peek(2)
                .is_some_and(|n| n.is_punct(b'(') || n.is_punct(b'[') || n.is_punct(b'{'))
        {
            if !info.is_test {
                if PANIC_MACROS.contains(&word.as_str()) {
                    info.sites.push(Site { line, kind: SiteKind::Panic, what: "panic-macro" });
                } else if ALLOC_MACROS.contains(&word.as_str()) {
                    let what = if word == "format" { "format!" } else { "vec!" };
                    info.sites.push(Site { line, kind: SiteKind::Alloc, what });
                }
            }
            self.i += 2;
            if word.starts_with("debug_assert") {
                // Debug-only arguments: skip them entirely.
                let (open, close) = match self.peek(0) {
                    Some(n) if n.is_punct(b'[') => (b'[', b']'),
                    Some(n) if n.is_punct(b'{') => (b'{', b'}'),
                    _ => (b'(', b')'),
                };
                self.skip_balanced(open, close);
            }
            return;
        }

        // Nested `fn` definition inside a body: parse its name so the `(`
        // is not mistaken for a call, then continue scanning its body as
        // part of this function (conservative).
        if word == "fn" {
            self.i += 1;
            if self.peek(0).is_some_and(|n| n.kind == TokKind::Ident) {
                self.i += 1;
            }
            return;
        }

        if NON_CALL_KEYWORDS.contains(&word.as_str()) {
            self.i += 1;
            return;
        }

        // Collect a `::`-separated path.
        let mut segs = vec![word];
        let mut j = self.i + 1;
        loop {
            if self.toks.get(j).is_some_and(|n| n.is_punct(b':'))
                && self.toks.get(j + 1).is_some_and(|n| n.is_punct(b':'))
            {
                match self.toks.get(j + 2) {
                    Some(n) if n.kind == TokKind::Ident => {
                        segs.push(self.text(n).to_string());
                        j += 3;
                    }
                    Some(n) if n.is_punct(b'<') => {
                        // Turbofish: skip to matching '>' from there.
                        self.i = j + 2;
                        self.skip_generics();
                        j = self.i;
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let is_call = self.toks.get(j).is_some_and(|n| n.is_punct(b'('));
        self.i = j;
        if !is_call {
            // Non-call path: an `Ordering::` variant in argument position
            // is an atomics-discipline event.
            if segs.len() >= 2
                && segs[segs.len() - 2] == "Ordering"
                && ATOMIC_ORDERINGS.contains(&segs[segs.len() - 1].as_str())
            {
                let op =
                    self.last_method.as_ref().filter(|(_, l)| *l == line).map(|(m, _)| m.clone());
                info.sync.push(SyncEvent {
                    line,
                    depth: self.body_depth,
                    op: SyncOp::AtomicOrdering { ordering: segs[segs.len() - 1].clone(), op },
                });
            }
            return;
        }
        self.i += 1; // past '('

        // Resolve `Self::` against the impl type.
        if segs.first().map(String::as_str) == Some("Self") {
            if let Some(ty) = &info.type_ctx {
                segs[0] = ty.clone();
            }
        }
        if segs.len() >= 2 {
            let a = segs[segs.len() - 2].as_str();
            let b = segs[segs.len() - 1].as_str();
            if !info.is_test && ALLOC_PATHS.iter().any(|(x, y)| *x == a && *y == b) {
                let what: &'static str = match (a, b) {
                    (_, "with_capacity") => "with_capacity",
                    ("Box", _) => "Box::new",
                    ("String", _) => "String::new",
                    _ => "ctor",
                };
                info.sites.push(Site { line, kind: SiteKind::Alloc, what });
            }
            let blocking =
                BLOCKING_PATHS.iter().find(|(x, y, _)| *x == a && *y == b).map(|(_, _, w)| *w);
            let is_drop = b == "drop" && (a == "mem" || a == "std");
            if let Some(what) = blocking {
                info.sync.push(SyncEvent {
                    line,
                    depth: self.body_depth,
                    op: SyncOp::Block { what },
                });
            }
            if is_drop {
                self.sync_drop_event(info, line);
            }
            info.calls.push((line, CallRef::Path(segs)));
            if blocking.is_none() && !is_drop {
                info.sync.push(SyncEvent {
                    line,
                    depth: self.body_depth,
                    op: SyncOp::Call { index: info.calls.len() - 1 },
                });
            }
        } else {
            let name = segs.pop().unwrap_or_default();
            // Tuple-struct constructors look identical to calls; CamelCase
            // names are overwhelmingly types, so skip them to keep the
            // graph clean (a CamelCase free fn would violate the workspace
            // naming lints anyway).
            if name.chars().next().is_some_and(char::is_lowercase) {
                if name == "drop" {
                    // `drop(x)` ends a guard; resolving it by name would
                    // blame every workspace `Drop` impl, so it gets a
                    // DropVar event instead of a Call event (the raw call
                    // edge is still recorded for the call graph).
                    self.sync_drop_event(info, line);
                    info.calls.push((line, CallRef::Bare(name)));
                } else {
                    info.calls.push((line, CallRef::Bare(name)));
                    info.sync.push(SyncEvent {
                        line,
                        depth: self.body_depth,
                        op: SyncOp::Call { index: info.calls.len() - 1 },
                    });
                }
            }
        }
    }

    /// Emit a [`SyncOp::DropVar`] for the `drop(var)` whose argument list
    /// `i` has just entered.
    fn sync_drop_event(&mut self, info: &mut FnInfo, line: usize) {
        let var = self
            .peek(0)
            .filter(|n| n.kind == TokKind::Ident)
            .map(|n| n.text(self.code).to_string());
        if let Some(var) = var {
            info.sync.push(SyncEvent { line, depth: self.body_depth, op: SyncOp::DropVar { var } });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("test.rs", "test", &[], src)
    }

    #[test]
    fn finds_free_fn_and_method() {
        let p = parse("fn alpha() {}\nimpl Foo { fn beta(&self) { alpha(); } }\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qualified(), "test::alpha");
        assert_eq!(p.fns[1].qualified(), "test::Foo::beta");
        assert_eq!(p.fns[1].calls, vec![(2, CallRef::Bare("alpha".into()))]);
    }

    #[test]
    fn classifies_panic_sites() {
        let p = parse(
            "fn f(v: &[u32], i: usize) -> u32 {\n    let a = v[i];\n    let b = v.get(0).unwrap();\n    panic!(\"no\");\n}\n",
        );
        let whats: Vec<&str> = p.fns[0].sites.iter().map(|s| s.what).collect();
        assert!(whats.contains(&"index"));
        assert!(whats.contains(&"unwrap"));
        assert!(whats.contains(&"panic-macro"));
    }

    #[test]
    fn documented_expect_is_not_a_panic() {
        let p = parse("fn f(x: Option<u32>) -> u32 { x.expect(\"invariant: set by caller\") }\n");
        assert_eq!(p.fns[0].sites.len(), 1);
        assert_eq!(p.fns[0].sites[0].kind, SiteKind::DocumentedInvariant);
        let p = parse("fn f(x: Option<u32>) -> u32 { x.expect(\"whatever\") }\n");
        assert_eq!(p.fns[0].sites[0].kind, SiteKind::Panic);
    }

    #[test]
    fn classifies_alloc_sites() {
        let p = parse(
            "fn f() { let mut v = Vec::new(); v.push(1); let s = format!(\"x\"); let w: Vec<u32> = v.iter().cloned().collect(); }\n",
        );
        let whats: Vec<&str> = p.fns[0].sites.iter().map(|s| s.what).collect();
        assert!(whats.contains(&"ctor"));
        assert!(whats.contains(&"push"));
        assert!(whats.contains(&"format!"));
        assert!(whats.contains(&"collect"));
        assert!(whats.contains(&"cloned"));
    }

    #[test]
    fn vec_macro_bracket_is_not_indexing() {
        let p = parse("fn f() { let v = vec![1, 2, 3]; }\n");
        assert!(p.fns[0].sites.iter().all(|s| s.what != "index"));
        assert!(p.fns[0].sites.iter().any(|s| s.what == "vec!"));
    }

    #[test]
    fn test_fns_are_exempt_from_sites() {
        let p = parse("#[cfg(test)]\nmod t {\n    #[test]\n    fn f() { let v: Vec<u32> = Vec::new(); v[0]; }\n}\n");
        assert!(p.fns[0].is_test);
        assert!(p.fns[0].sites.is_empty());
    }

    #[test]
    fn debug_assertions_block_is_skipped() {
        let p = parse(
            "fn f(x: &[u32]) {\n    #[cfg(debug_assertions)]\n    {\n        let _ = x[0];\n    }\n    let _ = x.len();\n}\n",
        );
        assert!(p.fns[0].sites.iter().all(|s| s.what != "index"));
    }

    #[test]
    fn negated_debug_assertions_statement_is_scanned() {
        // `cfg(not(debug_assertions))` is the RELEASE path — its calls and
        // sites must stay visible (regression: the controller's release
        // `engine.solve(…)` was invisible to the call graph).
        let p = parse(
            "fn f(x: &[u32]) {\n    #[cfg(not(debug_assertions))]\n    let y = solve(x[0]);\n}\n",
        );
        assert!(p.fns[0].sites.iter().any(|s| s.what == "index"));
        assert!(p.fns[0].calls.iter().any(|(_, c)| matches!(c, CallRef::Bare(n) if n == "solve")));
    }

    #[test]
    fn negated_cfg_test_fn_is_not_a_test() {
        let p = parse("#[cfg(not(test))]\nfn f(x: &[u32]) -> u32 { x[0] }\n");
        assert!(!p.fns[0].is_test);
        assert!(p.fns[0].sites.iter().any(|s| s.what == "index"));
    }

    #[test]
    fn debug_assert_args_are_skipped() {
        let p = parse("fn f(x: &[u32]) { debug_assert!(x[0] > 0); }\n");
        assert!(p.fns[0].sites.is_empty());
    }

    #[test]
    fn metric_sites_keyed_and_literal() {
        let p = parse(
            "fn f(t: &T) {\n    t.incr(keys::CTRL_SOLVES, \"\");\n    t.incr(\"raw.name\", \"\");\n    t.gauge(gso_telemetry::keys::CTRL_QOE, \"\", 1.0);\n}\n",
        );
        assert_eq!(p.metric_sites.len(), 3);
        assert!(p.metric_sites[0].keyed);
        assert!(!p.metric_sites[1].keyed);
        assert!(p.metric_sites[2].keyed);
    }

    #[test]
    fn unit_sites_params_fields_lets() {
        let p = parse(
            "struct S { uplink_kbps: u64, name: String }\nfn f(target_bps: u64, ok: u32) { let cap_kbps: u32 = 5; }\n",
        );
        let idents: Vec<&str> = p.unit_sites.iter().map(|u| u.ident.as_str()).collect();
        assert_eq!(idents, vec!["uplink_kbps", "target_bps", "cap_kbps"]);
    }

    #[test]
    fn division_by_variable_flagged_by_float_skipped() {
        let p = parse("fn f(a: u64, b: u64) -> u64 { a / b }\n");
        assert!(p.fns[0].sites.iter().any(|s| s.what == "div"));
        let p = parse("fn f(a: f64, b: f64) -> f64 { a / b }\n");
        assert!(p.fns[0].sites.is_empty(), "float division cannot panic");
        let p = parse("fn f(a: u64) -> u64 { a / 2 }\n");
        assert!(p.fns[0].sites.is_empty(), "literal divisor cannot be zero");
    }

    #[test]
    fn self_path_resolves_to_impl_type() {
        let p = parse("impl Foo { fn a(&self) { Self::b(); } fn b() {} }\n");
        assert_eq!(p.fns[0].calls, vec![(1, CallRef::Path(vec!["Foo".into(), "b".into()]))]);
    }

    #[test]
    fn camelcase_tuple_ctor_is_not_a_call() {
        let p = parse("fn f() -> Ssrc { Ssrc(1) }\n");
        assert!(p.fns[0].calls.is_empty());
    }

    #[test]
    fn const_item_unit_site() {
        let p = parse("const DEFAULT_KBPS: u64 = 500;\n");
        assert_eq!(p.unit_sites.len(), 1);
        assert_eq!(p.unit_sites[0].ctx, UnitCtx::Const);
    }

    fn sync_ops(src: &str) -> Vec<SyncOp> {
        let p = parse(src);
        p.fns[0].sync.iter().map(|e| e.op.clone()).collect()
    }

    #[test]
    fn lock_acquire_records_identity_and_binding() {
        let ops = sync_ops("fn f(&self) { let mut g = self.shared.signal.lock().unwrap(); }\n");
        let acq = ops.iter().find_map(|o| match o {
            SyncOp::Acquire { lock, chain, bind, var, .. } => {
                Some((lock.clone(), chain.clone(), *bind, var.clone()))
            }
            _ => None,
        });
        let (lock, chain, bind, var) = acq.expect("acquire event");
        assert_eq!(lock, "signal");
        assert_eq!(chain, "self.shared.signal");
        assert_eq!(bind, BindKind::Let);
        assert_eq!(var.as_deref(), Some("g"));
    }

    #[test]
    fn accessor_verbs_are_skipped_for_lock_identity() {
        let ops = sync_ops(
            "fn f(&self) { let g = self.queues.get(qi).expect(\"x\").lock().unwrap(); }\n",
        );
        let lock = ops.iter().find_map(|o| match o {
            SyncOp::Acquire { lock, .. } => Some(lock.clone()),
            _ => None,
        });
        assert_eq!(lock.as_deref(), Some("queues"));
    }

    #[test]
    fn if_let_guard_is_cond_bound() {
        let ops =
            sync_ops("fn f(&self) { if let Ok(mut sig) = self.signal.lock() { sig.x = 1; } }\n");
        let acq = ops.iter().find_map(|o| match o {
            SyncOp::Acquire { bind, var, .. } => Some((*bind, var.clone())),
            _ => None,
        });
        assert_eq!(acq, Some((BindKind::CondLet, Some("sig".to_string()))));
    }

    #[test]
    fn temp_guard_has_no_binding() {
        let ops = sync_ops("fn f(&self) { self.state.lock().unwrap().count += 1; }\n");
        let acq = ops.iter().find_map(|o| match o {
            SyncOp::Acquire { bind, var, .. } => Some((*bind, var.clone())),
            _ => None,
        });
        assert_eq!(acq, Some((BindKind::Temp, None)));
    }

    #[test]
    fn wait_in_while_loop_and_guard_arg() {
        let ops = sync_ops(
            "fn f(&self) { let mut st = self.state.lock().unwrap(); while st.n > 0 { st = self.cv.wait(st).unwrap(); } }\n",
        );
        let wait = ops.iter().find_map(|o| match o {
            SyncOp::Wait { guard_arg, in_loop, .. } => Some((guard_arg.clone(), *in_loop)),
            _ => None,
        });
        assert_eq!(wait, Some((Some("st".to_string()), true)));
    }

    #[test]
    fn wait_outside_loop_detected() {
        let ops = sync_ops(
            "fn f(&self) { let g = self.m.lock().unwrap(); let g = self.cv.wait(g).unwrap(); }\n",
        );
        let wait = ops.iter().find_map(|o| match o {
            SyncOp::Wait { in_loop, .. } => Some(*in_loop),
            _ => None,
        });
        assert_eq!(wait, Some(false));
    }

    #[test]
    fn blocking_ops_and_drop_var() {
        let ops = sync_ops(
            "fn f(&self, rx: &Receiver<u32>) { let g = self.m.lock().unwrap(); let v = rx.recv().unwrap(); drop(g); std::thread::sleep(d); }\n",
        );
        assert!(ops.contains(&SyncOp::Block { what: "channel-recv" }));
        assert!(ops.contains(&SyncOp::Block { what: "thread-sleep" }));
        assert!(ops.iter().any(|o| matches!(o, SyncOp::DropVar { var } if var == "g")));
    }

    #[test]
    fn await_and_atomic_ordering_events() {
        let ops = sync_ops(
            "async fn f(&self) { self.fut.await; self.n.fetch_add(1, Ordering::Relaxed); let v = self.n.load(Ordering::Acquire); }\n",
        );
        assert!(ops.contains(&SyncOp::Await));
        let orderings: Vec<(String, Option<String>)> = ops
            .iter()
            .filter_map(|o| match o {
                SyncOp::AtomicOrdering { ordering, op } => Some((ordering.clone(), op.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            orderings,
            vec![
                ("Relaxed".to_string(), Some("fetch_add".to_string())),
                ("Acquire".to_string(), Some("load".to_string())),
            ]
        );
    }

    #[test]
    fn scope_and_semi_events_carry_depth() {
        let p = parse("fn f(&self) { { let g = self.m.lock().unwrap(); } g2(); }\n");
        let ev = &p.fns[0].sync;
        let acq_depth = ev
            .iter()
            .find(|e| matches!(e.op, SyncOp::Acquire { .. }))
            .map(|e| e.depth)
            .expect("acquire");
        assert_eq!(acq_depth, 2, "inner block is depth 2");
        assert!(
            ev.iter().any(|e| matches!(e.op, SyncOp::ScopeEnd) && e.depth == 1),
            "inner block close emits ScopeEnd back at depth 1"
        );
        assert!(ev.iter().any(|e| matches!(e.op, SyncOp::Semi) && e.depth == 2));
    }
}
