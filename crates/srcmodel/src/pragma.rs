//! Shared reason-mandatory `allow(rule, reason = "…")` pragma grammar.
//!
//! Every workspace analyzer (detguard, sentinel, lockwatch) uses the same
//! line-scoped exemption form; only the tool prefix (`detguard:`,
//! `sentinel:`, `lockwatch:`) and how the prefix is located in a comment
//! differ per tool. This module owns the inner grammar so the error
//! messages — which fixture self-tests pin — stay identical everywhere.

/// One parsed `allow(…)` pragma body.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule the pragma names (may be unknown — see `malformed`).
    pub rule: String,
    /// The justification, when present and non-empty.
    pub reason: Option<String>,
    /// Why the pragma is invalid, when it is: missing `)`, unknown rule,
    /// or missing/empty reason.
    pub malformed: Option<String>,
}

/// Parse the text following `allow(` against the tool's `rule_ids`.
#[must_use]
pub fn parse_allow(rest: &str, rule_ids: &[&str]) -> Allow {
    let Some(inner) = rest.rfind(')').map(|p| &rest[..p]) else {
        return Allow {
            rule: String::new(),
            reason: None,
            malformed: Some("pragma missing closing `)`".to_string()),
        };
    };
    let (rule_part, reason_part) = match inner.find(',') {
        Some(c) => (inner[..c].trim(), Some(inner[c + 1..].trim())),
        None => (inner.trim(), None),
    };
    let rule = rule_part.to_string();
    let mut malformed = None;
    if !rule_ids.contains(&rule.as_str()) {
        malformed = Some(format!("unknown rule `{rule}` in pragma"));
    }
    let reason = reason_part.and_then(parse_reason);
    let reason = match reason {
        Some(r) if !r.is_empty() => Some(r),
        _ => {
            if malformed.is_none() {
                malformed = Some(
                    "pragma must carry `reason = \"…\"` with a non-empty justification".to_string(),
                );
            }
            None
        }
    };
    Allow { rule, reason, malformed }
}

/// Extract the quoted string from a `reason = "…"` fragment. Returns the
/// unquoted text (possibly empty) or `None` when the fragment is not a
/// reason assignment at all.
#[must_use]
pub fn parse_reason(part: &str) -> Option<String> {
    part.strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim().trim_matches('"').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["hot-alloc", "lock-order"];

    #[test]
    fn well_formed_allow() {
        let a = parse_allow("lock-order, reason = \"ordered by contract\") trailing", RULES);
        assert_eq!(a.rule, "lock-order");
        assert_eq!(a.reason.as_deref(), Some("ordered by contract"));
        assert!(a.malformed.is_none());
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let a = parse_allow("no-such-rule, reason = \"x\")", RULES);
        assert_eq!(a.malformed.as_deref(), Some("unknown rule `no-such-rule` in pragma"));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let a = parse_allow("hot-alloc)", RULES);
        assert!(a.malformed.as_deref().is_some_and(|m| m.contains("reason")));
        let a = parse_allow("hot-alloc, reason = \"\")", RULES);
        assert!(a.malformed.is_some(), "empty reason must not satisfy the grammar");
    }

    #[test]
    fn missing_close_paren_is_malformed() {
        let a = parse_allow("hot-alloc, reason = \"x\"", RULES);
        assert_eq!(a.malformed.as_deref(), Some("pragma missing closing `)`"));
    }
}
