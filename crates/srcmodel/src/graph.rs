//! Approximate intra-workspace call graph and hot-path reachability.
//!
//! Nodes are every parsed function; edges come from the three call shapes
//! the parser records. Resolution over-approximates where receiver types
//! are unknowable (a missed edge could hide a panic site; an extra edge at
//! worst asks for one more reasoned pragma), but a *qualified* path names
//! its qualifier, so external paths stay external:
//!
//! * [`CallRef::Path`] — the qualifier segments must appear, in order, in
//!   a candidate's qualified segments (`Self::` was rewritten by the
//!   parser; a leading `gso_` crate prefix is normalized away). Subsequence
//!   rather than suffix matching keeps re-exports (`gso_algo::solve` for
//!   `algo::solver::solve`) resolvable. A path whose qualifier matches no
//!   workspace item (`Vec::new`, `std::mem::take`) is std/core and adds no
//!   edge — falling back to "every same-name function" would drag every
//!   workspace constructor into every cone.
//! * [`CallRef::Method`] — name match against every method (function with
//!   an impl/trait type) in the workspace: receiver types are unknowable
//!   at token level, so dynamic and generic dispatch resolve by name. The
//!   std container verbs in [`crate::parse::ALLOC_METHODS`] are exempt:
//!   those calls are already counted as allocation sites where they occur,
//!   and resolving `.push(…)` by name would blame every workspace
//!   `push` impl for every `Vec::push` on a hot path.
//! * [`CallRef::Bare`] — same-module free functions first, then
//!   same-crate, then workspace-wide.
//!
//! Test functions never participate: they are neither nodes nor callees.

use crate::model::{CallRef, FnInfo, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// The workspace call graph.
pub struct CallGraph<'a> {
    /// All non-test functions, in deterministic (file, line) order.
    pub fns: Vec<&'a FnInfo>,
    /// Adjacency list: `edges[i]` lists callee indices of `fns[i]`.
    pub edges: Vec<Vec<usize>>,
    /// All functions by name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Functions with an impl/trait type context, by name.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Transitive closure of the crate dependency relation.
    closure: BTreeMap<String, BTreeSet<String>>,
}

impl<'a> CallGraph<'a> {
    /// Build the graph over every non-test function of the parsed files,
    /// with no crate-dependency information (every cross-crate edge is
    /// allowed). Used for single-crate corpora like the fixture set.
    #[must_use]
    pub fn build(files: &'a [ParsedFile]) -> Self {
        Self::build_with_deps(files, &BTreeMap::new())
    }

    /// Build the graph constrained by the workspace dependency relation:
    /// an edge from a function in crate `a` to one in crate `b` is only
    /// admitted when `b` is `a` itself or a transitive dependency of `a`
    /// per `deps` (crate → direct dependencies). A crate absent from
    /// `deps` is unconstrained. This removes whole classes of name-match
    /// false edges — e.g. analysis tooling that shares a method name with
    /// runtime code can never actually be linked into it.
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // closure lookup is over inserted keys
    pub fn build_with_deps(files: &'a [ParsedFile], deps: &BTreeMap<String, Vec<String>>) -> Self {
        // Transitive closure of the dependency relation.
        let mut closure: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for name in deps.keys() {
            let mut seen: BTreeSet<&str> = BTreeSet::from([name.as_str()]);
            let mut stack: Vec<&str> = vec![name.as_str()];
            while let Some(k) = stack.pop() {
                for d in deps.get(k).map(Vec::as_slice).unwrap_or_default() {
                    if seen.insert(d) {
                        stack.push(d);
                    }
                }
            }
            closure.insert(name.clone(), seen.into_iter().map(str::to_string).collect());
        }
        let mut fns: Vec<&FnInfo> =
            files.iter().flat_map(|f| f.fns.iter()).filter(|f| !f.is_test).collect();
        fns.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

        // Name indexes.
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if f.type_ctx.is_some() {
                methods_by_name.entry(f.name.clone()).or_default().push(i);
            }
        }

        let mut g = CallGraph { fns, edges: Vec::new(), by_name, methods_by_name, closure };
        let mut edges = vec![Vec::new(); g.fns.len()];
        for (i, edge_list) in edges.iter_mut().enumerate() {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for (_, call) in &g.fns[i].calls {
                out.extend(g.resolve(i, call));
            }
            out.remove(&i); // self-recursion adds nothing to reachability
            *edge_list = out.into_iter().collect();
        }
        g.edges = edges;
        g
    }

    /// Candidate callee indices of `call` made from `fns[caller]`, using
    /// the same resolution the edge builder uses (the caller itself may
    /// appear for a recursive call; `edges` has self-edges removed).
    #[must_use]
    pub fn resolve(&self, caller: usize, call: &CallRef) -> Vec<usize> {
        let f = self.fns[caller];
        let edge_ok = |from: &str, to: &str| -> bool {
            from == to || self.closure.get(from).is_none_or(|c| c.contains(to))
        };
        match call {
            CallRef::Method(name) => {
                if crate::parse::ALLOC_METHODS.contains(&name.as_str()) {
                    return Vec::new(); // counted at the call site; see module docs
                }
                self.methods_by_name.get(name).map_or_else(Vec::new, |cands| {
                    cands
                        .iter()
                        .copied()
                        .filter(|&c| edge_ok(&f.krate, &self.fns[c].krate))
                        .collect()
                })
            }
            CallRef::Path(segs) => {
                let want: Vec<&str> = segs
                    .iter()
                    .map(|s| s.as_str().strip_prefix("gso_").unwrap_or(s))
                    .filter(|s| !matches!(*s, "crate" | "self" | "super"))
                    .collect();
                let Some(name) = want.last() else { return Vec::new() };
                self.by_name.get(*name).map_or_else(Vec::new, |cands| {
                    cands
                        .iter()
                        .copied()
                        .filter(|&c| {
                            edge_ok(&f.krate, &self.fns[c].krate)
                                && qualifier_matches(
                                    &self.fns[c].segments(),
                                    &want[..want.len() - 1],
                                )
                        })
                        .collect()
                })
            }
            CallRef::Bare(name) => {
                let Some(cands) = self.by_name.get(name) else { return Vec::new() };
                let cands: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| edge_ok(&f.krate, &self.fns[c].krate))
                    .collect();
                let free: Vec<usize> =
                    cands.iter().copied().filter(|&c| self.fns[c].type_ctx.is_none()).collect();
                let same_module: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&c| self.fns[c].krate == f.krate && self.fns[c].module == f.module)
                    .collect();
                let same_crate: Vec<usize> =
                    free.iter().copied().filter(|&c| self.fns[c].krate == f.krate).collect();
                if !same_module.is_empty() {
                    same_module
                } else if !same_crate.is_empty() {
                    same_crate
                } else if !free.is_empty() {
                    free
                } else {
                    // A bare call can also be a `use`-imported associated
                    // fn; fall back to any candidate.
                    cands
                }
            }
        }
    }

    /// Index of the function whose qualified name ends with `suffix`
    /// (path-separated), e.g. `"McState::solve_flat"`.
    // sentinel: cold_path(reason = "analyzer-side lookup helper; it lands in runtime hot cones only via name-matching unrelated iterator `find` calls, and it never runs inside the simulator")
    #[must_use]
    pub fn find(&self, suffix: &str) -> Option<usize> {
        let want: Vec<&str> = suffix.split("::").collect();
        self.fns.iter().position(|f| suffix_matches(&f.segments(), &want))
    }

    /// Breadth-first reachability from `roots`, never traversing `excluded`
    /// (cold-marked) nodes. Returns the set of reachable node indices,
    /// including the roots themselves.
    #[must_use]
    pub fn reachable(&self, roots: &[usize], excluded: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if !excluded.contains(&r) && seen.insert(r) {
                queue.push(r);
            }
        }
        while let Some(n) = queue.pop() {
            for &m in &self.edges[n] {
                if !excluded.contains(&m) && seen.insert(m) {
                    queue.push(m);
                }
            }
        }
        seen
    }
}

/// True when `segs` ends with `want` (both path-segment slices).
fn suffix_matches(segs: &[&str], want: &[&str]) -> bool {
    if want.len() > segs.len() {
        return false;
    }
    segs[segs.len() - want.len()..] == *want
}

/// True when every qualifier segment appears, in order, within the
/// candidate's segments (excluding its final name segment). Subsequence
/// rather than suffix matching so re-exported paths still resolve.
fn qualifier_matches(segs: &[&str], qual: &[&str]) -> bool {
    let body = &segs[..segs.len() - 1];
    let mut it = body.iter();
    qual.iter().all(|q| it.any(|s| s == q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    #[test]
    fn two_hop_reachability() {
        let src = "
fn root() { middle(); }
fn middle() { leaf(); }
fn leaf() { unrelated_data(); }
fn island() {}
fn unrelated_data() {}
";
        let files = vec![parse_file("a.rs", "a", &[], src)];
        let g = CallGraph::build(&files);
        let root = g.find("a::root").expect("root exists");
        let reach = g.reachable(&[root], &BTreeSet::new());
        let names: Vec<&str> = reach.iter().map(|&i| g.fns[i].name.as_str()).collect();
        assert!(names.contains(&"leaf"), "two calls deep must be reachable");
        assert!(names.contains(&"unrelated_data"));
        assert!(!names.contains(&"island"));
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let src = "
struct S;
impl S { fn work(&self) { helper(); } }
fn drive(s: &S) { s.work(); }
fn helper() {}
";
        let files = vec![parse_file("a.rs", "a", &[], src)];
        let g = CallGraph::build(&files);
        let root = g.find("a::drive").expect("drive exists");
        let reach = g.reachable(&[root], &BTreeSet::new());
        let names: Vec<&str> = reach.iter().map(|&i| g.fns[i].name.as_str()).collect();
        assert!(names.contains(&"work"));
        assert!(names.contains(&"helper"), "method edge must chain onward");
    }

    #[test]
    fn cross_crate_path_calls_resolve() {
        let a = parse_file("a.rs", "algo", &["mckp".to_string()], "pub fn solve() {}");
        let b = parse_file("b.rs", "control", &[], "fn tick() { mckp::solve(); }");
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let root = g.find("control::tick").expect("tick exists");
        let reach = g.reachable(&[root], &BTreeSet::new());
        assert!(reach.iter().any(|&i| g.fns[i].qualified() == "algo::mckp::solve"));
    }

    #[test]
    fn excluded_nodes_cut_the_cone() {
        let src = "
fn root() { cold(); }
fn cold() { leaf(); }
fn leaf() {}
";
        let files = vec![parse_file("a.rs", "a", &[], src)];
        let g = CallGraph::build(&files);
        let root = g.find("a::root").expect("root");
        let cold = g.find("a::cold").expect("cold");
        let reach = g.reachable(&[root], &BTreeSet::from([cold]));
        assert!(!reach.iter().any(|&i| g.fns[i].name == "leaf"));
    }

    #[test]
    fn external_paths_add_no_edges() {
        let a = parse_file("a.rs", "a", &[], "fn tick() { let v: Vec<u8> = Vec::new(); }");
        let b = parse_file(
            "b.rs",
            "b",
            &[],
            "struct Pool; impl Pool { fn new() -> Pool { helper(); Pool } } fn helper() {}",
        );
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let root = g.find("a::tick").expect("tick exists");
        let reach = g.reachable(&[root], &BTreeSet::new());
        assert!(
            !reach.iter().any(|&i| g.fns[i].name == "new"),
            "Vec::new must not resolve to an unrelated workspace constructor"
        );
    }

    #[test]
    fn reexported_paths_resolve_by_subsequence() {
        let a = parse_file("a.rs", "algo", &["solver".to_string()], "pub fn solve() {}");
        let b = parse_file("b.rs", "control", &[], "fn tick() { gso_algo::solve(); }");
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let root = g.find("control::tick").expect("tick exists");
        let reach = g.reachable(&[root], &BTreeSet::new());
        assert!(reach.iter().any(|&i| g.fns[i].qualified() == "algo::solver::solve"));
    }

    #[test]
    fn container_verbs_skip_method_resolution() {
        let a = parse_file("a.rs", "a", &[], "fn tick(v: &mut Vec<u8>) { v.push(1); }");
        let b = parse_file(
            "b.rs",
            "b",
            &[],
            "struct Samples; impl Samples { fn push(&mut self) { helper(); } } fn helper() {}",
        );
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let root = g.find("a::tick").expect("tick exists");
        let reach = g.reachable(&[root], &BTreeSet::new());
        assert!(
            !reach.iter().any(|&i| g.fns[i].name == "push"),
            ".push() is counted at the call site, not resolved to workspace impls"
        );
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let src = "#[cfg(test)]\nmod t { fn helper() {} }\nfn real() {}\n";
        let files = vec![parse_file("a.rs", "a", &[], src)];
        let g = CallGraph::build(&files);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
    }
}
