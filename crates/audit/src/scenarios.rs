//! Replayable audit scenarios.
//!
//! Each scenario reconstructs the `Problem` behind one of the shipped
//! examples (or a Table 1 case of the paper) so the `audit` binary — and
//! CI through it — can solve and audit the exact configurations users run.
//! Kept self-contained on `gso-algo` so the auditor does not pull in the
//! simulator stack.

use gso_algo::qoe::{SCREEN_BOOST, SPEAKER_BOOST};
use gso_algo::{ladders, ClientSpec, Problem, PublisherSource, Resolution, SourceId, Subscription};
use gso_util::{Bitrate, ClientId};

/// A named, replayable problem instance.
pub struct Scenario {
    /// Stable scenario name (shown in audit reports).
    pub name: &'static str,
    /// The conference configuration to solve and audit.
    pub problem: Problem,
}

/// The bandwidths of the paper's Table 1 cases: (uplink, downlink) in Kbps
/// for clients A, B, C.
pub const TABLE1_CASES: [[(u64, u64); 3]; 3] = [
    [(5_000, 1_400), (5_000, 3_000), (5_000, 500)],
    [(5_000, 5_000), (600, 5_000), (5_000, 5_000)],
    [(5_000, 5_000), (600, 700), (5_000, 5_000)],
];

/// One of the paper's Table 1 worked examples (`case` in `0..3`).
pub fn table1_case(case: usize) -> Problem {
    let bw = TABLE1_CASES[case];
    let ladder = ladders::paper_table1();
    let [a, b, c] = [ClientId(1), ClientId(2), ClientId(3)];
    let clients = vec![
        ClientSpec::new(
            a,
            Bitrate::from_kbps(bw[0].0),
            Bitrate::from_kbps(bw[0].1),
            ladder.clone(),
        ),
        ClientSpec::new(
            b,
            Bitrate::from_kbps(bw[1].0),
            Bitrate::from_kbps(bw[1].1),
            ladder.clone(),
        ),
        ClientSpec::new(c, Bitrate::from_kbps(bw[2].0), Bitrate::from_kbps(bw[2].1), ladder),
    ];
    let subs = vec![
        Subscription::new(a, SourceId::video(b), Resolution::R360),
        Subscription::new(a, SourceId::video(c), Resolution::R180),
        Subscription::new(b, SourceId::video(a), Resolution::R720),
        Subscription::new(b, SourceId::video(c), Resolution::R360),
        Subscription::new(c, SourceId::video(b), Resolution::R360),
        Subscription::new(c, SourceId::video(a), Resolution::R720),
    ];
    Problem::new(clients, subs).expect("invariant: Table 1 cases are valid conferences")
}

/// The `quickstart` example: three heterogeneous clients on the fine
/// 15-level ladder, everyone watching everyone.
pub fn quickstart() -> Problem {
    let ladder = ladders::fine15();
    let ids = [ClientId(1), ClientId(2), ClientId(3)];
    let clients = vec![
        ClientSpec::new(ids[0], Bitrate::from_mbps(5), Bitrate::from_mbps(5), ladder.clone()),
        ClientSpec::new(ids[1], Bitrate::from_mbps(2), Bitrate::from_mbps(3), ladder.clone()),
        ClientSpec::new(ids[2], Bitrate::from_kbps(800), Bitrate::from_kbps(900), ladder),
    ];
    let mut subs = Vec::new();
    for &a in &ids {
        for &b in &ids {
            if a != b {
                subs.push(Subscription::new(a, SourceId::video(b), Resolution::R720));
            }
        }
    }
    Problem::new(clients, subs).expect("invariant: quickstart is a valid conference")
}

/// The `screen_share` example: a presenter with camera + screen sources,
/// speaker-first virtual publishers (§4.4), one bandwidth-poor viewer.
pub fn screen_share() -> Problem {
    let ladder = ladders::paper_table1();
    let presenter = ClientId(1);
    let viewer_a = ClientId(2);
    let viewer_b = ClientId(3);

    let mut presenter_spec =
        ClientSpec::new(presenter, Bitrate::from_mbps(4), Bitrate::from_mbps(4), ladder.clone());
    presenter_spec
        .sources
        .push(PublisherSource { id: SourceId::screen(presenter), ladder: ladders::coarse3() });

    let clients = vec![
        presenter_spec,
        ClientSpec::new(viewer_a, Bitrate::from_mbps(2), Bitrate::from_mbps(3), ladder.clone()),
        ClientSpec::new(viewer_b, Bitrate::from_mbps(2), Bitrate::from_kbps(1_200), ladder),
    ];

    let mut subs = Vec::new();
    for &v in &[viewer_a, viewer_b] {
        subs.push(
            Subscription::new(v, SourceId::screen(presenter), Resolution::R720)
                .with_boost(SCREEN_BOOST),
        );
        subs.push(Subscription::new(v, SourceId::video(presenter), Resolution::R180));
        subs.push(
            Subscription::new(v, SourceId::video(presenter), Resolution::R720)
                .with_tag(1)
                .with_boost(SPEAKER_BOOST),
        );
    }
    subs.push(Subscription::new(viewer_a, SourceId::video(viewer_b), Resolution::R360));
    subs.push(Subscription::new(viewer_b, SourceId::video(viewer_a), Resolution::R360));
    Problem::new(clients, subs).expect("invariant: screen-share demo is a valid conference")
}

/// A scaled-down `large_conference`: `pubs` publishers on rich links plus
/// `subs` view-only subscribers with deterministically varied downlinks,
/// everyone watching every publisher up to 720P.
pub fn large_conference(pubs: u32, subs: u32) -> Problem {
    let ladder = ladders::fine(6);
    let mut clients = Vec::new();
    let mut subscriptions = Vec::new();
    for p in 1..=pubs {
        clients.push(ClientSpec::new(
            ClientId(p),
            Bitrate::from_mbps(4),
            Bitrate::from_mbps(8),
            ladder.clone(),
        ));
    }
    for s in 0..subs {
        let id = ClientId(pubs + 1 + s);
        // Deterministic heterogeneity: downlinks cycle 600K..3.4M.
        let down = Bitrate::from_kbps(600 + u64::from(s % 8) * 400);
        let mut spec = ClientSpec::new(id, Bitrate::from_kbps(100), down, ladder.clone());
        spec.sources.clear();
        clients.push(spec);
        for p in 1..=pubs {
            subscriptions.push(Subscription::new(
                id,
                SourceId::video(ClientId(p)),
                Resolution::R720,
            ));
        }
    }
    // Publishers watch each other too.
    for a in 1..=pubs {
        for b in 1..=pubs {
            if a != b {
                subscriptions.push(Subscription::new(
                    ClientId(a),
                    SourceId::video(ClientId(b)),
                    Resolution::R720,
                ));
            }
        }
    }
    Problem::new(clients, subscriptions).expect("invariant: generated conference is valid")
}

/// The `slow_link` workload's control-plane picture: a 3-party conference
/// where one participant's downlink is impaired to 500 Kbps.
pub fn slow_link() -> Problem {
    let ladder = ladders::fine15();
    let ids = [ClientId(1), ClientId(2), ClientId(3)];
    let clients = vec![
        ClientSpec::new(ids[0], Bitrate::from_mbps(3), Bitrate::from_mbps(5), ladder.clone()),
        ClientSpec::new(ids[1], Bitrate::from_mbps(3), Bitrate::from_mbps(5), ladder.clone()),
        ClientSpec::new(ids[2], Bitrate::from_mbps(3), Bitrate::from_kbps(500), ladder),
    ];
    let mut subs = Vec::new();
    for &a in &ids {
        for &b in &ids {
            if a != b {
                subs.push(Subscription::new(a, SourceId::video(b), Resolution::R720));
            }
        }
    }
    Problem::new(clients, subs).expect("invariant: slow-link demo is a valid conference")
}

/// The `transient_response` steady state while capped: one publisher, one
/// subscriber whose downlink sits at the Fig. 7 cap of 625 Kbps.
pub fn transient_capped() -> Problem {
    let ladder = ladders::fine15();
    let publisher = ClientId(1);
    let watcher = ClientId(2);
    let clients = vec![
        ClientSpec::new(publisher, Bitrate::from_mbps(4), Bitrate::from_mbps(4), ladder.clone()),
        ClientSpec::new(watcher, Bitrate::from_mbps(4), Bitrate::from_kbps(625), ladder),
    ];
    let subs = vec![Subscription::new(watcher, SourceId::video(publisher), Resolution::R720)];
    Problem::new(clients, subs).expect("invariant: transient demo is a valid conference")
}

/// Every scenario the `audit` binary replays.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario { name: "table1-case1", problem: table1_case(0) },
        Scenario { name: "table1-case2", problem: table1_case(1) },
        Scenario { name: "table1-case3", problem: table1_case(2) },
        Scenario { name: "quickstart", problem: quickstart() },
        Scenario { name: "screen-share", problem: screen_share() },
        Scenario { name: "large-conference", problem: large_conference(4, 16) },
        Scenario { name: "slow-link", problem: slow_link() },
        Scenario { name: "transient-capped", problem: transient_capped() },
    ]
}
