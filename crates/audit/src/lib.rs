//! Static auditing of orchestration artifacts.
//!
//! [`Solution::validate`](gso_algo::Solution::validate) answers "is this
//! solution feasible?" with the *first* constraint violation it finds. This
//! crate answers the stronger question a CI gate and the debug-build
//! trust-boundary hooks need: "show me *every* way this `(Problem,
//! Solution)` pair is wrong, with enough structure to point at the paper
//! equation that was violated".
//!
//! Three layers of checks, each a superset of the previous:
//!
//! * [`SolutionAuditor::audit_constraints`] — the §4.1 constraint families:
//!   per-client uplink (Eq. 14) and downlink (Eq. 1–4) budgets, the codec
//!   rule of at most one stream per resolution per source, and the
//!   subscription rules (existence, ≤ 1 stream per `(subscriber, source,
//!   tag)`, resolution caps, publish/receive consistency).
//! * [`SolutionAuditor::audit`] — adds solver-internal invariants that are
//!   still checkable from `(Problem, Solution)` alone: QoE accounting
//!   (`total_qoe` = Σ received, per-stream QoE = ladder QoE × boost +
//!   presence), the convergence bound `iterations ≤ 1 + Σ |resolutions|`,
//!   and the quality floor `total_qoe ≥` the all-lowest-rung baseline.
//! * [`SolutionAuditor::audit_traced`] — given the [`SolveTrace`] from
//!   [`gso_algo::solver::solve_traced`], additionally verifies the
//!   invariants that need solver-internal evidence: the Merge step picked
//!   the per-resolution *minimum* of the Step-1 requests (Eq. 12), and
//!   every Reduction removed a *whole* resolution (Eq. 18–20).
//!
//! [`check_forwarding`] extends the audit across the feedback boundary: the
//! media-plane forwarding rules derived from a solution must be exactly its
//! receive map, stream for stream.
//!
//! The `audit` binary (`cargo run -p gso-audit --bin audit`) replays the
//! shipped example configurations and the paper's Table 1 cases through the
//! full audit and exits nonzero on any violation — a CI gate for solver
//! regressions.

pub mod scenarios;

use gso_algo::solver::SolveTrace;
use gso_algo::{Problem, Resolution, Solution, SourceId};
use gso_util::{Bitrate, ClientId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Everything the auditor can find wrong, with the identities and the
/// budgeted-versus-actual values needed to act on the finding.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// A published source does not exist in the problem.
    UnknownSource {
        /// The source the solution publishes for.
        source: SourceId,
    },
    /// Codec constraint: a source publishes two streams at one resolution.
    DuplicateResolution {
        /// The offending source.
        source: SourceId,
        /// The resolution published twice.
        resolution: Resolution,
    },
    /// A published bitrate is not in the source's feasible stream set.
    BitrateNotInLadder {
        /// The offending source.
        source: SourceId,
        /// The bitrate with no ladder entry.
        bitrate: Bitrate,
    },
    /// A stream is published with an empty audience — the wasted uplink GSO
    /// exists to eliminate (Fig. 3a/3d).
    StreamWithoutAudience {
        /// The offending source.
        source: SourceId,
        /// The audience-less stream's bitrate.
        bitrate: Bitrate,
    },
    /// Uplink budget exceeded (Eq. 14).
    UplinkExceeded {
        /// The publishing client.
        client: ClientId,
        /// Sum of the client's published bitrates.
        actual: Bitrate,
        /// The client's uplink budget `B_u`.
        budgeted: Bitrate,
    },
    /// Downlink budget exceeded (Eq. 1–4).
    DownlinkExceeded {
        /// The receiving client.
        client: ClientId,
        /// Sum of the client's received bitrates.
        actual: Bitrate,
        /// The client's downlink budget `B_d`.
        budgeted: Bitrate,
    },
    /// A received stream has no matching subscription.
    NoSuchSubscription {
        /// The receiving client.
        subscriber: ClientId,
        /// The stream's source.
        source: SourceId,
        /// The claimed virtual-publisher tag.
        tag: u8,
    },
    /// More than one stream delivered for one (subscriber, source, tag).
    MultipleStreamsPerSubscription {
        /// The receiving client.
        subscriber: ClientId,
        /// The stream's source.
        source: SourceId,
        /// The over-served subscription's tag.
        tag: u8,
    },
    /// Delivered resolution exceeds the subscription's cap `R_ii'`.
    ResolutionCapExceeded {
        /// The receiving client.
        subscriber: ClientId,
        /// The stream's source.
        source: SourceId,
        /// What was delivered.
        actual: Resolution,
        /// The subscription's maximum.
        budgeted: Resolution,
    },
    /// A subscriber "receives" a stream its source does not publish.
    ReceivedUnpublishedStream {
        /// The receiving client.
        subscriber: ClientId,
        /// The source that does not publish the stream.
        source: SourceId,
        /// The phantom stream's bitrate.
        bitrate: Bitrate,
    },
    /// A subscriber receives a stream whose policy does not list it.
    NotInAudience {
        /// The receiving client.
        subscriber: ClientId,
        /// The stream's source.
        source: SourceId,
        /// The subscription's tag.
        tag: u8,
    },
    /// A policy's audience member has no corresponding received entry.
    AudienceMissingReceiver {
        /// The publishing source.
        source: SourceId,
        /// The audience member with no receive entry.
        subscriber: ClientId,
        /// The audience entry's tag.
        tag: u8,
    },
    /// Declared QoE does not match the QoE recomputed from the problem's
    /// ladders, boosts and presence bonuses.
    QoeMismatch {
        /// What the solution claims.
        declared: f64,
        /// What the problem data implies.
        computed: f64,
    },
    /// The solver ran more iterations than the convergence argument allows.
    IterationBoundExceeded {
        /// Iterations the solution reports.
        actual: usize,
        /// The bound `1 + Σ_sources |resolutions|`.
        budgeted: usize,
    },
    /// Total QoE fell below the trivial all-lowest-rung assignment — the
    /// solution starves subscribers a greedy baseline would have served.
    QoeBelowBaseline {
        /// QoE the solution achieves.
        actual: f64,
        /// QoE of the all-lowest-rung baseline.
        baseline: f64,
    },
    /// The Merge step must publish the per-resolution *minimum* of the
    /// Step-1 requests (Eq. 12); the final bitrate may sit below it only
    /// after a recorded uplink repair.
    MergeNotMinimum {
        /// The publishing source.
        source: SourceId,
        /// The resolution whose merge went wrong.
        resolution: Resolution,
        /// Bitrate actually published.
        actual: Bitrate,
        /// Minimum of the recorded requests at this resolution.
        budgeted: Bitrate,
    },
    /// A Reduction left ladder entries behind at the removed resolution;
    /// Eq. 18–20 remove whole resolutions only.
    ReductionRemovedPartialResolution {
        /// The reduced source.
        source: SourceId,
        /// The resolution that was reduced.
        resolution: Resolution,
        /// Entries still present at that resolution afterwards.
        remaining: usize,
    },
    /// A published stream has no record in the solver trace's terminal
    /// iteration.
    PolicyNotInTrace {
        /// The publishing source.
        source: SourceId,
        /// The unrecorded resolution.
        resolution: Resolution,
    },
    /// The solution's iteration count disagrees with the trace.
    IterationCountMismatch {
        /// Iterations the solution reports.
        declared: usize,
        /// Iterations the trace recorded.
        traced: usize,
    },
    /// A forwarding rule names a stream the subscriber does not receive.
    ForwardingWithoutStream {
        /// The rule's subscriber.
        subscriber: ClientId,
        /// The rule's source.
        source: SourceId,
        /// The rule's tag.
        tag: u8,
    },
    /// A received stream has no forwarding rule delivering it.
    StreamWithoutForwarding {
        /// The starved subscriber.
        subscriber: ClientId,
        /// The stream's source.
        source: SourceId,
        /// The subscription's tag.
        tag: u8,
    },
    /// A forwarding rule's bitrate disagrees with the configured stream.
    ForwardingBitrateMismatch {
        /// The rule's subscriber.
        subscriber: ClientId,
        /// The rule's source.
        source: SourceId,
        /// The rule's tag.
        tag: u8,
        /// Bitrate the rule forwards.
        actual: Bitrate,
        /// Bitrate the solution configured.
        budgeted: Bitrate,
    },
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// What went wrong, with identities and budgeted-vs-actual values.
    pub kind: ViolationKind,
}

impl Violation {
    fn new(kind: ViolationKind) -> Self {
        Violation { kind }
    }

    /// The paper equation (or section) this finding violates.
    pub fn equation(&self) -> &'static str {
        use ViolationKind as K;
        match self.kind {
            K::UplinkExceeded { .. } => "Eq. 14",
            K::DownlinkExceeded { .. } => "Eq. 1–4",
            K::DuplicateResolution { .. } | K::BitrateNotInLadder { .. } => "Eq. 10–11 (codec)",
            K::StreamWithoutAudience { .. } => "§2.3 / Fig. 3a",
            K::UnknownSource { .. }
            | K::NoSuchSubscription { .. }
            | K::MultipleStreamsPerSubscription { .. }
            | K::NotInAudience { .. }
            | K::AudienceMissingReceiver { .. }
            | K::ReceivedUnpublishedStream { .. } => "Eq. 2–3 (subscription)",
            K::ResolutionCapExceeded { .. } => "Eq. 5 (R_ii' cap)",
            K::QoeMismatch { .. } | K::QoeBelowBaseline { .. } => "Eq. 1 (objective)",
            K::IterationBoundExceeded { .. } | K::IterationCountMismatch { .. } => {
                "§4.1 convergence bound"
            }
            K::MergeNotMinimum { .. } | K::PolicyNotInTrace { .. } => "Eq. 12",
            K::ReductionRemovedPartialResolution { .. } => "Eq. 18–20",
            K::ForwardingWithoutStream { .. }
            | K::StreamWithoutForwarding { .. }
            | K::ForwardingBitrateMismatch { .. } => "§4.3 (feedback execution)",
        }
    }

    /// Short machine-friendly name of the violation kind.
    pub fn kind_name(&self) -> &'static str {
        use ViolationKind as K;
        match self.kind {
            K::UnknownSource { .. } => "unknown-source",
            K::DuplicateResolution { .. } => "duplicate-resolution",
            K::BitrateNotInLadder { .. } => "bitrate-not-in-ladder",
            K::StreamWithoutAudience { .. } => "stream-without-audience",
            K::UplinkExceeded { .. } => "uplink-exceeded",
            K::DownlinkExceeded { .. } => "downlink-exceeded",
            K::NoSuchSubscription { .. } => "no-such-subscription",
            K::MultipleStreamsPerSubscription { .. } => "multiple-streams-per-subscription",
            K::ResolutionCapExceeded { .. } => "resolution-cap-exceeded",
            K::ReceivedUnpublishedStream { .. } => "received-unpublished-stream",
            K::NotInAudience { .. } => "not-in-audience",
            K::AudienceMissingReceiver { .. } => "audience-missing-receiver",
            K::QoeMismatch { .. } => "qoe-mismatch",
            K::IterationBoundExceeded { .. } => "iteration-bound-exceeded",
            K::QoeBelowBaseline { .. } => "qoe-below-baseline",
            K::MergeNotMinimum { .. } => "merge-not-minimum",
            K::ReductionRemovedPartialResolution { .. } => "reduction-partial-resolution",
            K::PolicyNotInTrace { .. } => "policy-not-in-trace",
            K::IterationCountMismatch { .. } => "iteration-count-mismatch",
            K::ForwardingWithoutStream { .. } => "forwarding-without-stream",
            K::StreamWithoutForwarding { .. } => "stream-without-forwarding",
            K::ForwardingBitrateMismatch { .. } => "forwarding-bitrate-mismatch",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ViolationKind as K;
        write!(f, "[{} | {}] ", self.kind_name(), self.equation())?;
        match &self.kind {
            K::UnknownSource { source } => write!(f, "solution publishes unknown {source}"),
            K::DuplicateResolution { source, resolution } => {
                write!(f, "{source} publishes two streams at {resolution}")
            }
            K::BitrateNotInLadder { source, bitrate } => {
                write!(f, "{source} publishes {bitrate}, not a ladder entry")
            }
            K::StreamWithoutAudience { source, bitrate } => {
                write!(f, "{source} publishes {bitrate} with no audience")
            }
            K::UplinkExceeded { client, actual, budgeted } => {
                write!(f, "{client} publishes {actual}, uplink budget {budgeted}")
            }
            K::DownlinkExceeded { client, actual, budgeted } => {
                write!(f, "{client} receives {actual}, downlink budget {budgeted}")
            }
            K::NoSuchSubscription { subscriber, source, tag } => {
                write!(f, "{subscriber} receives from {source} tag {tag} without a subscription")
            }
            K::MultipleStreamsPerSubscription { subscriber, source, tag } => {
                write!(f, "{subscriber} receives multiple streams from {source} tag {tag}")
            }
            K::ResolutionCapExceeded { subscriber, source, actual, budgeted } => {
                write!(f, "{subscriber} receives {actual} from {source}, above cap {budgeted}")
            }
            K::ReceivedUnpublishedStream { subscriber, source, bitrate } => {
                write!(f, "{subscriber} receives {bitrate} which {source} does not publish")
            }
            K::NotInAudience { subscriber, source, tag } => {
                write!(f, "{subscriber} (tag {tag}) not in the audience of {source}")
            }
            K::AudienceMissingReceiver { source, subscriber, tag } => {
                write!(f, "{source} lists {subscriber} (tag {tag}) but no stream is received")
            }
            K::QoeMismatch { declared, computed } => {
                write!(f, "declared QoE {declared:.3} but problem data implies {computed:.3}")
            }
            K::IterationBoundExceeded { actual, budgeted } => {
                write!(f, "{actual} iterations, convergence bound {budgeted}")
            }
            K::QoeBelowBaseline { actual, baseline } => {
                write!(f, "QoE {actual:.3} below all-lowest-rung baseline {baseline:.3}")
            }
            K::MergeNotMinimum { source, resolution, actual, budgeted } => {
                write!(
                    f,
                    "{source} publishes {actual} at {resolution}, merge minimum is {budgeted}"
                )
            }
            K::ReductionRemovedPartialResolution { source, resolution, remaining } => {
                write!(f, "reduction left {remaining} entries at {resolution} of {source}")
            }
            K::PolicyNotInTrace { source, resolution } => {
                write!(f, "{source} publishes at {resolution} with no trace record")
            }
            K::IterationCountMismatch { declared, traced } => {
                write!(f, "solution reports {declared} iterations, trace recorded {traced}")
            }
            K::ForwardingWithoutStream { subscriber, source, tag } => {
                write!(
                    f,
                    "rule forwards {source} tag {tag} to {subscriber} who receives no such stream"
                )
            }
            K::StreamWithoutForwarding { subscriber, source, tag } => {
                write!(
                    f,
                    "{subscriber} is configured for {source} tag {tag} but no rule forwards it"
                )
            }
            K::ForwardingBitrateMismatch { subscriber, source, tag, actual, budgeted } => {
                write!(
                    f,
                    "rule forwards {source} tag {tag} to {subscriber} at {actual}, configured {budgeted}"
                )
            }
        }
    }
}

/// Join findings into a line-per-violation report (for panics and CLI).
pub fn report(violations: &[Violation]) -> String {
    violations.iter().map(|v| format!("  - {v}\n")).collect()
}

/// The constraint-invariant checker.
///
/// Stateless apart from tolerances; construct once and reuse.
#[derive(Debug, Clone)]
pub struct SolutionAuditor {
    /// Absolute tolerance for QoE comparisons (floating-point sums).
    pub qoe_tolerance: f64,
}

impl Default for SolutionAuditor {
    fn default() -> Self {
        SolutionAuditor { qoe_tolerance: 1e-6 }
    }
}

impl SolutionAuditor {
    /// Auditor with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check the §4.1 constraint families only, collecting every violation.
    ///
    /// This is the right level for solutions whose QoE bookkeeping may be
    /// stale (e.g. a sticky previous solution revalidated against a changed
    /// problem) but whose stream assignment must still be feasible.
    pub fn audit_constraints(&self, problem: &Problem, solution: &Solution) -> Vec<Violation> {
        let mut out = Vec::new();
        self.check_publish_side(problem, solution, &mut out);
        self.check_budgets(problem, solution, &mut out);
        self.check_receive_side(problem, solution, &mut out);
        out
    }

    /// Full static audit: constraint families plus the solver-internal
    /// invariants checkable from `(Problem, Solution)` alone.
    pub fn audit(&self, problem: &Problem, solution: &Solution) -> Vec<Violation> {
        let mut out = self.audit_constraints(problem, solution);
        self.check_qoe_accounting(problem, solution, &mut out);
        self.check_iteration_bound(problem, solution, &mut out);
        self.check_qoe_floor(problem, solution, &mut out);
        out
    }

    /// Full audit plus the trace-backed solver invariants: merge-minimum
    /// (Eq. 12) and whole-resolution reduction (Eq. 18–20).
    pub fn audit_traced(
        &self,
        problem: &Problem,
        solution: &Solution,
        trace: &SolveTrace,
    ) -> Vec<Violation> {
        let mut out = self.audit(problem, solution);
        self.check_trace(solution, trace, &mut out);
        out
    }

    // ---- constraint families ---------------------------------------------

    fn check_publish_side(&self, problem: &Problem, solution: &Solution, out: &mut Vec<Violation>) {
        for (src, policies) in &solution.publish {
            let Some(ladder) = problem.source(*src).map(|s| &s.ladder) else {
                out.push(Violation::new(ViolationKind::UnknownSource { source: *src }));
                continue;
            };
            let mut seen = BTreeSet::new();
            for p in policies {
                if !seen.insert(p.resolution) {
                    out.push(Violation::new(ViolationKind::DuplicateResolution {
                        source: *src,
                        resolution: p.resolution,
                    }));
                }
                match ladder.spec_for_bitrate(p.bitrate) {
                    Some(s) if s.resolution == p.resolution => {}
                    _ => out.push(Violation::new(ViolationKind::BitrateNotInLadder {
                        source: *src,
                        bitrate: p.bitrate,
                    })),
                }
                if p.audience.is_empty() {
                    out.push(Violation::new(ViolationKind::StreamWithoutAudience {
                        source: *src,
                        bitrate: p.bitrate,
                    }));
                }
                for &(sub, tag) in &p.audience {
                    let got = solution.received_from(sub, *src, tag);
                    match got {
                        Some(r) if r.bitrate == p.bitrate && r.resolution == p.resolution => {}
                        _ => out.push(Violation::new(ViolationKind::AudienceMissingReceiver {
                            source: *src,
                            subscriber: sub,
                            tag,
                        })),
                    }
                }
            }
        }
    }

    fn check_budgets(&self, problem: &Problem, solution: &Solution, out: &mut Vec<Violation>) {
        for c in problem.clients() {
            let up = solution.publish_rate(c.id);
            if up > c.uplink {
                out.push(Violation::new(ViolationKind::UplinkExceeded {
                    client: c.id,
                    actual: up,
                    budgeted: c.uplink,
                }));
            }
            let down = solution.receive_rate(c.id);
            if down > c.downlink {
                out.push(Violation::new(ViolationKind::DownlinkExceeded {
                    client: c.id,
                    actual: down,
                    budgeted: c.downlink,
                }));
            }
        }
    }

    fn check_receive_side(&self, problem: &Problem, solution: &Solution, out: &mut Vec<Violation>) {
        for (&sub, streams) in &solution.received {
            let mut seen = BTreeSet::new();
            for r in streams {
                if !seen.insert((r.source, r.tag)) {
                    out.push(Violation::new(ViolationKind::MultipleStreamsPerSubscription {
                        subscriber: sub,
                        source: r.source,
                        tag: r.tag,
                    }));
                }
                let Some(subscription) = problem
                    .subscriptions_of(sub)
                    .into_iter()
                    .find(|s| s.source == r.source && s.tag == r.tag)
                else {
                    out.push(Violation::new(ViolationKind::NoSuchSubscription {
                        subscriber: sub,
                        source: r.source,
                        tag: r.tag,
                    }));
                    continue;
                };
                if r.resolution > subscription.max_resolution {
                    out.push(Violation::new(ViolationKind::ResolutionCapExceeded {
                        subscriber: sub,
                        source: r.source,
                        actual: r.resolution,
                        budgeted: subscription.max_resolution,
                    }));
                }
                let Some(policy) = solution
                    .policies(r.source)
                    .iter()
                    .find(|p| p.resolution == r.resolution && p.bitrate == r.bitrate)
                else {
                    out.push(Violation::new(ViolationKind::ReceivedUnpublishedStream {
                        subscriber: sub,
                        source: r.source,
                        bitrate: r.bitrate,
                    }));
                    continue;
                };
                if !policy.audience.contains(&(sub, r.tag)) {
                    out.push(Violation::new(ViolationKind::NotInAudience {
                        subscriber: sub,
                        source: r.source,
                        tag: r.tag,
                    }));
                }
            }
        }
    }

    // ---- solver-internal invariants (solution-only) ----------------------

    fn check_qoe_accounting(
        &self,
        problem: &Problem,
        solution: &Solution,
        out: &mut Vec<Violation>,
    ) {
        // Recompute the objective from the problem's data. Streams whose
        // bitrate has no ladder entry were already reported by the codec
        // check; credit them their declared QoE to avoid double reporting.
        let mut computed = 0.0;
        for (&sub, streams) in &solution.received {
            for r in streams {
                let expected = problem
                    .source(r.source)
                    .and_then(|s| s.ladder.spec_for_bitrate(r.bitrate))
                    .and_then(|spec| {
                        problem
                            .subscriptions_of(sub)
                            .into_iter()
                            .find(|s| s.source == r.source && s.tag == r.tag)
                            .map(|s| spec.qoe * s.qoe_boost + s.presence_bonus)
                    });
                computed += expected.unwrap_or(r.qoe);
            }
        }
        if (computed - solution.total_qoe).abs() > self.qoe_tolerance {
            out.push(Violation::new(ViolationKind::QoeMismatch {
                declared: solution.total_qoe,
                computed,
            }));
        }
    }

    fn check_iteration_bound(
        &self,
        problem: &Problem,
        solution: &Solution,
        out: &mut Vec<Violation>,
    ) {
        let bound =
            1 + problem.sources().iter().map(|s| s.ladder.resolutions().len()).sum::<usize>();
        if solution.iterations > bound {
            out.push(Violation::new(ViolationKind::IterationBoundExceeded {
                actual: solution.iterations,
                budgeted: bound,
            }));
        }
    }

    fn check_qoe_floor(&self, problem: &Problem, solution: &Solution, out: &mut Vec<Violation>) {
        let baseline = baseline_qoe(problem);
        if solution.total_qoe + self.qoe_tolerance < baseline {
            out.push(Violation::new(ViolationKind::QoeBelowBaseline {
                actual: solution.total_qoe,
                baseline,
            }));
        }
    }

    // ---- trace-backed invariants -----------------------------------------

    fn check_trace(&self, solution: &Solution, trace: &SolveTrace, out: &mut Vec<Violation>) {
        if solution.iterations != trace.iterations.len() {
            out.push(Violation::new(ViolationKind::IterationCountMismatch {
                declared: solution.iterations,
                traced: trace.iterations.len(),
            }));
        }
        for it in &trace.iterations {
            if let Some(red) = &it.reduction {
                if red.remaining_at_resolution != 0 {
                    out.push(Violation::new(ViolationKind::ReductionRemovedPartialResolution {
                        source: red.source,
                        resolution: red.resolution,
                        remaining: red.remaining_at_resolution,
                    }));
                }
            }
        }
        let Some(terminal) = trace.iterations.last() else { return };
        // Eq. 12: the merged bitrate recorded for (source, resolution) must
        // be the minimum of the Step-1 requests at that resolution…
        let mut merge_min: BTreeMap<(SourceId, Resolution), Bitrate> = BTreeMap::new();
        for (src, reqs) in &terminal.requests {
            for r in reqs {
                merge_min
                    .entry((*src, r.spec.resolution))
                    .and_modify(|b| *b = (*b).min(r.spec.bitrate))
                    .or_insert(r.spec.bitrate);
            }
        }
        // …and the published bitrate must equal it, unless the publisher's
        // uplink was repaired this iteration (repair only lowers).
        for (src, policies) in &solution.publish {
            let repaired = terminal.repaired.contains(&src.client);
            for p in policies {
                let Some(&min) = merge_min.get(&(*src, p.resolution)) else {
                    out.push(Violation::new(ViolationKind::PolicyNotInTrace {
                        source: *src,
                        resolution: p.resolution,
                    }));
                    continue;
                };
                let ok = if repaired { p.bitrate <= min } else { p.bitrate == min };
                if !ok {
                    out.push(Violation::new(ViolationKind::MergeNotMinimum {
                        source: *src,
                        resolution: p.resolution,
                        actual: p.bitrate,
                        budgeted: min,
                    }));
                }
            }
        }
    }
}

/// QoE of the all-lowest-rung baseline: every source publishes exactly its
/// smallest stream (if the publisher's uplink admits it), every subscriber
/// takes it when its cap and remaining downlink admit it. Deterministic
/// greedy in problem order; any orchestration worth running must do at
/// least this well.
pub fn baseline_qoe(problem: &Problem) -> f64 {
    let mut uplink_used: BTreeMap<ClientId, u64> = BTreeMap::new();
    let mut downlink_used: BTreeMap<ClientId, u64> = BTreeMap::new();
    let mut total = 0.0;
    for source in problem.sources() {
        let Some(spec) = source.ladder.specs().first().copied() else { continue };
        let uplink = problem.client(source.id.client).map_or(0, |c| c.uplink.as_bps());
        let used = uplink_used.get(&source.id.client).copied().unwrap_or(0);
        if used + spec.bitrate.as_bps() > uplink {
            continue;
        }
        let mut audience = 0usize;
        for sub in problem.subscribers_of(source.id) {
            if spec.resolution > sub.max_resolution {
                continue;
            }
            let budget = problem.client(sub.subscriber).map_or(0, |c| c.downlink.as_bps());
            let down = downlink_used.entry(sub.subscriber).or_insert(0);
            if *down + spec.bitrate.as_bps() > budget {
                continue;
            }
            *down += spec.bitrate.as_bps();
            total += spec.qoe * sub.qoe_boost + sub.presence_bonus;
            audience += 1;
        }
        if audience > 0 {
            uplink_used.insert(source.id.client, used + spec.bitrate.as_bps());
        }
    }
    total
}

/// Cross-check media-plane forwarding rules against the solution that
/// produced them: the rules must deliver exactly the receive map — no
/// phantom rules, no starved subscriptions, no bitrate drift.
///
/// Rules are `(subscriber, source, tag, bitrate)` tuples so callers at any
/// layer can adapt their own rule type without this crate depending on it.
pub fn check_forwarding(
    solution: &Solution,
    rules: &[(ClientId, SourceId, u8, Bitrate)],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut by_key: BTreeMap<(ClientId, SourceId, u8), Bitrate> = BTreeMap::new();
    for &(sub, src, tag, bitrate) in rules {
        if by_key.insert((sub, src, tag), bitrate).is_some() {
            out.push(Violation::new(ViolationKind::MultipleStreamsPerSubscription {
                subscriber: sub,
                source: src,
                tag,
            }));
        }
    }
    for (&(sub, src, tag), &bitrate) in &by_key {
        match solution.received_from(sub, src, tag) {
            None => out.push(Violation::new(ViolationKind::ForwardingWithoutStream {
                subscriber: sub,
                source: src,
                tag,
            })),
            Some(r) if r.bitrate != bitrate => {
                out.push(Violation::new(ViolationKind::ForwardingBitrateMismatch {
                    subscriber: sub,
                    source: src,
                    tag,
                    actual: bitrate,
                    budgeted: r.bitrate,
                }));
            }
            Some(_) => {}
        }
    }
    for (&sub, streams) in &solution.received {
        for r in streams {
            if !by_key.contains_key(&(sub, r.source, r.tag)) {
                out.push(Violation::new(ViolationKind::StreamWithoutForwarding {
                    subscriber: sub,
                    source: r.source,
                    tag: r.tag,
                }));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests;
