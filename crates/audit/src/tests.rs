//! Corruption tests: break a correct solution along one dimension and
//! assert the auditor reports exactly the corresponding violation kind.

use super::*;
use gso_algo::solver::{self, SolverConfig};
use gso_algo::{ladders, ClientSpec, StreamSpec, Subscription};

fn spec_at(problem: &Problem, src: SourceId, res: Resolution, kbps: u64) -> StreamSpec {
    problem
        .source(src)
        .expect("invariant: test source exists")
        .ladder
        .specs()
        .iter()
        .copied()
        .find(|s| s.resolution == res && s.bitrate == Bitrate::from_kbps(kbps))
        .expect("invariant: test ladder has the requested rung")
}

/// Re-point one source's only stream at `spec`, updating every receiver's
/// entry and the QoE bookkeeping so that *only* the intended constraint is
/// violated afterwards.
fn set_stream(problem: &Problem, solution: &mut Solution, src: SourceId, spec: StreamSpec) {
    let policies = solution.publish.get_mut(&src).expect("invariant: source publishes");
    assert_eq!(policies.len(), 1, "corruption helper expects a single-stream policy");
    policies[0].resolution = spec.resolution;
    policies[0].bitrate = spec.bitrate;
    for streams in solution.received.values_mut() {
        for r in streams.iter_mut().filter(|r| r.source == src) {
            r.resolution = spec.resolution;
            r.bitrate = spec.bitrate;
        }
    }
    recompute_qoe(problem, solution);
}

/// Recompute every stream's QoE (and the total) from the problem data, so
/// corruptions stay consistent with the Eq. 1 accounting.
fn recompute_qoe(problem: &Problem, solution: &mut Solution) {
    let mut total = 0.0;
    for (&sub, streams) in &mut solution.received {
        for r in streams {
            let spec = problem
                .source(r.source)
                .and_then(|s| s.ladder.spec_for_bitrate(r.bitrate))
                .expect("invariant: corrupted bitrate still on the ladder");
            let s = problem
                .subscriptions_of(sub)
                .into_iter()
                .find(|s| s.source == r.source && s.tag == r.tag)
                .expect("invariant: received stream has a subscription");
            r.qoe = spec.qoe * s.qoe_boost + s.presence_bonus;
            total += r.qoe;
        }
    }
    solution.total_qoe = total;
}

fn one_publisher(uplink_kbps: u64, downlink_kbps: u64, cap: Resolution) -> Problem {
    let ladder = ladders::paper_table1();
    let p = ClientId(1);
    let w = ClientId(2);
    Problem::new(
        vec![
            ClientSpec::new(
                p,
                Bitrate::from_kbps(uplink_kbps),
                Bitrate::from_mbps(10),
                ladder.clone(),
            ),
            ClientSpec::new(w, Bitrate::from_mbps(10), Bitrate::from_kbps(downlink_kbps), ladder),
        ],
        vec![Subscription::new(w, SourceId::video(p), cap)],
    )
    .expect("invariant: fixture is a valid conference")
}

#[test]
fn clean_solutions_audit_clean() {
    let auditor = SolutionAuditor::new();
    let cfg = SolverConfig::default();
    for scenario in scenarios::all() {
        let (solution, trace) = solver::solve_traced(&scenario.problem, &cfg);
        let violations = auditor.audit_traced(&scenario.problem, &solution, &trace);
        assert!(
            violations.is_empty(),
            "scenario {} not clean:\n{}",
            scenario.name,
            report(&violations)
        );
    }
}

#[test]
fn corrupt_uplink_yields_uplink_exceeded() {
    // P's uplink admits 360P@500K at most; push the stream one rung up.
    let problem = one_publisher(500, 5_000, Resolution::R720);
    let mut solution = solver::solve(&problem, &SolverConfig::default());
    let src = SourceId::video(ClientId(1));
    set_stream(&problem, &mut solution, src, spec_at(&problem, src, Resolution::R360, 600));

    let violations = SolutionAuditor::new().audit(&problem, &solution);
    assert_eq!(violations.len(), 1, "unexpected findings:\n{}", report(&violations));
    assert!(
        matches!(violations[0].kind, ViolationKind::UplinkExceeded { client: ClientId(1), .. }),
        "got {:?}",
        violations[0]
    );
    assert_eq!(violations[0].equation(), "Eq. 14");
}

#[test]
fn corrupt_downlink_yields_downlink_exceeded() {
    // W's downlink fits 360P@400K at most; deliver the 500K rung instead.
    let problem = one_publisher(5_000, 450, Resolution::R720);
    let mut solution = solver::solve(&problem, &SolverConfig::default());
    let src = SourceId::video(ClientId(1));
    set_stream(&problem, &mut solution, src, spec_at(&problem, src, Resolution::R360, 500));

    let violations = SolutionAuditor::new().audit(&problem, &solution);
    assert_eq!(violations.len(), 1, "unexpected findings:\n{}", report(&violations));
    assert!(
        matches!(violations[0].kind, ViolationKind::DownlinkExceeded { client: ClientId(2), .. }),
        "got {:?}",
        violations[0]
    );
    assert_eq!(violations[0].equation(), "Eq. 1–4");
}

#[test]
fn corrupt_codec_yields_duplicate_resolution() {
    // Two watchers merged onto one 360P stream; split them into two
    // same-resolution streams — everything else stays consistent.
    let ladder = ladders::paper_table1();
    let p = ClientId(1);
    let w1 = ClientId(2);
    let w2 = ClientId(3);
    let problem = Problem::new(
        vec![
            ClientSpec::new(p, Bitrate::from_mbps(5), Bitrate::from_mbps(10), ladder.clone()),
            ClientSpec::new(w1, Bitrate::from_mbps(10), Bitrate::from_kbps(650), ladder.clone()),
            ClientSpec::new(w2, Bitrate::from_mbps(10), Bitrate::from_kbps(650), ladder),
        ],
        vec![
            Subscription::new(w1, SourceId::video(p), Resolution::R360),
            Subscription::new(w2, SourceId::video(p), Resolution::R360),
        ],
    )
    .expect("invariant: fixture is a valid conference");
    let mut solution = solver::solve(&problem, &SolverConfig::default());
    let src = SourceId::video(p);

    let policies = solution.publish.get_mut(&src).expect("invariant: source publishes");
    assert_eq!(policies.len(), 1);
    let merged = policies[0].clone();
    assert_eq!(merged.audience.len(), 2);
    let lower = spec_at(&problem, src, Resolution::R360, 500);
    policies[0].audience = vec![(w1, 0)];
    policies.push(gso_algo::PublishPolicy {
        resolution: lower.resolution,
        bitrate: lower.bitrate,
        audience: vec![(w2, 0)],
    });
    for r in solution.received.get_mut(&w2).expect("invariant: w2 receives").iter_mut() {
        r.resolution = lower.resolution;
        r.bitrate = lower.bitrate;
    }
    recompute_qoe(&problem, &mut solution);

    let violations = SolutionAuditor::new().audit(&problem, &solution);
    assert_eq!(violations.len(), 1, "unexpected findings:\n{}", report(&violations));
    assert!(
        matches!(
            violations[0].kind,
            ViolationKind::DuplicateResolution { resolution: Resolution::R360, .. }
        ),
        "got {:?}",
        violations[0]
    );
}

#[test]
fn corrupt_subscription_cap_yields_resolution_cap_exceeded() {
    // The subscription caps at 360P; deliver 720P anyway.
    let problem = one_publisher(5_000, 5_000, Resolution::R360);
    let mut solution = solver::solve(&problem, &SolverConfig::default());
    let src = SourceId::video(ClientId(1));
    set_stream(&problem, &mut solution, src, spec_at(&problem, src, Resolution::R720, 1_000));

    let violations = SolutionAuditor::new().audit(&problem, &solution);
    assert_eq!(violations.len(), 1, "unexpected findings:\n{}", report(&violations));
    assert!(
        matches!(
            violations[0].kind,
            ViolationKind::ResolutionCapExceeded {
                subscriber: ClientId(2),
                actual: Resolution::R720,
                budgeted: Resolution::R360,
                ..
            }
        ),
        "got {:?}",
        violations[0]
    );
}

#[test]
fn corrupt_merge_minimum_yields_merge_not_minimum() {
    // W1 requests 360P@600K, W2 requests 360P@500K: the merge must publish
    // 500K (Eq. 12). Quietly publishing 400K is invisible to the static
    // audit but caught by the trace-backed check.
    let ladder = ladders::paper_table1();
    let p = ClientId(1);
    let w1 = ClientId(2);
    let w2 = ClientId(3);
    let problem = Problem::new(
        vec![
            ClientSpec::new(p, Bitrate::from_mbps(5), Bitrate::from_mbps(10), ladder.clone()),
            ClientSpec::new(w1, Bitrate::from_mbps(10), Bitrate::from_kbps(650), ladder.clone()),
            ClientSpec::new(w2, Bitrate::from_mbps(10), Bitrate::from_kbps(550), ladder),
        ],
        vec![
            Subscription::new(w1, SourceId::video(p), Resolution::R360),
            Subscription::new(w2, SourceId::video(p), Resolution::R360),
        ],
    )
    .expect("invariant: fixture is a valid conference");
    let (mut solution, trace) = solver::solve_traced(&problem, &SolverConfig::default());
    let src = SourceId::video(p);
    assert_eq!(
        solution.policies(src),
        &[gso_algo::PublishPolicy {
            resolution: Resolution::R360,
            bitrate: Bitrate::from_kbps(500),
            audience: vec![(w1, 0), (w2, 0)],
        }]
    );
    set_stream(&problem, &mut solution, src, spec_at(&problem, src, Resolution::R360, 400));

    // The plain audit cannot see it…
    assert!(SolutionAuditor::new().audit(&problem, &solution).is_empty());
    // …the traced audit can.
    let violations = SolutionAuditor::new().audit_traced(&problem, &solution, &trace);
    assert_eq!(violations.len(), 1, "unexpected findings:\n{}", report(&violations));
    assert!(
        matches!(
            violations[0].kind,
            ViolationKind::MergeNotMinimum {
                resolution: Resolution::R360,
                actual,
                budgeted,
                ..
            } if actual == Bitrate::from_kbps(400) && budgeted == Bitrate::from_kbps(500)
        ),
        "got {:?}",
        violations[0]
    );
    assert_eq!(violations[0].equation(), "Eq. 12");
}

#[test]
fn qoe_mismatch_detected() {
    let problem = one_publisher(5_000, 5_000, Resolution::R720);
    let mut solution = solver::solve(&problem, &SolverConfig::default());
    solution.total_qoe += 10.0;
    let violations = SolutionAuditor::new().audit(&problem, &solution);
    assert_eq!(violations.len(), 1);
    assert!(matches!(violations[0].kind, ViolationKind::QoeMismatch { .. }));
}

#[test]
fn empty_solution_falls_below_baseline() {
    let problem = one_publisher(5_000, 5_000, Resolution::R720);
    let solution = Solution::default();
    let violations = SolutionAuditor::new().audit(&problem, &solution);
    assert_eq!(violations.len(), 1, "unexpected findings:\n{}", report(&violations));
    assert!(matches!(violations[0].kind, ViolationKind::QoeBelowBaseline { .. }));
}

#[test]
fn iteration_bound_is_enforced() {
    let problem = one_publisher(5_000, 5_000, Resolution::R720);
    let mut solution = solver::solve(&problem, &SolverConfig::default());
    solution.iterations = 100;
    let violations = SolutionAuditor::new().audit(&problem, &solution);
    assert_eq!(violations.len(), 1);
    assert!(matches!(
        violations[0].kind,
        ViolationKind::IterationBoundExceeded { actual: 100, budgeted: 7 }
    ));
}

#[test]
fn forwarding_rules_cross_check() {
    let problem = one_publisher(5_000, 5_000, Resolution::R720);
    let solution = solver::solve(&problem, &SolverConfig::default());
    let src = SourceId::video(ClientId(1));
    let w = ClientId(2);
    let got = solution.received_from(w, src, 0).expect("invariant: watcher receives");

    // Exact rules: clean.
    let rules = vec![(w, src, 0, got.bitrate)];
    assert!(check_forwarding(&solution, &rules).is_empty());

    // Bitrate drift.
    let drifted = vec![(w, src, 0, Bitrate::from_kbps(123))];
    let violations = check_forwarding(&solution, &drifted);
    assert_eq!(violations.len(), 1);
    assert!(matches!(violations[0].kind, ViolationKind::ForwardingBitrateMismatch { .. }));

    // Phantom rule for a stream nobody is configured to receive.
    let phantom = vec![(w, src, 0, got.bitrate), (w, src, 7, got.bitrate)];
    let violations = check_forwarding(&solution, &phantom);
    assert_eq!(violations.len(), 1);
    assert!(matches!(violations[0].kind, ViolationKind::ForwardingWithoutStream { tag: 7, .. }));

    // Missing rule: the configured stream is never forwarded.
    let violations = check_forwarding(&solution, &[]);
    assert_eq!(violations.len(), 1);
    assert!(matches!(violations[0].kind, ViolationKind::StreamWithoutForwarding { .. }));
}

#[test]
fn baseline_respects_budgets() {
    // Publisher uplink below the smallest rung: the baseline publishes
    // nothing and scores zero.
    let problem = one_publisher(50, 5_000, Resolution::R720);
    assert_eq!(baseline_qoe(&problem), 0.0);
    // A feasible conference scores positive.
    let problem = one_publisher(5_000, 5_000, Resolution::R720);
    assert!(baseline_qoe(&problem) > 0.0);
}
