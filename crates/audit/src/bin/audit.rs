//! CI gate: replay the shipped example configurations and the paper's
//! Table 1 cases through the solver and the full traced audit.
//!
//! Each scenario is also replayed through one shared [`SolveEngine`]
//! (cold, then warm) and must reproduce the solver's solution and trace
//! bit-for-bit — the reuse-path equivalence guarantee, checked on real
//! configurations rather than random instances.
//!
//! Run with `cargo run -p gso-audit --bin audit`. Exits nonzero if any
//! scenario produces a violation, printing each finding with the paper
//! equation it breaks.
//!
//! `--metrics` switches to replay-observability mode: the same replay runs,
//! but the only stdout is the `gso-telemetry` JSON export of per-scenario
//! solver work. CI runs this twice and diffs the outputs to enforce the
//! determinism guarantee.

use gso_algo::solver::{self, SolverConfig};
use gso_algo::SolveEngine;
use gso_audit::{report, scenarios, SolutionAuditor};
use gso_telemetry::{keys, Telemetry};
use std::process::ExitCode;

fn main() -> ExitCode {
    let metrics_mode = std::env::args().any(|a| a == "--metrics");
    let telemetry =
        if metrics_mode { Telemetry::new("audit-replay") } else { Telemetry::disabled() };
    let auditor = SolutionAuditor::new();
    let cfg = SolverConfig::default();
    let mut failed = 0usize;
    let scenarios = scenarios::all();
    let total = scenarios.len();
    // One engine across every scenario: each replay exercises cache
    // reconciliation against the previous scenario's client set.
    let mut engine = SolveEngine::new(cfg.clone());

    for scenario in scenarios {
        let rows_before = engine.stats().rows_recomputed;
        let (solution, trace) = solver::solve_traced(&scenario.problem, &cfg);
        let violations = auditor.audit_traced(&scenario.problem, &solution, &trace);
        let cold = engine.solve_traced(&scenario.problem);
        let warm = engine.solve_traced(&scenario.problem);
        let engine_ok =
            cold.0 == solution && cold.1 == trace && warm.0 == solution && warm.1 == trace;
        telemetry.incr(keys::AUDIT_SCENARIOS, "");
        telemetry.add(keys::AUDIT_SOLVE_ITERATIONS, scenario.name, solution.iterations as u64);
        telemetry.add(
            keys::AUDIT_SOLVE_ROWS,
            scenario.name,
            engine.stats().rows_recomputed - rows_before,
        );
        telemetry.gauge(keys::AUDIT_QOE, scenario.name, solution.total_qoe);
        if violations.is_empty() && engine_ok {
            if !metrics_mode {
                println!(
                    "ok   {:<18} qoe {:>10.1}  iterations {}",
                    scenario.name, solution.total_qoe, solution.iterations
                );
            }
        } else {
            failed += 1;
            eprintln!("FAIL {:<18} {} violation(s):", scenario.name, violations.len());
            eprint!("{}", report(&violations));
            if !engine_ok {
                eprintln!("     engine replay diverged from the sequential solver");
            }
        }
    }

    if metrics_mode {
        println!("{}", telemetry.export_json());
    }
    if failed == 0 {
        if !metrics_mode {
            println!("\naudit clean: {total} scenarios, 0 violations");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("\naudit FAILED: {failed} of {total} scenarios violated constraints");
        ExitCode::FAILURE
    }
}
