//! CI gate: replay the shipped example configurations and the paper's
//! Table 1 cases through the solver and the full traced audit.
//!
//! Each scenario is also replayed through one shared [`SolveEngine`]
//! (cold, then warm) and must reproduce the solver's solution and trace
//! bit-for-bit — the reuse-path equivalence guarantee, checked on real
//! configurations rather than random instances.
//!
//! Run with `cargo run -p gso-audit --bin audit`. Exits nonzero if any
//! scenario produces a violation, printing each finding with the paper
//! equation it breaks.
//!
//! `--metrics` switches to replay-observability mode: the same replay runs,
//! but the only stdout is the `gso-telemetry` JSON export of per-scenario
//! solver work. CI runs this twice and diffs the outputs to enforce the
//! determinism guarantee.
//!
//! `--digest` switches to divergence-detection mode: every scenario is
//! solved twice — sequential solver plus sharded engines at 1, 2, and
//! 8 threads — and the per-scenario `StateDigest` traces of both passes are
//! compared with `first_divergence`. Any nondeterminism (across runs, or
//! between the sequential solver and any sharded engine) bisects to the
//! first divergent scenario and fails the gate.

use gso_algo::solver::{self, SolverConfig};
use gso_algo::{EngineConfig, SolveEngine};
use gso_audit::{report, scenarios, SolutionAuditor};
use gso_detguard::{first_divergence, DigestEntry, DigestTrace, StateDigest};
use gso_telemetry::{keys, Telemetry};
use std::process::ExitCode;

const DIGEST_THREADS: [usize; 3] = [1, 2, 8];

/// One full pass over every scenario: for each, digest the sequential
/// solver's solution+trace and each sharded engine's solution+trace.
/// Engines force `parallel_threshold: 1` so even two-client scenarios
/// exercise the sharded Step-1 merge.
fn digest_pass(cfg: &SolverConfig) -> (DigestTrace, bool) {
    let mut engines: Vec<SolveEngine> = DIGEST_THREADS
        .iter()
        .map(|&threads| {
            SolveEngine::with_engine_config(
                cfg.clone(),
                EngineConfig { threads, parallel_threshold: 1 },
            )
        })
        .collect();
    let mut trace = DigestTrace::new();
    let mut engines_match = true;
    for (i, scenario) in scenarios::all().into_iter().enumerate() {
        let (solution, solve_trace) = solver::solve_traced(&scenario.problem, cfg);
        let solution_digest = solution.state_digest();
        let trace_digest = solve_trace.state_digest();
        let mut components = vec![
            ("solver.solution".to_string(), solution_digest),
            ("solver.trace".to_string(), trace_digest),
        ];
        for (engine, &threads) in engines.iter_mut().zip(&DIGEST_THREADS) {
            let (es, et) = engine.solve_traced(&scenario.problem);
            let es_digest = es.state_digest();
            let et_digest = et.state_digest();
            if es_digest != solution_digest || et_digest != trace_digest {
                engines_match = false;
                eprintln!(
                    "FAIL {:<18} engine({threads} threads) digest diverges from sequential solver",
                    scenario.name
                );
            }
            components.push((format!("engine{threads}.solution"), es_digest));
            components.push((format!("engine{threads}.trace"), et_digest));
        }
        trace.record(DigestEntry::new(
            i as u64,
            components,
            format!("scenario {} qoe {:.3}", scenario.name, solution.total_qoe),
        ));
    }
    (trace, engines_match)
}

fn digest_mode(cfg: &SolverConfig) -> ExitCode {
    let (a, ok_a) = digest_pass(cfg);
    let (b, ok_b) = digest_pass(cfg);
    if let Some(d) = first_divergence(&a, &b) {
        eprintln!("digest FAILED: double-run divergence\n{}", d.report());
        return ExitCode::FAILURE;
    }
    if !(ok_a && ok_b) {
        eprintln!("digest FAILED: sharded engine diverged from the sequential solver");
        return ExitCode::FAILURE;
    }
    println!(
        "digest clean: {} scenarios x2 runs, solver + engines at {DIGEST_THREADS:?} threads all identical",
        a.entries.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let metrics_mode = std::env::args().any(|a| a == "--metrics");
    if std::env::args().any(|a| a == "--digest") {
        return digest_mode(&SolverConfig::default());
    }
    let telemetry =
        if metrics_mode { Telemetry::new("audit-replay") } else { Telemetry::disabled() };
    let auditor = SolutionAuditor::new();
    let cfg = SolverConfig::default();
    let mut failed = 0usize;
    let scenarios = scenarios::all();
    let total = scenarios.len();
    // One engine across every scenario: each replay exercises cache
    // reconciliation against the previous scenario's client set.
    let mut engine = SolveEngine::new(cfg.clone());

    for scenario in scenarios {
        let rows_before = engine.stats().rows_recomputed;
        let (solution, trace) = solver::solve_traced(&scenario.problem, &cfg);
        let violations = auditor.audit_traced(&scenario.problem, &solution, &trace);
        let cold = engine.solve_traced(&scenario.problem);
        let warm = engine.solve_traced(&scenario.problem);
        let engine_ok =
            cold.0 == solution && cold.1 == trace && warm.0 == solution && warm.1 == trace;
        telemetry.incr(keys::AUDIT_SCENARIOS, "");
        telemetry.add(keys::AUDIT_SOLVE_ITERATIONS, scenario.name, solution.iterations as u64);
        telemetry.add(
            keys::AUDIT_SOLVE_ROWS,
            scenario.name,
            engine.stats().rows_recomputed - rows_before,
        );
        telemetry.gauge(keys::AUDIT_QOE, scenario.name, solution.total_qoe);
        if violations.is_empty() && engine_ok {
            if !metrics_mode {
                println!(
                    "ok   {:<18} qoe {:>10.1}  iterations {}",
                    scenario.name, solution.total_qoe, solution.iterations
                );
            }
        } else {
            failed += 1;
            eprintln!("FAIL {:<18} {} violation(s):", scenario.name, violations.len());
            eprint!("{}", report(&violations));
            if !engine_ok {
                eprintln!("     engine replay diverged from the sequential solver");
            }
        }
    }

    if metrics_mode {
        println!("{}", telemetry.export_json());
    }
    if failed == 0 {
        if !metrics_mode {
            println!("\naudit clean: {total} scenarios, 0 violations");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("\naudit FAILED: {failed} of {total} scenarios violated constraints");
        ExitCode::FAILURE
    }
}
