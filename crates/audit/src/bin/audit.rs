//! CI gate: replay the shipped example configurations and the paper's
//! Table 1 cases through the solver and the full traced audit.
//!
//! Each scenario is also replayed through one shared [`SolveEngine`]
//! (cold, then warm) and must reproduce the solver's solution and trace
//! bit-for-bit — the reuse-path equivalence guarantee, checked on real
//! configurations rather than random instances.
//!
//! Run with `cargo run -p gso-audit --bin audit`. Exits nonzero if any
//! scenario produces a violation, printing each finding with the paper
//! equation it breaks.
//!
//! `--metrics` switches to replay-observability mode: the same replay runs,
//! but the only stdout is the `gso-telemetry` JSON export of per-scenario
//! solver work. CI runs this twice and diffs the outputs to enforce the
//! determinism guarantee.
//!
//! `--digest` switches to divergence-detection mode: every scenario is
//! solved twice — sequential solver plus batch schedulers at 1, 2, and
//! 8 workers — and the per-scenario `StateDigest` traces of both passes are
//! compared with `first_divergence`. Each worker count keeps one engine warm
//! across scenarios (single-job batches), and the pass closes with all
//! scenarios submitted as one batch; any nondeterminism (across runs, or
//! between the sequential solver and any scheduled engine) bisects to the
//! first divergent scenario and fails the gate.

use gso_algo::solver::{self, SolverConfig};
use gso_algo::{BatchConfig, BatchJob, BatchScheduler, Problem, SolveEngine};
use gso_audit::{report, scenarios, SolutionAuditor};
use gso_detguard::{first_divergence, DigestEntry, DigestTrace, StateDigest};
use gso_telemetry::{keys, Telemetry};
use std::process::ExitCode;
use std::sync::Arc;

const DIGEST_WORKERS: [usize; 3] = [1, 2, 8];

/// One full pass over every scenario: for each, digest the sequential
/// solver's solution+trace and, per worker count, the batch scheduler's
/// solution+trace. Each worker count carries one engine warm across the
/// whole scenario list so reconciliation against the previous scenario's
/// client set is exercised on the workers, not just inline.
fn digest_pass(cfg: &SolverConfig) -> (DigestTrace, bool) {
    let (names, problems): (Vec<&'static str>, Vec<Arc<Problem>>) =
        scenarios::all().into_iter().map(|s| (s.name, Arc::new(s.problem))).unzip();
    let mut lanes: Vec<(BatchScheduler, Option<SolveEngine>)> = DIGEST_WORKERS
        .iter()
        .map(|&workers| {
            (BatchScheduler::new(&BatchConfig { workers }), Some(SolveEngine::new(cfg.clone())))
        })
        .collect();
    let mut trace = DigestTrace::new();
    let mut engines_match = true;
    for (i, (name, problem)) in names.iter().zip(&problems).enumerate() {
        let (solution, solve_trace) = solver::solve_traced(problem, cfg);
        let solution_digest = solution.state_digest();
        let trace_digest = solve_trace.state_digest();
        let mut components = vec![
            ("solver.solution".to_string(), solution_digest),
            ("solver.trace".to_string(), trace_digest),
        ];
        for ((scheduler, engine_slot), &workers) in lanes.iter_mut().zip(&DIGEST_WORKERS) {
            let engine = engine_slot.take().expect("invariant: lane engine always restored");
            let mut results = scheduler.solve_batch(vec![BatchJob {
                engine,
                problem: Arc::clone(problem),
                traced: true,
            }]);
            let result = results.pop().expect("invariant: one job in, one result out");
            *engine_slot = Some(result.engine);
            let es_digest = result.solution.state_digest();
            let et_digest =
                result.trace.expect("invariant: traced jobs return a trace").state_digest();
            if es_digest != solution_digest || et_digest != trace_digest {
                engines_match = false;
                eprintln!(
                    "FAIL {name:<18} batch({workers} workers) digest diverges from sequential solver",
                );
            }
            components.push((format!("batch{workers}.solution"), es_digest));
            components.push((format!("batch{workers}.trace"), et_digest));
        }
        trace.record(DigestEntry::new(
            i as u64,
            components,
            format!("scenario {name} qoe {:.3}", solution.total_qoe),
        ));
    }
    // Close the pass with all scenarios interleaved as one batch per worker
    // count: fresh engines, results must still match the sequential solver
    // scenario-for-scenario in submission order.
    for ((scheduler, _), &workers) in lanes.iter_mut().zip(&DIGEST_WORKERS) {
        let jobs: Vec<BatchJob> = problems
            .iter()
            .map(|p| BatchJob {
                engine: SolveEngine::new(cfg.clone()),
                problem: Arc::clone(p),
                traced: true,
            })
            .collect();
        let results = scheduler.solve_batch(jobs);
        let mut components = Vec::new();
        for ((name, problem), result) in names.iter().zip(&problems).zip(results) {
            let (solution, solve_trace) = solver::solve_traced(problem, cfg);
            let es_digest = result.solution.state_digest();
            let et_digest =
                result.trace.expect("invariant: traced jobs return a trace").state_digest();
            if es_digest != solution.state_digest() || et_digest != solve_trace.state_digest() {
                engines_match = false;
                eprintln!(
                    "FAIL {name:<18} full-batch({workers} workers) digest diverges from sequential solver",
                );
            }
            components.push((format!("fullbatch{workers}.{name}.solution"), es_digest));
            components.push((format!("fullbatch{workers}.{name}.trace"), et_digest));
        }
        trace.record(DigestEntry::new(
            (names.len() + workers) as u64,
            components,
            format!("full batch at {workers} workers"),
        ));
    }
    (trace, engines_match)
}

fn digest_mode(cfg: &SolverConfig) -> ExitCode {
    let (a, ok_a) = digest_pass(cfg);
    let (b, ok_b) = digest_pass(cfg);
    if let Some(d) = first_divergence(&a, &b) {
        eprintln!("digest FAILED: double-run divergence\n{}", d.report());
        return ExitCode::FAILURE;
    }
    if !(ok_a && ok_b) {
        eprintln!("digest FAILED: batch scheduler diverged from the sequential solver");
        return ExitCode::FAILURE;
    }
    println!(
        "digest clean: {} entries x2 runs, solver + batch schedulers at {DIGEST_WORKERS:?} workers all identical",
        a.entries.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let metrics_mode = std::env::args().any(|a| a == "--metrics");
    if std::env::args().any(|a| a == "--digest") {
        return digest_mode(&SolverConfig::default());
    }
    let telemetry =
        if metrics_mode { Telemetry::new("audit-replay") } else { Telemetry::disabled() };
    let auditor = SolutionAuditor::new();
    let cfg = SolverConfig::default();
    let mut failed = 0usize;
    let scenarios = scenarios::all();
    let total = scenarios.len();
    // One engine across every scenario: each replay exercises cache
    // reconciliation against the previous scenario's client set.
    let mut engine = SolveEngine::new(cfg.clone());

    for scenario in scenarios {
        let rows_before = engine.stats().rows_recomputed;
        let (solution, trace) = solver::solve_traced(&scenario.problem, &cfg);
        let violations = auditor.audit_traced(&scenario.problem, &solution, &trace);
        let cold = engine.solve_traced(&scenario.problem);
        let warm = engine.solve_traced(&scenario.problem);
        let engine_ok =
            cold.0 == solution && cold.1 == trace && warm.0 == solution && warm.1 == trace;
        telemetry.incr(keys::AUDIT_SCENARIOS, "");
        telemetry.add(keys::AUDIT_SOLVE_ITERATIONS, scenario.name, solution.iterations as u64);
        telemetry.add(
            keys::AUDIT_SOLVE_ROWS,
            scenario.name,
            engine.stats().rows_recomputed - rows_before,
        );
        telemetry.gauge(keys::AUDIT_QOE, scenario.name, solution.total_qoe);
        if violations.is_empty() && engine_ok {
            if !metrics_mode {
                println!(
                    "ok   {:<18} qoe {:>10.1}  iterations {}",
                    scenario.name, solution.total_qoe, solution.iterations
                );
            }
        } else {
            failed += 1;
            eprintln!("FAIL {:<18} {} violation(s):", scenario.name, violations.len());
            eprint!("{}", report(&violations));
            if !engine_ok {
                eprintln!("     engine replay diverged from the sequential solver");
            }
        }
    }

    if metrics_mode {
        println!("{}", telemetry.export_json());
    }
    if failed == 0 {
        if !metrics_mode {
            println!("\naudit clean: {total} scenarios, 0 violations");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("\naudit FAILED: {failed} of {total} scenarios violated constraints");
        ExitCode::FAILURE
    }
}
