//! Property test: the incremental [`SolveEngine`] is bit-identical to the
//! one-shot solver on every reuse path.
//!
//! For each random instance the engine is driven through the controller's
//! real access patterns — cold solve, warm re-solve after a single-source
//! ladder reduction, warm re-solve after a single-client bandwidth delta —
//! and each resulting `(Solution, SolveTrace)` pair must equal a fresh
//! `solver::solve_traced` on the same problem exactly (f64 equality, not
//! tolerance), with zero auditor findings. Random conference *batches* are
//! then pushed through [`BatchScheduler`] at 2 and 8 workers, cold and
//! warm, and must stay bit-identical to the sequential path too.
//!
//! Instances here are larger than `solver_vs_brute`'s (no exhaustive
//! baseline to keep tractable): up to 6 clients, 4 publishers, 9-rung
//! ladders, and virtual-publisher tags.
//!
//! A third property interleaves §7 fallback interludes (rounds where the
//! controller never consults the engine) with speaker changes — boost-only
//! f64 edits to otherwise identical subscriptions — and pins the
//! whole-solve fingerprint fast path from both sides: an unchanged problem
//! must recompute zero DP rows, and a boost-only change must invalidate
//! the memo rather than serve a stale solution.

use gso_algo::{
    ladders, solver, BatchConfig, BatchJob, BatchScheduler, ClientSpec, Ladder, Problem,
    Resolution, SolveEngine, SolverConfig, SourceId, Subscription,
};
use gso_audit::{report, SolutionAuditor};
use gso_detguard::StateDigest;
use gso_util::{Bitrate, ClientId};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_ladder() -> impl Strategy<Value = Ladder> {
    (0usize..4).prop_map(|pick| match pick {
        0 => ladders::paper_table1(),
        1 => ladders::coarse3(),
        2 => ladders::uniform(&[Resolution::R180, Resolution::R360, Resolution::R720], 2),
        _ => ladders::uniform(&[Resolution::R180, Resolution::R360], 3),
    })
}

fn arb_problem() -> impl Strategy<Value = Problem> {
    (3usize..=6).prop_flat_map(|n| {
        let pubs = 2usize..=n.min(4);
        let bw = prop::collection::vec((200u64..6_000, 300u64..8_000), n);
        let subs = prop::collection::vec(prop::bool::ANY, n * n);
        let caps = prop::collection::vec(0usize..3, n * n);
        let tags = prop::collection::vec(prop::bool::ANY, n);
        let ladder = arb_ladder();
        (Just(n), pubs, bw, subs, caps, tags, ladder).prop_map(
            |(n, pubs, bw, subs, caps, tags, ladder)| {
                let resolutions = [Resolution::R180, Resolution::R360, Resolution::R720];
                let clients: Vec<ClientSpec> = bw
                    .iter()
                    .enumerate()
                    .map(|(i, &(up, down))| {
                        let mut c = ClientSpec::new(
                            ClientId(i as u32 + 1),
                            Bitrate::from_kbps(up),
                            Bitrate::from_kbps(down),
                            ladder.clone(),
                        );
                        if i >= pubs {
                            c.sources.clear();
                        }
                        c
                    })
                    .collect();
                let mut subscriptions = Vec::new();
                for i in 0..n {
                    for j in 0..pubs {
                        if i != j && subs[i * n + j] {
                            let source = SourceId::video(ClientId(j as u32 + 1));
                            let sub = Subscription::new(
                                ClientId(i as u32 + 1),
                                source,
                                resolutions[caps[i * n + j]],
                            );
                            subscriptions.push(sub);
                            // Occasionally a second, tagged subscription to
                            // the same source (speaker-first thumbnails).
                            if tags[i] && j == 0 {
                                subscriptions.push(
                                    Subscription::new(
                                        ClientId(i as u32 + 1),
                                        source,
                                        Resolution::R180,
                                    )
                                    .with_tag(1),
                                );
                            }
                        }
                    }
                }
                Problem::new(clients, subscriptions).expect("generated problem is valid")
            },
        )
    })
}

/// Remove the top resolution from the first publisher ladder that has more
/// than one resolution; `None` if no ladder can shrink.
fn reduced_variant(base: &Problem) -> Option<Problem> {
    let mut clients = base.clients().to_vec();
    let idx = clients
        .iter()
        .position(|c| c.sources.first().is_some_and(|s| s.ladder.resolutions().len() > 1))?;
    let ladder = &mut clients[idx].sources[0].ladder;
    let top = *ladder.resolutions().last().expect("non-empty ladder");
    *ladder = ladder.without_resolution(top);
    Some(Problem::new(clients, base.subscriptions().to_vec()).expect("reduced variant valid"))
}

/// Scale the last client's downlink to 60 %.
fn bandwidth_variant(base: &Problem) -> Problem {
    let mut clients = base.clients().to_vec();
    let c = clients.last_mut().expect("non-empty problem");
    c.downlink = Bitrate::from_bps(c.downlink.as_bps() * 6 / 10);
    Problem::new(clients, base.subscriptions().to_vec()).expect("bandwidth variant valid")
}

/// Apply the controller's speaker boost to every untagged subscription of
/// the problem's first-subscribed source, leaving everything else —
/// including the subscription set's shape — identical. The variant differs
/// from the base only in `qoe_boost` f64s, exactly what a speaker change
/// produces through `GlobalPicture::to_problem`.
fn speaker_variant(base: &Problem, boost: f64) -> Problem {
    let target = base.subscriptions().first().expect("caller checked non-empty").source;
    let subs: Vec<Subscription> = base
        .subscriptions()
        .iter()
        .map(|s| {
            let mut s = *s;
            if s.source == target && s.tag == 0 {
                s.qoe_boost = boost;
            }
            s
        })
        .collect();
    Problem::new(base.clients().to_vec(), subs).expect("speaker variant valid")
}

/// Engine output on `problem` must match a fresh traced solve exactly and
/// audit clean.
fn check(
    engine: &mut SolveEngine,
    problem: &Problem,
    cfg: &SolverConfig,
    label: &str,
) -> Result<(), String> {
    let (got_sol, got_trace) = engine.solve_traced(problem);
    let (want_sol, want_trace) = solver::solve_traced(problem, cfg);
    prop_assert!(
        got_sol == want_sol,
        "{label}: solution diverged\n engine: {got_sol:?}\n solver: {want_sol:?}"
    );
    prop_assert!(
        got_trace == want_trace,
        "{label}: trace diverged\n engine: {got_trace:?}\n solver: {want_trace:?}"
    );
    // Structural equality must also survive the digest projection: the
    // stable hash is what the audit binary and the double-run comparator
    // compare, so it must agree wherever `==` does.
    prop_assert!(
        got_sol.state_digest() == want_sol.state_digest(),
        "{label}: solution digest diverged despite structural equality"
    );
    prop_assert!(
        got_trace.state_digest() == want_trace.state_digest(),
        "{label}: trace digest diverged despite structural equality"
    );
    let findings = SolutionAuditor::new().audit_traced(problem, &got_sol, &got_trace);
    prop_assert!(findings.is_empty(), "{}: auditor findings:\n{}", label, report(&findings));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_reuse_paths_match_sequential_solver(problem in arb_problem()) {
        let cfg = SolverConfig::default();
        let mut engine = SolveEngine::new(cfg.clone());

        // Cold, then warm full-hit on the identical problem.
        check(&mut engine, &problem, &cfg, "cold")?;
        check(&mut engine, &problem, &cfg, "warm full-hit")?;

        // Warm after a single-source ladder reduction, and back.
        if let Some(reduced) = reduced_variant(&problem) {
            check(&mut engine, &reduced, &cfg, "warm after reduction")?;
            check(&mut engine, &problem, &cfg, "warm after un-reduction")?;
        }

        // Warm after a single-client bandwidth delta, and back.
        let shrunk = bandwidth_variant(&problem);
        check(&mut engine, &shrunk, &cfg, "warm after bandwidth delta")?;
        check(&mut engine, &problem, &cfg, "warm after bandwidth restore")?;
    }

    /// Interleave fallback interludes and speaker changes against one warm
    /// engine. Ops: 0 = re-solve unchanged, 1 = speaker on, 2 = speaker
    /// off, 3 = fallback interlude (the controller serves the §7 template
    /// and never consults the engine, while the speaker state drifts
    /// underneath it). Every solve must equal a fresh solver run, an
    /// unchanged re-solve must recompute zero DP rows (the fast path), and
    /// a boost-only change — including one that happened entirely inside a
    /// fallback interlude — must recompute rows, proving the fingerprint
    /// keys on the boost f64s and not just the subscription shape.
    #[test]
    fn fingerprint_invalidates_across_fallback_and_speaker_interleaving(
        problem in arb_problem(),
        ops in prop::collection::vec(0u8..=3, 4..16),
    ) {
        prop_assume!(!problem.subscriptions().is_empty());
        let cfg = SolverConfig::default();
        let mut engine = SolveEngine::new(cfg.clone());
        let boosted = speaker_variant(&problem, gso_algo::qoe::SPEAKER_BOOST);

        check(&mut engine, &problem, &cfg, "cold")?;
        let mut speaker_on = false;
        let mut last_solved = false;
        for (i, op) in ops.iter().enumerate() {
            match op {
                1 => speaker_on = true,
                2 => speaker_on = false,
                3 => {
                    // Fallback interlude: no engine call; the next solve
                    // resumes from whatever the roster looks like by then.
                    speaker_on = !speaker_on;
                    continue;
                }
                _ => {}
            }
            let current = if speaker_on { &boosted } else { &problem };
            let before = engine.stats();
            check(&mut engine, current, &cfg, &format!("op {i} speaker={speaker_on}"))?;
            let rows = engine.stats().rows_recomputed - before.rows_recomputed;
            let iters = engine.stats().iterations - before.iterations;
            if last_solved == speaker_on {
                // The zero-work guarantee holds for single-iteration solves
                // (the steady state); a solve that replays ladder
                // reductions legitimately recomputes the reduced sources'
                // subscribers, because iteration 1 runs on the full ladder.
                if iters == 1 {
                    prop_assert!(
                        rows == 0,
                        "op {i}: unchanged problem must take the fingerprint fast path \
                         (recomputed {rows} rows)"
                    );
                }
            } else {
                prop_assert!(
                    rows > 0,
                    "op {i}: boost-only speaker change must invalidate the fingerprint, \
                     not serve the stale memo"
                );
            }
            last_solved = speaker_on;
        }
    }

    /// Random conference batches through the scheduler, cold then warm:
    /// every result must be bit-identical to a sequential engine driven
    /// over the same sequence, at every worker count.
    #[test]
    fn batch_scheduler_matches_sequential_engine(
        problems in prop::collection::vec(arb_problem(), 1..5)
    ) {
        let cfg = SolverConfig::default();
        let batch: Vec<Arc<Problem>> = problems.into_iter().map(Arc::new).collect();
        let warm_batch: Vec<Arc<Problem>> =
            batch.iter().map(|p| Arc::new(bandwidth_variant(p))).collect();

        // Sequential reference: one engine per conference, cold then warm.
        let reference: Vec<_> = batch
            .iter()
            .zip(&warm_batch)
            .map(|(cold, warm)| {
                let mut engine = SolveEngine::new(cfg.clone());
                let c = engine.solve_traced(cold);
                let w = engine.solve_traced(warm);
                (c, w)
            })
            .collect();

        for workers in [2usize, 8] {
            let mut sched = BatchScheduler::new(&BatchConfig { workers });
            let jobs: Vec<BatchJob> = batch
                .iter()
                .map(|p| BatchJob {
                    engine: SolveEngine::new(cfg.clone()),
                    problem: Arc::clone(p),
                    traced: true,
                })
                .collect();
            let cold = sched.solve_batch(jobs);
            // Check the cold pass, then re-batch with the *returned* engines
            // so the warm pass runs on warm memos; must still equal the warm
            // sequential reference.
            let warm_jobs: Vec<BatchJob> = cold
                .into_iter()
                .zip(&warm_batch)
                .zip(&reference)
                .map(|((r, p), ((ref_sol, ref_trace), _))| {
                    prop_assert!(
                        r.solution == *ref_sol && r.solution.state_digest() == ref_sol.state_digest(),
                        "{workers} workers: cold batch solution diverged"
                    );
                    let trace = r.trace.expect("traced job returns a trace");
                    prop_assert!(
                        trace == *ref_trace && trace.state_digest() == ref_trace.state_digest(),
                        "{workers} workers: cold batch trace diverged"
                    );
                    Ok(BatchJob { engine: r.engine, problem: Arc::clone(p), traced: true })
                })
                .collect::<Result<_, _>>()?;
            let warm = sched.solve_batch(warm_jobs);
            for (r, (_, (ref_sol, ref_trace))) in warm.into_iter().zip(&reference) {
                prop_assert!(
                    r.solution == *ref_sol && r.solution.state_digest() == ref_sol.state_digest(),
                    "{workers} workers: warm batch solution diverged"
                );
                let trace = r.trace.expect("traced job returns a trace");
                prop_assert!(
                    trace == *ref_trace && trace.state_digest() == ref_trace.state_digest(),
                    "{workers} workers: warm batch trace diverged"
                );
            }
        }
    }
}
