//! Cross-check the Knapsack–Merge–Reduction solver against the exact
//! branch-and-bound baseline on small random instances, with the auditor
//! passing judgement on both.
//!
//! Instances are kept tiny (≤ 3 clients, ≤ 2 publisher sources, ≤ 3-rung
//! ladders) so the exhaustive search is instant and exact.

use gso_algo::{
    brute, ladders, solver, ClientSpec, Ladder, Problem, Resolution, SolverConfig, SourceId,
    Subscription,
};
use gso_audit::{report, SolutionAuditor};
use gso_util::{Bitrate, ClientId};
use proptest::prelude::*;

/// Small monotone ladders with at most three rungs.
fn arb_ladder() -> impl Strategy<Value = Ladder> {
    (0usize..3).prop_map(|pick| match pick {
        0 => ladders::coarse3(),
        1 => ladders::uniform(&[Resolution::R180, Resolution::R360], 1),
        _ => ladders::uniform(&[Resolution::R180], 2),
    })
}

fn arb_problem() -> impl Strategy<Value = Problem> {
    (2usize..=3).prop_flat_map(|n| {
        let bw = prop::collection::vec((100u64..4_000, 100u64..4_000), n);
        let subs = prop::collection::vec(prop::bool::ANY, n * n);
        let caps = prop::collection::vec(0usize..3, n * n);
        let ladder = arb_ladder();
        (Just(n), bw, subs, caps, ladder).prop_map(|(n, bw, subs, caps, ladder)| {
            let resolutions = [Resolution::R180, Resolution::R360, Resolution::R720];
            let clients: Vec<ClientSpec> = bw
                .iter()
                .enumerate()
                .map(|(i, &(up, down))| {
                    let mut c = ClientSpec::new(
                        ClientId(i as u32 + 1),
                        Bitrate::from_kbps(up),
                        Bitrate::from_kbps(down),
                        ladder.clone(),
                    );
                    // At most two publisher sources: the third client (when
                    // present) only watches.
                    if i >= 2 {
                        c.sources.clear();
                    }
                    c
                })
                .collect();
            let mut subscriptions = Vec::new();
            for i in 0..n {
                for j in 0..n.min(2) {
                    if i != j && subs[i * n + j] {
                        subscriptions.push(Subscription::new(
                            ClientId(i as u32 + 1),
                            SourceId::video(ClientId(j as u32 + 1)),
                            resolutions[caps[i * n + j]],
                        ));
                    }
                }
            }
            Problem::new(clients, subscriptions).expect("generated problem is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gso_matches_exact_optimum_and_both_audit_clean(problem in arb_problem()) {
        let cfg = SolverConfig::default();
        let auditor = SolutionAuditor::new();

        let (gso, trace) = solver::solve_traced(&problem, &cfg);
        let findings = auditor.audit_traced(&problem, &gso, &trace);
        prop_assert!(
            findings.is_empty(),
            "GSO solution not auditor-clean:\n{}",
            report(&findings)
        );

        let exact = brute::solve_brute(&problem, &cfg, None);
        prop_assert!(exact.exact, "exhaustive search must complete on tiny instances");
        let findings = auditor.audit(&problem, &exact.solution);
        prop_assert!(
            findings.is_empty(),
            "brute-force solution not auditor-clean:\n{}",
            report(&findings)
        );

        // The exhaustive optimum can never be beaten…
        prop_assert!(
            gso.total_qoe <= exact.solution.total_qoe + 1e-6,
            "GSO ({}) above the exact optimum ({})",
            gso.total_qoe,
            exact.solution.total_qoe
        );
        // …and on these tiny instances GSO should attain it.
        prop_assert!(
            gso.total_qoe >= exact.solution.total_qoe - 1e-6,
            "GSO ({}) below the exact optimum ({})",
            gso.total_qoe,
            exact.solution.total_qoe
        );
    }
}
