//! Known-bad fixture: an `if`-guarded condvar wait. Condvars wake
//! spuriously and the predicate can be re-falsified between notify and
//! wake-up; the wait must sit in a `while` (or `loop`) that re-tests it.

use std::sync::{Condvar, Mutex};

pub struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

pub struct State {
    pending: bool,
    value: u64,
}

pub fn wait_once(s: &Shared) -> u64 {
    let mut st = s.state.lock().unwrap();
    if st.pending {
        st = s.cv.wait(st).unwrap();
    }
    st.value
}
