//! Known-bad fixture: a condvar wait performed while a *second* lock is
//! held. The wait releases only its own guard (`st`); `aux` stays locked
//! for the whole sleep, so the thread that should signal the condvar can
//! block on `aux` first — a livelock-by-design hazard.

use std::sync::{Condvar, Mutex};

pub struct Shared {
    aux: Mutex<u64>,
    state: Mutex<State>,
    cv: Condvar,
}

pub struct State {
    pending: bool,
}

pub fn wait_holding_aux(s: &Shared) -> u64 {
    let aux = s.aux.lock().unwrap();
    let mut st = s.state.lock().unwrap();
    while st.pending {
        st = s.cv.wait(st).unwrap();
    }
    *aux
}
