//! Known-bad fixture: pragma abuse. An unknown rule name, a pragma with
//! no reason, and a pragma with no matching finding — each is itself a
//! violation, so the exemption list cannot rot silently.

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);

pub fn wrong_rule() {
    // lockwatch: allow(atomic-sloppiness, reason = "no such rule id")
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn missing_reason() {
    // lockwatch: allow(atomics-policy)
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn unused_pragma() -> u64 {
    // lockwatch: allow(lock-order, reason = "there is no finding here")
    HITS.load(Ordering::SeqCst)
}
