//! Known-bad fixture: atomics-ordering policy breaches — a bare `Relaxed`
//! with no reasoned pragma, and an `Acquire` ordering on a *store* (which
//! is a release-side operation; `Acquire` on a store is either a typo or
//! a misunderstanding, and `std` panics on it at runtime).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);
static FLAG: AtomicBool = AtomicBool::new(false);

pub fn bump() {
    COUNT.fetch_add(1, Ordering::Relaxed);
}

pub fn publish() {
    FLAG.store(true, Ordering::Acquire);
}

pub fn consume() -> bool {
    FLAG.load(Ordering::Acquire)
}
