//! Known-bad fixture: a mutex guard held across `.await`. The task can be
//! parked at the yield point with the lock held, blocking every other
//! task scheduled on the same executor thread — and `std` guards are not
//! `Send`, so this also breaks work-stealing executors at compile time in
//! subtle ways. The workspace is synchronous today; this pass is armed
//! for when async lands.

use std::sync::Mutex;

pub struct Shared {
    state: Mutex<u64>,
    backend: Backend,
}

pub struct Backend;

impl Backend {
    pub async fn refetch(&self) -> u64 {
        0
    }
}

pub async fn refresh(s: &Shared) {
    let mut g = s.state.lock().unwrap();
    let v = s.backend.refetch().await;
    *g = v;
}
