//! Known-bad fixture: AB/BA lock inversion, one side direct and the other
//! buried two calls deep. `forward` acquires `alpha` then `beta`;
//! `backward` holds `beta` while calling through `middle` into `inner`,
//! which acquires `alpha`. Two threads interleaving these cones deadlock.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

pub fn forward(p: &Pair) -> u64 {
    let a = p.alpha.lock().unwrap();
    let b = p.beta.lock().unwrap();
    *a + *b
}

pub fn backward(p: &Pair) -> u64 {
    let b = p.beta.lock().unwrap();
    let extra = middle(p);
    *b + extra
}

fn middle(p: &Pair) -> u64 {
    inner(p)
}

fn inner(p: &Pair) -> u64 {
    let a = p.alpha.lock().unwrap();
    *a
}
