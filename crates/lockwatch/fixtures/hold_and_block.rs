//! Known-bad fixture: blocking while holding a guard — directly (a channel
//! `recv` under the `state` lock) and through a callee (`relock` calls
//! `backoff`, which sleeps). Every other thread touching `state` stalls
//! for the full blocking duration.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Stuff {
    state: Mutex<Vec<u64>>,
    rx: Receiver<u64>,
}

pub fn drain(q: &Stuff) -> u64 {
    let mut g = q.state.lock().unwrap();
    let item = q.rx.recv().unwrap();
    g.push(item);
    item
}

pub fn relock(q: &Stuff) -> usize {
    let g = q.state.lock().unwrap();
    backoff();
    g.len()
}

fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
