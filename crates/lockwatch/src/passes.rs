//! The five concurrency passes, plus pragma handling.
//!
//! * `lock-order` — every acquisition of lock B while lock A is held adds
//!   an order-graph edge A→B; callees reachable from the acquisition site
//!   contribute their transitive acquisitions. Any edge on a cycle
//!   (including A→A re-entry) is flagged at each witness site: two such
//!   cones interleaving is a deadlock.
//! * `hold-and-block` — a blocking operation (condvar wait on *another*
//!   lock's guard, channel `recv`, `thread::join`/`sleep`/`park`, file or
//!   socket I/O) executed, directly or through a callee, while a guard is
//!   live. Blocking under a lock turns one slow peer into a fleet-wide
//!   stall.
//! * `condvar-predicate` — `Condvar::wait`/`wait_timeout` must sit in a
//!   `while`/`loop` re-testing its predicate; condvars have spurious
//!   wakeups and an `if`-guarded wait acts on stale state.
//! * `atomics-policy` — every `Ordering::` use must match the DESIGN.md
//!   policy table (`Acquire` for loads, `Release` for stores, `AcqRel` /
//!   `SeqCst` for read-modify-write); `Relaxed` always demands a reasoned
//!   pragma because it provides no synchronization at all.
//! * `guard-across-yield` — a guard held across `.await` blocks every task
//!   on the executor thread, not just the waiting one. The workspace is
//!   sync today; the pass arms the rule for when async lands.
//!
//! Guard lifetimes are approximated from the parser's linear
//! synchronization-event stream: `let`-bound guards die when their block
//! closes, `if let`/`while let` guards when the condition's block closes,
//! temporaries at the end of their statement, and any named guard at an
//! explicit `drop(g)`. A guard dropped early inside a branch may thus be
//! over-approximated as still live — the fix is an explicit `drop` or a
//! reasoned pragma, both of which make the release point visible.
//!
//! Exemptions are reasoned, line-scoped pragmas, applying to their own
//! line and the line directly below:
//!
//! ```text
//! // lockwatch: allow(atomics-policy, reason = "stat counter, no ordering")
//! ```
//!
//! Unknown rules, missing reasons, and unused pragmas are themselves
//! violations, so the allowlist cannot rot.

use crate::report::{Finding, LockEdge, PragmaError, Report};
use gso_srcmodel::graph::CallGraph;
use gso_srcmodel::model::{BindKind, ParsedFile, SyncOp};
use gso_srcmodel::pragma;
use std::collections::{BTreeMap, BTreeSet};

/// Lockwatch rule identifiers.
pub const RULE_IDS: &[&str] =
    &["lock-order", "hold-and-block", "condvar-predicate", "atomics-policy", "guard-across-yield"];

#[derive(Debug)]
struct Pragma {
    file: String,
    line: usize,
    rule: String,
    reason: Option<String>,
    used: bool,
    malformed: Option<String>,
}

/// Parse `lockwatch:` pragmas out of one file's comments.
fn parse_directives(file: &str, comments: &[(usize, String)]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for (line, text) in comments {
        // Doc comments (`///`, `//!`) are rustdoc prose — examples in them
        // must not register as directives. A real directive is a plain
        // `//` comment whose body *starts* with `lockwatch:`.
        let body = text.trim_start_matches('/');
        if text.len() - body.len() != 2 {
            continue;
        }
        let Some(body) = body.trim_start().strip_prefix("lockwatch:") else {
            continue;
        };
        let body = body.trim();
        if body.starts_with(':') {
            continue; // `lockwatch::` path reference
        }
        if let Some(rest) = body.strip_prefix("allow(") {
            let allow = pragma::parse_allow(rest, RULE_IDS);
            pragmas.push(Pragma {
                file: file.to_string(),
                line: *line,
                rule: allow.rule,
                reason: allow.reason,
                used: false,
                malformed: allow.malformed,
            });
        } else {
            errors.push(PragmaError {
                file: file.to_string(),
                line: *line,
                message: format!("unrecognized lockwatch directive: `{body}`"),
            });
        }
    }
    (pragmas, errors)
}

/// A guard believed live at the current point of the event walk.
#[derive(Debug, Clone)]
struct LiveGuard {
    lock: String,
    var: Option<String>,
    bind: BindKind,
    depth: usize,
}

/// Per-function direct synchronization effects, propagated transitively
/// over the call graph so a caller holding a guard is charged with what
/// its callees do.
#[derive(Debug, Default, Clone)]
struct Effects {
    acquires: BTreeSet<String>,
    blocks: BTreeSet<&'static str>,
}

/// Classify an atomic method name for the ordering policy table.
fn atomic_op_class(op: Option<&str>) -> &'static str {
    match op {
        Some("load") => "load",
        Some("store") => "store",
        Some(m) if m.starts_with("fetch_") || m == "swap" || m.starts_with("compare_exchange") => {
            "rmw"
        }
        _ => "unknown",
    }
}

/// Does `ordering` satisfy the policy table for an op of class `class`?
/// `Relaxed` never does — it always demands a pragma.
fn ordering_ok(ordering: &str, class: &str) -> bool {
    match ordering {
        "SeqCst" => true,
        "Acquire" => matches!(class, "load" | "rmw" | "unknown"),
        "Release" => matches!(class, "store" | "rmw" | "unknown"),
        "AcqRel" => matches!(class, "rmw" | "unknown"),
        _ => false, // Relaxed or unrecognized
    }
}

/// Run all five passes with no crate-dependency information
/// (single-crate corpora, fixtures, unit tests).
#[must_use]
pub fn analyze(files: &[ParsedFile]) -> Report {
    analyze_with_deps(files, &BTreeMap::new())
}

/// Run all five passes over the parsed files, constraining call-graph
/// edges by the workspace dependency relation, and assemble the report.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze_with_deps(files: &[ParsedFile], deps: &BTreeMap<String, Vec<String>>) -> Report {
    let graph = CallGraph::build_with_deps(files, deps);
    let mut report =
        Report { files_scanned: files.len(), functions: graph.fns.len(), ..Report::default() };

    // ---- directives -----------------------------------------------------
    let mut pragmas: Vec<Pragma> = Vec::new();
    for pf in files {
        let (mut ps, errors) = parse_directives(&pf.file, &pf.comments);
        pragmas.append(&mut ps);
        report.pragma_errors.extend(errors);
    }

    // ---- transitive effects ---------------------------------------------
    // Direct per-function effects, then a fixpoint over call edges so each
    // function's set covers everything reachable from it. The graph is
    // small (hundreds of nodes); the loop converges in a few rounds.
    let mut effects: Vec<Effects> = graph
        .fns
        .iter()
        .map(|f| {
            let mut e = Effects::default();
            for ev in &f.sync {
                match &ev.op {
                    SyncOp::Acquire { lock, .. } => {
                        e.acquires.insert(lock.clone());
                    }
                    SyncOp::Wait { .. } => {
                        e.blocks.insert("condvar-wait");
                    }
                    SyncOp::Block { what } => {
                        e.blocks.insert(what);
                    }
                    _ => {}
                }
            }
            e
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            for &c in &graph.edges[i] {
                if c == i {
                    continue;
                }
                let callee = effects[c].clone();
                let e = &mut effects[i];
                for l in callee.acquires {
                    changed |= e.acquires.insert(l);
                }
                for b in callee.blocks {
                    changed |= e.blocks.insert(b);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- event walk: guards, waits, atomics, edges ----------------------
    // Lock-order edges are collected first (with witness sites), then
    // cycle-checked once the whole graph is known.
    let mut edge_sites: BTreeMap<(String, String), Vec<(usize, usize)>> = BTreeMap::new();
    let src_line = |file: &str, line: usize| -> String {
        files
            .iter()
            .find(|p| p.file == file)
            .and_then(|p| p.src_lines.get(line - 1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let push = |report: &mut Report, i: usize, line: usize, rule: &str, trigger: String| {
        let f = graph.fns[i];
        report.findings.push(Finding {
            file: f.file.clone(),
            line,
            krate: f.krate.clone(),
            rule: rule.to_string(),
            trigger,
            function: f.qualified(),
            snippet: src_line(&f.file, line),
            allowed: false,
            reason: None,
        });
    };

    for (i, f) in graph.fns.iter().enumerate() {
        let mut live: Vec<LiveGuard> = Vec::new();
        for ev in &f.sync {
            match &ev.op {
                SyncOp::Acquire { lock, bind, var, .. } => {
                    // Same-identity re-acquisition records a self-edge:
                    // std mutexes are not re-entrant, so holding `a` while
                    // locking `a` self-deadlocks and the A→A edge is
                    // trivially cyclic.
                    for g in &live {
                        edge_sites
                            .entry((g.lock.clone(), lock.clone()))
                            .or_default()
                            .push((i, ev.line));
                    }
                    live.push(LiveGuard {
                        lock: lock.clone(),
                        var: var.clone(),
                        bind: *bind,
                        depth: ev.depth,
                    });
                }
                SyncOp::Wait { method, guard_arg, in_loop } => {
                    if !in_loop && matches!(method.as_str(), "wait" | "wait_timeout") {
                        push(
                            &mut report,
                            i,
                            ev.line,
                            "condvar-predicate",
                            format!("{method} outside a while/loop predicate"),
                        );
                    }
                    // The waited-on guard is atomically released for the
                    // wait's duration; any *other* live guard stays held
                    // while this thread sleeps.
                    for g in &live {
                        let is_waited =
                            guard_arg.is_some() && g.var.as_deref() == guard_arg.as_deref();
                        if !is_waited {
                            push(
                                &mut report,
                                i,
                                ev.line,
                                "hold-and-block",
                                format!("condvar-wait while holding `{}`", g.lock),
                            );
                        }
                    }
                }
                SyncOp::Block { what } => {
                    for g in &live {
                        push(
                            &mut report,
                            i,
                            ev.line,
                            "hold-and-block",
                            format!("{what} while holding `{}`", g.lock),
                        );
                    }
                }
                SyncOp::DropVar { var } => {
                    live.retain(|g| g.var.as_deref() != Some(var.as_str()));
                }
                SyncOp::Await => {
                    for g in &live {
                        push(
                            &mut report,
                            i,
                            ev.line,
                            "guard-across-yield",
                            format!("`{}` guard held across .await", g.lock),
                        );
                    }
                }
                SyncOp::AtomicOrdering { ordering, op } => {
                    *report.atomics.entry(ordering.clone()).or_insert(0) += 1;
                    let class = atomic_op_class(op.as_deref());
                    if !ordering_ok(ordering, class) {
                        let trigger = if ordering == "Relaxed" {
                            "Relaxed".to_string()
                        } else {
                            format!("{ordering} on {class}")
                        };
                        push(&mut report, i, ev.line, "atomics-policy", trigger);
                    }
                }
                SyncOp::Call { index } => {
                    if live.is_empty() {
                        continue;
                    }
                    let Some((_, call)) = f.calls.get(*index) else { continue };
                    for c in graph.resolve(i, call) {
                        if c == i {
                            continue;
                        }
                        for g in &live {
                            for to in &effects[c].acquires {
                                if *to != g.lock {
                                    edge_sites
                                        .entry((g.lock.clone(), to.clone()))
                                        .or_default()
                                        .push((i, ev.line));
                                }
                            }
                            for what in &effects[c].blocks {
                                push(
                                    &mut report,
                                    i,
                                    ev.line,
                                    "hold-and-block",
                                    format!(
                                        "{what} in `{}` while holding `{}`",
                                        graph.fns[c].qualified(),
                                        g.lock
                                    ),
                                );
                            }
                        }
                    }
                }
                SyncOp::Semi => {
                    live.retain(|g| !(g.bind == BindKind::Temp && ev.depth <= g.depth));
                }
                SyncOp::ScopeEnd => {
                    live.retain(|g| match g.bind {
                        BindKind::Let | BindKind::Temp => ev.depth >= g.depth,
                        BindKind::CondLet => ev.depth > g.depth,
                    });
                }
            }
        }
    }

    // ---- lock-order cycle detection -------------------------------------
    // An edge A→B is a violation when B reaches A through the order graph
    // (that includes A→A re-entry). The identity set is small, so a plain
    // BFS per edge is fine.
    let succ: BTreeMap<&str, BTreeSet<&str>> = {
        let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (from, to) in edge_sites.keys() {
            m.entry(from.as_str()).or_default().insert(to.as_str());
        }
        m
    };
    let reaches = |start: &str, target: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = succ.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    for ((from, to), sites) in &edge_sites {
        let cyclic = reaches(to, from);
        report.lock_edges.push(LockEdge {
            from: from.clone(),
            to: to.clone(),
            sites: sites.len(),
            cyclic,
        });
        if cyclic {
            for &(i, line) in sites {
                push(
                    &mut report,
                    i,
                    line,
                    "lock-order",
                    format!("acquired `{to}` while holding `{from}` (order cycle)"),
                );
            }
        }
    }

    // ---- pragma application ---------------------------------------------
    report.findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report.findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.trigger == b.trigger
    });
    for f in &mut report.findings {
        let pragma = pragmas.iter_mut().find(|p| {
            p.malformed.is_none()
                && p.file == f.file
                && p.rule == f.rule
                && (p.line == f.line || p.line + 1 == f.line)
        });
        if let Some(p) = pragma {
            p.used = true;
            f.allowed = true;
            f.reason = p.reason.clone();
        }
    }
    for p in &pragmas {
        if let Some(msg) = &p.malformed {
            report.pragma_errors.push(PragmaError {
                file: p.file.clone(),
                line: p.line,
                message: msg.clone(),
            });
        } else if !p.used {
            report.pragma_errors.push(PragmaError {
                file: p.file.clone(),
                line: p.line,
                message: format!(
                    "unused pragma: no `{}` finding on this or the next line — remove it",
                    p.rule
                ),
            });
        }
    }
    report.pragma_errors.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    // ---- per-crate totals (ratchet input) --------------------------------
    for f in &report.findings {
        *report.per_crate.entry(f.krate.clone()).or_insert(0) += 1;
    }
    report
}
