//! `lockwatch` — concurrency static analysis CLI.
//!
//! Scans the workspace sources (crate `src/` and `benches/` trees, root
//! `src/` and `examples/`), runs the five lockwatch passes, and exits
//! nonzero on any unallowlisted finding or malformed/unused pragma, so CI
//! can gate on it directly.
//!
//! ```text
//! lockwatch [--root <workspace-root>] [--json] [--fixtures <dir>] [--ratchet <file>]
//! ```
//!
//! `--root` defaults to the current directory; `--json` prints the
//! machine-readable report (lock-order edge list and atomics census
//! included) instead of the human summary; `--fixtures <dir>` scans a
//! standalone fixture corpus instead of the workspace — used by CI to
//! prove the analyzer still fails on known-bad code; `--ratchet <file>`
//! additionally enforces per-crate total-finding ceilings from a
//! committed baseline file (`<crate> <max-findings>` per line, `#`
//! comments, unlisted crates implicitly 0), failing when a crate exceeds
//! its ceiling — allowed findings count too, so pragma'd debt cannot grow
//! silently.

use gso_lockwatch::passes::RULE_IDS;
use gso_lockwatch::Report;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Check per-crate finding totals against the committed baseline file.
/// Returns human-readable violations; an empty list means the ratchet holds.
fn check_ratchet(report: &Report, path: &Path) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut ceilings: BTreeMap<&str, usize> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(krate), Some(max), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "{}:{}: expected `<crate> <max-findings>`, got `{line}`",
                path.display(),
                lineno + 1
            ));
        };
        let max: usize = max
            .parse()
            .map_err(|e| format!("{}:{}: bad ceiling `{max}`: {e}", path.display(), lineno + 1))?;
        ceilings.insert(krate, max);
    }
    if ceilings.is_empty() {
        return Err(format!("{}: no ratchet entries found", path.display()));
    }
    let mut problems = Vec::new();
    for (krate, count) in &report.per_crate {
        let ceiling = ceilings.get(krate.as_str()).copied().unwrap_or(0);
        if *count > ceiling {
            problems.push(format!(
                "crate `{krate}` has {count} finding(s), above its ratchet ceiling of {ceiling}"
            ));
        }
    }
    Ok(problems)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut fixtures: Option<PathBuf> = None;
    let mut ratchet: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(v) = args.next() else {
                    eprintln!("lockwatch: --root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--fixtures" => {
                let Some(v) = args.next() else {
                    eprintln!("lockwatch: --fixtures requires a path");
                    return ExitCode::from(2);
                };
                fixtures = Some(PathBuf::from(v));
            }
            "--ratchet" => {
                let Some(v) = args.next() else {
                    eprintln!("lockwatch: --ratchet requires a path");
                    return ExitCode::from(2);
                };
                ratchet = Some(PathBuf::from(v));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: lockwatch [--root <workspace-root>] [--json] [--fixtures <dir>] [--ratchet <file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lockwatch: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match &fixtures {
        Some(dir) => gso_lockwatch::scan_fixture_dir(dir),
        None => gso_lockwatch::scan_workspace(&root),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lockwatch: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "lockwatch: scanned {} files, {} functions, rules {RULE_IDS:?}",
            report.files_scanned, report.functions
        );
        for e in &report.lock_edges {
            let marker = if e.cyclic { " CYCLE" } else { "" };
            println!("  order {} -> {} ({} site(s)){marker}", e.from, e.to, e.sites);
        }
        for (ordering, count) in &report.atomics {
            println!("  atomics Ordering::{ordering}: {count} use(s)");
        }
        for f in &report.findings {
            if f.allowed {
                println!(
                    "  allowed  {}:{} [{}] {} — reason: {}",
                    f.file,
                    f.line,
                    f.rule,
                    f.trigger,
                    f.reason.as_deref().unwrap_or("<none>")
                );
            }
        }
        for f in report.unallowed() {
            let in_fn =
                if f.function.is_empty() { String::new() } else { format!(" in {}", f.function) };
            println!(
                "  VIOLATION {}:{} [{}] {}{}\n    {}",
                f.file, f.line, f.rule, f.trigger, in_fn, f.snippet
            );
        }
        for e in &report.pragma_errors {
            println!("  VIOLATION {}:{} [directive] {}", e.file, e.line, e.message);
        }
        println!(
            "lockwatch: {} finding(s), {} allowed, {} violation(s)",
            report.findings.len(),
            report.findings.iter().filter(|f| f.allowed).count(),
            report.violation_count()
        );
    }

    let mut ratchet_broken = false;
    if let Some(path) = &ratchet {
        match check_ratchet(&report, path) {
            Ok(problems) => {
                for p in &problems {
                    eprintln!("  RATCHET {p}");
                }
                if problems.is_empty() {
                    println!("lockwatch: finding ratchet holds ({})", path.display());
                } else {
                    ratchet_broken = true;
                }
            }
            Err(e) => {
                eprintln!("lockwatch: ratchet check failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if report.violation_count() > 0 || ratchet_broken {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
