//! Findings, lock-order edge summaries, and the JSON report.
//!
//! The JSON is hand-rolled with stable key order (no serde in the offline
//! build) so CI can diff reports across runs, matching the detguard and
//! sentinel export conventions.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule hit, exempted or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Scan-root-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Crate the file belongs to (ratchet key).
    pub krate: String,
    /// Rule identifier from [`crate::passes::RULE_IDS`].
    pub rule: String,
    /// What fired (e.g. `signal->queues`, `channel-recv while holding
    /// `state``, `Relaxed`).
    pub trigger: String,
    /// Qualified function the site sits in.
    pub function: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Whether a pragma exempts this finding.
    pub allowed: bool,
    /// The pragma's justification, when allowed.
    pub reason: Option<String>,
}

/// A malformed or unused pragma — always a violation.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// Scan-root-relative path.
    pub file: String,
    /// 1-based line of the pragma.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// One observed lock-acquisition-order edge, cyclic or not — the report
/// exposes the whole order graph so the DESIGN.md lock hierarchy can be
/// checked against what the code actually does.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock held at the acquisition site.
    pub from: String,
    /// Lock acquired while `from` was held.
    pub to: String,
    /// Number of witness sites for this edge.
    pub sites: usize,
    /// Whether the edge participates in an acquisition-order cycle.
    pub cyclic: bool,
}

/// Aggregate result of a scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of non-test functions analyzed.
    pub functions: usize,
    /// Every observed acquisition-order edge.
    pub lock_edges: Vec<LockEdge>,
    /// `Ordering::` variant → number of uses seen.
    pub atomics: BTreeMap<String, usize>,
    /// Crate → total findings (allowed or not) — the ratchet input.
    pub per_crate: BTreeMap<String, usize>,
    /// Every rule hit.
    pub findings: Vec<Finding>,
    /// Malformed/unused pragmas.
    pub pragma_errors: Vec<PragmaError>,
}

impl Report {
    /// Findings not covered by a valid pragma.
    #[must_use]
    pub fn unallowed(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.allowed).collect()
    }

    /// Total violations: unallowed findings plus pragma errors.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.unallowed().len() + self.pragma_errors.len()
    }

    /// Machine-readable JSON report (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"functions\": {},", self.functions);
        let _ = writeln!(out, "  \"violations\": {},", self.violation_count());
        out.push_str("  \"lock_edges\": [");
        for (i, e) in self.lock_edges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"from\": {}, \"to\": {}, \"sites\": {}, \"cyclic\": {}}}",
                json_str(&e.from),
                json_str(&e.to),
                e.sites,
                e.cyclic,
            );
        }
        out.push_str("\n  ],\n  \"atomics\": {");
        for (i, (ordering, count)) in self.atomics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {}: {count}", json_str(ordering));
        }
        out.push_str("\n  },\n  \"per_crate\": {");
        for (i, (krate, count)) in self.per_crate.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {}: {count}", json_str(krate));
        }
        out.push_str("\n  },\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"trigger\": {}, \"function\": {}, \"allowed\": {}, \"reason\": {}, \"snippet\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.rule),
                json_str(&f.trigger),
                json_str(&f.function),
                f.allowed,
                f.reason.as_deref().map_or_else(|| "null".to_string(), json_str),
                json_str(&f.snippet),
            );
        }
        out.push_str("\n  ],\n  \"pragma_errors\": [");
        for (i, e) in self.pragma_errors.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&e.file),
                e.line,
                json_str(&e.message),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
