//! gso-lockwatch — concurrency static analyzer for the workspace.
//!
//! The batch scheduler, SFU switch fabric, and controller all coordinate
//! threads with mutexes, condvars, and (in the benches) atomics. Those
//! disciplines — locks acquired in one global order, nothing blocking
//! while a guard is held, condvar waits re-testing their predicate in a
//! loop, atomic orderings matching a documented policy — are exactly the
//! kind that review misses and tests rarely catch: the failure is a rare
//! interleaving, not a wrong value. Lockwatch re-checks them on every
//! commit, token-level and offline like its siblings (detguard's lint,
//! sentinel), on top of the shared [`gso_srcmodel`] source model and its
//! approximate workspace call graph.
//!
//! Five passes (see [`passes`] for rule semantics): `lock-order`,
//! `hold-and-block`, `condvar-predicate`, `atomics-policy`,
//! `guard-across-yield`.
//!
//! The scan covers every crate's `src/` *and* `benches/` tree plus the
//! workspace root's `src/` and `examples/` — bench harnesses spawn real
//! worker pools, so their locking is production locking. `tests/` trees
//! are exempt: a deadlock there hangs CI loudly, and test code freely
//! uses ad-hoc synchronization.
//!
//! Exemptions are reasoned, line-scoped `// lockwatch: allow(rule,
//! reason = "…")` pragmas, themselves checked: unknown rules, missing
//! reasons and unused pragmas are violations. The `lockwatch` binary
//! exits nonzero on any violation; CI gates on it, proves the fixture
//! corpus still fails, and enforces the per-crate finding ratchet in
//! `LOCKWATCH_BASELINE.txt` (see DESIGN.md "Concurrency contract").

pub mod passes;
pub mod report;

pub use gso_srcmodel::{graph, lex, model, parse};

pub use passes::{analyze, analyze_with_deps, RULE_IDS};
pub use report::{Finding, LockEdge, PragmaError, Report};

use gso_srcmodel::WalkOptions;
use std::path::Path;

/// Scan a workspace (crate `src/` + `benches/` trees, root `src/` and
/// `examples/`) and run all passes.
///
/// # Errors
/// Propagates I/O failures reading the source tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let deps = gso_srcmodel::workspace_deps(root)?;
    let files = gso_srcmodel::parse_workspace_with(
        root,
        WalkOptions { crate_benches: true, root_examples: true },
    )?;
    Ok(analyze_with_deps(&files, &deps))
}

/// Scan a flat directory of standalone fixture files. Each file is treated
/// as its own crate (named after the file stem) so fixtures stay
/// self-contained.
///
/// # Errors
/// Propagates I/O failures reading the directory.
pub fn scan_fixture_dir(dir: &Path) -> std::io::Result<Report> {
    Ok(analyze(&gso_srcmodel::parse_fixture_dir(dir)?))
}
