//! Fixture self-tests: the known-bad corpus must keep failing, at the
//! exact sites the fixtures stage. A refactor that silently stops a pass
//! from firing breaks these before it reaches CI's inverted fixture gate.

use gso_lockwatch::Report;
use std::path::Path;

fn fixture_report() -> Report {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    gso_lockwatch::scan_fixture_dir(&dir).expect("fixture corpus scans")
}

fn assert_finding(r: &Report, file: &str, line: usize, rule: &str) {
    assert!(
        r.findings.iter().any(|f| f.file == file && f.line == line && f.rule == rule && !f.allowed),
        "expected unallowed `{rule}` finding at {file}:{line}; got: {:#?}",
        r.findings
    );
}

#[test]
fn lock_inversion_flags_both_sides_of_the_cycle() {
    let r = fixture_report();
    // Direct: `forward` acquires beta while holding alpha.
    assert_finding(&r, "lock_inversion.rs", 15, "lock-order");
    // Transitive: `backward` holds beta and reaches alpha two calls deep,
    // so the witness is the `middle(p)` call site.
    assert_finding(&r, "lock_inversion.rs", 21, "lock-order");
    let cyclic: Vec<(&str, &str)> = r
        .lock_edges
        .iter()
        .filter(|e| e.cyclic)
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    assert_eq!(cyclic, vec![("alpha", "beta"), ("beta", "alpha")]);
}

#[test]
fn hold_and_block_fires_direct_and_through_callee() {
    let r = fixture_report();
    // Direct: channel recv under the state lock.
    assert_finding(&r, "hold_and_block.rs", 16, "hold-and-block");
    // Indirect: `relock` holds state and calls `backoff`, which sleeps.
    assert_finding(&r, "hold_and_block.rs", 23, "hold-and-block");
    assert!(
        r.findings.iter().any(|f| f.file == "hold_and_block.rs"
            && f.line == 23
            && f.trigger.contains("backoff")),
        "the callee that blocks must be named in the trigger"
    );
}

#[test]
fn condvar_wait_holding_second_lock_is_hold_and_block() {
    let r = fixture_report();
    // The wait releases its own guard (`st`) but keeps `aux` locked.
    assert_finding(&r, "wait_second_lock.rs", 22, "hold-and-block");
    // The waited-on guard itself is exempt and the wait is in a `while`,
    // so this is the file's only finding.
    assert_eq!(
        r.findings.iter().filter(|f| f.file == "wait_second_lock.rs").count(),
        1,
        "own-guard wait in a while loop must not add findings"
    );
    // aux -> state is a legal (acyclic) order edge, recorded but not flagged.
    assert!(r.lock_edges.iter().any(|e| e.from == "aux" && e.to == "state" && !e.cyclic));
}

#[test]
fn if_guarded_condvar_wait_is_flagged() {
    let r = fixture_report();
    assert_finding(&r, "condvar_if.rs", 20, "condvar-predicate");
    assert_eq!(
        r.findings.iter().filter(|f| f.file == "condvar_if.rs").count(),
        1,
        "waiting on your own guard is not hold-and-block"
    );
}

#[test]
fn atomics_policy_flags_relaxed_and_wrong_direction() {
    let r = fixture_report();
    // Bare Relaxed always needs a pragma.
    assert_finding(&r, "atomics_relaxed.rs", 12, "atomics-policy");
    // Acquire on a store is the wrong direction.
    assert_finding(&r, "atomics_relaxed.rs", 16, "atomics-policy");
    // Acquire on a load is fine.
    assert!(!r.findings.iter().any(|f| f.file == "atomics_relaxed.rs" && f.line == 20));
    // The census sees every ordering use, violating or not.
    assert_eq!(r.atomics.get("Acquire"), Some(&2));
}

#[test]
fn guard_across_await_is_flagged() {
    let r = fixture_report();
    assert_finding(&r, "guard_across_await.rs", 25, "guard-across-yield");
}

#[test]
fn pragma_abuse_is_three_distinct_errors() {
    let r = fixture_report();
    let msgs: Vec<&str> = r
        .pragma_errors
        .iter()
        .filter(|e| e.file == "pragma_bad.rs")
        .map(|e| e.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 3, "unknown rule, missing reason, unused: {msgs:?}");
    assert!(msgs[0].contains("unknown rule `atomic-sloppiness`"));
    assert!(msgs[1].contains("reason"));
    assert!(msgs[2].contains("unused pragma"));
    // A malformed pragma never exempts: both staged findings stay violations.
    assert_finding(&r, "pragma_bad.rs", 11, "atomics-policy");
    assert_finding(&r, "pragma_bad.rs", 16, "atomics-policy");
}

#[test]
fn corpus_totals_are_pinned() {
    let r = fixture_report();
    assert_eq!(r.files_scanned, 7);
    assert_eq!(
        r.violation_count(),
        14,
        "11 unallowed findings + 3 pragma errors; update deliberately when the corpus changes"
    );
    // Every rule fires somewhere in the corpus.
    for rule in gso_lockwatch::RULE_IDS {
        assert!(
            r.findings.iter().any(|f| f.rule == *rule),
            "rule `{rule}` never fired on the fixture corpus"
        );
    }
}
