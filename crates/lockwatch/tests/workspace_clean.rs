//! The workspace itself must stay lockwatch-clean: zero unexplained
//! findings, and the pragma-allowed debt pinned so it cannot grow without
//! touching this test or `LOCKWATCH_BASELINE.txt`.

use std::path::Path;

#[test]
fn workspace_has_zero_lockwatch_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = gso_lockwatch::scan_workspace(&root).expect("workspace scans");
    let violations: Vec<String> = r
        .unallowed()
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.trigger))
        .chain(r.pragma_errors.iter().map(|e| format!("{}:{} {}", e.file, e.line, e.message)))
        .collect();
    assert!(violations.is_empty(), "workspace lockwatch violations: {violations:#?}");
}

#[test]
fn allowed_debt_matches_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = gso_lockwatch::scan_workspace(&root).expect("workspace scans");
    // The only pragma'd findings today are the three Relaxed stat-counter
    // atomics in the bench allocation harness (see LOCKWATCH_BASELINE.txt).
    assert_eq!(r.per_crate.get("bench"), Some(&3));
    assert_eq!(r.findings.len(), 3, "new allowed findings must be added to the baseline");
    // The batch scheduler's signal -> queues ordering (worker re-scan under
    // the wakeup lock) is the workspace's only cross-lock edge; it must
    // stay acyclic.
    assert!(r.lock_edges.iter().all(|e| !e.cyclic), "lock-order cycle in the workspace");
}
